//! End-to-end ratchet behaviour over a synthetic workspace: findings are
//! grandfathered by `--update-allowlist`, NEW sites fail the lint, and
//! burned-down sites fail as stale until the budget is shrunk. A final
//! test pins the real repository clean under its committed allowlist.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::{run_lint, update_allowlist, workspace_root, Rule};

/// A throwaway workspace under the target-adjacent temp dir.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let root = std::env::temp_dir().join(format!("xtask-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let f = Self { root };
        f.write_consistent_taxonomy();
        fs::create_dir_all(f.root.join("xtask")).expect("mkdir xtask");
        f
    }

    fn write(&self, rel: &str, text: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, text).expect("write fixture");
    }

    /// A registry/catalog/coverage/design quartet that satisfies the
    /// `taxonomy` rule (21 keys, build fns in-file, covered, documented).
    fn write_consistent_taxonomy(&self) {
        let keys: Vec<String> = (0..21).map(|i| format!("algo-{i}")).collect();
        let mut registry = String::new();
        for k in &keys {
            let f = k.replace('-', "_");
            registry.push_str(&format!("fn build_{f}() {{}}\n"));
            registry.push_str(&format!(
                "RegistryEntry {{ key: \"{k}\", build: build_{f} }}\n"
            ));
        }
        let covered: Vec<String> = keys.iter().map(|k| format!("\"{k}\"")).collect();
        let coverage = format!(
            "const COVERED_KEYS: [&str; 21] = [{}];\n",
            covered.join(", ")
        );
        let design: Vec<String> = keys.iter().map(|k| format!("`{k}`")).collect();
        self.write("crates/detect/src/registry.rs", &registry);
        self.write("crates/detect/src/engine/catalog.rs", "");
        self.write("crates/detect/tests/engine_spec_props.rs", &coverage);
        self.write("DESIGN.md", &design.join(", "));
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const BAD_LIB: &str = "pub fn f(xs: &mut [f64]) -> f64 {\n\
     xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
     *xs.first().unwrap()\n\
}\n";

#[test]
fn ratchet_grandfathers_then_blocks_new_sites_and_stale_budgets() {
    let fx = Fixture::new("ratchet");
    fx.write("crates/detect/src/da/bad.rs", BAD_LIB);

    // Fresh tree, empty allowlist: everything violates.
    let out = run_lint(&fx.root).expect("lint");
    assert!(!out.clean());
    assert!(out.findings.iter().any(|f| f.rule == Rule::NanCmp));
    assert!(out.findings.iter().any(|f| f.rule == Rule::PanicSite));

    // Grandfather the current state: clean.
    let n = update_allowlist(&fx.root).expect("update");
    assert!(n >= 2, "expected grandfathered sites, got {n}");
    let out = run_lint(&fx.root).expect("lint");
    assert!(out.clean(), "{:?}", out.violations);

    // A NEW panic site exceeds the budget and fails.
    fx.write(
        "crates/detect/src/da/bad.rs",
        &format!("{BAD_LIB}pub fn g(v: &[f64]) -> f64 {{ *v.last().unwrap() }}\n"),
    );
    let out = run_lint(&fx.root).expect("lint");
    let over: Vec<_> = out
        .violations
        .iter()
        .filter(|v| v.actual > v.allowed)
        .collect();
    assert!(!over.is_empty(), "new site must violate the ratchet");

    // Burning sites down WITHOUT shrinking the budget fails as stale.
    fx.write("crates/detect/src/da/bad.rs", "pub fn f() {}\n");
    let out = run_lint(&fx.root).expect("lint");
    assert!(
        out.violations.iter().any(|v| v.actual < v.allowed),
        "stale budget must violate: {:?}",
        out.violations
    );

    // Shrinking the budget restores a clean ratchet.
    update_allowlist(&fx.root).expect("update");
    assert!(run_lint(&fx.root).expect("lint").clean());
}

#[test]
fn taxonomy_drift_is_never_allowlistable() {
    let fx = Fixture::new("taxonomy");
    // Break the cross-check: one key vanishes from the coverage list.
    fx.write(
        "crates/detect/tests/engine_spec_props.rs",
        "const COVERED_KEYS: [&str; 1] = [\"algo-0\"];\n",
    );
    let out = run_lint(&fx.root).expect("lint");
    assert!(!out.clean());
    // Even a freshly updated allowlist cannot absorb taxonomy findings.
    update_allowlist(&fx.root).expect("update");
    let out = run_lint(&fx.root).expect("lint");
    assert!(
        out.violations.iter().all(|v| v.rule == Rule::Taxonomy),
        "{:?}",
        out.violations
    );
    assert!(!out.clean());
}

#[test]
fn unsafe_audit_flags_only_uncommented_blocks_and_ratchets() {
    let fx = Fixture::new("unsafe");
    fx.write(
        "crates/detect/src/da/raw.rs",
        "pub fn f(p: *const u8) -> u8 {\n\
         \x20   // SAFETY: the caller passes a valid, aligned pointer.\n\
         \x20   unsafe { *p }\n\
         }\n\
         pub fn g(p: *const u8) -> u8 {\n\
         \x20   unsafe { *p }\n\
         }\n",
    );
    let out = run_lint(&fx.root).expect("lint");
    let hits: Vec<_> = out
        .findings
        .iter()
        .filter(|f| f.rule == Rule::UnsafeAudit)
        .collect();
    assert_eq!(hits.len(), 1, "only the SAFETY-less block: {hits:?}");
    assert_eq!(hits[0].line, 6);
    // Count-ratcheted like panic-site: grandfathering absorbs it.
    update_allowlist(&fx.root).expect("update");
    assert!(run_lint(&fx.root).expect("lint").clean());
}

#[test]
fn atomic_ordering_inventories_ops_and_gates_seqcst() {
    let fx = Fixture::new("atomics");
    fx.write(
        "crates/stream/src/flag.rs",
        "pub fn publish(f: &AtomicBool) {\n\
         \x20   f.store(true, Ordering::Release);\n\
         }\n\
         pub fn handshake(f: &AtomicBool) -> bool {\n\
         \x20   // ORDERING: Dekker-style flag pair needs a total store order.\n\
         \x20   f.swap(true, Ordering::SeqCst)\n\
         }\n\
         pub fn sloppy(f: &AtomicBool) -> bool {\n\
         \x20   f.load(Ordering::SeqCst)\n\
         }\n",
    );
    let out = run_lint(&fx.root).expect("lint");
    // The inventory carries every op with its orderings.
    let ops: Vec<&str> = out.atomics.iter().map(|a| a.op.as_str()).collect();
    assert_eq!(ops, ["store", "swap", "load"]);
    // Only the unjustified SeqCst is a finding.
    let hits: Vec<_> = out
        .findings
        .iter()
        .filter(|f| f.rule == Rule::AtomicOrdering)
        .collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].line, 9);
    // The file holds an AtomicBool with no loom model mapped: the
    // coverage gate fires too, and no allowlist update absorbs it.
    assert!(out.findings.iter().any(|f| f.rule == Rule::LoomCoverage));
    update_allowlist(&fx.root).expect("update");
    let out = run_lint(&fx.root).expect("lint");
    assert!(!out.clean());
    assert!(
        out.violations.iter().all(|v| v.rule == Rule::LoomCoverage),
        "{:?}",
        out.violations
    );
}

#[test]
fn lock_order_cycles_are_never_allowlistable() {
    let fx = Fixture::new("lockorder");
    fx.write(
        "crates/store/src/ab.rs",
        "pub fn ab(&self) {\n\
         \x20   let a = self.wal.lock();\n\
         \x20   let b = self.index.lock();\n\
         \x20   drop(b);\n\
         \x20   drop(a);\n\
         }\n",
    );
    fx.write(
        "crates/store/src/ba.rs",
        "pub fn ba(&self) {\n\
         \x20   let b = self.index.lock();\n\
         \x20   let a = self.wal.lock();\n\
         \x20   drop(a);\n\
         \x20   drop(b);\n\
         }\n",
    );
    let out = run_lint(&fx.root).expect("lint");
    assert!(
        out.findings.iter().any(|f| f.rule == Rule::LockOrder),
        "ABBA across files must surface: {:?}",
        out.findings
    );
    // Deadlocks cannot be grandfathered.
    update_allowlist(&fx.root).expect("update");
    let out = run_lint(&fx.root).expect("lint");
    assert!(!out.clean());
    assert!(out.violations.iter().any(|v| v.rule == Rule::LockOrder));
}

#[test]
fn loom_coverage_requires_the_named_model_test() {
    let fx = Fixture::new("loomcov");
    // An atomics-bearing file at a MODEL_MAP path, with no model file.
    fx.write(
        "crates/stream/src/ring.rs",
        "pub struct R { head: AtomicUsize }\n",
    );
    let out = run_lint(&fx.root).expect("lint");
    assert!(out.findings.iter().any(|f| f.rule == Rule::LoomCoverage));
    // The mapped model file must contain the named test fn...
    fx.write("crates/stream/tests/loom_ring.rs", "fn unrelated() {}\n");
    let out = run_lint(&fx.root).expect("lint");
    assert!(out.findings.iter().any(|f| f.rule == Rule::LoomCoverage));
    // ...and once it does, the gate is satisfied.
    fx.write(
        "crates/stream/tests/loom_ring.rs",
        "#[test]\nfn spsc_fifo_no_loss_under_all_interleavings() {}\n",
    );
    let out = run_lint(&fx.root).expect("lint");
    assert!(
        out.findings.iter().all(|f| f.rule != Rule::LoomCoverage),
        "{:?}",
        out.findings
    );
}

/// The real repository must be clean under its committed allowlist — this
/// is the same check CI runs via `cargo xtask lint`.
#[test]
fn repository_is_clean_under_committed_allowlist() {
    let out = run_lint(&workspace_root()).expect("lint");
    assert!(
        out.clean(),
        "repository violates its own lint ratchet: {:#?}",
        out.violations
    );
    // The concurrency sweep holds: the atomic inventory is populated and
    // every remaining SeqCst site carries an ORDERING justification.
    assert!(
        !out.atomics.is_empty(),
        "atomic inventory must be populated"
    );
    assert!(out
        .findings
        .iter()
        .all(|f| f.rule != Rule::AtomicOrdering && f.rule != Rule::UnsafeAudit));
}

/// Structured output stays machine-parseable (CI consumes it).
#[test]
fn findings_serialize_to_json() {
    let fx = Fixture::new("json");
    fx.write("crates/detect/src/da/bad.rs", BAD_LIB);
    let out = run_lint(&fx.root).expect("lint");
    let f = out
        .findings
        .iter()
        .find(|f| f.rule == Rule::NanCmp)
        .expect("nan finding");
    let json = f.to_json();
    assert!(json.contains("\"rule\":\"nan-cmp\""), "{json}");
    assert!(json.contains("\"file\":\"crates/detect/src/da/bad.rs\""));
}

/// `workspace_sources` must skip shims/ and xtask/ (their own fixtures are
/// deliberately bad) but cover every crate source.
#[test]
fn source_walk_scopes_to_crates() {
    let files = xtask::workspace_sources(&workspace_root()).expect("walk");
    assert!(files.iter().all(|p| {
        let s = p.to_string_lossy();
        !s.contains("/shims/") && !s.contains("/xtask/") && !s.contains("/target/")
    }));
    assert!(files
        .iter()
        .any(|p| p.ends_with(Path::new("crates/detect/src/engine/scheduler.rs"))));
}
