//! End-to-end ratchet behaviour over a synthetic workspace: findings are
//! grandfathered by `--update-allowlist`, NEW sites fail the lint, and
//! burned-down sites fail as stale until the budget is shrunk. A final
//! test pins the real repository clean under its committed allowlist.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::{run_lint, update_allowlist, workspace_root, Rule};

/// A throwaway workspace under the target-adjacent temp dir.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let root = std::env::temp_dir().join(format!("xtask-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let f = Self { root };
        f.write_consistent_taxonomy();
        fs::create_dir_all(f.root.join("xtask")).expect("mkdir xtask");
        f
    }

    fn write(&self, rel: &str, text: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, text).expect("write fixture");
    }

    /// A registry/catalog/coverage/design quartet that satisfies the
    /// `taxonomy` rule (21 keys, build fns in-file, covered, documented).
    fn write_consistent_taxonomy(&self) {
        let keys: Vec<String> = (0..21).map(|i| format!("algo-{i}")).collect();
        let mut registry = String::new();
        for k in &keys {
            let f = k.replace('-', "_");
            registry.push_str(&format!("fn build_{f}() {{}}\n"));
            registry.push_str(&format!(
                "RegistryEntry {{ key: \"{k}\", build: build_{f} }}\n"
            ));
        }
        let covered: Vec<String> = keys.iter().map(|k| format!("\"{k}\"")).collect();
        let coverage = format!(
            "const COVERED_KEYS: [&str; 21] = [{}];\n",
            covered.join(", ")
        );
        let design: Vec<String> = keys.iter().map(|k| format!("`{k}`")).collect();
        self.write("crates/detect/src/registry.rs", &registry);
        self.write("crates/detect/src/engine/catalog.rs", "");
        self.write("crates/detect/tests/engine_spec_props.rs", &coverage);
        self.write("DESIGN.md", &design.join(", "));
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const BAD_LIB: &str = "pub fn f(xs: &mut [f64]) -> f64 {\n\
     xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
     *xs.first().unwrap()\n\
}\n";

#[test]
fn ratchet_grandfathers_then_blocks_new_sites_and_stale_budgets() {
    let fx = Fixture::new("ratchet");
    fx.write("crates/detect/src/da/bad.rs", BAD_LIB);

    // Fresh tree, empty allowlist: everything violates.
    let out = run_lint(&fx.root).expect("lint");
    assert!(!out.clean());
    assert!(out.findings.iter().any(|f| f.rule == Rule::NanCmp));
    assert!(out.findings.iter().any(|f| f.rule == Rule::PanicSite));

    // Grandfather the current state: clean.
    let n = update_allowlist(&fx.root).expect("update");
    assert!(n >= 2, "expected grandfathered sites, got {n}");
    let out = run_lint(&fx.root).expect("lint");
    assert!(out.clean(), "{:?}", out.violations);

    // A NEW panic site exceeds the budget and fails.
    fx.write(
        "crates/detect/src/da/bad.rs",
        &format!("{BAD_LIB}pub fn g(v: &[f64]) -> f64 {{ *v.last().unwrap() }}\n"),
    );
    let out = run_lint(&fx.root).expect("lint");
    let over: Vec<_> = out
        .violations
        .iter()
        .filter(|v| v.actual > v.allowed)
        .collect();
    assert!(!over.is_empty(), "new site must violate the ratchet");

    // Burning sites down WITHOUT shrinking the budget fails as stale.
    fx.write("crates/detect/src/da/bad.rs", "pub fn f() {}\n");
    let out = run_lint(&fx.root).expect("lint");
    assert!(
        out.violations.iter().any(|v| v.actual < v.allowed),
        "stale budget must violate: {:?}",
        out.violations
    );

    // Shrinking the budget restores a clean ratchet.
    update_allowlist(&fx.root).expect("update");
    assert!(run_lint(&fx.root).expect("lint").clean());
}

#[test]
fn taxonomy_drift_is_never_allowlistable() {
    let fx = Fixture::new("taxonomy");
    // Break the cross-check: one key vanishes from the coverage list.
    fx.write(
        "crates/detect/tests/engine_spec_props.rs",
        "const COVERED_KEYS: [&str; 1] = [\"algo-0\"];\n",
    );
    let out = run_lint(&fx.root).expect("lint");
    assert!(!out.clean());
    // Even a freshly updated allowlist cannot absorb taxonomy findings.
    update_allowlist(&fx.root).expect("update");
    let out = run_lint(&fx.root).expect("lint");
    assert!(
        out.violations.iter().all(|v| v.rule == Rule::Taxonomy),
        "{:?}",
        out.violations
    );
    assert!(!out.clean());
}

/// The real repository must be clean under its committed allowlist — this
/// is the same check CI runs via `cargo xtask lint`.
#[test]
fn repository_is_clean_under_committed_allowlist() {
    let out = run_lint(&workspace_root()).expect("lint");
    assert!(
        out.clean(),
        "repository violates its own lint ratchet: {:#?}",
        out.violations
    );
}

/// Structured output stays machine-parseable (CI consumes it).
#[test]
fn findings_serialize_to_json() {
    let fx = Fixture::new("json");
    fx.write("crates/detect/src/da/bad.rs", BAD_LIB);
    let out = run_lint(&fx.root).expect("lint");
    let f = out
        .findings
        .iter()
        .find(|f| f.rule == Rule::NanCmp)
        .expect("nan finding");
    let json = f.to_json();
    assert!(json.contains("\"rule\":\"nan-cmp\""), "{json}");
    assert!(json.contains("\"file\":\"crates/detect/src/da/bad.rs\""));
}

/// `workspace_sources` must skip shims/ and xtask/ (their own fixtures are
/// deliberately bad) but cover every crate source.
#[test]
fn source_walk_scopes_to_crates() {
    let files = xtask::workspace_sources(&workspace_root()).expect("walk");
    assert!(files.iter().all(|p| {
        let s = p.to_string_lossy();
        !s.contains("/shims/") && !s.contains("/xtask/") && !s.contains("/target/")
    }));
    assert!(files
        .iter()
        .any(|p| p.ends_with(Path::new("crates/detect/src/engine/scheduler.rs"))));
}
