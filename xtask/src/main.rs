//! `cargo xtask` — workspace automation. Currently one subcommand:
//!
//! ```text
//! cargo xtask lint [--update-allowlist] [--format json] [--root PATH]
//! ```
//!
//! Exit codes: 0 clean, 1 lint violations, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{run_lint, update_allowlist, workspace_root, Rule};

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask lint [--update-allowlist] [--format json] [--root PATH]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(("lint", rest)) = args.split_first().map(|(c, r)| (c.as_str(), r)) else {
        return usage();
    };
    let mut update = false;
    let mut json = false;
    let mut root = workspace_root();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--update-allowlist" => update = true,
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => return usage(),
            },
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    if update {
        return match update_allowlist(&root) {
            Ok(n) => {
                eprintln!("xtask lint: allowlist rewritten ({n} grandfathered sites)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("xtask lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    let outcome = match run_lint(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        let body: Vec<String> = outcome
            .violations
            .iter()
            .flat_map(|v| v.sites.iter())
            .map(|f| f.to_json())
            .collect();
        let atomics: Vec<String> = outcome.atomics.iter().map(|a| a.to_json()).collect();
        println!(
            "{{\"clean\":{},\"violations\":[{}],\"atomics\":[{}]}}",
            outcome.clean(),
            body.join(","),
            atomics.join(",")
        );
    } else {
        for v in &outcome.violations {
            eprint!("{}", v.render());
        }
        let per_rule: Vec<String> = Rule::ALL
            .iter()
            .map(|r| {
                let n = outcome.findings.iter().filter(|f| f.rule == *r).count();
                format!("{r}: {n}")
            })
            .collect();
        eprintln!(
            "xtask lint: {} findings under ratchet ({}) — {}",
            outcome.findings.len(),
            per_rule.join(", "),
            if outcome.clean() {
                "clean".to_string()
            } else {
                format!("{} violation(s)", outcome.violations.len())
            }
        );
    }
    if outcome.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
