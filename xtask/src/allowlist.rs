//! The committed allowlist: a per-(rule, file) finding-count ratchet.
//!
//! `xtask/lint.allow` grandfathers the sites that existed when a rule was
//! introduced, as `rule path max-count` lines. The lint fails when a file
//! *exceeds* its budget (a new site appeared) **and** when it drops below
//! it (the burndown must be committed by re-running
//! `cargo xtask lint --update-allowlist`, so the ratchet only ever
//! tightens). Counts are used instead of line anchors so unrelated edits
//! that shift lines do not churn the file.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::findings::{Finding, Rule};

/// Budget table keyed by (rule, file).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Allowlist {
    entries: BTreeMap<(Rule, String), usize>,
}

/// A violation of the ratchet, with the offending sites when over budget.
#[derive(Debug)]
pub struct Violation {
    /// The rule whose budget is violated.
    pub rule: Rule,
    /// The file in question.
    pub file: String,
    /// Allowed count.
    pub allowed: usize,
    /// Actual count.
    pub actual: usize,
    /// The individual findings (over-budget case; empty when stale).
    pub sites: Vec<Finding>,
}

impl Violation {
    /// Human-readable report block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.actual > self.allowed {
            let _ = writeln!(
                out,
                "{}: [{}] {} sites, allowlist permits {} — new sites must be fixed, not \
                 grandfathered:",
                self.file, self.rule, self.actual, self.allowed
            );
            for f in &self.sites {
                let _ = writeln!(out, "  {}:{}: {}", f.file, f.line, f.excerpt);
            }
        } else {
            let _ = writeln!(
                out,
                "{}: [{}] stale allowlist budget: {} allowed but only {} remain — run \
                 `cargo xtask lint --update-allowlist` to commit the burndown",
                self.file, self.rule, self.allowed, self.actual
            );
        }
        out
    }
}

impl Allowlist {
    /// Parses the allowlist text. Lines: `rule path count`; `#` comments
    /// and blank lines ignored.
    ///
    /// # Errors
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(path), Some(count)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("line {}: expected `rule path count`", i + 1));
            };
            let rule = Rule::parse(rule)
                .ok_or_else(|| format!("line {}: unknown rule `{rule}`", i + 1))?;
            if !rule.allowlistable() {
                return Err(format!(
                    "line {}: rule `{rule}` findings cannot be grandfathered",
                    i + 1
                ));
            }
            let count: usize = count
                .parse()
                .map_err(|_| format!("line {}: bad count `{count}`", i + 1))?;
            entries.insert((rule, path.to_string()), count);
        }
        Ok(Self { entries })
    }

    /// Applies the ratchet to a finding set, returning every violation.
    pub fn check(&self, findings: &[Finding]) -> Vec<Violation> {
        let mut by_key: BTreeMap<(Rule, String), Vec<&Finding>> = BTreeMap::new();
        for f in findings {
            by_key.entry((f.rule, f.file.clone())).or_default().push(f);
        }
        let mut out = Vec::new();
        for (key, sites) in &by_key {
            let allowed = if key.0.allowlistable() {
                self.entries.get(key).copied().unwrap_or(0)
            } else {
                0
            };
            if sites.len() > allowed {
                out.push(Violation {
                    rule: key.0,
                    file: key.1.clone(),
                    allowed,
                    actual: sites.len(),
                    sites: sites.iter().map(|f| (*f).clone()).collect(),
                });
            }
        }
        // Stale budgets: listed files now under (or at zero) budget.
        for (key, &allowed) in &self.entries {
            let actual = by_key.get(key).map(Vec::len).unwrap_or(0);
            if actual < allowed {
                out.push(Violation {
                    rule: key.0,
                    file: key.1.clone(),
                    allowed,
                    actual,
                    sites: Vec::new(),
                });
            }
        }
        out
    }

    /// Renders the allowlist that exactly matches a finding set.
    pub fn render_for(findings: &[Finding]) -> String {
        let mut counts: BTreeMap<(Rule, String), usize> = BTreeMap::new();
        for f in findings {
            if f.rule.allowlistable() {
                *counts.entry((f.rule, f.file.clone())).or_default() += 1;
            }
        }
        let mut out = String::from(
            "# Grandfathered lint findings: `rule path max-count` (see DESIGN.md §4.12).\n\
             # Budgets only ratchet down: fix new sites, then run\n\
             #   cargo xtask lint --update-allowlist\n\
             # to commit a burndown. Taxonomy, lock-order, and loom-coverage findings\n\
             # are never allowlistable.\n",
        );
        for ((rule, file), count) in counts {
            let _ = writeln!(out, "{rule} {file} {count}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: Rule, file: &str, line: usize) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line,
            excerpt: "x".into(),
            message: "m".into(),
        }
    }

    #[test]
    fn parse_rejects_bad_lines_and_taxonomy() {
        assert!(Allowlist::parse("# only comments\n").is_ok());
        assert!(Allowlist::parse("panic-site a.rs 3\n").is_ok());
        assert!(Allowlist::parse("panic-site a.rs\n").is_err());
        assert!(Allowlist::parse("no-such-rule a.rs 3\n").is_err());
        assert!(Allowlist::parse("taxonomy a.rs 1\n").is_err());
    }

    #[test]
    fn over_budget_and_unlisted_files_violate() {
        let list = Allowlist::parse("panic-site a.rs 1\n").unwrap();
        let findings = vec![
            f(Rule::PanicSite, "a.rs", 1),
            f(Rule::PanicSite, "a.rs", 2),
            f(Rule::PanicSite, "b.rs", 3),
        ];
        let v = list.check(&findings);
        assert_eq!(v.len(), 2);
        assert!(v
            .iter()
            .any(|v| v.file == "a.rs" && v.actual == 2 && v.allowed == 1));
        assert!(v.iter().any(|v| v.file == "b.rs" && v.allowed == 0));
    }

    #[test]
    fn at_budget_passes_and_under_budget_is_stale() {
        let list = Allowlist::parse("panic-site a.rs 2\n").unwrap();
        let at = vec![f(Rule::PanicSite, "a.rs", 1), f(Rule::PanicSite, "a.rs", 9)];
        assert!(list.check(&at).is_empty());
        let under = vec![f(Rule::PanicSite, "a.rs", 1)];
        let v = list.check(&under);
        assert_eq!(v.len(), 1);
        assert!(v[0].actual < v[0].allowed);
    }

    #[test]
    fn render_round_trips() {
        let findings = vec![
            f(Rule::PanicSite, "a.rs", 1),
            f(Rule::PanicSite, "a.rs", 2),
            f(Rule::NanCmp, "b.rs", 3),
            f(Rule::Taxonomy, "c.rs", 4), // never written out
        ];
        let text = Allowlist::render_for(&findings);
        assert!(text.contains("panic-site a.rs 2"));
        assert!(text.contains("nan-cmp b.rs 1"));
        assert!(!text.contains("taxonomy"));
        let parsed = Allowlist::parse(&text).unwrap();
        // Everything allowlistable is budgeted; only the taxonomy finding
        // still violates (it can never be grandfathered).
        let v = parsed.check(&findings);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Taxonomy);
    }
}
