//! Source preprocessing for the lint rules.
//!
//! The rules are disciplined token/line scanners, not a full parser; to keep
//! them honest this module first *masks* comments and string/char literals
//! (replacing their contents with spaces, preserving offsets and newlines)
//! so `"panic!"` inside a string or a commented-out `unwrap()` never trips a
//! rule, and then marks `#[cfg(test)]` item ranges so rules can scope
//! themselves to library code.

/// A preprocessed source file: original text, masked text (same length,
/// comments and literal contents blanked), and per-line test-region flags.
#[derive(Debug)]
pub struct Source {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// The untouched file text (used for excerpts).
    pub text: String,
    /// Masked text: identical offsets, with comment bodies and string/char
    /// literal contents replaced by spaces.
    pub masked: String,
    /// `in_test[i]` is true when line `i` (0-based) lies inside a
    /// `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
}

impl Source {
    /// Preprocesses one file.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let masked = mask(&text);
        let in_test = test_lines(&masked);
        Self {
            path: path.into(),
            text,
            masked,
            in_test,
        }
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        self.text[..offset].bytes().filter(|&b| b == b'\n').count() + 1
    }

    /// Whether the byte offset lies inside a `#[cfg(test)]` region.
    pub fn offset_in_test(&self, offset: usize) -> bool {
        let line = self.line_of(offset) - 1;
        self.in_test.get(line).copied().unwrap_or(false)
    }

    /// The trimmed source line containing a byte offset (for excerpts).
    pub fn excerpt(&self, offset: usize) -> String {
        let line = self.line_of(offset);
        self.text
            .lines()
            .nth(line - 1)
            .unwrap_or("")
            .trim()
            .to_string()
    }

    /// Whether the token at `offset` carries an adjacent justification
    /// comment containing `tag` (e.g. `SAFETY:`, `ORDERING:`): either on
    /// the token's own line, or in the contiguous run of `//` comment
    /// lines immediately above it (attribute lines like `#[inline]` may
    /// sit between the comment and the item).
    pub fn comment_tagged(&self, offset: usize, tag: &str) -> bool {
        let lines: Vec<&str> = self.text.lines().collect();
        let idx = self.line_of(offset) - 1;
        if lines.get(idx).is_some_and(|l| l.contains(tag)) {
            return true;
        }
        let mut k = idx;
        while k > 0 {
            k -= 1;
            let t = lines[k].trim_start();
            if t.starts_with("//") {
                if t.contains(tag) {
                    return true;
                }
            } else if t.starts_with("#[") || t.starts_with("#!") {
                // Attributes between the comment and the item are fine.
            } else {
                break;
            }
        }
        false
    }
}

/// Masks comments and string/char literals with spaces. Newlines inside
/// masked regions are preserved so line numbers stay valid.
pub fn mask(text: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let bytes = text.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let next = |k: usize| bytes.get(i + k).copied();
        match state {
            State::Code => {
                if b == b'/' && next(1) == Some(b'/') {
                    state = State::LineComment;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && next(1) == Some(b'*') {
                    state = State::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    state = State::Str;
                    out.push(b'"');
                    i += 1;
                } else if b == b'r' && matches!(next(1), Some(b'"') | Some(b'#')) {
                    // Raw string r"..." / r#"..."# (only when actually a
                    // string start: r followed by hashes then a quote).
                    let mut hashes = 0;
                    while next(1 + hashes) == Some(b'#') {
                        hashes += 1;
                    }
                    if next(1 + hashes) == Some(b'"') {
                        state = State::RawStr(hashes);
                        out.extend(std::iter::repeat_n(b' ', 2 + hashes));
                        i += 2 + hashes;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                } else if b == b'\'' {
                    // Char literal vs lifetime: a literal closes with a
                    // quote after one (possibly escaped, possibly
                    // multi-byte) character. Multi-byte literals ('é',
                    // '→') must be recognized too — classifying them as
                    // lifetimes would leave their contents unmasked.
                    let is_char = match next(1) {
                        Some(b'\\') => true,
                        Some(c) => next(1 + utf8_len(c)) == Some(b'\''),
                        None => false,
                    };
                    if is_char {
                        state = State::Char;
                        out.push(b'\'');
                        i += 1;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            State::LineComment => {
                if b == b'\n' {
                    state = State::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && next(1) == Some(b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && next(1) == Some(b'*') {
                    state = State::BlockComment(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' {
                    // Preserve a line-continuation newline in the mask.
                    out.push(b' ');
                    out.push(if next(1) == Some(b'\n') { b'\n' } else { b' ' });
                    i += 2;
                } else if b == b'"' {
                    state = State::Code;
                    out.push(b'"');
                    i += 1;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                let mut closes = b == b'"';
                for k in 0..hashes {
                    closes = closes && next(1 + k) == Some(b'#');
                }
                if closes {
                    state = State::Code;
                    out.extend(std::iter::repeat_n(b' ', 1 + hashes));
                    i += 1 + hashes;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Char => {
                if b == b'\\' {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'\'' {
                    state = State::Code;
                    out.push(b'\'');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    out.truncate(bytes.len());
    // Masking only ever replaces bytes 1:1 (multi-byte steps push equal
    // lengths), so this cannot fail; fall back to lossless just in case.
    String::from_utf8(out).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

/// Byte length of the UTF-8 character starting with `first` (stray
/// continuation bytes count as 1 so the scanner never stalls).
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0xbf => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        0xf0..=0xff => 4,
    }
}

/// Marks the (0-based) lines covered by `#[cfg(test)]` items: from each
/// attribute through the end of the item's brace block (or its terminating
/// semicolon for block-less items).
fn test_lines(masked: &str) -> Vec<bool> {
    let n_lines = masked.lines().count();
    let mut flags = vec![false; n_lines];
    let bytes = masked.as_bytes();
    let mut search = 0;
    while let Some(rel) = masked[search..].find("#[cfg(test)]") {
        let start = search + rel;
        // Find the item body: the first `{` after the attribute opens the
        // block; a `;` first means a block-less item (e.g. `mod tests;`).
        let after = start + "#[cfg(test)]".len();
        let mut end = masked.len();
        let mut depth = 0_usize;
        let mut entered = false;
        for (k, &b) in bytes.iter().enumerate().skip(after) {
            match b {
                b'{' => {
                    depth += 1;
                    entered = true;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if entered && depth == 0 {
                        end = k + 1;
                        break;
                    }
                }
                b';' if !entered => {
                    end = k + 1;
                    break;
                }
                _ => {}
            }
        }
        let first_line = masked[..start].bytes().filter(|&b| b == b'\n').count();
        let last_line = masked[..end].bytes().filter(|&b| b == b'\n').count();
        for f in flags
            .iter_mut()
            .take((last_line + 1).min(n_lines))
            .skip(first_line)
        {
            *f = true;
        }
        search = end.max(after);
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let a = \"panic!()\"; // unwrap()\nlet b = 1; /* expect( */";
        let m = mask(src);
        assert!(!m.contains("panic!"));
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("expect"));
        assert_eq!(m.len(), src.len());
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn masks_raw_strings_and_chars_keeps_lifetimes() {
        let src = "let s = r#\"unwrap()\"#; let c = '\\''; fn f<'env>(x: &'env str) {}";
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("'env"));
    }

    #[test]
    fn flags_cfg_test_mod_lines() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn more() {}\n";
        let s = Source::new("x.rs", src);
        assert_eq!(s.in_test, vec![false, true, true, true, true, false]);
        assert!(!s.offset_in_test(0));
        assert!(s.offset_in_test(src.find("fn t").unwrap()));
    }

    #[test]
    fn masks_multibyte_char_literals() {
        // '→' is 3 bytes; misreading it as a lifetime would leave the
        // literal (and everything the confused state machine swallows
        // after it) unmasked.
        let src = "let c = '→'; let d = 'é'; x.unwrap();";
        let m = mask(src);
        assert!(!m.contains('→'));
        assert!(!m.contains('é'));
        assert!(m.contains("unwrap"), "code after the literal stays live");
        assert_eq!(m.len(), src.len());
    }

    #[test]
    fn masks_byte_strings_and_raw_byte_strings() {
        let src = "let a = b\"unwrap()\"; let b = br#\"expect(\"x\")\"#; y.unwrap();";
        let m = mask(src);
        assert!(!m.contains("unwrap()\""));
        assert!(!m.contains("expect"));
        assert_eq!(
            m.matches("unwrap").count(),
            1,
            "only the live call survives"
        );
        assert_eq!(m.len(), src.len());
    }

    #[test]
    fn masks_raw_strings_with_embedded_quotes() {
        let src = "let s = r#\"a \"quoted\" unwrap()\"#; z.expect(\"live\");";
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(
            m.contains(".expect("),
            "code after the raw string stays live"
        );
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn masks_nested_block_comments() {
        let src = "/* outer /* unwrap() */ still comment */ x.expect(\"e\");\nv[0];";
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("still comment"));
        assert!(m.contains(".expect("));
        assert!(m.contains("v[0]"), "code on the next line survives");
    }

    #[test]
    fn unterminated_block_comment_masks_to_eof() {
        let src = "fn f() {}\n/* /* nested but never closed\nx.unwrap();";
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn char_lifetime_disambiguation_corners() {
        let src = "fn f<'a>(x: &'a str, l: &'static str) { let a = 'a'; \
                   let q = '\\''; let b = b'x'; let u = '\\u{7f}'; }";
        let m = mask(src);
        assert!(m.contains("'a>"), "generic lifetime survives");
        assert!(m.contains("'static"), "long lifetime survives");
        assert!(!m.contains("= 'a'"), "char literal contents masked");
        assert!(!m.contains("u{7f}"), "escape sequence masked");
        assert_eq!(m.len(), src.len());
    }

    #[test]
    fn line_and_excerpt() {
        let s = Source::new("x.rs", "a\nbb\nccc\n");
        let off = s.text.find("ccc").unwrap();
        assert_eq!(s.line_of(off), 3);
        assert_eq!(s.excerpt(off), "ccc");
    }
}
