//! The machine-readable finding type shared by every lint rule.

use std::fmt;

/// The rule families of `cargo xtask lint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// NaN-unsafe float comparison: `partial_cmp(..).unwrap()/expect(..)`
    /// on `f64` instead of `f64::total_cmp` or an explicit NaN policy.
    NanCmp,
    /// Panic surface in library code: `unwrap`/`expect`/`panic!`-family
    /// macros and direct indexing in non-test code of the core crates.
    PanicSite,
    /// Taxonomy drift: a Table-1 registry row missing its catalog `build`
    /// entry, the `engine_spec_props` coverage list, or DESIGN.md.
    Taxonomy,
    /// Deep copies of series storage (`.to_vec()`, series `.clone()`) in
    /// the zero-copy hot paths.
    ZeroCopy,
    /// An `unsafe` block/fn/impl in library code without a preceding
    /// `// SAFETY:` comment stating the invariant that makes it sound.
    UnsafeAudit,
    /// An atomic operation using `Ordering::SeqCst` without an adjacent
    /// `// ORDERING:` comment justifying why Acquire/Release is not enough.
    AtomicOrdering,
    /// A cycle in the whole-repo lock-acquisition graph: two mutexes taken
    /// in opposite nesting orders somewhere (potential ABBA deadlock).
    LockOrder,
    /// A library file using atomics or `UnsafeCell` that is not mapped to a
    /// named loom model test (unmodeled lock-free code).
    LoomCoverage,
}

impl Rule {
    /// Stable machine-readable identifier.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NanCmp => "nan-cmp",
            Rule::PanicSite => "panic-site",
            Rule::Taxonomy => "taxonomy",
            Rule::ZeroCopy => "zero-copy",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::LockOrder => "lock-order",
            Rule::LoomCoverage => "loom-coverage",
        }
    }

    /// Parses a rule identifier (as written in the allowlist).
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "nan-cmp" => Some(Rule::NanCmp),
            "panic-site" => Some(Rule::PanicSite),
            "taxonomy" => Some(Rule::Taxonomy),
            "zero-copy" => Some(Rule::ZeroCopy),
            "unsafe-audit" => Some(Rule::UnsafeAudit),
            "atomic-ordering" => Some(Rule::AtomicOrdering),
            "lock-order" => Some(Rule::LockOrder),
            "loom-coverage" => Some(Rule::LoomCoverage),
            _ => None,
        }
    }

    /// Whether findings of this rule may be grandfathered in the allowlist.
    /// Taxonomy drift, lock-order cycles, and loom-coverage gaps are always
    /// hard failures: the paper's Table 1 and the code must never disagree,
    /// a potential ABBA deadlock must never land old or new, and lock-free
    /// code must never exist unmodeled.
    pub fn allowlistable(self) -> bool {
        !matches!(self, Rule::Taxonomy | Rule::LockOrder | Rule::LoomCoverage)
    }

    /// All rules, in report order.
    pub const ALL: [Rule; 8] = [
        Rule::NanCmp,
        Rule::PanicSite,
        Rule::Taxonomy,
        Rule::ZeroCopy,
        Rule::UnsafeAudit,
        Rule::AtomicOrdering,
        Rule::LockOrder,
        Rule::LoomCoverage,
    ];
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One lint finding, anchored to a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative path (`/`-separated).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The trimmed source line.
    pub excerpt: String,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl Finding {
    /// Renders the finding as one human-readable report line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}\n    {}",
            self.file, self.line, self.rule, self.message, self.excerpt
        )
    }

    /// Renders the finding as a JSON object (hand-rolled: the workspace is
    /// offline and carries no serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"excerpt\":\"{}\"}}",
            self.rule,
            json_escape(&self.file),
            self.line,
            json_escape(&self.message),
            json_escape(&self.excerpt)
        )
    }
}

/// Escapes a string for embedding in a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::parse(r.id()), Some(r));
        }
        assert_eq!(Rule::parse("unknown"), None);
    }

    #[test]
    fn taxonomy_is_never_allowlistable() {
        assert!(!Rule::Taxonomy.allowlistable());
        assert!(Rule::PanicSite.allowlistable());
    }

    #[test]
    fn concurrency_gate_allowlistability() {
        // Count-ratchet families: grandfathered sites may exist while a
        // burndown is underway.
        assert!(Rule::UnsafeAudit.allowlistable());
        assert!(Rule::AtomicOrdering.allowlistable());
        // Hard gates: an ABBA cycle or an unmodeled atomics file must fail
        // the build regardless of any allowlist entry.
        assert!(!Rule::LockOrder.allowlistable());
        assert!(!Rule::LoomCoverage.allowlistable());
    }

    #[test]
    fn json_rendering_escapes() {
        let f = Finding {
            rule: Rule::NanCmp,
            file: "a.rs".into(),
            line: 3,
            excerpt: "x.partial_cmp(\"y\")".into(),
            message: "msg".into(),
        };
        let j = f.to_json();
        assert!(j.contains("\\\"y\\\""));
        assert!(j.contains("\"line\":3"));
        assert_eq!(json_escape("a\nb"), "a\\nb");
    }
}
