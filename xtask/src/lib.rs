//! `cargo xtask lint` — repo-specific static analysis.
//!
//! Eight rule families keep the reproduction faithful and production-safe
//! (DESIGN.md §4.12, §4.17): `nan-cmp` (no force-unwrapped `partial_cmp`),
//! `panic-site` (a shrinking panic surface in library code), `taxonomy`
//! (Table 1 ↔ registry ↔ engine catalog ↔ tests ↔ docs cross-check),
//! `zero-copy` (no deep series copies on the data-plane hot paths),
//! `unsafe-audit` (every `unsafe` carries a `// SAFETY:` invariant),
//! `atomic-ordering` (an inventory of every atomic op; `SeqCst` needs an
//! `// ORDERING:` justification), `lock-order` (whole-repo lock graph,
//! ABBA cycles are hard failures), and `loom-coverage` (every file owning
//! atomics/`UnsafeCell` maps to a named loom model test).
//! Findings are machine-readable ([`Finding`]); grandfathered sites live in
//! the committed count-ratchet allowlist `xtask/lint.allow`
//! ([`Allowlist`]).

pub mod allowlist;
pub mod findings;
pub mod rules;
pub mod scan;

pub use allowlist::{Allowlist, Violation};
pub use findings::{Finding, Rule};
pub use scan::Source;

use std::fs;
use std::path::{Path, PathBuf};

use rules::atomic::AtomicSite;
use rules::lockorder::LockEdge;
use rules::taxonomy::{TaxonomyInputs, CATALOG, COVERAGE, DESIGN, REGISTRY};

/// Where the allowlist lives, workspace-relative.
pub const ALLOWLIST_PATH: &str = "xtask/lint.allow";

/// The crates whose library code is under the `panic-site` rule.
const PANIC_SCOPE: [&str; 15] = [
    "crates/detect/src/",
    "crates/core/src/",
    "crates/hierarchy/src/",
    "crates/timeseries/src/",
    "crates/stream/src/",
    "crates/store/src/",
    "crates/service/src/",
    "crates/wire/src/",
    "crates/server/src/",
    "crates/history/src/",
    "crates/olap/src/",
    "crates/eval/src/",
    "crates/synth/src/",
    "crates/corpus/src/",
    "crates/adapt/src/",
];

/// The crates under the `nan-cmp` rule (library *and* test code).
const NAN_SCOPE: [&str; 13] = [
    "crates/detect/",
    "crates/core/",
    "crates/stream/",
    "crates/store/",
    "crates/service/",
    "crates/wire/",
    "crates/server/",
    "crates/history/",
    "crates/olap/",
    "crates/eval/",
    "crates/synth/",
    "crates/corpus/",
    "crates/adapt/",
];

/// The result of a lint run.
#[derive(Debug)]
pub struct LintOutcome {
    /// Every raw finding, allowlisted or not.
    pub findings: Vec<Finding>,
    /// The atomic-operation inventory (every load/store/RMW/fence with
    /// the orderings it names), for the JSON report.
    pub atomics: Vec<AtomicSite>,
    /// Ratchet violations after applying the allowlist.
    pub violations: Vec<Violation>,
}

impl LintOutcome {
    /// Whether the tree is clean under the committed allowlist.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Collects every `.rs` file under `crates/` and `src/`, workspace-relative
/// and `/`-separated, in deterministic order. `target/`, `shims/` (offline
/// dependency stand-ins), and `xtask/` (whose fixtures are deliberately
/// bad) are out of scope.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Raw scan output: findings plus the atomic-op inventory.
#[derive(Debug)]
pub struct Report {
    /// Every raw finding, allowlisted or not.
    pub findings: Vec<Finding>,
    /// Every atomic op in non-test library code, with its orderings.
    pub atomics: Vec<AtomicSite>,
}

/// Whether a path is library/binary source (the concurrency rules' scope:
/// everything under a `src/` directory, but not integration tests or
/// benches, whose concurrency is the test harness's business).
fn in_src(relpath: &str) -> bool {
    relpath.starts_with("src/") || relpath.contains("/src/")
}

/// Runs every rule over the workspace at `root`.
///
/// # Errors
/// I/O errors reading sources (a cross-checked file that is *missing* is a
/// taxonomy finding, not an error).
pub fn collect_report(root: &Path) -> std::io::Result<Report> {
    let mut findings = Vec::new();
    let mut atomics = Vec::new();
    let mut lock_edges: Vec<LockEdge> = Vec::new();
    let mut loom_triggers: Vec<(String, usize)> = Vec::new();
    for path in workspace_sources(root)? {
        let relpath = rel(root, &path);
        let text = fs::read_to_string(&path)?;
        let src = Source::new(relpath.clone(), text);
        if NAN_SCOPE.iter().any(|p| relpath.starts_with(p)) {
            findings.extend(rules::nan::check(&src));
        }
        if PANIC_SCOPE.iter().any(|p| relpath.starts_with(p)) {
            findings.extend(rules::panic::check(&src));
        }
        if rules::zerocopy::HOT_PATHS.contains(&relpath.as_str()) {
            findings.extend(rules::zerocopy::check(&src));
        }
        if in_src(&relpath) {
            findings.extend(rules::unsafe_audit::check(&src));
            let (sites, seqcst) = rules::atomic::check(&src);
            atomics.extend(sites);
            findings.extend(seqcst);
            lock_edges.extend(rules::lockorder::edges(&src));
            // Binaries (bench drivers, the CLI) are not lib code: their
            // atomics never cross a thread boundary an API user can hit.
            if !relpath.contains("/bin/") {
                if let Some(line) = rules::loom_cov::trigger_line(&src) {
                    loom_triggers.push((relpath.clone(), line));
                }
            }
        }
    }
    findings.extend(rules::lockorder::check(&lock_edges));
    let exists = |p: &str| root.join(p).is_file();
    let read = |p: &str| fs::read_to_string(root.join(p)).unwrap_or_default();
    findings.extend(rules::loom_cov::check(&loom_triggers, &exists, &read));
    let (registry, catalog, coverage, design) =
        (read(REGISTRY), read(CATALOG), read(COVERAGE), read(DESIGN));
    findings.extend(rules::taxonomy::check(&TaxonomyInputs {
        registry: &registry,
        catalog: &catalog,
        coverage: &coverage,
        design: &design,
    }));
    findings.sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
    atomics.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(Report { findings, atomics })
}

/// Runs every rule over the workspace at `root`, returning raw findings.
///
/// # Errors
/// As [`collect_report`].
pub fn collect_findings(root: &Path) -> std::io::Result<Vec<Finding>> {
    collect_report(root).map(|r| r.findings)
}

/// Runs the lint against the committed allowlist.
///
/// # Errors
/// I/O failures, or a malformed allowlist (message describes the line).
pub fn run_lint(root: &Path) -> Result<LintOutcome, String> {
    let report = collect_report(root).map_err(|e| format!("scanning sources: {e}"))?;
    let allow_text = fs::read_to_string(root.join(ALLOWLIST_PATH)).unwrap_or_default();
    let allowlist = Allowlist::parse(&allow_text).map_err(|e| format!("{ALLOWLIST_PATH}: {e}"))?;
    let violations = allowlist.check(&report.findings);
    Ok(LintOutcome {
        findings: report.findings,
        atomics: report.atomics,
        violations,
    })
}

/// Rewrites the allowlist to exactly match the current findings (the
/// ratchet update after a burndown).
///
/// # Errors
/// I/O failures while scanning or writing.
pub fn update_allowlist(root: &Path) -> Result<usize, String> {
    let findings = collect_findings(root).map_err(|e| format!("scanning sources: {e}"))?;
    let text = Allowlist::render_for(&findings);
    fs::write(root.join(ALLOWLIST_PATH), text)
        .map_err(|e| format!("writing {ALLOWLIST_PATH}: {e}"))?;
    Ok(findings.iter().filter(|f| f.rule.allowlistable()).count())
}

/// The workspace root: the parent of this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}
