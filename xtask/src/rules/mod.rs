//! The lint rule families (one module per rule; see DESIGN.md §4.12 for
//! the catalog and how to add a rule).

pub mod nan;
pub mod panic;
pub mod taxonomy;
pub mod zerocopy;
