//! The lint rule families (one module per rule; see DESIGN.md §4.12 for
//! the catalog and how to add a rule, §4.17 for the concurrency families).

pub mod atomic;
pub mod lockorder;
pub mod loom_cov;
pub mod nan;
pub mod panic;
pub mod taxonomy;
pub mod unsafe_audit;
pub mod zerocopy;
