//! Rule `taxonomy`: the paper's Table 1 and the code must not drift apart.
//!
//! The Table-1 registry (`crates/detect/src/registry.rs`) is the single
//! source of truth for the 21 techniques; this rule statically cross-checks
//! that each row (and each supplemental catalog entry):
//!
//! 1. declares a `build:` constructor whose `fn` exists in the same file
//!    (the engine catalog entry),
//! 2. is named in the static coverage list of
//!    `crates/detect/tests/engine_spec_props.rs` (so the property suite
//!    demonstrably exercises it), and
//! 3. is named in `DESIGN.md` (so the documented taxonomy matches).
//!
//! It also pins the registry's cardinality at the paper's 21 rows. Findings
//! of this rule are never allowlistable.

use crate::findings::{Finding, Rule};

/// Paths of the four cross-checked files, workspace-relative.
pub const REGISTRY: &str = "crates/detect/src/registry.rs";
/// The supplemental engine catalog.
pub const CATALOG: &str = "crates/detect/src/engine/catalog.rs";
/// The property-test coverage list.
pub const COVERAGE: &str = "crates/detect/tests/engine_spec_props.rs";
/// The design document naming every technique.
pub const DESIGN: &str = "DESIGN.md";

/// The file contents the cross-check runs over (injected so fixtures can
/// drive the rule in unit tests).
#[derive(Debug)]
pub struct TaxonomyInputs<'a> {
    /// `registry.rs` text.
    pub registry: &'a str,
    /// `catalog.rs` text.
    pub catalog: &'a str,
    /// `engine_spec_props.rs` text.
    pub coverage: &'a str,
    /// `DESIGN.md` text.
    pub design: &'a str,
}

/// One parsed `RegistryEntry { .. key: "..", build: .., .. }` literal.
#[derive(Debug)]
struct EntryRef {
    key: String,
    build: Option<String>,
    line: usize,
}

/// Extracts `key: "..."` / `build: ident` pairs from registry-entry
/// literals, with the key's 1-based line.
fn entries(text: &str) -> Vec<EntryRef> {
    let mut out = Vec::new();
    let mut search = 0;
    while let Some(rel) = text[search..].find("key:") {
        let at = search + rel;
        search = at + 4;
        let rest = &text[at + 4..];
        // Only `key: "literal"` counts — skip the struct field declaration
        // (`pub key: &'static str`) and other non-literal uses.
        let value_at = rest.len() - rest.trim_start().len();
        if !rest[value_at..].starts_with('"') {
            continue;
        }
        let q1 = value_at;
        let Some(q2) = rest[q1 + 1..].find('"') else {
            continue;
        };
        let key = rest[q1 + 1..q1 + 1 + q2].to_string();
        // The `build:` field of the same entry literal sits within the next
        // few fields; the entry ends at the closing `}` / next `key:`.
        let window_end = rest.find("key:").unwrap_or(rest.len());
        let build = rest[..window_end].find("build:").map(|b| {
            rest[b + 6..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect::<String>()
        });
        out.push(EntryRef {
            key,
            build,
            line: text[..at].bytes().filter(|&b| b == b'\n').count() + 1,
        });
    }
    out
}

fn finding(file: &str, line: usize, excerpt: &str, message: String) -> Finding {
    Finding {
        rule: Rule::Taxonomy,
        file: file.to_string(),
        line,
        excerpt: excerpt.to_string(),
        message,
    }
}

/// Runs the cross-check.
pub fn check(inputs: &TaxonomyInputs<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    let registry_entries = entries(inputs.registry);
    let catalog_entries = entries(inputs.catalog);

    if registry_entries.len() != 21 {
        out.push(finding(
            REGISTRY,
            1,
            "",
            format!(
                "Table-1 registry must hold exactly the paper's 21 rows; found {}",
                registry_entries.len()
            ),
        ));
    }

    for (file, text, list) in [
        (REGISTRY, inputs.registry, &registry_entries),
        (CATALOG, inputs.catalog, &catalog_entries),
    ] {
        for e in list.iter() {
            let excerpt = format!("key: \"{}\"", e.key);
            match &e.build {
                None => out.push(finding(
                    file,
                    e.line,
                    &excerpt,
                    format!("registry entry `{}` declares no build: constructor", e.key),
                )),
                Some(b) => {
                    if !text.contains(&format!("fn {b}")) {
                        out.push(finding(
                            file,
                            e.line,
                            &excerpt,
                            format!(
                                "entry `{}` references build fn `{b}` which is not defined \
                                 in {file}",
                                e.key
                            ),
                        ));
                    }
                }
            }
            let quoted = format!("\"{}\"", e.key);
            if !inputs.coverage.contains(&quoted) {
                out.push(finding(
                    file,
                    e.line,
                    &excerpt,
                    format!(
                        "key `{}` is missing from the COVERED_KEYS list in {COVERAGE}",
                        e.key
                    ),
                ));
            }
            if !inputs.design.contains(&format!("`{}`", e.key)) {
                out.push(finding(
                    file,
                    e.line,
                    &excerpt,
                    format!(
                        "key `{}` is not named in {DESIGN} (registry key index)",
                        e.key
                    ),
                ));
            }
        }
    }

    // The coverage list must not name keys that no longer exist (stale
    // coverage reads as tested when nothing runs).
    if let Some(at) = inputs.coverage.find("COVERED_KEYS") {
        let live: Vec<&str> = registry_entries
            .iter()
            .chain(catalog_entries.iter())
            .map(|e| e.key.as_str())
            .collect();
        let tail = &inputs.coverage[at..];
        // Skip past the `=` so the `;` inside a `[&str; N]` type annotation
        // doesn't truncate the initializer.
        let body = &tail[tail.find('=').map(|e| e + 1).unwrap_or(0)..];
        let end = body.find(';').unwrap_or(body.len());
        let mut rest = &body[..end];
        while let Some(q1) = rest.find('"') {
            let Some(q2) = rest[q1 + 1..].find('"') else {
                break;
            };
            let name = &rest[q1 + 1..q1 + 1 + q2];
            if !live.contains(&name) {
                out.push(finding(
                    COVERAGE,
                    inputs.coverage[..at]
                        .bytes()
                        .filter(|&b| b == b'\n')
                        .count()
                        + 1,
                    "COVERED_KEYS",
                    format!("coverage list names `{name}`, which no registry/catalog entry has"),
                ));
            }
            rest = &rest[q1 + 1 + q2 + 1..];
        }
    } else {
        out.push(finding(
            COVERAGE,
            1,
            "",
            format!("{COVERAGE} carries no COVERED_KEYS coverage list"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_REGISTRY: &str = r#"
        fn build_ar(s: &AlgoSpec) -> Result<BoxedScorer> { todo() }
        pub fn registry() -> Vec<RegistryEntry> {
            vec![RegistryEntry { key: "ar", params: &["order"], build: build_ar }]
        }
    "#;
    const GOOD_COVERAGE: &str = "const COVERED_KEYS: [&str; 1] = [\"ar\"];";
    const GOOD_DESIGN: &str = "| `ar` | Autoregressive Model |";

    fn run(registry: &str, catalog: &str, coverage: &str, design: &str) -> Vec<Finding> {
        check(&TaxonomyInputs {
            registry,
            catalog,
            coverage,
            design,
        })
    }

    #[test]
    fn consistent_inputs_pass_except_cardinality() {
        let f = run(GOOD_REGISTRY, "", GOOD_COVERAGE, GOOD_DESIGN);
        // The only complaint is the 21-row pin (the fixture has 1 row).
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("21 rows"));
    }

    #[test]
    fn missing_build_fn_is_flagged() {
        let reg = r#"vec![RegistryEntry { key: "ar", build: build_missing }]"#;
        let f = run(reg, "", GOOD_COVERAGE, GOOD_DESIGN);
        assert!(f
            .iter()
            .any(|f| f.message.contains("build fn `build_missing`")));
    }

    #[test]
    fn key_absent_from_coverage_or_design_is_flagged() {
        let f = run(
            GOOD_REGISTRY,
            "",
            "const COVERED_KEYS: [&str; 0] = [];",
            GOOD_DESIGN,
        );
        assert!(f.iter().any(|f| f.message.contains("COVERED_KEYS")));
        let f = run(GOOD_REGISTRY, "", GOOD_COVERAGE, "no keys here");
        assert!(f.iter().any(|f| f.message.contains("DESIGN.md")));
    }

    #[test]
    fn stale_coverage_key_is_flagged() {
        let cov = "const COVERED_KEYS: [&str; 2] = [\"ar\", \"ghost\"];";
        let f = run(GOOD_REGISTRY, "", cov, GOOD_DESIGN);
        assert!(f.iter().any(|f| f.message.contains("`ghost`")));
    }

    #[test]
    fn missing_coverage_list_is_flagged() {
        let f = run(GOOD_REGISTRY, "", "", GOOD_DESIGN);
        assert!(f.iter().any(|f| f.message.contains("no COVERED_KEYS")));
    }
}
