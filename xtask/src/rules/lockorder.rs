//! Rule `lock-order`: a whole-repo lock-acquisition graph with an ABBA
//! cycle gate.
//!
//! The loom shim catches lock-order inversions *dynamically*, but only on
//! the code paths a model exercises. This rule makes the guarantee static
//! and whole-repo: every file is scanned for nested `.lock()` scopes (and
//! the server's `lock(..)` helper); each "lock B acquired while lock A is
//! held" observation becomes a directed edge A → B; and any cycle in the
//! union graph — two mutexes ever taken in opposite orders — fails the
//! lint. Findings are never allowlistable: a potential deadlock must not
//! land, old or new.
//!
//! Node naming is heuristic but deliberate: a receiver's *last field or
//! variable identifier* (index/call groups stripped) names the mutex,
//! keyed per-crate so `state.queue.lock()` in two files of one crate is
//! the same node, while `self.lock()` helper methods are keyed per-file
//! (two structs' internal helpers must not alias). Guards bound by a
//! simple `let` are held to the end of their brace scope (or an explicit
//! `drop(guard)`); guard temporaries in a longer call chain are held to
//! the end of the statement. Same-name nesting is skipped (lock arrays
//! like `deques[i]`/`deques[j]` alias one node; loom's dynamic checker
//! owns that axis).

use std::collections::{BTreeMap, BTreeSet};

use crate::findings::{Finding, Rule};
use crate::scan::Source;

/// One observed nested acquisition: `to` acquired while `from` was held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// The lock already held.
    pub from: String,
    /// The lock acquired under it.
    pub to: String,
    /// File of the inner acquisition.
    pub file: String,
    /// 1-based line of the inner acquisition.
    pub line: usize,
}

#[derive(Debug)]
struct Held {
    name: String,
    /// Binding variable when scope-held via `let` (released by `drop(v)`).
    var: Option<String>,
    /// Brace depth at acquisition (scope-held guards die when it closes).
    depth: usize,
    /// Scope-held (`let g = m.lock()...;`) vs. statement temporary.
    scoped: bool,
}

/// Extracts the lock-acquisition edges of one file.
pub fn edges(src: &Source) -> Vec<LockEdge> {
    let crate_key = crate_of(&src.path);
    let bytes = src.masked.as_bytes();
    let mut held: Vec<Held> = Vec::new();
    let mut out: Vec<LockEdge> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                held.retain(|h| !(h.scoped && h.depth > depth));
            }
            b';' => held.retain(|h| h.scoped),
            b'f' if word_at(bytes, i, "fn") => {
                // A new item body: nothing carries across functions.
                held.clear();
            }
            b'd' if word_at(bytes, i, "drop") => {
                if let Some(var) = single_ident_arg(bytes, i + "drop".len()) {
                    held.retain(|h| h.var.as_deref() != Some(var.as_str()));
                }
            }
            _ => {}
        }
        let acquisition = if src.masked[i..].starts_with(".lock()") {
            receiver(bytes, i).map(|r| (r, i + ".lock()".len()))
        } else if word_at(bytes, i, "lock")
            && bytes.get(i + 4) == Some(&b'(')
            && (i == 0 || bytes[i - 1] != b'.')
        {
            // The server's `lock(&mutex)` poison-tolerant helper: the
            // argument's last identifier names the mutex.
            balanced_close(bytes, i + 5)
                .and_then(|close| last_ident(&bytes[i + 5..close]).map(|r| (r, close + 1)))
        } else {
            None
        };
        if let Some((receiver, after)) = acquisition {
            if !src.offset_in_test(i) {
                let name = if receiver == "self" {
                    format!("self@{}", src.path)
                } else {
                    format!("{crate_key}::{receiver}")
                };
                let line = src.line_of(i);
                for h in &held {
                    if h.name != name {
                        out.push(LockEdge {
                            from: h.name.clone(),
                            to: name.clone(),
                            file: src.path.clone(),
                            line,
                        });
                    }
                }
                let (scoped, var) = binding(src, bytes, i, after);
                held.push(Held {
                    name,
                    var,
                    depth,
                    scoped,
                });
            }
            i = after;
            continue;
        }
        i += 1;
    }
    let mut seen = BTreeSet::new();
    out.retain(|e| seen.insert((e.from.clone(), e.to.clone())));
    out
}

/// `crates/server/src/lib.rs` → `crates/server`; `src/main.rs` → `src`.
fn crate_of(path: &str) -> String {
    let mut it = path.split('/');
    match (it.next(), it.next()) {
        (Some("crates"), Some(c)) => format!("crates/{c}"),
        (Some(top), _) => top.to_string(),
        _ => path.to_string(),
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether `word` starts at `i` on identifier boundaries.
fn word_at(bytes: &[u8], i: usize, word: &str) -> bool {
    bytes[i..].starts_with(word.as_bytes())
        && (i == 0 || !is_ident(bytes[i - 1]))
        && bytes.get(i + word.len()).is_none_or(|&b| !is_ident(b))
}

/// Offset of the `)` closing the group whose contents start at `start`.
fn balanced_close(bytes: &[u8], start: usize) -> Option<usize> {
    let mut depth = 1usize;
    for (k, &b) in bytes.iter().enumerate().skip(start) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// The last identifier in a byte range (e.g. `&shared.queue` → `queue`).
fn last_ident(bytes: &[u8]) -> Option<String> {
    let end = bytes.iter().rposition(|&b| is_ident(b))? + 1;
    let mut start = end;
    while start > 0 && is_ident(bytes[start - 1]) {
        start -= 1;
    }
    Some(String::from_utf8_lossy(&bytes[start..end]).into_owned())
}

/// The receiver segment naming the mutex in `<recv>.lock()`: the last
/// identifier before the dot, with trailing `[..]`/`(..)` groups stripped
/// (`deques[w].lock()` → `deques`, `state.inner().lock()` → `inner`).
fn receiver(bytes: &[u8], dot: usize) -> Option<String> {
    let mut k = dot.checked_sub(1)?;
    loop {
        let (open, close) = match bytes[k] {
            b']' => (b'[', b']'),
            b')' => (b'(', b')'),
            _ => break,
        };
        let mut bal = 0i32;
        loop {
            if bytes[k] == close {
                bal += 1;
            } else if bytes[k] == open {
                bal -= 1;
                if bal <= 0 {
                    break;
                }
            }
            k = k.checked_sub(1)?;
        }
        k = k.checked_sub(1)?;
    }
    if !is_ident(bytes[k]) {
        return None;
    }
    let end = k + 1;
    let mut start = end;
    while start > 0 && is_ident(bytes[start - 1]) {
        start -= 1;
    }
    Some(String::from_utf8_lossy(&bytes[start..end]).into_owned())
}

/// The single identifier inside `drop( … )`, if that is all there is.
fn single_ident_arg(bytes: &[u8], open: usize) -> Option<String> {
    if bytes.get(open) != Some(&b'(') {
        return None;
    }
    let close = balanced_close(bytes, open + 1)?;
    let inner: Vec<u8> = bytes[open + 1..close]
        .iter()
        .copied()
        .filter(|b| !b.is_ascii_whitespace())
        .collect();
    if !inner.is_empty() && inner.iter().all(|&b| is_ident(b)) {
        Some(String::from_utf8_lossy(&inner).into_owned())
    } else {
        None
    }
}

/// Classifies an acquisition at `at` (chain resuming at `after`): scope-
/// held via a simple `let` binding, or a statement temporary.
fn binding(src: &Source, bytes: &[u8], at: usize, after: usize) -> (bool, Option<String>) {
    // Forward: skip guard-preserving suffixes; a `;` right after means the
    // guard IS the bound value, anything else means a longer chain whose
    // temporary dies at the statement end.
    let mut j = after;
    loop {
        let rest = &src.masked[j..];
        let suffix = [".unwrap()", ".expect(", ".unwrap_or_else("]
            .into_iter()
            .find(|s| rest.starts_with(s));
        match suffix {
            Some(s) if s.ends_with('(') => match balanced_close(bytes, j + s.len()) {
                Some(close) => j = close + 1,
                None => return (false, None),
            },
            Some(s) => j += s.len(),
            None => break,
        }
    }
    while bytes.get(j).is_some_and(|b| b.is_ascii_whitespace()) {
        j += 1;
    }
    if bytes.get(j) != Some(&b';') {
        return (false, None);
    }
    // Backward: the statement must start with `let [mut] <ident> =`.
    let stmt_start = src.masked[..at].rfind([';', '{', '}']).map_or(0, |p| p + 1);
    let stmt = src.masked[stmt_start..at].trim_start();
    let Some(rest) = stmt.strip_prefix("let ") else {
        return (false, None);
    };
    let rest = rest.trim_start().trim_start_matches("mut ").trim_start();
    let ident: String = rest
        .bytes()
        .take_while(|&b| is_ident(b))
        .map(char::from)
        .collect();
    let tail = rest[ident.len()..].trim_start();
    if !ident.is_empty() && tail.starts_with('=') {
        (true, Some(ident))
    } else {
        (false, None)
    }
}

/// Detects cycles in the union graph; one finding per back edge.
pub fn check(all: &[LockEdge]) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for e in all {
        adj.entry(&e.from).or_default().push(e);
        nodes.insert(&e.from);
        nodes.insert(&e.to);
    }
    // Iterative DFS with tri-color marking; a back edge to a gray node
    // closes a cycle, reported at the inner acquisition that closes it.
    let mut color: BTreeMap<&str, u8> = BTreeMap::new(); // 0 white 1 gray 2 black
    let mut findings = Vec::new();
    for &start in &nodes {
        if color.get(start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        color.insert(start, 1);
        while let Some(&(node, idx)) = stack.last() {
            let out = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if let Some(edge) = out.get(idx) {
                if let Some(top) = stack.last_mut() {
                    top.1 += 1;
                }
                match color.get(edge.to.as_str()).copied().unwrap_or(0) {
                    0 => {
                        color.insert(edge.to.as_str(), 1);
                        stack.push((edge.to.as_str(), 0));
                        path.push(edge.to.as_str());
                    }
                    1 => {
                        let from = path
                            .iter()
                            .position(|&n| n == edge.to)
                            .unwrap_or(path.len() - 1);
                        let mut cycle: Vec<&str> = path[from..].to_vec();
                        cycle.push(edge.to.as_str());
                        findings.push(Finding {
                            rule: Rule::LockOrder,
                            file: edge.file.clone(),
                            line: edge.line,
                            excerpt: format!("cycle: {}", cycle.join(" -> ")),
                            message: "lock-order cycle (potential ABBA deadlock); acquire \
                                      these mutexes in one global order"
                                .to_string(),
                        });
                    }
                    _ => {}
                }
            } else {
                color.insert(node, 2);
                stack.pop();
                path.pop();
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges_of(text: &str) -> Vec<LockEdge> {
        edges(&Source::new("crates/x/src/f.rs", text))
    }

    #[test]
    fn nested_let_guards_make_an_edge() {
        let e = edges_of(
            "fn f(a: &M, b: &M) {\n\
             let ga = a.lock().unwrap();\n\
             let gb = b.lock().unwrap();\n\
             }",
        );
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].from, "crates/x::a");
        assert_eq!(e[0].to, "crates/x::b");
        assert_eq!(e[0].line, 3);
    }

    #[test]
    fn sequential_temporaries_do_not_nest() {
        // A temporary guard dies at the end of its statement.
        let e = edges_of(
            "fn f() {\n\
             deques[w].lock().unwrap_or_else(PoisonError::into_inner).pop_back();\n\
             slots[w].lock().unwrap_or_else(PoisonError::into_inner).push(t);\n\
             }",
        );
        assert!(e.is_empty());
    }

    #[test]
    fn within_statement_nesting_is_an_edge() {
        let e = edges_of("fn f() { a.lock().unwrap().push(b.lock().unwrap().pop()); }");
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].from, "crates/x::a");
        assert_eq!(e[0].to, "crates/x::b");
    }

    #[test]
    fn drop_and_scope_end_release_guards() {
        let e = edges_of(
            "fn f() {\n\
             let ga = a.lock().unwrap();\n\
             drop(ga);\n\
             let gb = b.lock().unwrap();\n\
             }",
        );
        assert!(e.is_empty(), "explicit drop releases before b");
        let e = edges_of(
            "fn f() {\n\
             { let ga = a.lock().unwrap(); }\n\
             let gb = b.lock().unwrap();\n\
             }",
        );
        assert!(e.is_empty(), "scope end releases before b");
        let e = edges_of("fn f() { let ga = a.lock().unwrap(); }\nfn g() { b.lock().unwrap(); }");
        assert!(e.is_empty(), "guards never cross a fn boundary");
    }

    #[test]
    fn helper_and_field_receivers_normalize() {
        // The free-function helper and field receivers share per-crate
        // nodes; `self.lock()` helpers are per-file.
        let e = edges_of(
            "fn f() {\n\
             let g = lock(&shared.queue);\n\
             let h = state.cache.lock().unwrap();\n\
             }",
        );
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].from, "crates/x::queue");
        assert_eq!(e[0].to, "crates/x::cache");
        let e = edges_of("fn f(&self) { let g = self.lock(); let h = other.lock().unwrap(); }");
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].from, "self@crates/x/src/f.rs");
    }

    #[test]
    fn same_name_and_test_code_are_skipped() {
        assert!(edges_of(
            "fn f() { let a = deques[i].lock().unwrap(); let b = deques[j].lock().unwrap(); }"
        )
        .is_empty());
        assert!(edges_of(
            "fn lib() {}\n#[cfg(test)]\nmod t {\n fn f() { let g = a.lock().unwrap(); let h = b.lock().unwrap(); }\n}"
        )
        .is_empty());
    }

    #[test]
    fn cycle_detection_flags_abba_only() {
        let ab = LockEdge {
            from: "a".into(),
            to: "b".into(),
            file: "f.rs".into(),
            line: 1,
        };
        let bc = LockEdge {
            from: "b".into(),
            to: "c".into(),
            file: "f.rs".into(),
            line: 2,
        };
        assert!(check(&[ab.clone(), bc.clone()]).is_empty(), "a DAG is fine");
        let ba = LockEdge {
            from: "b".into(),
            to: "a".into(),
            file: "g.rs".into(),
            line: 9,
        };
        let findings = check(&[ab, bc, ba]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::LockOrder);
        assert!(findings[0].excerpt.contains("a -> b -> a"));
        assert_eq!(findings[0].file, "g.rs");
    }
}
