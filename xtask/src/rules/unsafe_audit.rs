//! Rule `unsafe-audit`: every `unsafe` site must state its invariant.
//!
//! The ring buffer, the bench allocator shims, and any future lock-free
//! code concentrate the repo's soundness obligations into a handful of
//! `unsafe` blocks. Each one is only correct *relative to an invariant*
//! (single consumer, index in bounds, slot initialized); this rule makes
//! that invariant part of the source: every `unsafe` keyword in non-test
//! library code must carry a `// SAFETY:` comment — on its own line or in
//! the contiguous comment block immediately above — or it is a finding.
//! Findings are count-ratcheted via `lint.allow` like `panic-site`, with a
//! target budget of zero: new unsafe code cannot land unannotated.

use crate::findings::{Finding, Rule};
use crate::scan::Source;

/// The justification tag an `unsafe` site must carry.
pub const TAG: &str = "SAFETY:";

/// Scans one source file for unannotated `unsafe` sites.
pub fn check(src: &Source) -> Vec<Finding> {
    let mut out = Vec::new();
    let bytes = src.masked.as_bytes();
    let mut search = 0;
    while let Some(rel) = src.masked[search..].find("unsafe") {
        let at = search + rel;
        search = at + "unsafe".len();
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let after_ok = bytes.get(at + "unsafe".len()).is_none_or(|&b| !is_ident(b));
        if !before_ok || !after_ok || src.offset_in_test(at) {
            continue;
        }
        if src.comment_tagged(at, TAG) {
            continue;
        }
        out.push(Finding {
            rule: Rule::UnsafeAudit,
            file: src.path.clone(),
            line: src.line_of(at),
            excerpt: src.excerpt(at),
            message: "unsafe without a `// SAFETY:` comment; state the invariant that \
                      makes this sound"
                .to_string(),
        });
    }
    out
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(text: &str) -> Vec<Finding> {
        check(&Source::new("f.rs", text))
    }

    #[test]
    fn flags_unannotated_unsafe_block_fn_and_impl() {
        assert_eq!(findings("fn f() { unsafe { g() } }").len(), 1);
        assert_eq!(findings("unsafe fn g() {}").len(), 1);
        assert_eq!(findings("unsafe impl Send for X {}").len(), 1);
    }

    #[test]
    fn safety_comment_above_or_inline_satisfies() {
        assert!(findings("// SAFETY: single consumer owns the slot.\nunsafe { g() }").is_empty());
        assert!(findings("let v = unsafe { g() }; // SAFETY: index < mask + 1.").is_empty());
        // A multi-line comment block with the tag on its first line.
        assert!(findings(
            "// SAFETY: the producer published this slot with Release,\n\
             // and head < tail guarantees it is initialized.\n\
             unsafe { slot.assume_init_read() }"
        )
        .is_empty());
        // Attributes between the comment and the item are transparent.
        assert!(findings("// SAFETY: no aliasing.\n#[inline]\nunsafe fn g() {}").is_empty());
    }

    #[test]
    fn unrelated_comment_does_not_satisfy() {
        assert_eq!(findings("// fast path\nunsafe { g() }").len(), 1);
        // A SAFETY comment separated by code does not carry over.
        assert_eq!(
            findings("// SAFETY: for h only.\nfn h() {}\nunsafe fn g() {}").len(),
            1
        );
    }

    #[test]
    fn masked_and_test_occurrences_are_exempt() {
        assert!(findings("let s = \"unsafe\"; // unsafe in prose").is_empty());
        assert!(
            findings("fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { unsafe { g() } } }")
                .is_empty()
        );
        // Identifier containing the word is not the keyword.
        assert!(findings("fn unsafely() {} fn not_unsafe() {}").is_empty());
    }
}
