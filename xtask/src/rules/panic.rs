//! Rule `panic-site`: the panic surface of non-test library code.
//!
//! Industrial deployments die on partial failures, not accuracy: a single
//! `unwrap()` on an empty sensor stream takes the whole plant report down.
//! This rule counts every potential panic site in non-test library code —
//! `.unwrap()`, `.expect(..)`, `panic!`/`unreachable!`/`todo!`/
//! `unimplemented!`, and direct `container[index]` indexing (no `.get`) —
//! and holds the total at or below the committed allowlist, so the surface
//! only ever shrinks.
//!
//! Test modules (`#[cfg(test)]`), integration tests, benches, and examples
//! are out of scope: panicking is how tests fail.

use crate::findings::{Finding, Rule};
use crate::scan::Source;

const MACROS: [&str; 4] = ["panic!(", "unreachable!(", "todo!(", "unimplemented!("];

/// Scans one source file (library code only; the driver filters paths).
pub fn check(src: &Source) -> Vec<Finding> {
    let mut out = Vec::new();
    scan_token(
        src,
        ".unwrap()",
        "unwrap() panics; propagate an error instead",
        &mut out,
    );
    scan_token(
        src,
        ".expect(",
        "expect(..) panics; propagate an error instead",
        &mut out,
    );
    for m in MACROS {
        scan_token(src, m, "panicking macro in library code", &mut out);
    }
    scan_indexing(src, &mut out);
    out.sort_by_key(|f| f.line);
    out
}

fn scan_token(src: &Source, token: &str, message: &str, out: &mut Vec<Finding>) {
    let mut search = 0;
    while let Some(rel) = src.masked[search..].find(token) {
        let at = search + rel;
        search = at + token.len();
        if src.offset_in_test(at) {
            continue;
        }
        // `.expect(` must not also swallow `.expect_err(` etc.: the token
        // list already includes the open paren, so it cannot.
        out.push(Finding {
            rule: Rule::PanicSite,
            file: src.path.clone(),
            line: src.line_of(at),
            excerpt: src.excerpt(at),
            message: message.to_string(),
        });
    }
}

/// Flags `expr[..]` indexing: a `[` directly following an identifier
/// character, `)` or `]`. Attribute (`#[..]`), macro (`name![..]`), slice
/// type (`&[..]`, `<[..]`), and array literal positions do not match the
/// prefix test, so they never fire.
fn scan_indexing(src: &Source, out: &mut Vec<Finding>) {
    let bytes = src.masked.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        let indexes = prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']';
        if !indexes {
            continue;
        }
        if src.offset_in_test(i) {
            continue;
        }
        out.push(Finding {
            rule: Rule::PanicSite,
            file: src.path.clone(),
            line: src.line_of(i),
            excerpt: src.excerpt(i),
            message: "direct indexing panics out of bounds; prefer .get(..) or a checked \
                      pattern"
                .to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(text: &str) -> Vec<Finding> {
        check(&Source::new("f.rs", text))
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        assert_eq!(findings("let a = x.unwrap();").len(), 1);
        assert_eq!(findings("let a = x.expect(\"boom\");").len(), 1);
        assert_eq!(findings("panic!(\"boom\");").len(), 1);
        assert_eq!(findings("unreachable!()").len(), 1);
    }

    #[test]
    fn flags_direct_indexing_but_not_types_or_macros() {
        assert_eq!(findings("let a = v[i];").len(), 1);
        assert_eq!(findings("let a = m[i][j];").len(), 2);
        assert!(findings("fn f(x: &[f64]) -> Vec<[u8; 4]> { vec![] }").is_empty());
        assert!(findings("#[derive(Debug)]\nstruct S;").is_empty());
        assert!(findings("let v = vec![1, 2];").is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); v[0]; }\n}\n";
        assert!(findings(src).is_empty());
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n";
        assert_eq!(findings(src).len(), 1);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        assert!(findings("let a = x.unwrap_or(0);").is_empty());
        assert!(findings("let a = x.unwrap_or_else(|| 0);").is_empty());
        assert!(findings("let a = x.unwrap_or_default();").is_empty());
    }
}
