//! Rule `zero-copy`: the data-plane hot paths must not deep-copy series.
//!
//! PR 2 rebuilt `TimeSeries` on shared `Arc` storage so level-view
//! materialization and window scoring are O(1) per series; this rule is the
//! structured successor to the old CI grep gate (`series: s.clone()` in
//! `view.rs`). In the listed hot-path files it flags:
//!
//! * any `.to_vec()` — a window/row/storage materialization, and
//! * `.clone()` on series-shaped receivers (`series`, `storage`, `values`,
//!   `timestamps`, or the conventional series binding `s`) — shared-storage
//!   handles must be propagated with `.share()` so intent stays explicit.
//!
//! Identifier clones (`machine_id.clone()`, `job.id.clone()`) are cheap and
//! deliberate; they do not match the receiver test.

use crate::findings::{Finding, Rule};
use crate::scan::Source;

/// The hot-path files the rule applies to (workspace-relative).
pub const HOT_PATHS: [&str; 2] = ["crates/hierarchy/src/view.rs", "crates/detect/src/adapt.rs"];

/// Receiver names treated as series storage.
const SERIES_RECEIVERS: [&str; 5] = ["series", "storage", "values", "timestamps", "s"];

/// Scans one hot-path source file (non-test code).
pub fn check(src: &Source) -> Vec<Finding> {
    let mut out = Vec::new();
    scan_method(src, ".to_vec()", false, &mut out);
    scan_method(src, ".clone()", true, &mut out);
    out.sort_by_key(|f| f.line);
    out
}

/// Finds `receiver.method()` occurrences; when `series_only`, the last
/// receiver path segment must be series-shaped.
fn scan_method(src: &Source, method: &str, series_only: bool, out: &mut Vec<Finding>) {
    let masked = &src.masked;
    let mut search = 0;
    while let Some(rel) = masked[search..].find(method) {
        let at = search + rel;
        search = at + method.len();
        if src.offset_in_test(at) {
            continue;
        }
        if series_only {
            let receiver = last_path_segment(&masked[..at]);
            if !SERIES_RECEIVERS.contains(&receiver.as_str()) {
                continue;
            }
        }
        let what = if series_only {
            "series storage is deep-cloned; propagate the Arc with .share()"
        } else {
            "hot path materializes a copy with .to_vec(); borrow a view/slice instead"
        };
        out.push(Finding {
            rule: Rule::ZeroCopy,
            file: src.path.clone(),
            line: src.line_of(at),
            excerpt: src.excerpt(at),
            message: what.to_string(),
        });
    }
}

/// The identifier directly before a method call: `a.b.series` → `series`.
fn last_path_segment(prefix: &str) -> String {
    prefix
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(text: &str) -> Vec<Finding> {
        check(&Source::new("crates/hierarchy/src/view.rs", text))
    }

    #[test]
    fn flags_series_clone_and_to_vec() {
        assert_eq!(
            findings("let v = SensorView { series: s.clone() };").len(),
            1
        );
        assert_eq!(findings("let c = job.series.clone();").len(), 1);
        assert_eq!(findings("let w = window.values().to_vec();").len(), 1);
    }

    #[test]
    fn accepts_share_and_identifier_clones() {
        assert!(findings("let v = SensorView { series: s.share() };").is_empty());
        assert!(findings("let m = line.machine_id.clone();").is_empty());
        assert!(findings("let j = job.id.clone();").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { let c = s.clone(); } }\n";
        assert!(findings(src).is_empty());
    }
}
