//! Rule `loom-coverage`: no unmodeled lock-free code.
//!
//! Modeled on `taxonomy` (and like it, never allowlistable): every library
//! file that *owns* concurrency state — an `Atomic*` type or an
//! `UnsafeCell` outside `#[cfg(test)]` — must be mapped in [`MODEL_MAP`]
//! to a named loom model test, and every mapped test must actually exist
//! under the expected name. New lock-free code therefore cannot land
//! without a model, and a renamed model cannot silently detach from the
//! file it covers. Files that merely *operate on* atomics owned elsewhere
//! (e.g. bumping a counter through a shared reference) are covered by the
//! owning file's model and do not trigger.

use crate::findings::{Finding, Rule};
use crate::scan::Source;

/// lib file → (loom test file, named model test fn) mapping. Entries whose
/// lib file does not exist in the tree being linted are skipped, so lint
/// fixtures with synthetic workspaces are not forced to carry the repo's
/// models.
pub const MODEL_MAP: &[(&str, &str, &str)] = &[
    (
        "crates/stream/src/ring.rs",
        "crates/stream/tests/loom_ring.rs",
        "spsc_fifo_no_loss_under_all_interleavings",
    ),
    (
        "crates/stream/src/shard.rs",
        "crates/stream/tests/loom_shard.rs",
        "shard_hand_off_preserves_every_lane_under_all_interleavings",
    ),
    (
        "crates/detect/src/engine/scheduler.rs",
        "crates/detect/tests/loom_pool.rs",
        "every_task_runs_exactly_once_under_all_interleavings",
    ),
    (
        "crates/server/src/queue.rs",
        "crates/server/tests/loom_queue.rs",
        "handoff_queue_delivers_every_item_under_all_interleavings",
    ),
    (
        "crates/server/src/lib.rs",
        "crates/server/tests/loom_queue.rs",
        "drain_unblocks_parked_workers_under_all_interleavings",
    ),
];

/// The first non-test line where the file declares concurrency state
/// (an `Atomic*` type name or `UnsafeCell`), if any.
pub fn trigger_line(src: &Source) -> Option<usize> {
    let bytes = src.masked.as_bytes();
    let mut best: Option<usize> = None;
    for token in ["Atomic", "UnsafeCell"] {
        let mut search = 0;
        while let Some(rel) = src.masked[search..].find(token) {
            let at = search + rel;
            search = at + token.len();
            if at > 0 && is_ident(bytes[at - 1]) {
                continue;
            }
            if token == "Atomic" {
                // A type name: `Atomic` followed by an uppercase letter
                // (AtomicBool, AtomicUsize, …), not the bare word in an
                // identifier like `atomic_rename`.
                if !bytes
                    .get(at + token.len())
                    .is_some_and(u8::is_ascii_uppercase)
                {
                    continue;
                }
            } else if bytes.get(at + token.len()).is_some_and(|&b| is_ident(b)) {
                continue;
            }
            if src.offset_in_test(at) {
                continue;
            }
            let line = src.line_of(at);
            best = Some(best.map_or(line, |b| b.min(line)));
        }
    }
    best
}

/// Cross-checks triggering files against [`MODEL_MAP`]. `exists` answers
/// whether a workspace-relative path is present; `read` returns a file's
/// text (empty when missing).
pub fn check(
    triggers: &[(String, usize)],
    exists: &dyn Fn(&str) -> bool,
    read: &dyn Fn(&str) -> String,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (file, line) in triggers {
        if MODEL_MAP.iter().any(|(lib, _, _)| lib == file) {
            continue;
        }
        out.push(Finding {
            rule: Rule::LoomCoverage,
            file: file.clone(),
            line: *line,
            excerpt: "atomics/UnsafeCell without a loom model".to_string(),
            message: "file owns concurrency state but maps to no loom model test; add a \
                      model and a MODEL_MAP entry in xtask/src/rules/loom_cov.rs"
                .to_string(),
        });
    }
    for (lib, test_file, test_fn) in MODEL_MAP {
        if !exists(lib) {
            continue;
        }
        let text = read(test_file);
        if text.is_empty() {
            out.push(Finding {
                rule: Rule::LoomCoverage,
                file: (*test_file).to_string(),
                line: 1,
                excerpt: format!("mapped from {lib}"),
                message: "loom model file named in MODEL_MAP is missing".to_string(),
            });
        } else if !text.contains(&format!("fn {test_fn}")) {
            out.push(Finding {
                rule: Rule::LoomCoverage,
                file: (*test_file).to_string(),
                line: 1,
                excerpt: format!("expected `fn {test_fn}`"),
                message: format!(
                    "loom model for {lib} lost its named test fn (renamed without \
                     updating MODEL_MAP?)"
                ),
            });
        }
    }
    out
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trig(text: &str) -> Option<usize> {
        trigger_line(&Source::new("f.rs", text))
    }

    #[test]
    fn atomic_types_and_unsafecell_trigger() {
        assert_eq!(trig("use std::sync::atomic::AtomicUsize;\n"), Some(1));
        assert_eq!(trig("fn f() {}\nstruct S { c: UnsafeCell<u64> }"), Some(2));
        assert_eq!(trig("static N: AtomicU64 = AtomicU64::new(0);"), Some(1));
    }

    #[test]
    fn prose_tests_and_op_only_files_do_not_trigger() {
        // Comment mention is masked; `atomic_rename` is not a type; an
        // op through a reference does not *own* state.
        assert_eq!(trig("/// Atomically renames.\nfn atomic_rename() {}"), None);
        assert_eq!(
            trig("fn lib() {}\n#[cfg(test)]\nmod t { use std::sync::atomic::AtomicBool; }"),
            None
        );
        assert_eq!(
            trig("fn bump(s: &Shared) { s.n.fetch_add(1, Ordering::Relaxed); }"),
            None
        );
    }

    #[test]
    fn unmapped_trigger_is_a_finding() {
        let triggers = vec![("crates/new/src/lockfree.rs".to_string(), 7)];
        let findings = check(&triggers, &|_| true, &|_| "fn anything".to_string());
        assert!(findings
            .iter()
            .any(|f| f.file == "crates/new/src/lockfree.rs" && f.line == 7));
        assert!(findings.iter().all(|f| f.rule == Rule::LoomCoverage));
    }

    #[test]
    fn mapped_file_requires_the_named_test_fn() {
        let triggers = vec![("crates/stream/src/ring.rs".to_string(), 1)];
        // The model file exists and has the named fn: clean.
        let ok = check(&triggers, &|p| p == "crates/stream/src/ring.rs", &|p| {
            if p == "crates/stream/tests/loom_ring.rs" {
                "fn spsc_fifo_no_loss_under_all_interleavings() {}".to_string()
            } else {
                String::new()
            }
        });
        assert!(ok.is_empty());
        // The model file lost the fn: finding.
        let bad = check(&triggers, &|p| p == "crates/stream/src/ring.rs", &|p| {
            if p == "crates/stream/tests/loom_ring.rs" {
                "fn renamed() {}".to_string()
            } else {
                String::new()
            }
        });
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("named test fn"));
    }

    #[test]
    fn absent_lib_files_skip_the_map_side() {
        // A fixture workspace without the repo's crates must not be
        // forced to carry its loom models.
        let findings = check(&[], &|_| false, &|_| String::new());
        assert!(findings.is_empty());
    }
}
