//! Rule `nan-cmp`: NaN-unsafe float comparisons.
//!
//! Flags `partial_cmp` whose result is force-unwrapped (`.unwrap()` /
//! `.expect(..)`) within the same statement — the idiom behind
//! `sort_by(|a, b| a.partial_cmp(b).unwrap())`, `max_by(..)`, `min_by(..)`
//! on `f64`, which panics the moment a NaN reaches the comparator. The
//! repo-wide policy is `f64::total_cmp` (NaN orders last, deterministically)
//! via the shared `hierod_detect::stat` helpers, or an explicit
//! `unwrap_or(Ordering::..)` NaN policy, which this rule deliberately does
//! not flag.

use crate::findings::{Finding, Rule};
use crate::scan::Source;

/// How far past `partial_cmp` the statement scan looks for an unwrap. A
/// comparator closure is a handful of tokens; the cap keeps one statement's
/// diagnosis from leaking into the next when semicolons are sparse
/// (e.g. in builder chains).
const STATEMENT_HORIZON: usize = 160;

/// Scans one source file. Applies to test code too: a NaN-panicking
/// comparator is as wrong in a property test as in a detector.
pub fn check(src: &Source) -> Vec<Finding> {
    let mut out = Vec::new();
    let masked = &src.masked;
    let mut search = 0;
    while let Some(rel) = masked[search..].find("partial_cmp") {
        let at = search + rel;
        search = at + "partial_cmp".len();
        // Statement span: from the call to the next `;` (or horizon).
        let tail_end = (at + STATEMENT_HORIZON).min(masked.len());
        let tail = &masked[at..tail_end];
        let span = match tail.find(';') {
            Some(semi) => &tail[..semi],
            None => tail,
        };
        if span.contains(".unwrap()") || span.contains(".expect(") {
            out.push(Finding {
                rule: Rule::NanCmp,
                file: src.path.clone(),
                line: src.line_of(at),
                excerpt: src.excerpt(at),
                message: "partial_cmp result is force-unwrapped (panics on NaN); use \
                          f64::total_cmp / hierod_detect::stat::total_cmp or an explicit \
                          unwrap_or(..) NaN policy"
                    .to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(text: &str) -> Vec<Finding> {
        check(&Source::new("f.rs", text))
    }

    #[test]
    fn flags_unwrapped_sort_comparator() {
        let bad = "v.sort_by(|a, b| a.partial_cmp(b).unwrap());";
        assert_eq!(findings(bad).len(), 1);
        let bad = "let m = xs.iter().max_by(|a, b| a.partial_cmp(b).expect(\"finite\"));";
        assert_eq!(findings(bad).len(), 1);
    }

    #[test]
    fn accepts_total_cmp_and_explicit_policy() {
        assert!(findings("v.sort_by(f64::total_cmp);").is_empty());
        assert!(findings("v.sort_by(|a, b| a.total_cmp(b));").is_empty());
        assert!(findings(
            "v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));"
        )
        .is_empty());
    }

    #[test]
    fn unwrap_in_next_statement_does_not_leak_in() {
        let ok = "let o = a.partial_cmp(&b);\nlet v = other.unwrap();";
        assert!(findings(ok).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        assert!(findings("// a.partial_cmp(b).unwrap()").is_empty());
        assert!(findings("let s = \"partial_cmp(b).unwrap()\";").is_empty());
    }
}
