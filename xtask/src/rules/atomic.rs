//! Rule `atomic-ordering`: inventory every atomic operation and gate
//! `SeqCst` behind an explicit justification.
//!
//! The hot paths want the weakest ordering that is still correct; the
//! default temptation is the strongest one. This rule extracts every
//! atomic load/store/RMW/fence together with the `Ordering` tokens it
//! passes (the inventory lands in the JSON lint report), and flags any
//! `SeqCst` use in non-test library code that does not carry an adjacent
//! `// ORDERING:` comment saying why Acquire/Release is not enough (e.g.
//! a Dekker-style flag handshake that needs a total store order).
//! Findings are count-ratcheted via `lint.allow`.

use crate::findings::{json_escape, Finding, Rule};
use crate::scan::Source;

/// The justification tag a `SeqCst` site must carry.
pub const TAG: &str = "ORDERING:";

/// Atomic method/fence call tokens. Entries must keep the open paren so
/// `.load(` cannot also match `.loads(`; `compiler_fence(` is listed
/// before the word-boundary-checked `fence(` scan catches it.
const OPS: [&str; 16] = [
    ".load(",
    ".store(",
    ".swap(",
    ".compare_exchange(",
    ".compare_exchange_weak(",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_and(",
    ".fetch_nand(",
    ".fetch_or(",
    ".fetch_xor(",
    ".fetch_max(",
    ".fetch_min(",
    ".fetch_update(",
    "compiler_fence(",
    "fence(",
];

const ORDERINGS: [&str; 5] = ["SeqCst", "AcqRel", "Acquire", "Release", "Relaxed"];

/// One atomic operation with the memory orderings it names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicSite {
    /// Workspace-relative path (`/`-separated).
    pub file: String,
    /// 1-based line number of the call.
    pub line: usize,
    /// Operation name without punctuation (`load`, `fetch_add`, `fence`).
    pub op: String,
    /// Every `Ordering` variant named in the call's arguments, in order
    /// (`compare_exchange` has two; `fetch_update` three).
    pub orderings: Vec<String>,
}

impl AtomicSite {
    /// JSON object for the lint report (hand-rolled: no serde offline).
    pub fn to_json(&self) -> String {
        let orders: Vec<String> = self
            .orderings
            .iter()
            .map(|o| format!("\"{}\"", json_escape(o)))
            .collect();
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"op\":\"{}\",\"orderings\":[{}]}}",
            json_escape(&self.file),
            self.line,
            json_escape(&self.op),
            orders.join(",")
        )
    }
}

/// Scans one source file: returns the (non-test) atomic-op inventory and
/// the unjustified-`SeqCst` findings.
pub fn check(src: &Source) -> (Vec<AtomicSite>, Vec<Finding>) {
    let mut sites = Vec::new();
    let mut findings = Vec::new();
    let bytes = src.masked.as_bytes();
    for op in OPS {
        let mut search = 0;
        while let Some(rel) = src.masked[search..].find(op) {
            let at = search + rel;
            search = at + op.len();
            if !op.starts_with('.') {
                // `fence(` must be its own word (not `compiler_fence(`,
                // which its own entry already consumed).
                if at > 0 && (is_ident(bytes[at - 1]) || bytes[at - 1] == b'_') {
                    continue;
                }
            }
            if src.offset_in_test(at) {
                continue;
            }
            let args_start = at + op.len();
            let Some(args_end) = balanced_close(bytes, args_start) else {
                continue;
            };
            let args = &src.masked[args_start..args_end];
            let orderings = ordering_tokens(args);
            if orderings.is_empty() {
                // `.load(path)` on a WAL, `.store(x)` on a map — not an
                // atomic call; only Ordering-carrying calls are inventory.
                continue;
            }
            let op_name = op.trim_start_matches('.').trim_end_matches('(');
            sites.push(AtomicSite {
                file: src.path.clone(),
                line: src.line_of(at),
                op: op_name.to_string(),
                orderings: orderings.clone(),
            });
            if orderings.iter().any(|o| o == "SeqCst") && !src.comment_tagged(at, TAG) {
                findings.push(Finding {
                    rule: Rule::AtomicOrdering,
                    file: src.path.clone(),
                    line: src.line_of(at),
                    excerpt: src.excerpt(at),
                    message: "SeqCst without an `// ORDERING:` comment; justify why \
                              Acquire/Release is not enough, or downgrade"
                        .to_string(),
                });
            }
        }
    }
    sites.sort_by_key(|s| s.line);
    findings.sort_by_key(|f| f.line);
    (sites, findings)
}

/// Offset of the `)` closing the paren group that opens at `start - 1`.
fn balanced_close(bytes: &[u8], start: usize) -> Option<usize> {
    let mut depth = 1usize;
    for (k, &b) in bytes.iter().enumerate().skip(start) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Every `Ordering` variant named in an argument list, as whole words.
fn ordering_tokens(args: &str) -> Vec<String> {
    let bytes = args.as_bytes();
    let mut found: Vec<(usize, String)> = Vec::new();
    for name in ORDERINGS {
        let mut search = 0;
        while let Some(rel) = args[search..].find(name) {
            let at = search + rel;
            search = at + name.len();
            let before_ok = at == 0 || !is_ident(bytes[at - 1]);
            let after_ok = bytes.get(at + name.len()).is_none_or(|&b| !is_ident(b));
            if before_ok && after_ok {
                found.push((at, name.to_string()));
            }
        }
    }
    found.sort();
    found.into_iter().map(|(_, n)| n).collect()
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(text: &str) -> (Vec<AtomicSite>, Vec<Finding>) {
        check(&Source::new("f.rs", text))
    }

    #[test]
    fn inventories_ops_with_their_orderings() {
        let (sites, _) = run("let h = head.load(Ordering::Acquire);\n\
             tail.store(h, Ordering::Release);\n\
             n.fetch_add(1, Ordering::Relaxed);\n\
             fence(Ordering::SeqCst); // ORDERING: Dekker handshake.\n");
        let ops: Vec<&str> = sites.iter().map(|s| s.op.as_str()).collect();
        assert_eq!(ops, ["load", "store", "fetch_add", "fence"]);
        assert_eq!(sites[0].orderings, ["Acquire"]);
        assert_eq!(sites[3].orderings, ["SeqCst"]);
    }

    #[test]
    fn compare_exchange_reports_both_orderings() {
        let (sites, findings) = run(
            "// ORDERING: publication needs the RMW to be globally ordered.\n\
             x.compare_exchange(a, b, Ordering::SeqCst, Ordering::Acquire);",
        );
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].orderings, ["SeqCst", "Acquire"]);
        assert!(findings.is_empty(), "justified SeqCst is clean");
    }

    #[test]
    fn unjustified_seqcst_is_a_finding() {
        let (_, findings) = run("head.load(Ordering::SeqCst);");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::AtomicOrdering);
        // Weaker orderings never need justification.
        let (_, f) = run("head.load(Ordering::Acquire); t.store(1, Ordering::Release);");
        assert!(f.is_empty());
    }

    #[test]
    fn non_atomic_calls_named_load_or_store_are_ignored() {
        let (sites, findings) = run("wal.load(path)?; map.store(key, value);");
        assert!(sites.is_empty());
        assert!(findings.is_empty());
    }

    #[test]
    fn bare_ordering_imports_and_tests_handled() {
        // `use Ordering::*` style: bare variant names still count.
        let (sites, findings) = run("flag.store(true, SeqCst);");
        assert_eq!(sites.len(), 1);
        assert_eq!(findings.len(), 1);
        // Test modules are out of scope.
        let (sites, findings) =
            run("fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { x.load(Ordering::SeqCst); } }");
        assert!(sites.is_empty());
        assert!(findings.is_empty());
    }

    #[test]
    fn fence_word_boundary_and_json() {
        let (sites, _) = run("fence(Ordering::Acquire); my_fence(Ordering::SeqCst);");
        assert_eq!(sites.len(), 1, "my_fence is not the std fence");
        let j = sites[0].to_json();
        assert!(j.contains("\"op\":\"fence\""));
        assert!(j.contains("[\"Acquire\"]"));
    }
}
