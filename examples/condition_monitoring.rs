//! Condition monitoring with alert thresholds — the paper's Section-1 use
//! cases: "Condition Monitoring, generate Alerts, … or serve as an
//! indicator for Predictive Maintenance. In the context of the latter, the
//! degree of deviation from an expected value represents the urgency to
//! maintain a system."
//!
//! The example monitors one machine job-by-job, maintains a fused severity
//! per job, and maps severity bands to maintenance urgency.
//!
//! ```sh
//! cargo run --release --example condition_monitoring
//! ```

use hierod::core::experiment::evaluate_levels;
use hierod::core::pipeline::build_report;
use hierod::core::{AlgorithmPolicy, FusionRule};
use hierod::hierarchy::Level;
use hierod::synth::ScenarioBuilder;

fn main() {
    let scenario = ScenarioBuilder::new(99)
        .machines(1)
        .jobs_per_machine(16)
        .redundancy(3)
        .phase_samples(60)
        .anomaly_rate(0.35)
        .measurement_error_fraction(0.3)
        .magnitude_sigmas(14.0)
        .build();

    let policy = AlgorithmPolicy::default();
    let fusion = FusionRule::default_weighted();
    let detections = evaluate_levels(&scenario, &policy).expect("detection");
    let report = build_report(&scenario.plant, Level::Phase, &detections, &policy).expect("report");

    // Fused severity per job = max fused score of its phase-level outliers
    // (0 when a job produced none).
    let line = &scenario.plant.lines[0];
    println!(
        "machine `{}` — per-job condition report:\n",
        line.machine_id
    );
    println!(
        "{:<8} {:>9} {:>9} {:>8} {:>6}  {:<12} note",
        "job", "severity", "support", "global", "CAQ", "urgency"
    );
    println!("{}", "-".repeat(75));
    for job in &line.jobs {
        let outliers: Vec<_> = report
            .outliers
            .iter()
            .filter(|o| o.job.as_deref() == Some(job.id.as_str()))
            .collect();
        let severity = outliers
            .iter()
            .map(|o| fusion.score(o))
            .fold(0.0_f64, f64::max);
        let support = outliers.iter().map(|o| o.support).fold(0.0_f64, f64::max);
        let global = outliers.iter().map(|o| o.global_score).max().unwrap_or(1);
        let urgency = match severity {
            s if s >= 30.0 => "IMMEDIATE",
            s if s >= 15.0 => "scheduled",
            s if s > 0.0 => "watch",
            _ => "-",
        };
        let truly_anomalous = scenario
            .truth
            .anomalous_jobs()
            .contains(&(line.machine_id.clone(), job.id.clone()));
        let note = match (severity > 0.0, truly_anomalous) {
            (true, true) => "alert, true process anomaly",
            (true, false) => "alert (glitch or noise)",
            (false, true) => "MISSED process anomaly",
            (false, false) => "",
        };
        println!(
            "{:<8} {:>9.1} {:>9.2} {:>8} {:>6}  {:<12} {}",
            job.id,
            severity,
            support,
            global,
            if job.caq.passed { "pass" } else { "FAIL" },
            urgency,
            note
        );
    }
    println!(
        "\n{} alerts raised; {} suspected measurement errors were demoted by the triple.",
        report.len(),
        report.warnings.len()
    );
}
