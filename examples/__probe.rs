use hierod::hierarchy::{Level, LevelView};
use hierod::synth::ScenarioBuilder;
fn main() {
    let s = ScenarioBuilder::new(7)
        .machines(4)
        .jobs_per_machine(16)
        .redundancy(2)
        .phase_samples(40)
        .anomaly_rate(0.0)
        .drift(1, 0.25)
        .build();
    let view = LevelView::extract(&s.plant, Level::Production);
    for at in &view.series {
        let v = at.series.values();
        println!(
            "{}: first {:.3} last {:.3} vals {:?}",
            at.machine,
            v[0],
            v[v.len() - 1],
            v.iter()
                .map(|x| (x * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
}
