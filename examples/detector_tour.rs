//! A tour of the Table-1 detector zoo: every technique class runs on the
//! same anomalous data (each consuming the granularity it supports), and
//! the outputs are compared side by side.
//!
//! ```sh
//! cargo run --release --example detector_tour
//! ```

use hierod::detect::adapt::{score_points_via_symbols, score_windows_with};
use hierod::detect::da::{
    DynamicClustering, GaussianMixture, LcsCluster, MatchCount, OneClassSvm, PhasedKMeans,
    PrincipalComponentSpace, SelfOrganizingMap, SingleLinkage, VibrationSignature,
};
use hierod::detect::itm::HistogramDeviants;
use hierod::detect::nmd::AnomalyDictionary;
use hierod::detect::npd::WindowSequenceDb;
use hierod::detect::os::SaxDiscord;
use hierod::detect::pm::AutoregressiveModel;
use hierod::detect::registry::registry;
use hierod::detect::sa::{MotifRuleClassifier, NeuralNetwork, RuleLearner};
use hierod::detect::uoa::OlapCubeDetector;
use hierod::detect::upa::{FiniteStateAutomaton, HiddenMarkov};
use hierod::detect::{DiscreteScorer, PointScorer, SeriesScorer, SupervisedScorer, VectorScorer};
use hierod::timeseries::window::WindowSpec;

/// Index of the maximum score.
fn argmax(scores: &[f64]) -> usize {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn main() {
    println!(
        "Table-1 detector tour ({} registered rows)\n",
        registry().len()
    );

    // ---- Shared numeric workload: a sine with a burst at t = 300..308. ----
    let mut series: Vec<f64> = (0..512)
        .map(|i| (i as f64 * std::f64::consts::TAU / 32.0).sin())
        .collect();
    for v in series.iter_mut().skip(300).take(8) {
        *v += 6.0;
    }

    // ---- Shared symbolic workload: cyclic sequences + one alien. ----
    let seqs: Vec<Vec<u16>> = (0..6)
        .map(|k| (0..24).map(|i| ((i + k) % 4) as u16).collect())
        .collect();
    let alien: Vec<u16> = vec![
        9, 9, 8, 9, 9, 8, 9, 9, 8, 9, 9, 8, 9, 9, 8, 9, 9, 8, 9, 9, 8, 9, 9, 8,
    ];
    let mut all_seqs: Vec<&[u16]> = seqs.iter().map(Vec::as_slice).collect();
    all_seqs.push(&alien);

    // ---- Shared vector workload: blob + one stray (index 40). ----
    let mut rows: Vec<Vec<f64>> = (0..40)
        .map(|i| vec![(i % 5) as f64 * 0.1, (i % 7) as f64 * 0.1])
        .collect();
    rows.push(vec![9.0, -9.0]);

    // ---- Shared series workload: one shape at five amplitudes + a trend
    // (index 5). Phased k-means must see through the amplitude scaling. ----
    let family: Vec<Vec<f64>> = (0..5)
        .map(|k| {
            (0..64)
                .map(|i| (i as f64 * 0.4).sin() * (k + 1) as f64)
                .collect()
        })
        .collect();
    let trend: Vec<f64> = (0..64).map(|i| i as f64 * 0.2).collect();
    let mut collection: Vec<&[f64]> = family.iter().map(Vec::as_slice).collect();
    collection.push(&trend);

    println!("== point scorers (spike at 300 in a 512-sample sine) ==");
    let ar = AutoregressiveModel::new(3).unwrap();
    println!(
        "  AR prediction error [15]      -> argmax {}",
        argmax(&ar.score_points(&series).unwrap())
    );
    // Deviants are *isolated* points whose removal improves the optimal
    // histogram; a sustained burst is representable and hence not a
    // deviant, so the ITM row gets the single-spike variant.
    let mut spiked = series.clone();
    for v in spiked.iter_mut().skip(300).take(8) {
        *v -= 6.0; // undo the burst
    }
    spiked[300] += 9.0;
    let hd = HistogramDeviants::new(8).unwrap();
    println!(
        "  histogram deviants [27]       -> argmax {}",
        argmax(&hd.score_points(&spiked).unwrap())
    );

    println!("\n== windowed scorers on the same series ==");
    let spec = WindowSpec::new(32, 8).unwrap();
    let (_, p) =
        score_windows_with(&GaussianMixture::new(2).unwrap(), &series, spec, true).unwrap();
    println!("  EM mixture [30] (windows)     -> argmax {}", argmax(&p));
    let (_, p) = VibrationSignature::default()
        .score_windows(&series, spec)
        .unwrap();
    println!("  vibration signature [28]      -> argmax {}", argmax(&p));
    let (_, p) = SaxDiscord::new(32, 4, 4).unwrap().score(&series).unwrap();
    println!("  SAX discord [22]              -> argmax {}", argmax(&p));
    let p = score_points_via_symbols(&FiniteStateAutomaton::default(), &series, 8, 4, 3).unwrap();
    println!("  FSA via SAX symbols [25]      -> argmax {}", argmax(&p));

    println!("\n== discrete-sequence scorers (alien sequence at index 6) ==");
    println!(
        "  match count [16]              -> argmax {}",
        argmax(&MatchCount::default().score_sequences(&all_seqs).unwrap())
    );
    println!(
        "  LCS clustering [2]            -> argmax {}",
        argmax(&LcsCluster::default().score_sequences(&all_seqs).unwrap())
    );
    println!(
        "  hidden Markov model [7]       -> argmax {}",
        argmax(
            &HiddenMarkov::new(2)
                .unwrap()
                .score_sequences(&all_seqs)
                .unwrap()
        )
    );
    println!(
        "  window-sequence NPD [17]      -> argmax {}",
        argmax(
            &WindowSequenceDb::default()
                .score_sequences(&all_seqs)
                .unwrap()
        )
    );
    let dict = AnomalyDictionary::from_patterns(&[&[9, 9, 8][..]]).unwrap();
    println!(
        "  anomaly dictionary [3]        -> argmax {}",
        argmax(&dict.score(&all_seqs).unwrap())
    );

    println!("\n== vector scorers (stray row at index 40) ==");
    println!(
        "  PCA space [13]                -> argmax {}",
        argmax(
            &PrincipalComponentSpace::new(1)
                .unwrap()
                .score_rows(&hierod::detect::row_refs(&rows))
                .unwrap()
        )
    );
    println!(
        "  one-class SVM [6]             -> argmax {}",
        argmax(
            &OneClassSvm::default()
                .score_rows(&hierod::detect::row_refs(&rows))
                .unwrap()
        )
    );
    println!(
        "  self-organizing map [11]      -> argmax {}",
        argmax(
            &SelfOrganizingMap::default()
                .score_rows(&hierod::detect::row_refs(&rows))
                .unwrap()
        )
    );
    println!(
        "  single linkage [32]           -> argmax {}",
        argmax(
            &SingleLinkage::default()
                .score_rows(&hierod::detect::row_refs(&rows))
                .unwrap()
        )
    );
    println!(
        "  dynamic clustering [37]       -> argmax {}",
        argmax(
            &DynamicClustering::default()
                .score_rows(&hierod::detect::row_refs(&rows))
                .unwrap()
        )
    );
    println!(
        "  OLAP cube [20]                -> argmax {}",
        argmax(
            &OlapCubeDetector::default()
                .score_rows(&hierod::detect::row_refs(&rows))
                .unwrap()
        )
    );

    println!("\n== series scorers (trend among sines at index 5) ==");
    println!(
        "  phased k-means [36]           -> argmax {}",
        argmax(
            &hierod::detect::adapt::score_series_with(
                &PhasedKMeans::new(1).unwrap(),
                &collection,
                8
            )
            .unwrap()
        )
    );
    println!(
        "  vibration signature [28]      -> argmax {}",
        argmax(
            &VibrationSignature::default()
                .score_series(&collection)
                .unwrap()
        )
    );

    println!("\n== supervised scorers (labels: stray = anomalous) ==");
    let labels: Vec<bool> = (0..rows.len()).map(|i| i == 40).collect();
    let mut rl = RuleLearner::default();
    rl.fit(&rows, &labels).unwrap();
    println!(
        "  rule learning [18]            -> argmax {}",
        argmax(&rl.predict(&rows).unwrap())
    );
    let mut nn = NeuralNetwork::default();
    nn.fit(&rows, &labels).unwrap();
    println!(
        "  neural network [10]           -> argmax {}",
        argmax(&nn.predict(&rows).unwrap())
    );
    let seq_labels: Vec<bool> = (0..all_seqs.len()).map(|i| i == 6).collect();
    let mut mrc = MotifRuleClassifier::default();
    mrc.fit_sequences(&all_seqs, &seq_labels).unwrap();
    println!(
        "  motif rule classifier [19]    -> argmax {}",
        argmax(&mrc.predict_sequences(&all_seqs).unwrap())
    );

    println!("\nEvery class of Table 1 localized its planted anomaly.");
}
