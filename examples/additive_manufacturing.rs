//! The paper's motivating use case: industrial 3D printing.
//!
//! Two faults occur during a production campaign:
//! * a **recoater fault** — a *process* anomaly: the bed-temperature
//!   excursion is physical, so every redundant sensor sees it and the job's
//!   CAQ quality degrades;
//! * a **thermocouple glitch** — a *measurement error*: one sensor
//!   misreports while the process is fine.
//!
//! Both look identical on a single sensor trace. The example shows how the
//! triple ⟨global score, outlierness, support⟩ separates them.
//!
//! ```sh
//! cargo run --release --example additive_manufacturing
//! ```

use hierod::core::{find_hierarchical_outliers, FindOptions};
use hierod::hierarchy::Level;
use hierod::synth::{ScenarioBuilder, Scope};

fn main() {
    // 100 % anomaly rate and a 50/50 scope split guarantees both fault
    // kinds occur; the seed fixes which jobs get which.
    let scenario = ScenarioBuilder::new(58)
        .machines(3)
        .jobs_per_machine(12)
        .redundancy(3)
        .phase_samples(60)
        .anomaly_rate(0.5)
        .measurement_error_fraction(0.5)
        .magnitude_sigmas(14.0)
        .build();

    println!("ground truth injections:");
    for rec in &scenario.truth.injections {
        println!(
            "  {:<18} {:<20} on {}/{} ({} sensors affected)",
            rec.scope.label(),
            rec.outlier.label(),
            rec.job,
            rec.phase.label(),
            rec.affected_sensors.len()
        );
    }

    let report = find_hierarchical_outliers(&scenario.plant, Level::Phase, &FindOptions::default())
        .expect("detection");

    // Match detections back to ground truth and summarize the triples per
    // fault kind.
    let mut process_triples = Vec::new();
    let mut glitch_triples = Vec::new();
    for o in &report.outliers {
        let (Some(job), Some(phase), Some(sensor), Some(idx)) =
            (o.job.as_deref(), o.phase, o.sensor.as_deref(), o.index)
        else {
            continue;
        };
        let hit = scenario.truth.injections.iter().find(|r| {
            r.machine == o.machine
                && r.job == job
                && r.phase == phase
                && r.affected_sensors.iter().any(|a| a == sensor)
                && idx + 2 >= r.start_idx
                && idx <= r.start_idx + r.len + 2
        });
        match hit.map(|r| r.scope) {
            Some(Scope::ProcessAnomaly) => process_triples.push(o),
            Some(Scope::MeasurementError) => glitch_triples.push(o),
            None => {}
        }
    }

    let mean =
        |v: &[&hierod::core::HierOutlier], f: fn(&hierod::core::HierOutlier) -> f64| -> f64 {
            if v.is_empty() {
                return 0.0;
            }
            v.iter().map(|o| f(o)).sum::<f64>() / v.len() as f64
        };

    println!("\ndetected & matched outliers:");
    println!(
        "  recoater-fault class (process): {:>3} detections | mean support {:.2} | mean global score {:.2}",
        process_triples.len(),
        mean(&process_triples, |o| o.support),
        mean(&process_triples, |o| f64::from(o.global_score))
    );
    println!(
        "  thermocouple-glitch class (ME): {:>3} detections | mean support {:.2} | mean global score {:.2}",
        glitch_triples.len(),
        mean(&glitch_triples, |o| o.support),
        mean(&glitch_triples, |o| f64::from(o.global_score))
    );
    println!(
        "\nreading: both classes have similar outlierness on the afflicted sensor,\n\
         but the physical fault is confirmed by the redundant sensors (support)\n\
         and echoes up the hierarchy (global score); the glitch is not."
    );
}
