//! Streaming monitoring with [`PlantMonitor`]: jobs arrive one at a time
//! and each is assessed online against the machine's rolling history —
//! the deployment shape of the paper's condition-monitoring use case.
//!
//! ```sh
//! cargo run --release --example streaming_monitor
//! ```

use hierod::core::{FusionRule, PlantMonitor, Urgency};
use hierod::synth::ScenarioBuilder;

fn main() {
    let scenario = ScenarioBuilder::new(13)
        .machines(2)
        .jobs_per_machine(14)
        .redundancy(3)
        .phase_samples(50)
        .anomaly_rate(0.3)
        .measurement_error_fraction(0.3)
        .magnitude_sigmas(14.0)
        .build();
    let truth = scenario.truth.anomalous_jobs();

    let mut monitor = PlantMonitor::new(FusionRule::default_weighted());
    for line in &scenario.plant.lines {
        monitor.register_machine(line.machine_id.clone(), line.redundancy.clone());
    }

    println!("streaming assessment (jobs arrive in production order):\n");
    println!(
        "{:<10} {:>9} {:>7} {:>9} {:<11} ground truth",
        "job", "severity", "alerts", "job-conf", "urgency"
    );
    println!("{}", "-".repeat(70));
    // Interleave machines as a real plant would.
    let max_jobs = scenario
        .plant
        .lines
        .iter()
        .map(|l| l.jobs.len())
        .max()
        .unwrap_or(0);
    for j in 0..max_jobs {
        for line in &scenario.plant.lines {
            let Some(job) = line.jobs.get(j) else {
                continue;
            };
            let assessment = monitor
                .ingest_job(&line.machine_id, job.clone())
                .expect("assessment");
            let urgency = match assessment.urgency {
                Urgency::WarmingUp => "warming-up",
                Urgency::None => "-",
                Urgency::Watch => "watch",
                Urgency::Scheduled => "scheduled",
                Urgency::Immediate => "IMMEDIATE",
            };
            let is_anomalous = truth.contains(&(line.machine_id.clone(), job.id.clone()));
            println!(
                "{:<10} {:>9.1} {:>7} {:>9} {:<11} {}",
                assessment.job_id,
                assessment.severity,
                assessment.alerts.len(),
                if assessment.job_level_confirmed {
                    "yes"
                } else {
                    "no"
                },
                urgency,
                if is_anomalous { "process anomaly" } else { "" }
            );
        }
    }
    println!(
        "\nhistory windows: m0 = {}, m1 = {}",
        monitor.history_len("m0"),
        monitor.history_len("m1")
    );
}
