//! The layered network front-end end to end (DESIGN.md §4.16): start a
//! [`Server`] hosting a [`RegistryService`] over in-memory storage,
//! then drive a plant from a [`Client`] over a real TCP socket —
//! admission, lane definitions, control events, a firehose of
//! unacknowledged samples, a synchronous detection tick — and query
//! per-level scores, per-lane stats, versioned report deltas, and
//! health, before draining the server gracefully.
//!
//! ```sh
//! cargo run --release --example serve_plant
//! ```
//!
//! [`Server`]: hierod::server::Server
//! [`Client`]: hierod::server::Client
//! [`RegistryService`]: hierod::service::RegistryService

use std::thread;

use hierod::core::AlgorithmPolicy;
use hierod::hierarchy::{
    CaqResult, JobConfig, Level, PhaseKind, RedundancyGroup, Sensor, SensorKind,
};
use hierod::server::client::DeltaReply;
use hierod::server::{Client, Server, ServerConfig};
use hierod::service::RegistryService;
use hierod::store::tenants::MemFactory;
use hierod::stream::tenant::TenantConfig;
use hierod::stream::{ControlEvent, LaneId, LaneKind};
use hierod::wire::decode_report;

const MACHINE: &str = "m0";
const BED: &str = "m0.bed.0";
const BED_LANE: u32 = 1;

/// Quiet sinusoid with one injected spike at t = 20.
fn sample_at(t: u64) -> f64 {
    if t == 20 {
        60.0
    } else {
        (t as f64 * 0.4).sin()
    }
}

fn main() {
    // ── engine + service: the sharded multi-plant registry behind the
    // PlantService seam, on in-memory storage for a self-contained demo.
    let svc = RegistryService::open(
        MemFactory::new(),
        AlgorithmPolicy::default(),
        TenantConfig::default(),
    )
    .expect("open service");

    // ── api: bind on an ephemeral port, serve on a background thread.
    let server = Server::bind(svc, ServerConfig::default()).expect("bind");
    let handle = server.handle();
    let serving = thread::spawn(move || server.serve().expect("serve"));
    let addr = handle.local_addr();
    println!("serving on {addr}\n");

    let mut client = Client::connect(addr).expect("connect");

    // Tenant admission: ids are validated server-side, so a traversal
    // attempt is refused at the wire before it can touch storage.
    let created = client.admit("plant-a", true).expect("admit");
    println!("admitted plant-a (created: {created})");
    let refused = client.admit("../evil", true);
    println!("admit \"../evil\" -> {}\n", refused.unwrap_err());

    // Stand up one machine with a single bed-temperature lane. Lane
    // definitions and control events ride the same unacknowledged
    // ingest path as samples (WAL-verbatim frames).
    client
        .lane_def(
            BED_LANE,
            &LaneId {
                machine: MACHINE.into(),
                sensor: BED.into(),
                kind: LaneKind::Phase,
            },
        )
        .expect("lane def");
    client
        .control(&ControlEvent::MachineUp {
            machine: MACHINE.into(),
            sensors: vec![Sensor::new(BED, SensorKind::BedTemperature)],
            redundancy: vec![RedundancyGroup::new(
                SensorKind::BedTemperature,
                vec![BED.into()],
            )],
            env_sensors: Vec::new(),
        })
        .expect("machine up");
    client
        .control(&ControlEvent::JobStart {
            machine: MACHINE.into(),
            job: "j0".into(),
            start: 0,
            config: JobConfig::new(vec!["p".into()], vec![1.0]),
        })
        .expect("job start");
    client
        .control(&ControlEvent::PhaseStart {
            machine: MACHINE.into(),
            kind: PhaseKind::WarmUp,
            sensors: vec![BED.to_string()],
        })
        .expect("phase start");

    // The firehose: samples are buffered client-side and never
    // individually acknowledged; any server-side failure is parked and
    // surfaces at the next synchronous request.
    for t in 0..32 {
        client.sample(BED_LANE, t, sample_at(t)).expect("sample");
    }
    client
        .control(&ControlEvent::JobComplete {
            machine: MACHINE.into(),
            caq: CaqResult::new(vec!["q".into()], vec![0.9], true),
        })
        .expect("job complete");

    // A synchronous detection round: drains the ingest stream, runs
    // the sharded detector, and versions the plant's report cache.
    let (version, outliers) = client.tick().expect("tick");
    println!("tick -> report v{version}, {outliers} outlier(s)");

    // Per-level scores, straight off the report cache.
    let (_, phase_hits) = client.query_scores(Some(Level::Phase)).expect("scores");
    for o in &phase_hits {
        println!(
            "  phase outlier: machine={} sensor={} t={:?} outlierness={:.2} \
             support={:.2} global_score={}",
            o.machine,
            o.sensor.as_deref().unwrap_or("-"),
            o.timestamp,
            o.outlierness,
            o.support,
            o.global_score
        );
    }

    // Per-lane ingestion counters and stream-wide stats.
    let (stats, lanes) = client.query_lane_stats().expect("lane stats");
    println!(
        "\nstream stats: {} samples ingested, {} released, {} corrupt records",
        stats.samples_ingested, stats.samples_released, stats.corrupt_records
    );
    for (lane, ls) in &lanes {
        println!(
            "  lane {}/{}: {} released",
            lane.machine, lane.sensor, ls.released
        );
    }

    // Versioned delta queries: a dashboard holding v`version` learns it
    // is current without re-downloading the report; a cold client gets
    // a full resync.
    match client.query_deltas(version).expect("deltas") {
        DeltaReply::NoChange { version } => println!("\ndeltas since v{version}: no change"),
        other => println!("\ndeltas: {other:?}"),
    }
    let (version, _) = client.tick().expect("second tick");
    match client.query_deltas(version - 1).expect("deltas") {
        DeltaReply::Deltas {
            from,
            to,
            added,
            removed,
        } => println!(
            "deltas v{from}->v{to}: +{} -{} outlier(s)",
            added.len(),
            removed.len()
        ),
        other => println!("deltas: {other:?}"),
    }
    match client.query_deltas(0).expect("resync") {
        DeltaReply::Resync { version, report } => {
            let report = decode_report(&report).expect("decode report");
            println!(
                "cold resync -> full report v{version} ({} outlier(s))",
                report.report.outliers.len()
            );
        }
        other => println!("resync: {other:?}"),
    }

    // Readiness health: live tenants vs tenants parked by recovery
    // failures — what a load balancer polls.
    let health = client.query_health().expect("health");
    println!(
        "health: {} live, {} failed, ready={}",
        health.live.len(),
        health.failed.len(),
        health.ready()
    );

    // Graceful drain: stop accepting, finish in-flight work, return
    // the serving statistics.
    drop(client);
    handle.shutdown();
    let stats = serving.join().expect("server thread");
    println!(
        "\ndrained: {} connection(s), {} frame(s) served",
        stats.connections, stats.frames
    );
}
