//! Quickstart: generate a small plant, run `FindHierarchicalOutlier`, and
//! print the ⟨global score, outlierness, support⟩ triples.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hierod::core::{find_hierarchical_outliers, FindOptions, FusionRule};
use hierod::hierarchy::Level;
use hierod::synth::ScenarioBuilder;

fn main() {
    // A small additive-manufacturing plant: 2 machines, 8 jobs each,
    // 3 redundant temperature sensors, 40 % of jobs carry one injected
    // anomaly (half of them are sensor measurement errors).
    let scenario = ScenarioBuilder::new(7)
        .machines(2)
        .jobs_per_machine(8)
        .redundancy(3)
        .phase_samples(60)
        .anomaly_rate(0.4)
        .measurement_error_fraction(0.5)
        .magnitude_sigmas(12.0)
        .build();
    println!(
        "plant `{}`: {} machines, {} jobs, {} injected anomalies\n",
        scenario.plant.name,
        scenario.plant.machine_count(),
        scenario.plant.job_count(),
        scenario.truth.len()
    );

    // Algorithm 1, starting at the phase level (the paper's most detailed
    // view), with the default per-level algorithm policy.
    let report = find_hierarchical_outliers(&scenario.plant, Level::Phase, &FindOptions::default())
        .expect("detection");

    let fusion = FusionRule::default_weighted();
    println!("top outliers by fused triple score:");
    for outlier in report.ranked_by(|o| fusion.score(o)).into_iter().take(8) {
        println!("  {}", outlier.summary());
    }
    println!(
        "\n{} outliers total, {} suspected measurement errors (downward pass)",
        report.len(),
        report.warnings.len()
    );
}
