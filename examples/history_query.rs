//! The historical query tier end to end (DESIGN.md §4.18): ingest two
//! jobs through the embedded [`PlantService`], seal their WALs into
//! rotation segments, compact the segments into the tiered
//! Gorilla-compressed history files, serve pruned time-range scans, and
//! finally *backfill* — replay a stored range through a fresh detector,
//! once with the original policy (reproducing the original report
//! exactly) and once with a swapped phase detector (diffing the two
//! outlier sets).
//!
//! ```sh
//! cargo run --release --example history_query
//! ```
//!
//! [`PlantService`]: hierod::service::PlantService

use hierod::core::AlgorithmPolicy;
use hierod::detect::engine::AlgoSpec;
use hierod::hierarchy::{CaqResult, JobConfig, PhaseKind, RedundancyGroup, Sensor, SensorKind};
use hierod::history::{diff_reports, CompactionOptions, RangeQuery};
use hierod::service::{PlantService, RegistryService};
use hierod::store::tenants::MemFactory;
use hierod::stream::tenant::TenantConfig;
use hierod::stream::{LaneId, LaneKind, Sample};

const PLANT: &str = "plant-a";
const MACHINE: &str = "m0";
const BED: &str = "m0.bed.0";

/// Quantized bed-temperature curve with one injected spike per job.
fn sample_at(job: u64, t: u64) -> f64 {
    if t == 20 {
        60.0 + job as f64
    } else {
        let raw = 24.0 + 3.0 * ((t + job) as f64 * 0.4).sin();
        (raw * 10.0).round() / 10.0
    }
}

/// Drives one complete job: start, warm-up phase, samples, completion.
fn run_job(svc: &mut RegistryService<MemFactory>, job: u64, start: u64) {
    let name = format!("j{job}");
    svc.job_start(
        PLANT,
        MACHINE,
        &name,
        start,
        JobConfig::new(vec!["p".into()], vec![1.0]),
    )
    .expect("job start");
    svc.phase_start(PLANT, MACHINE, PhaseKind::WarmUp, &[BED.to_string()])
        .expect("phase start");
    let lane = LaneId {
        machine: MACHINE.into(),
        sensor: BED.into(),
        kind: LaneKind::Phase,
    };
    for t in 0..48_u64 {
        svc.ingest(
            PLANT,
            &lane,
            Sample {
                timestamp: start + t,
                value: sample_at(job, t),
            },
        )
        .expect("ingest");
    }
    svc.job_complete(
        PLANT,
        MACHINE,
        CaqResult::new(vec!["q".into()], vec![0.9], true),
    )
    .expect("job complete");
}

fn main() {
    let mut svc = RegistryService::open(
        MemFactory::new(),
        AlgorithmPolicy::default(),
        TenantConfig::default(),
    )
    .expect("open service");
    svc.admit(PLANT, true).expect("admit");
    svc.machine_up(
        PLANT,
        MACHINE,
        vec![Sensor::new(BED, SensorKind::BedTemperature)],
        vec![RedundancyGroup::new(
            SensorKind::BedTemperature,
            vec![BED.into()],
        )],
        &[],
    )
    .expect("machine up");

    // ── ingest: two jobs, each sealed into its own rotation segment.
    for job in 0..2_u64 {
        run_job(&mut svc, job, job * 1000);
        svc.rotate(PLANT).expect("rotate");
    }

    // ── compact: absorb the per-rotation segments into per-lane,
    // time-partitioned history files with Gorilla-compressed columns.
    let stats = svc
        .compact(PLANT, &CompactionOptions::default())
        .expect("compact");
    for (shard, s) in stats.iter().enumerate() {
        println!(
            "shard {shard}: absorbed {} segments into {} history file(s), \
             {} bytes written, floor now {}",
            s.segments_absorbed, s.l0_files, s.bytes_written, s.floor
        );
    }

    // ── range scans: chunk min/max pruning keeps cold chunks sealed.
    let (lanes, scan) = svc
        .range_scan(PLANT, &RangeQuery::range(0, u64::MAX))
        .expect("full scan");
    println!(
        "\nfull scan: {} lanes, {} samples ({} chunks: {} pruned, {} decoded)",
        lanes.len(),
        scan.samples,
        scan.chunks_total,
        scan.chunks_pruned,
        scan.chunks_decoded
    );
    let (lanes, scan) = svc
        .range_scan(PLANT, &RangeQuery::range(1000, 1040))
        .expect("windowed scan");
    println!(
        "scan [1000, 1040] (job 1 only): {} samples, {} of {} chunks pruned",
        scan.samples, scan.chunks_pruned, scan.chunks_total
    );
    for lane in &lanes {
        let ts = lane.series.timestamps();
        println!(
            "  {}/{}: {} samples, t = {:?}..{:?}",
            lane.id.machine,
            lane.id.sensor,
            ts.len(),
            ts.first(),
            ts.last()
        );
    }

    // ── backfill: replay the stored range through a fresh detector.
    // With the original policy the replay reproduces the original
    // report exactly — the diff is empty.
    let replayed = svc
        .backfill(PLANT, 0, u64::MAX, None)
        .expect("backfill original");
    println!(
        "\nbackfill (original policy): {} controls, {} samples replayed",
        replayed.controls_replayed, replayed.samples_replayed
    );

    // With a swapped phase detector the same stored samples are
    // re-scored; the diff shows what the new detector sees differently.
    let spec: AlgoSpec = "sliding-z(window=8)".parse().expect("spec");
    let rescored = svc
        .backfill(PLANT, 0, u64::MAX, Some(&spec))
        .expect("backfill rescored");

    let original = svc.finish(PLANT).expect("finish");
    let diff = diff_reports(&original.report, &replayed.report.report);
    println!(
        "diff vs original report: {} added, {} removed (identical: {})",
        diff.added.len(),
        diff.removed.len(),
        diff.identical()
    );
    assert!(diff.identical(), "original-policy backfill must reproduce");

    let rediff = diff_reports(&original.report, &rescored.report.report);
    println!(
        "diff after swapping the phase detector to {spec}: \
         {} added, {} removed",
        rediff.added.len(),
        rediff.removed.len()
    );
    for outlier in rediff.added.iter().take(3) {
        println!("  + {:?}", outlier);
    }
    for outlier in rediff.removed.iter().take(3) {
        println!("  - {:?}", outlier);
    }
}
