//! Streaming ingestion end to end: replay a synthetic plant as a live
//! event stream through per-sensor ring lanes into a [`StreamDetector`],
//! and print the same ⟨global score, outlierness, support⟩ triples the
//! batch pipeline would produce. A second leg replays the same scenario
//! through a [`DurableStream`], kills the process mid-stream with an
//! injected write budget, recovers from the crash image, resumes from
//! the store's cursors, and shows the recovered report is identical.
//!
//! ```sh
//! cargo run --release --example stream_replay
//! ```
//!
//! [`StreamDetector`]: hierod::stream::StreamDetector
//! [`DurableStream`]: hierod::stream::DurableStream

use std::collections::{BTreeMap, HashMap};

use hierod::core::{AlgorithmPolicy, FusionRule};
use hierod::store::{MemStorage, StoreOptions};
use hierod::stream::{
    DurableStream, IngestRouter, LaneId, LaneKind, Producer, Sample, ScorerMode, StreamConfig,
    StreamDetector, StreamReport,
};
use hierod::synth::{ReplayEvent, Scenario, ScenarioBuilder};

const LANE_CAPACITY: usize = 1024;

fn main() {
    // A small plant whose jobs carry injected anomalies, then flattened
    // into a time-ordered event stream (control events + samples).
    let scenario = ScenarioBuilder::new(42)
        .machines(2)
        .jobs_per_machine(3)
        .redundancy(2)
        .phase_samples(40)
        .anomaly_rate(0.8)
        .build();
    let events = scenario.replay();
    println!(
        "replaying plant `{}` as {} stream events\n",
        scenario.plant.name,
        events.len()
    );

    let config = StreamConfig {
        lateness: 0,
        mode: ScorerMode::BatchEquivalent,
    };
    let mut detector =
        StreamDetector::new(AlgorithmPolicy::default(), config).expect("stream detector");
    let mut router = IngestRouter::new();
    let mut lanes: HashMap<LaneId, Producer<Sample>> = HashMap::new();
    let lane =
        |router: &mut IngestRouter, lanes: &mut HashMap<LaneId, Producer<Sample>>, id: LaneId| {
            if !lanes.contains_key(&id) {
                let producer = router.add_lane(id.clone(), LANE_CAPACITY);
                lanes.insert(id.clone(), producer);
            }
        };

    // Drive the detector exactly as a live collector would: control
    // events open machines/jobs/phases, samples flow through ring lanes,
    // and the router is drained before each control event so lane
    // contents always belong to the still-open phase.
    for event in events {
        match event {
            ReplayEvent::MachineUp {
                machine,
                sensors,
                redundancy,
                env_sensors,
            } => {
                detector
                    .machine_up(&machine, sensors, redundancy, &env_sensors)
                    .expect("machine_up");
                for sensor in env_sensors {
                    let id = LaneId {
                        machine: machine.clone(),
                        sensor,
                        kind: LaneKind::Environment,
                    };
                    lane(&mut router, &mut lanes, id);
                }
            }
            ReplayEvent::JobStart {
                machine,
                job,
                start,
                config,
            } => {
                detector.drain(&mut router).expect("drain");
                detector
                    .job_start(&machine, &job, start, config)
                    .expect("job_start");
            }
            ReplayEvent::PhaseStart {
                machine,
                kind,
                sensors,
            } => {
                detector.drain(&mut router).expect("drain");
                for sensor in &sensors {
                    let id = LaneId {
                        machine: machine.clone(),
                        sensor: sensor.clone(),
                        kind: LaneKind::Phase,
                    };
                    lane(&mut router, &mut lanes, id);
                }
                detector
                    .phase_start(&machine, kind, &sensors)
                    .expect("phase_start");
            }
            ReplayEvent::PhaseSample {
                machine,
                sensor,
                timestamp,
                value,
            } => {
                let id = LaneId {
                    machine,
                    sensor,
                    kind: LaneKind::Phase,
                };
                lanes
                    .get_mut(&id)
                    .expect("phase lane")
                    .push(Sample { timestamp, value })
                    .expect("lane open");
            }
            ReplayEvent::EnvSample {
                machine,
                sensor,
                timestamp,
                value,
            } => {
                let id = LaneId {
                    machine,
                    sensor,
                    kind: LaneKind::Environment,
                };
                lanes
                    .get_mut(&id)
                    .expect("env lane")
                    .push(Sample { timestamp, value })
                    .expect("lane open");
            }
            ReplayEvent::JobComplete { machine, caq, .. } => {
                detector.drain(&mut router).expect("drain");
                detector.job_complete(&machine, caq).expect("job_complete");
            }
        }
    }
    detector.drain(&mut router).expect("final drain");
    let out = detector.finish().expect("finish");

    println!(
        "ingested {} samples ({} released, {} late, {} duplicate)\n",
        out.stats.samples_ingested,
        out.stats.samples_released,
        out.stats.late_dropped,
        out.stats.duplicates_dropped
    );
    let fusion = FusionRule::default_weighted();
    println!("top streaming outliers by fused triple score:");
    for outlier in out
        .report
        .ranked_by(|o| fusion.score(o))
        .into_iter()
        .take(8)
    {
        println!("  {}", outlier.summary());
    }
    println!(
        "\n{} outliers total, {} suspected measurement errors — identical \
         to the batch pipeline on the finished plant (pinned by \
         crates/stream/tests/stream_batch_equivalence.rs)",
        out.report.len(),
        out.report.warnings.len()
    );

    durable_leg(&scenario, &out);
}

/// Replays `events` into a durable detector, skipping the prefix the
/// store already holds (the resume contract after a crash). Returns
/// `false` if the injected crash fired mid-replay.
fn run_durable(
    d: &mut DurableStream<MemStorage>,
    events: &[ReplayEvent],
    skip_controls: u64,
    delivered: &BTreeMap<LaneId, u64>,
) -> bool {
    let mut control_no = 0_u64;
    let mut lane_counts: BTreeMap<LaneId, u64> = BTreeMap::new();
    for event in events {
        let result = match event {
            ReplayEvent::MachineUp {
                machine,
                sensors,
                redundancy,
                env_sensors,
            } => {
                control_no += 1;
                if control_no <= skip_controls {
                    continue;
                }
                d.machine_up(machine, sensors.clone(), redundancy.clone(), env_sensors)
            }
            ReplayEvent::JobStart {
                machine,
                job,
                start,
                config,
            } => {
                control_no += 1;
                if control_no <= skip_controls {
                    continue;
                }
                d.job_start(machine, job, *start, config.clone())
            }
            ReplayEvent::PhaseStart {
                machine,
                kind,
                sensors,
            } => {
                control_no += 1;
                if control_no <= skip_controls {
                    continue;
                }
                d.phase_start(machine, *kind, sensors)
            }
            ReplayEvent::JobComplete { machine, caq, .. } => {
                control_no += 1;
                if control_no <= skip_controls {
                    continue;
                }
                // Seal released history into a columnar segment per job.
                d.job_complete(machine, caq.clone())
                    .and_then(|()| d.rotate())
            }
            ReplayEvent::PhaseSample {
                machine,
                sensor,
                timestamp,
                value,
            }
            | ReplayEvent::EnvSample {
                machine,
                sensor,
                timestamp,
                value,
            } => {
                let kind = match event {
                    ReplayEvent::PhaseSample { .. } => LaneKind::Phase,
                    _ => LaneKind::Environment,
                };
                let id = LaneId {
                    machine: machine.clone(),
                    sensor: sensor.clone(),
                    kind,
                };
                let count = lane_counts.entry(id.clone()).or_insert(0);
                *count += 1;
                if *count <= delivered.get(&id).copied().unwrap_or(0) {
                    continue;
                }
                d.ingest(
                    &id,
                    Sample {
                        timestamp: *timestamp,
                        value: *value,
                    },
                )
            }
        };
        if result.is_err() {
            assert!(
                d.store().storage().killed(),
                "only the injected crash may fail the replay"
            );
            return false;
        }
    }
    true
}

/// Persist → kill → recover → resume, then check the recovered report
/// against the in-memory run.
fn durable_leg(scenario: &Scenario, baseline: &StreamReport) {
    println!("\n--- durable leg: persist, kill mid-stream, recover, resume ---\n");
    let events = scenario.replay();
    let config = StreamConfig {
        lateness: 0,
        mode: ScorerMode::BatchEquivalent,
    };
    let options = StoreOptions { group_commit: 32 };

    // Dry run to learn the scenario's total write volume, so the crash
    // can land deterministically a bit past the halfway point.
    let probe = MemStorage::new();
    let (mut d, _) =
        DurableStream::open(AlgorithmPolicy::default(), config, probe.clone(), options)
            .expect("open probe");
    assert!(run_durable(&mut d, &events, 0, &BTreeMap::new()));
    drop(d);
    let budget = probe.bytes_written() * 55 / 100;

    let storage = MemStorage::new();
    storage.set_write_budget(Some(budget));
    let (mut d, _) =
        DurableStream::open(AlgorithmPolicy::default(), config, storage.clone(), options)
            .expect("open durable");
    let crashed = !run_durable(&mut d, &events, 0, &BTreeMap::new());
    drop(d);
    println!(
        "killed the writer after {budget} bytes (crashed mid-stream: {crashed}); \
         taking a crash image without the page cache"
    );

    // Everything unsynced is lost — only fsynced bytes survive.
    let image = storage.crash_image(false);
    let (mut d, recovery) = DurableStream::open(AlgorithmPolicy::default(), config, image, options)
        .expect("recovery always succeeds");
    println!(
        "recovered: {} segments, {} samples restored from segments, {} replayed \
         from the WAL tail, {} control events applied",
        recovery.store.segments_loaded,
        recovery.restored_samples,
        recovery.replayed_samples,
        recovery.controls_applied
    );

    let skip = d.controls_applied();
    let delivered = d.delivered().clone();
    assert!(
        run_durable(&mut d, &events, skip, &delivered),
        "resume runs on healthy storage"
    );
    let recovered = d.finish().expect("finish after recovery");

    assert_eq!(
        recovered.stats, baseline.stats,
        "stats must survive the crash"
    );
    assert_eq!(
        format!("{:?}", recovered.report),
        format!("{:?}", baseline.report),
        "Algorithm-1 report must survive the crash"
    );
    println!(
        "\nresumed and finished: {} samples ingested, {} outliers — the report \
         is identical to the never-crashed run (write-crash-recover ≡ no-crash, \
         pinned by crates/stream/tests/store_recovery.rs)",
        recovered.stats.samples_ingested,
        recovered.report.len()
    );
}
