//! Streaming ingestion end to end: replay a synthetic plant as a live
//! event stream through per-sensor ring lanes into a [`StreamDetector`],
//! and print the same ⟨global score, outlierness, support⟩ triples the
//! batch pipeline would produce.
//!
//! ```sh
//! cargo run --release --example stream_replay
//! ```
//!
//! [`StreamDetector`]: hierod::stream::StreamDetector

use std::collections::HashMap;

use hierod::core::{AlgorithmPolicy, FusionRule};
use hierod::stream::{
    IngestRouter, LaneId, LaneKind, Producer, Sample, ScorerMode, StreamConfig, StreamDetector,
};
use hierod::synth::{ReplayEvent, ScenarioBuilder};

const LANE_CAPACITY: usize = 1024;

fn main() {
    // A small plant whose jobs carry injected anomalies, then flattened
    // into a time-ordered event stream (control events + samples).
    let scenario = ScenarioBuilder::new(42)
        .machines(2)
        .jobs_per_machine(3)
        .redundancy(2)
        .phase_samples(40)
        .anomaly_rate(0.8)
        .build();
    let events = scenario.replay();
    println!(
        "replaying plant `{}` as {} stream events\n",
        scenario.plant.name,
        events.len()
    );

    let config = StreamConfig {
        lateness: 0,
        mode: ScorerMode::BatchEquivalent,
    };
    let mut detector =
        StreamDetector::new(AlgorithmPolicy::default(), config).expect("stream detector");
    let mut router = IngestRouter::new();
    let mut lanes: HashMap<LaneId, Producer<Sample>> = HashMap::new();
    let lane =
        |router: &mut IngestRouter, lanes: &mut HashMap<LaneId, Producer<Sample>>, id: LaneId| {
            if !lanes.contains_key(&id) {
                let producer = router.add_lane(id.clone(), LANE_CAPACITY);
                lanes.insert(id.clone(), producer);
            }
        };

    // Drive the detector exactly as a live collector would: control
    // events open machines/jobs/phases, samples flow through ring lanes,
    // and the router is drained before each control event so lane
    // contents always belong to the still-open phase.
    for event in events {
        match event {
            ReplayEvent::MachineUp {
                machine,
                sensors,
                redundancy,
                env_sensors,
            } => {
                detector
                    .machine_up(&machine, sensors, redundancy, &env_sensors)
                    .expect("machine_up");
                for sensor in env_sensors {
                    let id = LaneId {
                        machine: machine.clone(),
                        sensor,
                        kind: LaneKind::Environment,
                    };
                    lane(&mut router, &mut lanes, id);
                }
            }
            ReplayEvent::JobStart {
                machine,
                job,
                start,
                config,
            } => {
                detector.drain(&mut router).expect("drain");
                detector
                    .job_start(&machine, &job, start, config)
                    .expect("job_start");
            }
            ReplayEvent::PhaseStart {
                machine,
                kind,
                sensors,
            } => {
                detector.drain(&mut router).expect("drain");
                for sensor in &sensors {
                    let id = LaneId {
                        machine: machine.clone(),
                        sensor: sensor.clone(),
                        kind: LaneKind::Phase,
                    };
                    lane(&mut router, &mut lanes, id);
                }
                detector
                    .phase_start(&machine, kind, &sensors)
                    .expect("phase_start");
            }
            ReplayEvent::PhaseSample {
                machine,
                sensor,
                timestamp,
                value,
            } => {
                let id = LaneId {
                    machine,
                    sensor,
                    kind: LaneKind::Phase,
                };
                lanes
                    .get_mut(&id)
                    .expect("phase lane")
                    .push(Sample { timestamp, value })
                    .expect("lane open");
            }
            ReplayEvent::EnvSample {
                machine,
                sensor,
                timestamp,
                value,
            } => {
                let id = LaneId {
                    machine,
                    sensor,
                    kind: LaneKind::Environment,
                };
                lanes
                    .get_mut(&id)
                    .expect("env lane")
                    .push(Sample { timestamp, value })
                    .expect("lane open");
            }
            ReplayEvent::JobComplete { machine, caq, .. } => {
                detector.drain(&mut router).expect("drain");
                detector.job_complete(&machine, caq).expect("job_complete");
            }
        }
    }
    detector.drain(&mut router).expect("final drain");
    let out = detector.finish().expect("finish");

    println!(
        "ingested {} samples ({} released, {} late, {} duplicate)\n",
        out.stats.samples_ingested,
        out.stats.samples_released,
        out.stats.late_dropped,
        out.stats.duplicates_dropped
    );
    let fusion = FusionRule::default_weighted();
    println!("top streaming outliers by fused triple score:");
    for outlier in out
        .report
        .ranked_by(|o| fusion.score(o))
        .into_iter()
        .take(8)
    {
        println!("  {}", outlier.summary());
    }
    println!(
        "\n{} outliers total, {} suspected measurement errors — identical \
         to the batch pipeline on the finished plant (pinned by \
         crates/stream/tests/stream_batch_equivalence.rs)",
        out.report.len(),
        out.report.warnings.len()
    );
}
