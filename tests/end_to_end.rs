//! Cross-crate integration tests: scenario generation → level detection →
//! Algorithm 1 → evaluation, through the public facade.

use hierod::core::experiment::{evaluate_levels, job_level_eval, point_level_eval, triage_eval};
use hierod::core::pipeline::build_report;
use hierod::core::{find_hierarchical_outliers, AlgorithmPolicy, FindOptions, FusionRule};
use hierod::hierarchy::{Level, LevelView};
use hierod::synth::{ScenarioBuilder, Scope};

fn standard() -> hierod::synth::Scenario {
    ScenarioBuilder::new(2024)
        .machines(3)
        .jobs_per_machine(10)
        .redundancy(3)
        .phase_samples(50)
        .anomaly_rate(0.3)
        .measurement_error_fraction(0.5)
        .magnitude_sigmas(12.0)
        .build()
}

#[test]
fn full_pipeline_produces_consistent_triples() {
    let scenario = standard();
    let report = find_hierarchical_outliers(&scenario.plant, Level::Phase, &FindOptions::default())
        .expect("pipeline");
    assert!(!report.is_empty(), "injections must produce detections");
    for o in &report.outliers {
        // Triple invariants.
        assert!((0.0..=1.0).contains(&o.support), "support {}", o.support);
        assert!((1..=5).contains(&o.global_score));
        assert!(o.outlierness.is_finite() && o.outlierness > 0.0);
        // Provenance resolves against the plant.
        let line = scenario.plant.line(&o.machine).expect("machine exists");
        if let Some(job) = &o.job {
            let job = line.job(job).expect("job exists");
            if let (Some(phase), Some(sensor), Some(idx)) = (o.phase, o.sensor.as_deref(), o.index)
            {
                let phase = job.phase(phase).expect("phase exists");
                let series = phase.sensor_series(sensor).expect("sensor exists");
                assert!(idx < series.len());
                assert_eq!(o.timestamp, Some(series.timestamps()[idx]));
            }
        }
    }
}

#[test]
fn deterministic_end_to_end() {
    let a = find_hierarchical_outliers(&standard().plant, Level::Phase, &FindOptions::default())
        .unwrap();
    let b = find_hierarchical_outliers(&standard().plant, Level::Phase, &FindOptions::default())
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn every_start_level_works() {
    let scenario = standard();
    for level in Level::ALL {
        let report = find_hierarchical_outliers(&scenario.plant, level, &FindOptions::default())
            .unwrap_or_else(|e| panic!("level {level}: {e}"));
        for o in &report.outliers {
            assert_eq!(o.level, level);
        }
        // Warnings only reference outliers of this report.
        for w in &report.warnings {
            let hierod::core::Warning::SuspectedMeasurementError { outlier_idx, .. } = w;
            assert!(*outlier_idx < report.len());
        }
    }
}

#[test]
fn support_separates_scopes_end_to_end() {
    let scenario = ScenarioBuilder::new(31)
        .machines(3)
        .jobs_per_machine(12)
        .redundancy(3)
        .phase_samples(50)
        .anomaly_rate(0.6)
        .measurement_error_fraction(0.5)
        .magnitude_sigmas(14.0)
        .build();
    let triage = triage_eval(&scenario, &AlgorithmPolicy::default()).expect("triage");
    assert!(triage.matched_process > 0);
    assert!(triage.matched_measurement > 0);
    assert!(
        triage.support_auc.expect("both classes") > 0.7,
        "support AUC {:?}",
        triage.support_auc
    );
}

#[test]
fn hierarchy_improves_or_matches_flat_baseline() {
    let scenario = standard();
    let policy = AlgorithmPolicy::default();
    let fusion = FusionRule::default_weighted();
    let points = point_level_eval(&scenario, &policy, fusion).expect("points");
    let (b, h) = (
        points.baseline.pr_auc.expect("positives"),
        points.hierarchical.pr_auc.expect("positives"),
    );
    assert!(h >= b * 0.99, "hier {h} vs base {b}");
    let jobs = job_level_eval(&scenario, &policy, fusion).expect("jobs");
    if let (Some(jb), Some(jh)) = (jobs.baseline.roc_auc, jobs.hierarchical.roc_auc) {
        assert!(jh >= jb * 0.95, "job hier {jh} vs base {jb}");
    }
}

#[test]
fn measurement_errors_never_reach_high_global_scores_with_high_support() {
    let scenario = ScenarioBuilder::new(77)
        .machines(2)
        .jobs_per_machine(12)
        .redundancy(4)
        .phase_samples(50)
        .anomaly_rate(0.5)
        .measurement_error_fraction(1.0)
        .magnitude_sigmas(14.0)
        .build();
    let report =
        find_hierarchical_outliers(&scenario.plant, Level::Phase, &FindOptions::default()).unwrap();
    // Every injection is a measurement error; detected outliers matched to
    // one must have low support.
    for o in &report.outliers {
        let (Some(job), Some(phase), Some(sensor), Some(idx)) =
            (o.job.as_deref(), o.phase, o.sensor.as_deref(), o.index)
        else {
            continue;
        };
        let matched = scenario.truth.injections.iter().any(|r| {
            r.scope == Scope::MeasurementError
                && r.machine == o.machine
                && r.job == job
                && r.phase == phase
                && r.affected_sensors.iter().any(|a| a == sensor)
                && idx + 2 >= r.start_idx
                && idx <= r.start_idx + r.len + 2
        });
        if matched {
            assert!(
                o.support <= 0.5,
                "measurement error with support {}: {}",
                o.support,
                o.summary()
            );
        }
    }
}

#[test]
fn level_views_feed_detections_consistently() {
    let scenario = standard();
    let policy = AlgorithmPolicy::default();
    let detections = evaluate_levels(&scenario, &policy).expect("levels");
    // Every phase-level scored series corresponds to a real plant series.
    let phase_view = LevelView::extract(&scenario.plant, Level::Phase);
    assert_eq!(
        detections[&Level::Phase].series_scores.len(),
        phase_view.series.len()
    );
    // Job scores cover every job exactly once.
    assert_eq!(
        detections[&Level::Job].vector_scores.len(),
        scenario.plant.job_count()
    );
    // Reports built from shared detections agree with the one-shot API.
    let direct =
        find_hierarchical_outliers(&scenario.plant, Level::Phase, &FindOptions::default()).unwrap();
    let shared = build_report(&scenario.plant, Level::Phase, &detections, &policy).unwrap();
    assert_eq!(direct, shared);
}

#[test]
fn clean_plant_yields_quiet_report_at_every_level() {
    let scenario = ScenarioBuilder::new(13)
        .machines(2)
        .jobs_per_machine(6)
        .phase_samples(50)
        .anomaly_rate(0.0)
        .build();
    for level in Level::ALL {
        let report =
            find_hierarchical_outliers(&scenario.plant, level, &FindOptions::default()).unwrap();
        let budget = match level {
            Level::Phase => 12, // a few noise crossings are tolerable
            _ => 6,
        };
        assert!(
            report.len() <= budget,
            "level {level}: {} outliers on a clean plant",
            report.len()
        );
    }
}

#[test]
fn environment_start_level_detects_hvac_excursions_and_warns() {
    // A pure ambient excursion (HVAC event) touches nothing below the
    // environment level. Per the paper's downward rule — "if no outlier can
    // be found at a lower level, but in a higher level, a measurement error
    // must be assumed" — starting Algorithm 1 at level ③ must detect the
    // excursion AND flag it as a suspected measurement error, because the
    // job level below holds no associated evidence.
    let scenario = ScenarioBuilder::new(404)
        .machines(3)
        .jobs_per_machine(6)
        .phase_samples(40)
        .anomaly_rate(0.0)
        .environment_anomalies(1.0, 8.0)
        .build();
    assert_eq!(scenario.truth.environment_injections.len(), 3);
    let report =
        find_hierarchical_outliers(&scenario.plant, Level::Environment, &FindOptions::default())
            .expect("environment start level");
    assert!(
        !report.is_empty(),
        "HVAC excursions must be detected at the environment level"
    );
    // Every detected env outlier matching a true excursion carries a
    // downward measurement-error warning (nothing below confirms it).
    let mut matched_and_warned = 0;
    let mut matched = 0;
    for (i, o) in report.outliers.iter().enumerate() {
        let hit = scenario.truth.environment_injections.iter().any(|r| {
            r.machine == o.machine
                && o.sensor.as_deref() == Some(r.sensor.as_str())
                && o.index
                    .map(|idx| idx + 2 >= r.start_idx && idx <= r.start_idx + r.len + 2)
                    .unwrap_or(false)
        });
        if hit {
            matched += 1;
            if report.is_suspected_measurement_error(i) {
                matched_and_warned += 1;
            }
        }
    }
    assert!(matched > 0, "no detected outlier matched a true excursion");
    assert_eq!(
        matched, matched_and_warned,
        "a process-free ambient event must always warn (paper's downward rule)"
    );
}
