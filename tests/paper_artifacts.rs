//! Integration tests pinning the reproduced paper artifacts (the checks the
//! `repro_*` binaries print, asserted so CI catches drift).

use hierod::corpus::{CorpusGenerator, QueryEngine, FIG3_FIELDS};
use hierod::detect::registry::{registry, render_table1};
use hierod::detect::{PointScorer, TechniqueClass};
use hierod::eval::roc_auc;
use hierod::synth::scenario::fig1_example;
use hierod::synth::OutlierType;

#[test]
fn table1_has_paper_structure() {
    // 21 rows, class populations as printed in the paper.
    let reg = registry();
    assert_eq!(reg.len(), 21);
    let count = |c: TechniqueClass| reg.iter().filter(|e| e.info.class == c).count();
    assert_eq!(count(TechniqueClass::DA), 10);
    assert_eq!(count(TechniqueClass::SA), 3);
    assert_eq!(count(TechniqueClass::UPA), 2);
    // Total check marks across the table: sum of per-row counts
    // (1+1+2+3+1+2+3+1+3+3 + 2+2 + 2 + 2+3+1 + 1 + 1 + 2 + 2 + 1 = 39).
    let marks: usize = reg.iter().map(|e| e.info.capabilities.count()).sum();
    assert_eq!(marks, 39);
    let rendered = render_table1();
    assert_eq!(rendered.lines().count(), 23);
}

#[test]
fn fig1_additive_outlier_is_detected_perfectly_by_point_scorers() {
    let (series, labels) = fig1_example(OutlierType::Additive, 400, 7);
    let det = hierod::detect::pm::AutoregressiveModel::new(3).unwrap();
    let scores = det.score_points(series.values()).unwrap();
    assert_eq!(roc_auc(&scores, &labels), Some(1.0));
}

#[test]
fn fig1_all_types_place_top_score_inside_event() {
    let det = hierod::detect::pm::AutoregressiveModel::new(3).unwrap();
    for outlier in OutlierType::ALL {
        let (series, labels) = fig1_example(outlier, 400, 7);
        let scores = det.score_points(series.values()).unwrap();
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(labels[best], "{outlier}: top score at {best} outside event");
    }
}

#[test]
fn fig3_counts_and_ordering_match_calibration() {
    // Small scale for test speed; counts must match the calibrated targets
    // exactly and preserve the paper's bar ordering.
    let generator = CorpusGenerator::new(2019).with_scale(0.1);
    let index = generator.build_index();
    let engine = QueryEngine::new(&index);
    for field in &FIG3_FIELDS {
        assert_eq!(
            engine.count(&QueryEngine::fig3_query(field.term)),
            generator.expected_count(field),
            "field {}",
            field.term
        );
    }
    let count = |t: &str| engine.count(&QueryEngine::fig3_query(t));
    assert!(count("fault detection") >= count("anomaly detection"));
    assert!(count("anomaly detection") > count("outlier detection"));
    assert!(count("outlier detection") > count("event detection"));
    assert!(count("event detection") > count("change point detection"));
    assert!(count("change point detection") > count("novelty detection"));
    assert!(count("novelty detection") >= count("deviant discovery"));
}

#[test]
fn fig2_all_levels_populated_with_expected_shapes() {
    use hierod::hierarchy::{Level, LevelView};
    let scenario = hierod::synth::ScenarioBuilder::new(42)
        .machines(3)
        .jobs_per_machine(5)
        .redundancy(3)
        .phase_samples(40)
        .build();
    let plant = &scenario.plant;
    let phase = LevelView::extract(plant, Level::Phase);
    // 3 machines × 5 jobs × 5 phases × 9 sensors.
    assert_eq!(phase.series.len(), 3 * 5 * 5 * 9);
    assert_eq!(phase.sequences.len(), 3 * 5 * 5);
    let job = LevelView::extract(plant, Level::Job);
    assert_eq!(job.vectors.len(), 15);
    assert_eq!(job.vectors[0].features.len(), 9); // 5 setup + 4 CAQ
    let env = LevelView::extract(plant, Level::Environment);
    assert_eq!(env.series.len(), 6); // room temp + humidity per machine
    let line = LevelView::extract(plant, Level::ProductionLine);
    assert_eq!(line.series.len(), 3 * 9); // one series per job feature
    let prod = LevelView::extract(plant, Level::Production);
    assert_eq!(prod.series.len(), 3); // one summary per machine
                                      // Resolution ordering: phase level dominates the volume.
    assert!(phase.volume() > 10 * (job.volume() + line.volume() + prod.volume()));
}
