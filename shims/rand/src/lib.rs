//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace member provides the (small) API subset the hierod crates
//! actually use, with the same module paths and signatures:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — the seeded
//!   generator every synthetic scenario flows from;
//! * [`Rng::gen_range`] over integer and float ranges (half-open and
//!   inclusive);
//! * [`Rng::gen_bool`];
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The generator core is SplitMix64 (Steele et al., "Fast splittable
//! pseudorandom number generators"): one multiply + two xor-shifts per
//! draw, passes BigCrush, and is fully deterministic from the seed. The
//! *streams differ* from upstream `rand`'s ChaCha12-based `StdRng`; all
//! in-repo consumers treat the stream as opaque noise, so only
//! reproducibility-per-seed matters, which this preserves.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        // 53 uniform mantissa bits, exactly like sampling a f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// The low-level generator trait (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Ranges a uniform value can be drawn from (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased bounded integer draw in `[0, span)` — Lemire's multiply-shift
/// with the nearly-divisionless rejection step.
fn bounded_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = (rng.next_u64() >> 11) as $t * (1.0 / ((1u64 << 53) - 1) as $t);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator (SplitMix64 core — see crate docs for
    /// how this differs from upstream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0_u64..1000), b.gen_range(0_u64..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100)
            .filter(|_| {
                StdRng::seed_from_u64(42).gen_range(0_u64..1000) == c.gen_range(0_u64..1000)
            })
            .count();
        assert!(same < 50, "different seeds must diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3_usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5_i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0_f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&g));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0_usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 32-element shuffle staying sorted is ~impossible"
        );
    }
}
