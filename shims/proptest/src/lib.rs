//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot fetch crates.io, so this workspace member
//! re-implements the subset of proptest the repo's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`;
//! * [`Strategy`] over numeric ranges, tuples, [`Just`], `any::<bool>()`,
//!   `prop::collection::vec`, `.prop_map`, `.prop_flat_map`;
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message instead of a minimized counterexample.
//! * **Deterministic seeding.** Each test's RNG is seeded from the hash of
//!   its function name, so failures reproduce exactly across runs; the
//!   `PROPTEST_SEED` environment variable (a u64) perturbs the seed for
//!   exploratory runs.
//! * `proptest-regressions` files are ignored.

#![warn(missing_docs)]

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic RNG driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (stable across runs) plus the optional
    /// `PROPTEST_SEED` environment override.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                h ^= extra.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let mut m = (self.next_u64() as u128) * (span as u128);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                m = (self.next_u64() as u128) * (span as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values (subset of `proptest::strategy::Strategy`;
/// sampling only, no shrink trees).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent strategies).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);

/// `any::<T>()` support (subset: the types the tests request).
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// The `prop::` namespace (subset).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Admissible length specifications for [`vec`].
        pub trait SizeRange {
            /// Draws a length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for std::ops::Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty vec size range");
                self.start + rng.below((self.end - self.start) as u64) as usize
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                *self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
            }
        }

        /// Strategy for `Vec<S::Value>` with a drawn length.
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates vectors whose elements come from `element` and whose
        /// length is drawn from `len`.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// The property-test entry macro. Each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ [$crate::ProptestConfig::default()] $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut case: u32 = 0;
            while case < config.cases {
                case += 1;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_tests!{ [$cfg] $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_deterministically() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        let s = (0_usize..10, -1.0_f64..1.0);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a).0, s.generate(&mut b).0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0_u64..100, 3..9)) {
            prop_assert!((3..9).contains(&v.len()));
            for x in &v { prop_assert!(*x < 100); }
        }

        #[test]
        fn flat_map_threads_dependencies((n, v) in (1_usize..8).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0.0_f64..1.0, n))
        })) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_skips_cases(x in 0_i32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn any_bool_varies(bits in prop::collection::vec(any::<bool>(), 64)) {
            // 64 fair coin flips landing all on one side is ~1e-19.
            prop_assert!(bits.iter().any(|&b| b) && bits.iter().any(|&b| !b));
        }
    }
}
