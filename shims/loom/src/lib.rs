//! Offline stand-in for the `loom` model checker.
//!
//! The build environment has no crates.io access, so this shim implements
//! the slice of loom that the workspace's concurrency models need:
//! [`model`] runs a closure repeatedly under a **cooperative scheduler**
//! that permits exactly one logical thread to run at a time and treats
//! every synchronization operation ([`sync::Mutex`] lock/unlock,
//! [`sync::Condvar`] wait/notify, [`sync::atomic`] access, spawn, join)
//! as a scheduling decision point. Across runs it performs a
//! depth-first search over those decisions with a **preemption bound**
//! (CHESS-style: most concurrency bugs need only a couple of forced
//! context switches), replaying each explored schedule prefix
//! deterministically and diverging at the next unexplored choice.
//!
//! Differences from real loom, by design:
//!
//! * Exploration is preemption-bounded DFS, not DPOR; the bound (default
//!   2, `LOOM_MAX_PREEMPTIONS`) and the schedule cap
//!   (`LOOM_MAX_BRANCHES`, default 20 000) truncate the search instead of
//!   proving exhaustiveness. A truncated search prints a notice.
//! * Atomics are modeled as **logical interleavings only**: every access
//!   is a decision point but executes with `SeqCst` std semantics, so
//!   check-then-act races and lost updates are explored while
//!   weak-memory reorderings are not (the nightly TSan CI job covers
//!   that axis). Condvar waits park the logical thread; a lost wakeup
//!   leaves no runnable thread and is reported as a deadlock.
//! * Outside a [`model`] run every primitive degrades to its `std`
//!   behaviour, so code compiled with `--features loom` still runs its
//!   ordinary tests.
//!
//! Extras over real loom: [`thread::scope`] mirrors
//! `std::thread::scope`, so scoped-borrowing code can be modeled without
//! an `Arc` rewrite.

pub mod sched;
pub mod sync;
pub mod thread;

pub use sched::model;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// The classic lost update: read under one lock, write under another.
    /// A real model checker must surface BOTH final values — 2 (serial)
    /// and 1 (both threads read 0 before either writes).
    #[test]
    fn explores_lost_update_interleavings() {
        let observed = std::sync::Mutex::new(HashSet::new());
        model(|| {
            let counter = sync::Mutex::new(0_u32);
            thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        let v = *counter.lock().expect("model mutex");
                        // Lock dropped here: the other thread may interleave.
                        *counter.lock().expect("model mutex") = v + 1;
                    });
                }
            });
            let end = *counter.lock().expect("model mutex");
            observed.lock().expect("collector").insert(end);
        });
        let observed = observed.into_inner().expect("collector");
        assert!(observed.contains(&2), "serial schedule not explored");
        assert!(
            observed.contains(&1),
            "lost-update schedule not explored: {observed:?}"
        );
    }

    /// With the read-modify-write under a single critical section, every
    /// explored schedule must end at 2.
    #[test]
    fn mutex_gives_mutual_exclusion_in_every_schedule() {
        model(|| {
            let counter = sync::Mutex::new(0_u32);
            thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        *counter.lock().expect("model mutex") += 1;
                    });
                }
            });
            assert_eq!(*counter.lock().expect("model mutex"), 2);
        });
    }

    /// Opposite lock orders deadlock under some schedule; the shim must
    /// find it and panic rather than hang.
    #[test]
    fn detects_abba_deadlock() {
        let run = std::panic::catch_unwind(|| {
            model(|| {
                let a = sync::Mutex::new(());
                let b = sync::Mutex::new(());
                thread::scope(|s| {
                    s.spawn(|| {
                        let _ga = a.lock().expect("a");
                        let _gb = b.lock().expect("b");
                    });
                    s.spawn(|| {
                        let _gb = b.lock().expect("b");
                        let _ga = a.lock().expect("a");
                    });
                });
            });
        });
        assert!(run.is_err(), "ABBA deadlock was not detected");
    }

    /// A child assertion failure propagates out of `model` (with the
    /// schedule trace on stderr) instead of wedging parked threads.
    #[test]
    fn child_panic_propagates() {
        let run = std::panic::catch_unwind(|| {
            model(|| {
                thread::scope(|s| {
                    s.spawn(|| panic!("child failure"));
                });
            });
        });
        assert!(run.is_err());
    }

    /// Outside `model`, the primitives behave exactly like `std`.
    #[test]
    fn std_passthrough_outside_model() {
        let m = sync::Mutex::new(5_i32);
        *m.lock().expect("std mutex") += 1;
        assert_eq!(*m.lock().expect("std mutex"), 6);
        let sum = thread::scope(|s| {
            let h = s.spawn(|| 21);
            h.join().expect("join") + 21
        });
        assert_eq!(sum, 42);
        thread::yield_now();
    }

    /// Condvar handoff: a consumer waits for a flag the producer sets.
    /// Every explored schedule must complete (the wait must neither hang
    /// nor miss the notify, including when notify fires before the wait —
    /// the predicate loop covers that case).
    #[test]
    fn condvar_handoff_completes_in_every_schedule() {
        model(|| {
            let pair = (sync::Mutex::new(false), sync::Condvar::new());
            thread::scope(|s| {
                s.spawn(|| {
                    let (lock, cv) = &pair;
                    let mut ready = lock.lock().expect("model mutex");
                    while !*ready {
                        ready = cv.wait(ready).expect("model cv");
                    }
                });
                s.spawn(|| {
                    let (lock, cv) = &pair;
                    *lock.lock().expect("model mutex") = true;
                    cv.notify_all();
                });
            });
        });
    }

    /// A wait with no notifier is a lost wakeup; the model must report it
    /// as a deadlock instead of hanging.
    #[test]
    fn missing_notify_is_detected_as_deadlock() {
        let run = std::panic::catch_unwind(|| {
            model(|| {
                let pair = (sync::Mutex::new(false), sync::Condvar::new());
                thread::scope(|s| {
                    s.spawn(|| {
                        let (lock, cv) = &pair;
                        let mut ready = lock.lock().expect("model mutex");
                        while !*ready {
                            ready = cv.wait(ready).expect("model cv");
                        }
                    });
                });
            });
        });
        assert!(run.is_err(), "missing notify was not detected");
    }

    /// Unsynchronized check-then-act on an atomic: the explorer must find
    /// the schedule where both threads read 0 and the counter loses an
    /// increment, and also the serial schedule where it doesn't.
    #[test]
    fn explores_atomic_lost_update_interleavings() {
        use sync::atomic::{AtomicUsize, Ordering};
        let observed = std::sync::Mutex::new(HashSet::new());
        model(|| {
            let counter = AtomicUsize::new(0);
            thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        let v = counter.load(Ordering::SeqCst);
                        counter.store(v + 1, Ordering::SeqCst);
                    });
                }
            });
            observed
                .lock()
                .expect("collector")
                .insert(counter.load(Ordering::SeqCst));
        });
        let observed = observed.into_inner().expect("collector");
        assert!(observed.contains(&2), "serial schedule not explored");
        assert!(
            observed.contains(&1),
            "atomic lost-update schedule not explored: {observed:?}"
        );
    }

    /// `fetch_add` is atomic: no schedule may lose an increment.
    #[test]
    fn fetch_add_never_loses_updates() {
        use sync::atomic::{AtomicUsize, Ordering};
        model(|| {
            let counter = AtomicUsize::new(0);
            thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::SeqCst), 2);
        });
    }
}
