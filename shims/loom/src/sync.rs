//! Model-aware synchronization primitives.
//!
//! [`Mutex`], [`Condvar`], and [`atomic`] mirror their `std::sync`
//! counterparts (the subset the workspace uses). Inside a
//! [`model`](crate::model) run every lock, wait, notify, and atomic access
//! routes through the scheduler — blocking deschedules the logical thread,
//! and each operation is a decision point the explorer permutes. Outside a
//! model run they are plain `std` primitives.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, LockResult, PoisonError};

use crate::sched::{self, Scheduler};

#[path = "atomic.rs"]
pub mod atomic;

/// A mutex whose contention is visible to the model scheduler.
pub struct Mutex<T: ?Sized> {
    /// Model lock id; `None` when created outside a model run.
    id: Option<usize>,
    sched: Option<Arc<Scheduler>>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex, registering it with the running model (if any).
    pub fn new(value: T) -> Self {
        let (sched, id) = match sched::current() {
            Some((s, _)) => {
                let id = s.register_lock();
                (Some(s), Some(id))
            }
            None => (None, None),
        };
        Self {
            id,
            sched,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock. Under a model this is a scheduling decision
    /// point and may deschedule the calling logical thread.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match (&self.sched, self.id, sched::current()) {
            (Some(sched), Some(id), Some((_, me))) => {
                sched.acquire(id, me);
                // Model-level ownership is exclusive, so the std lock below
                // is uncontended; it exists to hand out a real guard.
                let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    inner: Some(inner),
                    hook: Some((sched.clone(), id, me)),
                    src: &self.inner,
                })
            }
            _ => match self.inner.lock() {
                Ok(inner) => Ok(MutexGuard {
                    inner: Some(inner),
                    hook: None,
                    src: &self.inner,
                }),
                Err(poison) => Err(PoisonError::new(MutexGuard {
                    inner: Some(poison.into_inner()),
                    hook: None,
                    src: &self.inner,
                })),
            },
        }
    }

    /// Mutable access through exclusive ownership — no locking, and thus
    /// no decision point (matches `std`; loom proper behaves the same).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("inner", &self.inner).finish()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Guard returned by [`Mutex::lock`]. Dropping it releases the model lock
/// (a decision point) after the underlying `std` guard.
pub struct MutexGuard<'a, T: ?Sized> {
    /// `Option` so `Drop` can release the std guard *before* the model
    /// release hook runs (other logical threads must be able to take the
    /// std lock the moment the model hands them ownership).
    inner: Option<std::sync::MutexGuard<'a, T>>,
    hook: Option<(Arc<Scheduler>, usize, usize)>,
    /// The mutex this guard came from, so [`Condvar::wait`] can re-lock it
    /// after the model scheduler hands ownership back.
    src: &'a std::sync::Mutex<T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken only in Drop")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken only in Drop")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((sched, lock, me)) = self.hook.take() {
            sched.release(lock, me);
        }
    }
}

/// A condition variable whose waits and notifies are visible to the model
/// scheduler.
///
/// Under a model, `wait` atomically releases the model lock and parks the
/// logical thread in a `WaitingCv` state; `notify_one`/`notify_all` move
/// waiters back to runnable. A notify that never arrives leaves no runnable
/// thread and the scheduler panics the model as a deadlock — lost-wakeup
/// bugs are therefore *detected*, not hung on. Outside a model this is a
/// plain `std::sync::Condvar`.
pub struct Condvar {
    /// Model condvar id; `None` when created outside a model run.
    id: Option<usize>,
    sched: Option<Arc<Scheduler>>,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condvar, registering it with the running model (if any).
    pub fn new() -> Self {
        let (sched, id) = match sched::current() {
            Some((s, _)) => {
                let id = s.register_condvar();
                (Some(s), Some(id))
            }
            None => (None, None),
        };
        Self {
            id,
            sched,
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    ///
    /// Like `std`, spurious wakeups are possible (under a model, any notify
    /// wakes the waiter regardless of predicate) — always wait in a
    /// `while !predicate` loop.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let src = guard.src;
        let hook = guard.hook.take();
        let std_guard = guard.inner.take();
        drop(guard); // fields taken: Drop is a no-op
        match (&self.sched, self.id, &hook, sched::current()) {
            (Some(sched), Some(cv), Some((_, lock, _)), Some((_, me))) => {
                // Release the std lock first so whichever thread the model
                // schedules next can take it; the model-level release+park
                // is atomic inside `cv_wait`.
                drop(std_guard);
                sched.cv_wait(cv, *lock, me);
                let inner = src.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    inner: Some(inner),
                    hook,
                    src,
                })
            }
            _ => {
                let std_guard = match std_guard {
                    Some(g) => g,
                    // Guard fields are only absent mid-Drop; unreachable for
                    // a live guard, but degrade to a fresh lock if it happens.
                    None => src.lock().unwrap_or_else(PoisonError::into_inner),
                };
                match self.inner.wait(std_guard) {
                    Ok(g) => Ok(MutexGuard {
                        inner: Some(g),
                        hook,
                        src,
                    }),
                    Err(poison) => Err(PoisonError::new(MutexGuard {
                        inner: Some(poison.into_inner()),
                        hook,
                        src,
                    })),
                }
            }
        }
    }

    /// Wakes one waiter (the lowest thread id under a model).
    pub fn notify_one(&self) {
        match (&self.sched, self.id, sched::current()) {
            (Some(sched), Some(cv), Some((_, me))) => sched.cv_notify(cv, me, false),
            _ => self.inner.notify_one(),
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        match (&self.sched, self.id, sched::current()) {
            (Some(sched), Some(cv), Some((_, me))) => sched.cv_notify(cv, me, true),
            _ => self.inner.notify_all(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
