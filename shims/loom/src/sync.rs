//! Model-aware synchronization primitives.
//!
//! [`Mutex`] mirrors `std::sync::Mutex`'s API (the subset the workspace
//! uses). Inside a [`model`](crate::model) run every `lock` routes through
//! the scheduler — blocking on a held lock deschedules the logical thread,
//! and acquire/release are decision points the explorer permutes. Outside
//! a model run it is a plain `std` mutex.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, LockResult, PoisonError};

use crate::sched::{self, Scheduler};

/// A mutex whose contention is visible to the model scheduler.
pub struct Mutex<T: ?Sized> {
    /// Model lock id; `None` when created outside a model run.
    id: Option<usize>,
    sched: Option<Arc<Scheduler>>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex, registering it with the running model (if any).
    pub fn new(value: T) -> Self {
        let (sched, id) = match sched::current() {
            Some((s, _)) => {
                let id = s.register_lock();
                (Some(s), Some(id))
            }
            None => (None, None),
        };
        Self {
            id,
            sched,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock. Under a model this is a scheduling decision
    /// point and may deschedule the calling logical thread.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match (&self.sched, self.id, sched::current()) {
            (Some(sched), Some(id), Some((_, me))) => {
                sched.acquire(id, me);
                // Model-level ownership is exclusive, so the std lock below
                // is uncontended; it exists to hand out a real guard.
                let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    inner: Some(inner),
                    hook: Some((sched.clone(), id, me)),
                })
            }
            _ => match self.inner.lock() {
                Ok(inner) => Ok(MutexGuard {
                    inner: Some(inner),
                    hook: None,
                }),
                Err(poison) => Err(PoisonError::new(MutexGuard {
                    inner: Some(poison.into_inner()),
                    hook: None,
                })),
            },
        }
    }

    /// Mutable access through exclusive ownership — no locking, and thus
    /// no decision point (matches `std`; loom proper behaves the same).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("inner", &self.inner).finish()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Guard returned by [`Mutex::lock`]. Dropping it releases the model lock
/// (a decision point) after the underlying `std` guard.
pub struct MutexGuard<'a, T: ?Sized> {
    /// `Option` so `Drop` can release the std guard *before* the model
    /// release hook runs (other logical threads must be able to take the
    /// std lock the moment the model hands them ownership).
    inner: Option<std::sync::MutexGuard<'a, T>>,
    hook: Option<(Arc<Scheduler>, usize, usize)>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken only in Drop")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken only in Drop")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((sched, lock, me)) = self.hook.take() {
            sched.release(lock, me);
        }
    }
}
