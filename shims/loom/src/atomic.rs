//! Model-aware atomics (sequentially consistent semantics only).
//!
//! Each access is a scheduler decision point inside a model run: the
//! explorer may preempt between any two consecutive atomic operations,
//! which surfaces *logical* interleaving bugs — lost updates, missed
//! flags, check-then-act races. There is deliberately NO weak-memory
//! model: under the model every operation executes with `SeqCst` std
//! semantics regardless of the ordering argument, so `Acquire`/`Release`
//! misuse that only misbehaves on weakly ordered hardware is out of scope
//! (the nightly ThreadSanitizer CI job covers that axis). Outside a model
//! run every operation passes straight through to `std` with the caller's
//! ordering.

use std::sync::atomic as std_atomic;
pub use std::sync::atomic::Ordering;

use crate::sched;

/// A decision point before the operation, when a model is running.
fn decision_point() -> bool {
    match sched::current() {
        Some((sched, me)) => {
            sched.yield_point(me);
            true
        }
        None => false,
    }
}

/// `std::sync::atomic::fence` with a model decision point. Under the model
/// the fence itself is a no-op for visibility (every modeled access already
/// runs `SeqCst`, so the total order the fence asks for is the only order
/// there is), but it still yields: code on either side of the fence must be
/// preemptible exactly like code around any other atomic op.
pub fn fence(order: Ordering) {
    if decision_point() {
        std_atomic::fence(Ordering::SeqCst);
    } else {
        std_atomic::fence(order);
    }
}

/// `std::sync::atomic::AtomicUsize` with model-visible accesses.
#[derive(Debug, Default)]
pub struct AtomicUsize {
    inner: std_atomic::AtomicUsize,
}

impl AtomicUsize {
    /// Creates a new atomic. `const`, so no model registration happens (or
    /// is needed): accesses self-report to whatever model is running.
    pub const fn new(value: usize) -> Self {
        Self {
            inner: std_atomic::AtomicUsize::new(value),
        }
    }

    /// Loads the value.
    pub fn load(&self, order: Ordering) -> usize {
        if decision_point() {
            self.inner.load(Ordering::SeqCst)
        } else {
            self.inner.load(order)
        }
    }

    /// Stores a value.
    pub fn store(&self, value: usize, order: Ordering) {
        if decision_point() {
            self.inner.store(value, Ordering::SeqCst);
        } else {
            self.inner.store(value, order);
        }
    }

    /// Swaps in a value, returning the previous one.
    pub fn swap(&self, value: usize, order: Ordering) -> usize {
        if decision_point() {
            self.inner.swap(value, Ordering::SeqCst)
        } else {
            self.inner.swap(value, order)
        }
    }

    /// Adds to the value, returning the previous one.
    pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
        if decision_point() {
            self.inner.fetch_add(value, Ordering::SeqCst)
        } else {
            self.inner.fetch_add(value, order)
        }
    }

    /// Subtracts from the value, returning the previous one.
    pub fn fetch_sub(&self, value: usize, order: Ordering) -> usize {
        if decision_point() {
            self.inner.fetch_sub(value, Ordering::SeqCst)
        } else {
            self.inner.fetch_sub(value, order)
        }
    }

    /// Compare-and-exchange; `Ok(previous)` on success, `Err(actual)` when
    /// the current value differs from `current`.
    pub fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        if decision_point() {
            self.inner
                .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
        } else {
            self.inner.compare_exchange(current, new, success, failure)
        }
    }
}

/// `std::sync::atomic::AtomicBool` with model-visible accesses.
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std_atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a new atomic flag (`const`; see [`AtomicUsize::new`]).
    pub const fn new(value: bool) -> Self {
        Self {
            inner: std_atomic::AtomicBool::new(value),
        }
    }

    /// Loads the flag.
    pub fn load(&self, order: Ordering) -> bool {
        if decision_point() {
            self.inner.load(Ordering::SeqCst)
        } else {
            self.inner.load(order)
        }
    }

    /// Stores the flag.
    pub fn store(&self, value: bool, order: Ordering) {
        if decision_point() {
            self.inner.store(value, Ordering::SeqCst);
        } else {
            self.inner.store(value, order);
        }
    }

    /// Swaps the flag, returning the previous value.
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        if decision_point() {
            self.inner.swap(value, Ordering::SeqCst)
        } else {
            self.inner.swap(value, order)
        }
    }

    /// Compare-and-exchange on the flag.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        if decision_point() {
            self.inner
                .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
        } else {
            self.inner.compare_exchange(current, new, success, failure)
        }
    }
}
