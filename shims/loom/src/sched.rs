//! The cooperative scheduler and its DFS explorer.
//!
//! One logical thread runs at a time. Every decision point calls
//! [`Scheduler::decide`], which consults the replayed schedule prefix (or
//! extends it with the default choice), switches `active` to the chosen
//! thread, and blocks the caller until it is scheduled again. The
//! controller in [`model`] advances the schedule odometer between runs.

use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Sentinel `active` value when every thread has finished.
const NOBODY: usize = usize::MAX;

#[derive(Debug, Clone, PartialEq)]
enum ThreadState {
    /// Eligible to be scheduled.
    Runnable,
    /// Waiting for a model lock.
    Blocked(usize),
    /// Parked on a model condvar, waiting for a notify.
    WaitingCv(usize),
    /// Waiting for these threads to finish.
    Joining(Vec<usize>),
    /// Done.
    Finished,
}

#[derive(Debug)]
struct State {
    threads: Vec<ThreadState>,
    /// Owner of each model lock, by lock id.
    locks: Vec<Option<usize>>,
    /// Number of registered model condvars (ids are dense).
    condvars: usize,
    /// The one thread allowed to run.
    active: usize,
    /// Choice taken at each decision step (replayed prefix + extensions).
    choices: Vec<usize>,
    /// Number of alternatives that were available at each step.
    sizes: Vec<usize>,
    /// Next decision step index.
    step: usize,
    /// Forced context switches consumed so far.
    preemptions: usize,
    /// Set on deadlock or a panicked thread: everyone unwinds.
    abort: bool,
}

/// The per-model-run scheduler shared by all controlled threads.
#[derive(Debug)]
pub struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
    preemption_bound: usize,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler/thread-id pair of the calling thread, when it is a
/// controlled thread of a running model.
pub fn current() -> Option<(Arc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(ctx: Option<(Arc<Scheduler>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

impl Scheduler {
    fn new(replay: Vec<usize>, preemption_bound: usize) -> Self {
        Self {
            state: Mutex::new(State {
                threads: vec![ThreadState::Runnable],
                locks: Vec::new(),
                condvars: 0,
                active: 0,
                choices: replay,
                sizes: Vec::new(),
                step: 0,
                preemptions: 0,
                abort: false,
            }),
            cv: Condvar::new(),
            preemption_bound,
        }
    }

    fn st(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a new controlled thread, returning its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.st();
        st.threads.push(ThreadState::Runnable);
        st.threads.len() - 1
    }

    /// Registers a new model lock, returning its id.
    pub(crate) fn register_lock(&self) -> usize {
        let mut st = self.st();
        st.locks.push(None);
        st.locks.len() - 1
    }

    /// Registers a new model condvar, returning its id.
    pub(crate) fn register_condvar(&self) -> usize {
        let mut st = self.st();
        let id = st.condvars;
        st.condvars += 1;
        id
    }

    /// The schedulable thread ids, in id order.
    fn runnable(st: &State) -> Vec<usize> {
        st.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == ThreadState::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    /// Takes one scheduling decision: picks the next active thread among
    /// the runnable ones, following the replay prefix or defaulting to
    /// "keep running the current thread" (no preemption). Panics the whole
    /// model on deadlock.
    fn decide(&self, st: &mut State) {
        let runnable = Self::runnable(st);
        if runnable.is_empty() {
            if st.threads.iter().all(|t| *t == ThreadState::Finished) {
                st.active = NOBODY;
                self.cv.notify_all();
                return;
            }
            st.abort = true;
            self.cv.notify_all();
            panic!(
                "loom shim: deadlock — no runnable thread (states: {:?})",
                st.threads
            );
        }
        // Choice list: continuing the active thread (when possible) first,
        // so the zero choice never costs a preemption; other runnable
        // threads only while the preemption budget lasts.
        let active_runnable = runnable.contains(&st.active);
        let choices: Vec<usize> = if active_runnable {
            if st.preemptions >= self.preemption_bound {
                vec![st.active]
            } else {
                std::iter::once(st.active)
                    .chain(runnable.iter().copied().filter(|&t| t != st.active))
                    .collect()
            }
        } else {
            runnable
        };
        let step = st.step;
        let pick_idx = if step < st.choices.len() {
            st.choices[step].min(choices.len() - 1)
        } else {
            st.choices.push(0);
            0
        };
        if step < st.sizes.len() {
            st.sizes[step] = choices.len();
        } else {
            st.sizes.push(choices.len());
        }
        st.step += 1;
        let next = choices[pick_idx];
        if active_runnable && next != st.active {
            st.preemptions += 1;
        }
        st.active = next;
        self.cv.notify_all();
    }

    /// Blocks until `me` is the active thread (or the model aborts).
    fn wait_for_turn<'a>(&'a self, mut st: MutexGuard<'a, State>, me: usize) {
        while st.active != me {
            if st.abort {
                drop(st);
                panic!("loom shim: model aborted");
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A plain decision point: `me` stays runnable, but another thread may
    /// be scheduled here.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut st = self.st();
        self.decide(&mut st);
        self.wait_for_turn(st, me);
    }

    /// Acquires model lock `lock` for `me`, blocking (and rescheduling)
    /// while another thread owns it.
    pub(crate) fn acquire(&self, lock: usize, me: usize) {
        self.yield_point(me);
        loop {
            let mut st = self.st();
            if st.locks[lock].is_none() {
                st.locks[lock] = Some(me);
                return;
            }
            st.threads[me] = ThreadState::Blocked(lock);
            self.decide(&mut st);
            self.wait_for_turn(st, me);
        }
    }

    /// Releases model lock `lock`, waking its waiters, and yields.
    ///
    /// Runs in guard `Drop` impls, including during unwinding: once the
    /// model is aborting it only transfers ownership and returns (a panic
    /// here would be a panic-in-drop, taking the whole process down).
    pub(crate) fn release(&self, lock: usize, me: usize) {
        let mut st = self.st();
        debug_assert_eq!(st.locks[lock], Some(me), "release by non-owner");
        st.locks[lock] = None;
        for t in st.threads.iter_mut() {
            if *t == ThreadState::Blocked(lock) {
                *t = ThreadState::Runnable;
            }
        }
        if st.abort {
            self.cv.notify_all();
            return;
        }
        self.decide(&mut st);
        self.wait_for_turn(st, me);
    }

    /// Parks `me` on condvar `cv`, atomically releasing model lock `lock`
    /// (waking its waiters), and re-acquires the lock after a notify.
    ///
    /// Release + park happen under one scheduler-state lock, so there is no
    /// window where a notify can slip between them — exactly the atomicity
    /// `std::sync::Condvar::wait` guarantees. A notify that never comes
    /// leaves the thread `WaitingCv` forever; with no runnable thread left
    /// the next [`Self::decide`] panics the model as a deadlock, which is
    /// how lost-wakeup bugs surface in tests.
    pub(crate) fn cv_wait(&self, cv: usize, lock: usize, me: usize) {
        {
            let mut st = self.st();
            debug_assert_eq!(st.locks[lock], Some(me), "cv_wait without owning the lock");
            st.locks[lock] = None;
            for t in st.threads.iter_mut() {
                if *t == ThreadState::Blocked(lock) {
                    *t = ThreadState::Runnable;
                }
            }
            st.threads[me] = ThreadState::WaitingCv(cv);
            self.decide(&mut st);
            self.wait_for_turn(st, me);
        }
        // Notified: re-acquire the lock. No leading yield_point — the wake
        // itself was the decision point (mirrors `acquire`'s inner loop).
        loop {
            let mut st = self.st();
            if st.locks[lock].is_none() {
                st.locks[lock] = Some(me);
                return;
            }
            st.threads[me] = ThreadState::Blocked(lock);
            self.decide(&mut st);
            self.wait_for_turn(st, me);
        }
    }

    /// Wakes one (lowest thread id) or all waiters of condvar `cv`; a
    /// decision point like any other synchronization edge.
    pub(crate) fn cv_notify(&self, cv: usize, me: usize, all: bool) {
        let mut st = self.st();
        for t in st.threads.iter_mut() {
            if *t == ThreadState::WaitingCv(cv) {
                *t = ThreadState::Runnable;
                if !all {
                    break;
                }
            }
        }
        self.decide(&mut st);
        self.wait_for_turn(st, me);
    }

    /// First schedule of a freshly spawned thread: wait to be picked.
    pub(crate) fn first_run(&self, me: usize) {
        let st = self.st();
        self.wait_for_turn(st, me);
    }

    /// Marks `me` finished, unblocks joiners, and schedules a successor.
    pub(crate) fn finish(&self, me: usize) {
        let mut st = self.st();
        st.threads[me] = ThreadState::Finished;
        for t in st.threads.iter_mut() {
            if let ThreadState::Joining(waiting) = t {
                waiting.retain(|&w| w != me);
                if waiting.is_empty() {
                    *t = ThreadState::Runnable;
                }
            }
        }
        self.decide(&mut st);
        // No wait: this thread is done.
    }

    /// Marks the model as failed (a controlled thread panicked) so waiting
    /// threads unwind instead of hanging.
    pub(crate) fn mark_abort(&self) {
        let mut st = self.st();
        st.abort = true;
        self.cv.notify_all();
    }

    /// Blocks `me` until every listed thread has finished.
    pub(crate) fn join_all(&self, me: usize, children: &[usize]) {
        let mut st = self.st();
        let pending: Vec<usize> = children
            .iter()
            .copied()
            .filter(|&c| st.threads[c] != ThreadState::Finished)
            .collect();
        if pending.is_empty() {
            return;
        }
        st.threads[me] = ThreadState::Joining(pending);
        self.decide(&mut st);
        self.wait_for_turn(st, me);
    }
}

/// DFS odometer over schedules.
struct Explorer {
    replay: Vec<usize>,
}

impl Explorer {
    /// Advances to the next unexplored schedule; false when the space is
    /// exhausted.
    fn advance(&mut self, mut sizes: Vec<usize>, mut choices: Vec<usize>) -> bool {
        while let (Some(&c), Some(&n)) = (choices.last(), sizes.last()) {
            if c + 1 < n {
                *choices.last_mut().expect("non-empty") += 1;
                self.replay = choices;
                return true;
            }
            choices.pop();
            sizes.pop();
        }
        false
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Explores the closure under permuted thread interleavings.
///
/// Runs `f` once per schedule: the first run takes the non-preemptive
/// schedule, and each subsequent run replays an explored prefix and
/// diverges at the last decision with untried alternatives, until the
/// preemption-bounded space is exhausted or `LOOM_MAX_BRANCHES` is hit.
/// Panics (assertion failures, deadlocks) propagate out of `model` with
/// the failing schedule's decision trace printed to stderr.
pub fn model<F: Fn()>(f: F) {
    let preemption_bound = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_branches = env_usize("LOOM_MAX_BRANCHES", 20_000);
    let mut explorer = Explorer { replay: Vec::new() };
    let mut schedules = 0_usize;
    let mut distinct_traces: HashSet<Vec<usize>> = HashSet::new();
    loop {
        schedules += 1;
        let sched = Arc::new(Scheduler::new(explorer.replay.clone(), preemption_bound));
        set_current(Some((sched.clone(), 0)));
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        set_current(None);
        let (sizes, choices) = {
            let st = sched.st();
            (st.sizes.clone(), st.choices.clone())
        };
        if let Err(panic) = run {
            eprintln!("loom shim: schedule {schedules} failed; decision trace: {choices:?}");
            std::panic::resume_unwind(panic);
        }
        {
            let mut st = sched.st();
            st.threads[0] = ThreadState::Finished;
            debug_assert!(
                st.threads.iter().all(|t| *t == ThreadState::Finished),
                "model closure returned with live threads"
            );
        }
        distinct_traces.insert(choices.clone());
        if schedules >= max_branches {
            eprintln!(
                "loom shim: exploration truncated at {schedules} schedules \
                 (LOOM_MAX_BRANCHES)"
            );
            break;
        }
        if !explorer.advance(sizes, choices) {
            break;
        }
    }
    // A completed search is the useful signal in test logs.
    eprintln!(
        "loom shim: explored {schedules} schedules ({} distinct traces, preemption bound \
         {preemption_bound})",
        distinct_traces.len()
    );
}
