//! Model-aware scoped threads.
//!
//! [`scope`] mirrors `std::thread::scope`. Under a [`model`](crate::model)
//! run each spawned closure becomes a controlled logical thread: it parks
//! until the scheduler picks it, every spawn is a decision point, and the
//! scope end joins through the scheduler so a blocked joiner deschedules
//! instead of spinning. A panicking child aborts the whole model (waking
//! every parked thread) and then propagates through the `std` scope as
//! usual. Outside a model run this is a zero-cost passthrough.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::sched::{self, Scheduler};

/// Scope handle passed to the [`scope`] closure.
pub struct Scope<'scope, 'env: 'scope> {
    std: &'scope std::thread::Scope<'scope, 'env>,
    ctx: Option<(Arc<Scheduler>, usize)>,
    children: RefCell<Vec<usize>>,
}

/// Handle for a thread spawned in a [`Scope`].
pub struct JoinHandle<'scope, T> {
    std: std::thread::ScopedJoinHandle<'scope, T>,
    model: Option<(Arc<Scheduler>, usize, usize)>,
}

impl<T> JoinHandle<'_, T> {
    /// Waits for the thread to finish, descheduling under a model.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((sched, me, child)) = self.model {
            sched.join_all(me, &[child]);
        }
        self.std.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; under a model it runs only when scheduled.
    pub fn spawn<F, T>(&self, f: F) -> JoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.ctx {
            Some((sched, me)) => {
                let child = sched.register_thread();
                self.children.borrow_mut().push(child);
                let sched2 = sched.clone();
                let handle = self.std.spawn(move || {
                    sched::set_current(Some((sched2.clone(), child)));
                    sched2.first_run(child);
                    let out = catch_unwind(AssertUnwindSafe(f));
                    sched::set_current(None);
                    match out {
                        Ok(v) => {
                            sched2.finish(child);
                            v
                        }
                        Err(panic) => {
                            // Wake every parked thread so the model unwinds
                            // instead of deadlocking, then let the std scope
                            // propagate the panic.
                            sched2.mark_abort();
                            resume_unwind(panic);
                        }
                    }
                });
                // The spawn itself is a decision point: the child may run
                // now or the parent may continue.
                sched.yield_point(*me);
                JoinHandle {
                    std: handle,
                    model: Some((sched.clone(), *me, child)),
                }
            }
            None => JoinHandle {
                std: self.std.spawn(f),
                model: None,
            },
        }
    }
}

/// Scoped-thread entry point; see the module docs.
///
/// Unlike `std`, the closure takes `&Scope` with an unconstrained borrow
/// (not `&'scope Scope`): our `Scope` wraps a *reference* to the invariant
/// `std::thread::Scope`, which cannot itself be borrowed for `'scope` from
/// inside the closure. Call sites written against `std` compile unchanged.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    let ctx = sched::current();
    std::thread::scope(|s| {
        let wrapped = Scope {
            std: s,
            ctx: ctx.clone(),
            children: RefCell::new(Vec::new()),
        };
        let out = f(&wrapped);
        // Join through the scheduler first so the implicit std join below
        // returns immediately instead of parking an *active* logical
        // thread (which would wedge the model).
        if let Some((sched, me)) = &wrapped.ctx {
            let children = wrapped.children.borrow();
            sched.join_all(*me, &children);
        }
        out
    })
}

/// Cooperative yield: a decision point under a model, `std` yield outside.
pub fn yield_now() {
    match sched::current() {
        Some((sched, me)) => sched.yield_point(me),
        None => std::thread::yield_now(),
    }
}
