//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot fetch crates.io, so this workspace member
//! provides the API subset the `crates/bench` benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, `criterion_group!`, `criterion_main!` — backed by a simple
//! wall-clock harness instead of criterion's statistical machinery.
//!
//! Each benchmark is warmed up briefly, then timed over enough iterations
//! to fill a measurement window; the mean per-iteration time is printed as
//! `<id> ... time: <t>`. Environment knobs:
//!
//! * `BENCH_WARMUP_MS` (default 50) — warm-up window per benchmark;
//! * `BENCH_MEASURE_MS` (default 300) — measurement window per benchmark.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Reads a millisecond knob from the environment.
fn env_ms(var: &str, default: u64) -> Duration {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(default))
}

/// Formats a per-iteration duration the way criterion's reports do.
fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The bench harness handle passed to every benchmark function.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: env_ms("BENCH_WARMUP_MS", 50),
            measure: env_ms("BENCH_MEASURE_MS", 300),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.warmup, self.measure, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the harness sizes runs by wall
    /// clock, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure = d;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.criterion.warmup, self.criterion.measure, &mut f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.criterion.warmup,
            self.criterion.measure,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter rendering.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timer handle handed to the closure being benchmarked.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    /// (total time, iterations) recorded by the last `iter` call.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `f`, running it repeatedly until the measurement window is
    /// filled.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        // Warm-up: run until the warm-up window elapses (at least once).
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if start.elapsed() >= self.warmup {
                break;
            }
        }
        // Size the measured batch from the observed warm-up rate.
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        let target = (self.measure.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64;
        let iters = target.clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn run_one<F>(id: &str, warmup: Duration, measure: Duration, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        warmup,
        measure,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((total, iters)) => {
            let per = total.as_secs_f64() / iters as f64;
            println!("{id:<60} time: {:>12}   ({iters} iters)", fmt_time(per));
        }
        None => println!("{id:<60} time:        (not measured)"),
    }
}

/// Declares a bench group: `criterion_group!(benches, fn_a, fn_b, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        }
    }

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = quick();
        let mut calls = 0_u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_compose_ids() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .bench_with_input(BenchmarkId::new("case", 3), &3_u64, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
        g.finish();
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 12).to_string(), "f/12");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
