//! The adaptive subsystem's equivalence suite (acceptance gate for
//! DESIGN.md §4.19).
//!
//! * **Passthrough ≡ plain** — an [`AdaptiveStream`] opened in
//!   passthrough mode produces a finish report *byte-identical* (via
//!   the wire codec) to a plain [`DurableStream`] driving the same
//!   scenario.
//! * **Adaptive determinism** — two identical adaptive runs produce
//!   identical reports, drift counters, and refit logs.
//! * **Drift scenario** — a regime shift raises `drift_events` and
//!   triggers store-trained refits, with counters flowing through
//!   `stats()` and `lane_stats()`.

use hierod_adapt::{AdaptiveStream, MonitorSpec, RefitPolicy};
use hierod_core::AlgorithmPolicy;
use hierod_hierarchy::{CaqResult, JobConfig, PhaseKind, RedundancyGroup, Sensor, SensorKind};
use hierod_store::store::StoreOptions;
use hierod_store::MemStorage;
use hierod_stream::{
    DurableStream, LaneId, LaneKind, Sample, ScorerMode, StreamConfig, StreamReport,
};
use hierod_wire::encode_report;

fn lane(machine: &str, sensor: &str, kind: LaneKind) -> LaneId {
    LaneId {
        machine: machine.into(),
        sensor: sensor.into(),
        kind,
    }
}

fn policy_and_config(mode: ScorerMode) -> (AlgorithmPolicy, StreamConfig) {
    (
        AlgorithmPolicy::default(),
        StreamConfig { lateness: 3, mode },
    )
}

fn open_plain(mode: ScorerMode) -> DurableStream<MemStorage> {
    let (policy, config) = policy_and_config(mode);
    let (d, _) = DurableStream::open(
        policy,
        config,
        MemStorage::new(),
        StoreOptions { group_commit: 1 },
    )
    .expect("open");
    d
}

/// Deterministic noise in [-0.5, 0.5] (SplitMix64 finalizer). Real
/// gauges are noisy; a noise-free sinusoid would let the AR scorer fit
/// near-exactly, collapse its residual scale, and emit astronomic
/// z-scores on perfectly normal samples.
fn noise(i: u64) -> f64 {
    let mut z = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((z ^ (z >> 31)) as f64 / u64::MAX as f64) - 0.5
}

/// A value at tick `t` of a noisy stream whose regime shifts by `shift`
/// after sample 300.
fn regime_value(i: u64, t: u64, shift: f64) -> f64 {
    let base = (t as f64 * 0.37).sin() + 0.2 * (t as f64 * 0.11).cos() + 0.6 * noise(i);
    if i >= 300 {
        base + shift
    } else {
        base
    }
}

/// Drives one machine, one long warm-up phase of `n` samples with a
/// regime shift of `shift` at sample 300, ticking every 64 samples.
/// Generic over the two stream types via a closure pair would obscure
/// more than it saves; the duplication is the test.
fn drive_plain(d: &mut DurableStream<MemStorage>, n: u64, shift: f64) -> Vec<StreamReport> {
    let bed = "m0.bed.0".to_string();
    d.machine_up(
        "m0",
        vec![Sensor::new(&bed, SensorKind::BedTemperature)],
        vec![RedundancyGroup::new(
            SensorKind::BedTemperature,
            vec![bed.clone()],
        )],
        &[],
    )
    .expect("machine up");
    d.job_start(
        "m0",
        "j0",
        0,
        JobConfig::new(vec!["speed".into()], vec![1.0]),
    )
    .expect("job start");
    d.phase_start("m0", PhaseKind::WarmUp, std::slice::from_ref(&bed))
        .expect("phase start");
    let mut reports = Vec::new();
    for i in 0..n {
        let t = i ^ 1; // mild out-of-order jitter
        d.ingest(
            &lane("m0", &bed, LaneKind::Phase),
            Sample {
                timestamp: t,
                value: regime_value(i, t, shift),
            },
        )
        .expect("ingest");
        if (i + 1) % 64 == 0 {
            reports.push(d.tick().expect("tick"));
        }
    }
    d.job_complete("m0", CaqResult::new(vec!["q".into()], vec![0.9], true))
        .expect("job complete");
    reports
}

fn drive_adaptive(d: &mut AdaptiveStream<MemStorage>, n: u64, shift: f64) -> Vec<StreamReport> {
    let bed = "m0.bed.0".to_string();
    d.machine_up(
        "m0",
        vec![Sensor::new(&bed, SensorKind::BedTemperature)],
        vec![RedundancyGroup::new(
            SensorKind::BedTemperature,
            vec![bed.clone()],
        )],
        &[],
    )
    .expect("machine up");
    d.job_start(
        "m0",
        "j0",
        0,
        JobConfig::new(vec!["speed".into()], vec![1.0]),
    )
    .expect("job start");
    d.phase_start("m0", PhaseKind::WarmUp, std::slice::from_ref(&bed))
        .expect("phase start");
    let mut reports = Vec::new();
    for i in 0..n {
        let t = i ^ 1;
        d.ingest(
            &lane("m0", &bed, LaneKind::Phase),
            Sample {
                timestamp: t,
                value: regime_value(i, t, shift),
            },
        )
        .expect("ingest");
        if (i + 1) % 64 == 0 {
            reports.push(d.tick().expect("tick"));
        }
    }
    d.job_complete("m0", CaqResult::new(vec!["q".into()], vec![0.9], true))
        .expect("job complete");
    reports
}

/// A sensitive monitor + eager policy so the short test scenario
/// actually exercises the refit path.
fn eager() -> (MonitorSpec, RefitPolicy) {
    (
        MonitorSpec::PageHinkley {
            delta: 0.02,
            lambda: 8.0,
            min_samples: 16,
        },
        RefitPolicy {
            on_drift: true,
            every_ticks: None,
            training_window: 512,
            min_training: 16,
        },
    )
}

#[test]
fn passthrough_report_is_byte_identical_to_plain() {
    // Same incremental scorer mode on both sides: the only difference
    // is the AdaptiveStream shell, which in passthrough mode must be
    // invisible down to the last wire byte.
    let mut plain = open_plain(ScorerMode::Incremental);
    drive_plain(&mut plain, 600, 6.0);
    let plain_report = plain.finish().expect("finish");

    let mut wrapped = AdaptiveStream::passthrough(open_plain(ScorerMode::Incremental));
    assert!(!wrapped.is_adaptive());
    drive_adaptive(&mut wrapped, 600, 6.0);
    let wrapped_report = wrapped.finish().expect("finish");

    assert_eq!(
        encode_report(&plain_report),
        encode_report(&wrapped_report),
        "passthrough adaptive stream altered the report"
    );
    assert_eq!(plain_report.stats.drift_events, 0);
    assert_eq!(plain_report.stats.refits, 0);
}

#[test]
fn adaptive_runs_are_deterministic() {
    let run = || {
        let (monitor, refit) = eager();
        let (policy, config) = policy_and_config(ScorerMode::Incremental);
        let mut d = AdaptiveStream::open(
            policy,
            config,
            MemStorage::new(),
            StoreOptions { group_commit: 1 },
            monitor,
            refit,
        )
        .expect("open");
        drive_adaptive(&mut d, 900, 8.0);
        let log = d.refit_log().to_vec();
        let stats = d.stats();
        let report = d.finish().expect("finish");
        (
            encode_report(&report),
            log,
            stats.drift_events,
            stats.refits,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "reports diverged");
    assert_eq!(a.1, b.1, "refit logs diverged");
    assert_eq!((a.2, a.3), (b.2, b.3), "counters diverged");
}

#[test]
fn drift_scenario_raises_counters_and_refits() {
    let (monitor, refit) = eager();
    let (policy, config) = policy_and_config(ScorerMode::Incremental);
    let mut d = AdaptiveStream::open(
        policy,
        config,
        MemStorage::new(),
        StoreOptions { group_commit: 1 },
        monitor,
        refit,
    )
    .expect("open");
    assert!(d.is_adaptive());
    drive_adaptive(&mut d, 900, 8.0);

    let stats = d.stats();
    assert!(stats.drift_events > 0, "no drift events: {stats:?}");
    assert!(stats.refits > 0, "no refits: {stats:?}");
    assert!(!d.refit_log().is_empty());
    let rec = &d.refit_log()[0];
    assert_eq!(rec.machine, "m0");
    assert_eq!(rec.sensor, "m0.bed.0");
    assert!(rec.trained_samples >= 16);

    // Counters flow per-lane too.
    let lanes = d.lane_stats();
    let bed = lanes
        .get(&lane("m0", "m0.bed.0", LaneKind::Phase))
        .expect("bed lane");
    assert_eq!(bed.drift_events, stats.drift_events);
    assert_eq!(bed.refits, stats.refits);

    // And into the finish report.
    let report = d.finish().expect("finish");
    assert!(report.stats.drift_events > 0);
    assert!(report.stats.refits > 0);
}

#[test]
fn quiet_scenario_never_refits() {
    // The default (conservative) monitor: the eager test monitor is
    // deliberately sensitive enough to trip on the scorer's own
    // cold-start score transient.
    let monitor = MonitorSpec::page_hinkley();
    let refit = eager().1;
    let (policy, config) = policy_and_config(ScorerMode::Incremental);
    let mut d = AdaptiveStream::open(
        policy,
        config,
        MemStorage::new(),
        StoreOptions { group_commit: 1 },
        monitor,
        refit,
    )
    .expect("open");
    drive_adaptive(&mut d, 600, 0.0); // no regime shift
    assert!(d.refit_log().is_empty(), "refit without drift");
    assert_eq!(d.stats().refits, 0);
}

#[test]
fn scheduled_refits_fire_without_drift() {
    let (policy, config) = policy_and_config(ScorerMode::Incremental);
    let mut d = AdaptiveStream::open(
        policy,
        config,
        MemStorage::new(),
        StoreOptions { group_commit: 1 },
        MonitorSpec::adwin(),
        RefitPolicy {
            on_drift: false,
            every_ticks: Some(4),
            training_window: 512,
            min_training: 16,
        },
    )
    .expect("open");
    drive_adaptive(&mut d, 600, 0.0);
    assert!(
        !d.refit_log().is_empty(),
        "schedule fired no refits: {:?}",
        d.refit_log()
    );
    assert!(d
        .refit_log()
        .iter()
        .all(|r| r.cause == hierod_adapt::RefitCause::Schedule));
}
