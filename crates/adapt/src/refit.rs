//! Store-driven refit: [`AdaptiveStream`] rebuilds drifted scorers from
//! sealed history.
//!
//! ## Commit-point rules (DESIGN.md §4.19)
//!
//! Scorer swaps happen **only** inside [`AdaptiveStream::tick`], after
//! the inner durable tick has assembled its report:
//!
//! 1. Already-emitted scores are never revised — a swap changes future
//!    scores only.
//! 2. The decision to refit is a deterministic function of the drive
//!    sequence: drift monitors are deterministic over the score stream,
//!    the schedule is a function of the tick ordinal, and training data
//!    comes from the store's sealed history (itself a deterministic
//!    function of the journalled inputs). Re-driving the same inputs
//!    with the same policies reproduces the same refits at the same
//!    ticks.
//! 3. Scorers are *derived* state: the durability contract journals
//!    inputs, not models, so swapping a scorer never touches the WAL.
//!
//! ## Refit mechanics
//!
//! On a tick where at least one lane wants a refit (drift pending, or
//! the schedule fires), the stream rotates — sealing released samples
//! into an immutable segment — snapshots the sealed storage, and for
//! each lane: range-scans the trailing training window through
//! [`HistoryReader`], builds a fresh scorer for the lane's kind through
//! the `AlgoSpec` registry ([`StreamDetector::build_lane_scorer`]), warms
//! it by replaying the training samples, and swaps it into the lane's
//! [`DriftingScorer`] wrapper.

use std::sync::Arc;

use hierod_core::AlgorithmPolicy;
use hierod_detect::online::OnlineScorer;
use hierod_detect::{DetectError, Result};
use hierod_hierarchy::{CaqResult, JobConfig, PhaseKind, RedundancyGroup, Sensor};
use hierod_history::reader::{snapshot, HistoryReader, RangeQuery};
use hierod_store::storage::Storage;
use hierod_store::store::StoreOptions;
use hierod_stream::{
    ControlEvent, DurableStream, LaneId, LaneKind, Sample, ScorerMode, StreamConfig,
    StreamDetector, StreamReport, StreamStats,
};

use crate::drift::MonitorSpec;
use crate::scorer::DriftingScorer;

/// Maps a storage failure into the detection error domain.
fn substrate(e: std::io::Error) -> DetectError {
    DetectError::Substrate(format!("adapt: {e}"))
}

/// Why a lane was refitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefitCause {
    /// A drift monitor latched a pending drift.
    Drift,
    /// The periodic schedule fired.
    Schedule,
}

/// One performed refit, for reports and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct RefitRecord {
    /// Adaptive tick ordinal (1-based) at which the swap committed.
    pub tick: u64,
    /// Machine of the refitted lane.
    pub machine: String,
    /// Sensor of the refitted lane.
    pub sensor: String,
    /// Training samples replayed into the fresh scorer.
    pub trained_samples: usize,
    /// What triggered the refit.
    pub cause: RefitCause,
}

/// When and how to refit.
#[derive(Debug, Clone, PartialEq)]
pub struct RefitPolicy {
    /// Refit a lane when its drift monitor latches an event.
    pub on_drift: bool,
    /// Additionally refit every lane each `k` ticks (`None` disables
    /// the schedule).
    pub every_ticks: Option<u64>,
    /// Trailing history window (in ticks) replayed as training data.
    pub training_window: u64,
    /// Minimum training samples required to commit a swap; lanes with
    /// less sealed history keep their current scorer (the drift flag is
    /// left pending, so the next tick retries with more history).
    pub min_training: usize,
}

impl Default for RefitPolicy {
    fn default() -> Self {
        Self {
            on_drift: true,
            every_ticks: None,
            training_window: 1024,
            min_training: 32,
        }
    }
}

/// A [`DurableStream`] with drift-driven, store-trained scorer refits.
///
/// Construction with [`AdaptiveStream::open`] (or
/// [`attach`](AdaptiveStream::attach)) installs the drift-monitor
/// wrapper; [`passthrough`](AdaptiveStream::passthrough) wraps without
/// adaptation, in which case every operation delegates 1:1 and the
/// finish report is byte-identical to the plain durable stream (pinned
/// by `tests/adapt_equivalence.rs`).
pub struct AdaptiveStream<S: Storage> {
    inner: DurableStream<S>,
    policy: RefitPolicy,
    enabled: bool,
    ticks: u64,
    refit_log: Vec<RefitRecord>,
}

impl<S: Storage> AdaptiveStream<S> {
    /// Opens (or recovers) a durable stream on `storage` with adaptation
    /// enabled: the stream config is forced to
    /// [`ScorerMode::Adaptive`] and every pipeline scorer is wrapped in
    /// a [`DriftingScorer`] built from `monitor`.
    ///
    /// # Errors
    /// As [`DurableStream::open`].
    pub fn open(
        policy: AlgorithmPolicy,
        mut config: StreamConfig,
        storage: S,
        options: StoreOptions,
        monitor: MonitorSpec,
        refit: RefitPolicy,
    ) -> Result<Self> {
        config.mode = ScorerMode::Adaptive;
        let (stream, _recovery) = DurableStream::open(policy, config, storage, options)?;
        Ok(Self::attach(stream, monitor, refit))
    }

    /// Enables adaptation on an already-open durable stream: installs
    /// the wrapper for future pipelines and re-wraps every currently
    /// open pipeline (scorers recovered before the attach get a fresh
    /// monitor; their warm scoring state is preserved).
    pub fn attach(mut inner: DurableStream<S>, monitor: MonitorSpec, refit: RefitPolicy) -> Self {
        let det = inner.detector_mut();
        let spec = monitor.clone();
        det.set_scorer_wrapper(Arc::new(move |_kind, scorer| {
            Box::new(DriftingScorer::new(scorer, spec.build()))
        }));
        det.visit_scorers(&mut |_m, _s, _k, slot| {
            let already = slot.as_any_mut().is_some_and(|a| a.is::<DriftingScorer>());
            if !already {
                let bare = std::mem::replace(slot, Box::new(Hole));
                *slot = Box::new(DriftingScorer::new(bare, monitor.build()));
            }
        });
        Self {
            inner,
            policy: refit,
            enabled: true,
            ticks: 0,
            refit_log: Vec::new(),
        }
    }

    /// Wraps without adaptation: no wrapper is installed and
    /// [`tick`](Self::tick) delegates without polling monitors. The
    /// equivalence tests drive this side-by-side with a plain
    /// [`DurableStream`] and pin byte-identical finish reports.
    pub fn passthrough(inner: DurableStream<S>) -> Self {
        Self {
            inner,
            policy: RefitPolicy::default(),
            enabled: false,
            ticks: 0,
            refit_log: Vec::new(),
        }
    }

    /// `true` when adaptation (wrapper + refit polling) is active.
    pub fn is_adaptive(&self) -> bool {
        self.enabled
    }

    /// Every refit performed so far, in commit order.
    pub fn refit_log(&self) -> &[RefitRecord] {
        &self.refit_log
    }

    /// The wrapped durable stream (read-only).
    pub fn durable(&self) -> &DurableStream<S> {
        &self.inner
    }

    /// The in-memory detector (read-only).
    pub fn detector(&self) -> &StreamDetector {
        self.inner.detector()
    }

    /// Unwraps back into the durable stream.
    pub fn into_inner(self) -> DurableStream<S> {
        self.inner
    }

    /// Delegates to [`DurableStream::control`].
    ///
    /// # Errors
    /// As the delegate.
    pub fn control(&mut self, event: &ControlEvent) -> Result<()> {
        self.inner.control(event)
    }

    /// Delegates to [`DurableStream::machine_up`].
    ///
    /// # Errors
    /// As the delegate.
    pub fn machine_up(
        &mut self,
        machine: &str,
        sensors: Vec<Sensor>,
        redundancy: Vec<RedundancyGroup>,
        env_sensors: &[String],
    ) -> Result<()> {
        self.inner
            .machine_up(machine, sensors, redundancy, env_sensors)
    }

    /// Delegates to [`DurableStream::job_start`].
    ///
    /// # Errors
    /// As the delegate.
    pub fn job_start(
        &mut self,
        machine: &str,
        job: &str,
        start: u64,
        config: JobConfig,
    ) -> Result<()> {
        self.inner.job_start(machine, job, start, config)
    }

    /// Delegates to [`DurableStream::phase_start`].
    ///
    /// # Errors
    /// As the delegate.
    pub fn phase_start(
        &mut self,
        machine: &str,
        kind: PhaseKind,
        sensors: &[String],
    ) -> Result<()> {
        self.inner.phase_start(machine, kind, sensors)
    }

    /// Delegates to [`DurableStream::job_complete`].
    ///
    /// # Errors
    /// As the delegate.
    pub fn job_complete(&mut self, machine: &str, caq: CaqResult) -> Result<()> {
        self.inner.job_complete(machine, caq)
    }

    /// Delegates to [`DurableStream::ingest`].
    ///
    /// # Errors
    /// As the delegate.
    pub fn ingest(&mut self, lane: &LaneId, sample: Sample) -> Result<()> {
        self.inner.ingest(lane, sample)
    }

    /// Delegates to [`DurableStream::rotate`].
    ///
    /// # Errors
    /// As the delegate.
    pub fn rotate(&mut self) -> Result<()> {
        self.inner.rotate()
    }

    /// Current ingestion counters (drift/refit counters included).
    pub fn stats(&self) -> StreamStats {
        self.inner.stats()
    }

    /// Per-lane counters (drift/refit counters included).
    pub fn lane_stats(&self) -> std::collections::BTreeMap<LaneId, hierod_stream::LaneStats> {
        self.inner.lane_stats()
    }

    /// Ticks the inner stream, then — with adaptation enabled — runs the
    /// refit pass: polls every lane's drift flag and the schedule, and
    /// commits any due swaps. The returned report reflects the state
    /// *before* the swaps (rule 1: emitted scores are never revised).
    ///
    /// # Errors
    /// As [`DurableStream::tick`], plus storage failures from sealing or
    /// scanning training history.
    pub fn tick(&mut self) -> Result<StreamReport> {
        self.ticks += 1;
        let report = self.inner.tick()?;
        if self.enabled {
            self.refit_pass()?;
        }
        Ok(report)
    }

    /// Delegates to [`DurableStream::finish`]. No final refit pass: the
    /// stream is over, adaptation has nothing left to improve.
    ///
    /// # Errors
    /// As the delegate.
    pub fn finish(self) -> Result<StreamReport> {
        self.inner.finish()
    }

    /// The refit pass. See the module docs for the commit-point rules.
    fn refit_pass(&mut self) -> Result<()> {
        let scheduled = self
            .policy
            .every_ticks
            .is_some_and(|k| k > 0 && self.ticks % k == 0);
        let on_drift = self.policy.on_drift;
        // Phase 1: collect lanes due for a refit (no swaps yet — the
        // scan below needs `&self.inner`).
        let mut plan: Vec<(String, String, LaneKind, RefitCause)> = Vec::new();
        self.inner
            .detector_mut()
            .visit_scorers(&mut |m, s, k, slot| {
                let Some(d) = slot
                    .as_any_mut()
                    .and_then(|a| a.downcast_mut::<DriftingScorer>())
                else {
                    return;
                };
                let cause = if on_drift && d.drift_pending() {
                    Some(RefitCause::Drift)
                } else if scheduled {
                    Some(RefitCause::Schedule)
                } else {
                    None
                };
                if let Some(c) = cause {
                    plan.push((m.to_string(), s.to_string(), k, c));
                }
            });
        if plan.is_empty() {
            return Ok(());
        }
        // Phase 2: seal released history so training data is scannable.
        self.inner.rotate()?;
        let reader = {
            let (storage, _) = self.inner.sealed_storage();
            HistoryReader::new(snapshot(storage).map_err(substrate)?).map_err(substrate)?
        };
        // Phase 3: per lane — scan, rebuild, warm, swap.
        for (machine, sensor, kind, cause) in plan {
            let Some(training) =
                self.training_samples(&reader, &machine, &sensor, self.policy.training_window)?
            else {
                continue;
            };
            if training.len() < self.policy.min_training {
                continue; // keep the pending flag latched; retry next tick
            }
            let mut fresh = self.inner.detector().build_lane_scorer(kind)?;
            let mut sink = Vec::new();
            for &(t, v) in &training {
                fresh.push(t, v, &mut sink)?;
                sink.clear();
            }
            let trained = training.len();
            let mut fresh = Some(fresh);
            let mut committed = false;
            self.inner
                .detector_mut()
                .visit_scorers(&mut |m, s, _k, slot| {
                    if m != machine || s != sensor {
                        return;
                    }
                    let Some(d) = slot
                        .as_any_mut()
                        .and_then(|a| a.downcast_mut::<DriftingScorer>())
                    else {
                        return;
                    };
                    if let Some(f) = fresh.take() {
                        drop(d.swap_inner(f));
                        committed = true;
                    }
                });
            if committed {
                self.refit_log.push(RefitRecord {
                    tick: self.ticks,
                    machine,
                    sensor,
                    trained_samples: trained,
                    cause,
                });
            }
        }
        Ok(())
    }

    /// The lane's trailing training window from sealed history:
    /// `None` when the lane has no sealed samples at all.
    fn training_samples(
        &self,
        reader: &HistoryReader,
        machine: &str,
        sensor: &str,
        window: u64,
    ) -> Result<Option<Vec<(u64, f64)>>> {
        let mut query = RangeQuery::range(0, u64::MAX);
        query.machine = Some(machine.to_string());
        query.sensor = Some(sensor.to_string());
        let (lanes, _stats) = reader.scan(&query).map_err(substrate)?;
        let mut samples: Vec<(u64, f64)> = Vec::new();
        for lane in &lanes {
            samples.extend(
                lane.series
                    .timestamps()
                    .iter()
                    .copied()
                    .zip(lane.series.values().iter().copied()),
            );
        }
        if samples.is_empty() {
            return Ok(None);
        }
        samples.sort_by_key(|&(t, _)| t);
        samples.dedup_by_key(|&mut (t, _)| t);
        let last = samples.last().map_or(0, |&(t, _)| t);
        let floor = last.saturating_sub(window);
        samples.retain(|&(t, _)| t >= floor);
        Ok(Some(samples))
    }
}

/// Placeholder scorer used only as `mem::replace` filler during the
/// attach re-wrap; never scored against.
struct Hole;

impl OnlineScorer for Hole {
    fn push(
        &mut self,
        _timestamp: u64,
        _value: f64,
        _out: &mut Vec<hierod_detect::online::ScoredPoint>,
    ) -> Result<()> {
        Ok(())
    }

    fn finish(&mut self, _out: &mut Vec<hierod_detect::online::ScoredPoint>) -> Result<()> {
        Ok(())
    }

    fn name(&self) -> &'static str {
        "hole"
    }
}
