//! [`DriftingScorer`]: the adaptive wrapper around any online scorer.
//!
//! Installed on a [`StreamDetector`](hierod_stream::StreamDetector) via
//! [`set_scorer_wrapper`](hierod_stream::StreamDetector::set_scorer_wrapper)
//! under [`ScorerMode::Adaptive`](hierod_stream::ScorerMode::Adaptive),
//! it forwards every push to the wrapped scorer unchanged — emitted
//! scores are bit-identical to the unwrapped pipeline — while feeding
//! each emitted score to a [`DriftMonitor`]. Detected drifts raise the
//! `drift_events` counter (surfaced through
//! [`StreamStats`](hierod_stream::StreamStats)) and latch a pending
//! flag the refit layer polls at tick boundaries.

use hierod_detect::online::{OnlineScorer, ScoredPoint};
use hierod_detect::Result;

use crate::drift::{DriftEvent, DriftMonitor};

/// Scores are clamped to this before the monitor sees them. Near-noise-free
/// series drive robust-z denominators towards zero and produce astronomic
/// score spikes; unclamped, a single such spike poisons a mean-based
/// monitor's running state for thousands of samples. Sixteen sigmas is
/// already "certainly an outlier" — anything above carries no additional
/// drift information.
const SCORE_CLIP: f64 = 16.0;

/// Monitored scores skipped after construction and after each swap.
/// A cold scorer's first scores describe its own unfitted state, not
/// the process: the incremental AR emits zeros until its first internal
/// fit, rolling windows emit degenerate z-scores until they fill.
/// Feeding that transient to the monitor manufactures a "mean shift"
/// out of thin air.
const MONITOR_WARMUP: u64 = 64;

/// An online scorer that watches its own output for drift.
pub struct DriftingScorer {
    inner: Box<dyn OnlineScorer>,
    monitor: Box<dyn DriftMonitor>,
    drift_events: u64,
    refits: u64,
    pending: bool,
    last_event: Option<DriftEvent>,
    observed: u64,
    scratch: Vec<ScoredPoint>,
}

impl DriftingScorer {
    /// Wraps `inner`, monitoring its emitted scores with `monitor`.
    pub fn new(inner: Box<dyn OnlineScorer>, monitor: Box<dyn DriftMonitor>) -> Self {
        Self {
            inner,
            monitor,
            drift_events: 0,
            refits: 0,
            pending: false,
            last_event: None,
            observed: 0,
            scratch: Vec::new(),
        }
    }

    /// `true` when a drift was detected since the last refit (or since
    /// construction) — the refit layer's poll.
    pub fn drift_pending(&self) -> bool {
        self.pending
    }

    /// The most recent drift event, if any.
    pub fn last_event(&self) -> Option<DriftEvent> {
        self.last_event
    }

    /// Label of the wrapped scorer.
    pub fn inner_name(&self) -> &'static str {
        self.inner.name()
    }

    /// Swaps in a freshly trained scorer (the refit commit point):
    /// counts one refit, clears the pending flag, and re-arms the
    /// monitor — the new model's residuals are a fresh stream. Counters
    /// survive the swap (they count the *lane*, not the model
    /// incarnation). Returns the retired scorer.
    pub fn swap_inner(&mut self, fresh: Box<dyn OnlineScorer>) -> Box<dyn OnlineScorer> {
        let old = std::mem::replace(&mut self.inner, fresh);
        self.refits += 1;
        self.pending = false;
        self.observed = 0;
        self.monitor.reset();
        old
    }
}

impl OnlineScorer for DriftingScorer {
    fn push(&mut self, timestamp: u64, value: f64, out: &mut Vec<ScoredPoint>) -> Result<()> {
        self.scratch.clear();
        self.inner.push(timestamp, value, &mut self.scratch)?;
        for p in &self.scratch {
            self.observed += 1;
            if self.observed <= MONITOR_WARMUP {
                continue;
            }
            if let Some(e) = self.monitor.observe(p.score.min(SCORE_CLIP)) {
                self.drift_events += 1;
                self.pending = true;
                self.last_event = Some(e);
            }
        }
        out.extend_from_slice(&self.scratch);
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<ScoredPoint>) -> Result<()> {
        // Flushed scores are not monitored: the stream is over, nothing
        // left to adapt.
        self.inner.finish(out)
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn drift_events(&self) -> u64 {
        self.drift_events
    }

    fn refits(&self) -> u64 {
        self.refits
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::MonitorSpec;
    use hierod_detect::online::RollingRobustZ;

    fn wrapped() -> DriftingScorer {
        DriftingScorer::new(
            Box::new(RollingRobustZ::new(32).expect("scorer")),
            MonitorSpec::page_hinkley().build(),
        )
    }

    #[test]
    fn scores_are_identical_to_unwrapped() {
        let mut bare = RollingRobustZ::new(32).expect("scorer");
        let mut adaptive = wrapped();
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for t in 0..500_u64 {
            let v = (t as f64 * 0.17).sin() + if t == 300 { 25.0 } else { 0.0 };
            bare.push(t, v, &mut out_a).expect("bare");
            adaptive.push(t, v, &mut out_b).expect("adaptive");
        }
        bare.finish(&mut out_a).expect("finish");
        adaptive.finish(&mut out_b).expect("finish");
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn drift_in_scores_raises_counter_and_pending() {
        let mut adaptive = wrapped();
        let mut out = Vec::new();
        // Stationary regime, then a sustained level shift the rolling
        // z-scorer keeps flagging (inflated scores = model mismatch).
        // The scorer's cold-start score transient can itself trip the
        // monitor, so the assertion is on the *increase* after the
        // shift, not on absolute quiet.
        for t in 0..400_u64 {
            adaptive
                .push(t, (t as f64 * 0.17).sin(), &mut out)
                .expect("push");
        }
        let baseline = adaptive.drift_events();
        for t in 400..1200_u64 {
            adaptive
                .push(t, 40.0 + (t as f64 * 0.17).sin(), &mut out)
                .expect("push");
        }
        assert!(adaptive.drift_events() > baseline);
        assert!(adaptive.drift_pending());
        assert!(adaptive.last_event().is_some());
    }

    #[test]
    fn swap_counts_refit_and_clears_pending() {
        let mut adaptive = wrapped();
        let mut out = Vec::new();
        for t in 0..400_u64 {
            adaptive
                .push(t, (t as f64 * 0.17).sin(), &mut out)
                .expect("push");
        }
        for t in 400..1200_u64 {
            adaptive.push(t, 40.0, &mut out).expect("push");
        }
        let events_before = adaptive.drift_events();
        assert!(adaptive.drift_pending());
        let old = adaptive.swap_inner(Box::new(RollingRobustZ::new(32).expect("scorer")));
        assert_eq!(old.name(), "rolling-robust-z");
        assert_eq!(adaptive.refits(), 1);
        assert!(!adaptive.drift_pending());
        // Drift history survives the swap.
        assert_eq!(adaptive.drift_events(), events_before);
    }

    #[test]
    fn downcast_roundtrip_through_trait_object() {
        let mut boxed: Box<dyn OnlineScorer> = Box::new(wrapped());
        let any = boxed.as_any_mut().expect("adaptive wrapper is visible");
        assert!(any.downcast_mut::<DriftingScorer>().is_some());
        // Plain scorers stay opaque.
        let mut plain: Box<dyn OnlineScorer> = Box::new(RollingRobustZ::new(8).expect("scorer"));
        assert!(plain.as_any_mut().is_none());
    }
}
