//! Cross-sensor fusion for Algorithm 1's support term.
//!
//! The paper's support counts how many corresponding sensors *also* flag
//! an outlier near the primary's index — a threshold vote. This module
//! replaces that vote with a pairwise **residual model**: for each
//! declared redundant sibling, a registry scorer (default
//! `"pair-diff"`) models the sibling's phase series against the
//! primary's and scores each sample by the pairwise disagreement. A large
//! standardized residual at the outlier means the sibling *did not move
//! with the primary* — direct evidence for a measurement error — while a
//! small residual means the pair moved together, confirming a process
//! anomaly even when the sibling's own deviation sits below the
//! threshold vote's detection floor.
//!
//! Fusion is strictly **post-hoc**: it rewrites
//! [`HierOutlier::support`] on a finished report and touches nothing
//! else, so the default pipeline stays byte-identical when fusion is
//! off.

use hierod_core::support::corresponding_sensors;
use hierod_core::{HierOutlier, HierReport};
use hierod_detect::engine::{self, AlgoSpec};
use hierod_detect::Result;
use hierod_hierarchy::Plant;

/// How to fuse.
#[derive(Debug, Clone)]
pub struct FusionPolicy {
    /// Registry key of the pairwise residual model; rows are
    /// `[primary_i, sibling_i]`. `"pair-diff"` (default) is robust: the
    /// outlying pair cannot drag the fit. `"pair-regression"` handles
    /// offset/gain-mismatched gauges but its least-squares fit gives the
    /// probed outlier leverage over its own residual — use it with a
    /// lower [`z_threshold`](Self::z_threshold). Either way the spec
    /// should carry `signed=1`: the jump test below differentiates the
    /// residual, and a folded (absolute) residual cancels any event that
    /// pushes the pair *across* its own median disagreement, halving the
    /// onset jump exactly when the event is near-threshold.
    pub algo: AlgoSpec,
    /// Robust-z threshold on the standardized residual above which the
    /// pair is deemed to *disagree* at the outlier.
    pub z_threshold: f64,
    /// Index tolerance around the outlier when probing residuals: the
    /// sibling gauge may lag by a sample or two, and the detector's own
    /// reported index can trail the actual event by a few steps.
    pub index_window: usize,
    /// Minimum phase length for the residual fit; shorter series fall
    /// back to the unfused support.
    pub min_len: usize,
}

impl Default for FusionPolicy {
    fn default() -> Self {
        Self {
            algo: AlgoSpec::new("pair-diff").with("signed", 1),
            z_threshold: 3.5,
            index_window: 3,
            min_len: 8,
        }
    }
}

/// Tally of one [`fuse_support`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionOutcome {
    /// Outliers whose support was replaced by the fused value.
    pub fused: usize,
    /// Sibling pairs that moved with the primary (process-anomaly
    /// evidence), summed over all fused outliers.
    pub confirmed: usize,
    /// Sibling pairs whose residual spiked at the outlier
    /// (measurement-error evidence), summed over all fused outliers.
    pub disagreed: usize,
    /// Outliers left untouched (no siblings, missing location, or series
    /// below `min_len`).
    pub skipped: usize,
}

/// Recomputes the support of every locatable phase-level outlier in
/// `report` from pairwise residual models against its redundant
/// siblings, in place. Fused support is the fraction of siblings whose
/// pair model *confirms* the primary (residual stays quiet at the
/// outlier): 1.0 reads "every redundant gauge moved too — process
/// anomaly", 0.0 reads "no gauge followed — measurement error".
///
/// Environment echoes (`*.room_temp`) live on a different clock and are
/// out of scope for the pairwise fit; they are excluded from the sibling
/// set.
///
/// # Errors
/// Unknown `policy.algo` registry key, or scorer failures on the pair
/// rows (non-finite samples).
pub fn fuse_support(
    plant: &Plant,
    report: &mut HierReport,
    policy: &FusionPolicy,
) -> Result<FusionOutcome> {
    let scorer = engine::build(&policy.algo)?;
    let mut outcome = FusionOutcome::default();
    for outlier in &mut report.outliers {
        match fuse_one(plant, outlier, &scorer, policy)? {
            Some((confirmed, disagreed)) => {
                outcome.fused += 1;
                outcome.confirmed += confirmed;
                outcome.disagreed += disagreed;
            }
            None => outcome.skipped += 1,
        }
    }
    Ok(outcome)
}

/// Fuses a single outlier; `None` when it cannot be fused (support left
/// untouched), otherwise `(confirming, disagreeing)` sibling counts.
fn fuse_one(
    plant: &Plant,
    outlier: &mut HierOutlier,
    scorer: &engine::BoxedScorer,
    policy: &FusionPolicy,
) -> Result<Option<(usize, usize)>> {
    let (Some(job), Some(phase), Some(sensor), Some(index)) = (
        outlier.job.as_deref(),
        outlier.phase,
        outlier.sensor.as_deref(),
        outlier.index,
    ) else {
        return Ok(None);
    };
    let Some(line) = plant.line(&outlier.machine) else {
        return Ok(None);
    };
    let Some(phase_data) = line.job(job).and_then(|j| j.phase(phase)) else {
        return Ok(None);
    };
    let Some(primary) = phase_data.sensor_series(sensor) else {
        return Ok(None);
    };
    let primary = primary.values();
    if primary.len() < policy.min_len || index >= primary.len() {
        return Ok(None);
    }
    let siblings: Vec<String> = corresponding_sensors(plant, &outlier.machine, sensor)
        .into_iter()
        .filter(|s| !s.ends_with(".room_temp"))
        .collect();
    let mut confirmed = 0_usize;
    let mut disagreed = 0_usize;
    for sib in &siblings {
        let Some(series) = phase_data.sensor_series(sib) else {
            continue;
        };
        let sib_vals = series.values();
        let n = primary.len().min(sib_vals.len());
        if n < policy.min_len || index >= n {
            continue;
        }
        let rows: Vec<[f64; 2]> = primary
            .iter()
            .zip(sib_vals)
            .take(n)
            .map(|(&a, &b)| [a, b])
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let residuals = scorer.score_rows(&refs)?;
        if residual_spikes_at(&residuals, index, policy) {
            disagreed += 1;
        } else {
            confirmed += 1;
        }
    }
    let considered = confirmed + disagreed;
    if considered == 0 {
        return Ok(None);
    }
    outlier.support = confirmed as f64 / considered as f64;
    Ok(Some((confirmed, disagreed)))
}

/// Minimum residual jumps outside the probe window before the
/// disagreement test runs; below this there is nothing to calibrate
/// the noise floor against.
const MIN_CONTEXT: usize = 4;

/// Extra backward reach of the jump probe beyond `index_window`. Point
/// scorers flag decaying events anywhere along the decay, so the
/// reported index can trail the onset — where the diff jump actually
/// happened — by this many samples.
const BACKTRACK: usize = 12;

/// `true` when the pair residual *jumps* within `index ± index_window`
/// (plus one trailing step, where a jump at the window edge lands after
/// first-differencing).
///
/// The test runs on the residual's first difference, not its level,
/// because the two failure modes of a level test are both slow:
/// redundant gauges wander against each other (calibration, placement)
/// in smooth excursions that a level test reads as disagreement even
/// though the pair is moving together, and an event that shifts the
/// pair for the rest of the phase contaminates every level estimate of
/// "normal". A measurement error, by contrast, has a sharp onset — the
/// diff jumps by the full event magnitude in one step — so its
/// signature survives differencing while wander (and any residual ramp)
/// vanishes. The jump at the probe is standardized against the jump
/// noise floor of the rest of the series.
fn residual_spikes_at(residuals: &[f64], index: usize, policy: &FusionPolicy) -> bool {
    if residuals.len() < 2 {
        return false;
    }
    // jumps[i] = residuals[i+1] - residuals[i]; a disagreement onset at
    // series index t appears at jump index t-1 (rise into the event).
    let jumps: Vec<f64> = residuals
        .iter()
        .zip(residuals.iter().skip(1))
        .map(|(a, b)| b - a)
        .collect();
    // The probe reaches further back than forward: the detector's
    // reported index can sit a dozen samples into a decaying event, and
    // the onset jump — the evidence — is behind it.
    let lo = index.saturating_sub(policy.index_window + BACKTRACK + 1);
    let hi = (index + policy.index_window).min(jumps.len() - 1);
    // Magnitude, not signed rise: when a level-shift event covers more
    // than half the phase, the diff median sits inside the shifted
    // region and the residual *drops* at onset instead of rising.
    let peak = jumps
        .get(lo..=hi)
        .into_iter()
        .flatten()
        .copied()
        .filter(|v| v.is_finite())
        .fold(f64::NEG_INFINITY, |m, v| m.max(v.abs()));
    if !peak.is_finite() {
        return false;
    }
    let context: Vec<f64> = jumps
        .iter()
        .enumerate()
        .filter(|(i, v)| (*i < lo || *i > hi) && v.is_finite())
        .map(|(_, v)| v.abs())
        .collect();
    if context.len() < MIN_CONTEXT {
        return false;
    }
    let (median, mad) = median_mad(&context);
    // 1.4826·MAD ≈ σ for Gaussian jumps; the floor keeps a degenerate
    // perfectly-collinear pair (context jumps all ~0) from dividing by
    // zero — any nonzero jump then reads as disagreement.
    let scale = (1.4826 * mad).max(1e-9);
    (peak - median) / scale >= policy.z_threshold
}

/// `(median, MAD)` of a non-empty slice (0s when empty).
fn median_mad(vals: &[f64]) -> (f64, f64) {
    let mut sorted = vals.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);
    let mut devs: Vec<f64> = sorted.iter().map(|v| (v - median).abs()).collect();
    devs.sort_by(f64::total_cmp);
    let mad = devs.get(devs.len() / 2).copied().unwrap_or(0.0);
    (median, mad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierod_hierarchy::{
        CaqResult, Environment, Job, JobConfig, Level, Phase, PhaseKind, Plant, ProductionLine,
        RedundancyGroup, Sensor, SensorKind,
    };
    use hierod_timeseries::TimeSeries;

    /// One machine, one job, one heating phase with two redundant
    /// chamber-temperature gauges reading `base`, the primary perturbed
    /// by `primary_bump` at `at`, the sibling by `sibling_bump`.
    fn rig(at: usize, primary_bump: f64, sibling_bump: f64) -> Plant {
        let n = 64;
        let base: Vec<f64> = (0..n).map(|i| 100.0 + (i as f64 * 0.3).sin()).collect();
        let mut a = base.clone();
        let mut b = base;
        a[at] += primary_bump;
        b[at] += sibling_bump;
        let phase = Phase::new(
            PhaseKind::WarmUp,
            vec![
                TimeSeries::regular("temp_a", 0, 1, a).expect("series"),
                TimeSeries::regular("temp_b", 0, 1, b).expect("series"),
            ],
            vec![],
        );
        let job = Job {
            id: "j1".into(),
            start: 0,
            config: JobConfig::new(vec!["p0".into()], vec![1.0]),
            phases: vec![phase],
            caq: CaqResult::new(vec!["q0".into()], vec![1.0], true),
        };
        let line = ProductionLine {
            machine_id: "m1".into(),
            sensors: vec![
                Sensor::new("temp_a", SensorKind::ChamberTemperature),
                Sensor::new("temp_b", SensorKind::ChamberTemperature),
            ],
            redundancy: vec![RedundancyGroup::new(
                SensorKind::ChamberTemperature,
                vec!["temp_a".into(), "temp_b".into()],
            )],
            jobs: vec![job],
            environment: Environment::default(),
        };
        Plant::new("p", vec![line])
    }

    fn outlier_at(at: usize) -> HierOutlier {
        HierOutlier {
            level: Level::Phase,
            machine: "m1".into(),
            job: Some("j1".into()),
            phase: Some(PhaseKind::WarmUp),
            sensor: Some("temp_a".into()),
            index: Some(at),
            timestamp: Some(at as u64),
            outlierness: 9.0,
            support: 0.5,
            global_score: 1,
        }
    }

    fn fuse(plant: &Plant, at: usize) -> (HierOutlier, FusionOutcome) {
        let mut report = HierReport {
            outliers: vec![outlier_at(at)],
            warnings: vec![],
        };
        let outcome =
            fuse_support(plant, &mut report, &FusionPolicy::default()).expect("fusion runs");
        (report.outliers.remove(0), outcome)
    }

    #[test]
    fn measurement_error_gets_zero_fused_support() {
        // Only the primary gauge jumps: the pair residual spikes, the
        // sibling disagrees, fused support collapses to 0.
        let plant = rig(30, 25.0, 0.0);
        let (o, outcome) = fuse(&plant, 30);
        assert_eq!(o.support, 0.0);
        assert_eq!(
            outcome,
            FusionOutcome {
                fused: 1,
                confirmed: 0,
                disagreed: 1,
                skipped: 0
            }
        );
    }

    #[test]
    fn tracking_sibling_confirms_process_anomaly() {
        // Both gauges jump together: residual stays flat, full support —
        // even though a threshold vote on the sibling's *own* z-score
        // could miss a modest co-movement.
        let plant = rig(30, 25.0, 25.0);
        let (o, outcome) = fuse(&plant, 30);
        assert_eq!(o.support, 1.0);
        assert_eq!(
            outcome,
            FusionOutcome {
                fused: 1,
                confirmed: 1,
                disagreed: 0,
                skipped: 0
            }
        );
    }

    #[test]
    fn small_co_movement_still_confirms() {
        // A shift well below any detection threshold on the sibling
        // still reads as confirmation: the pair moved *together*.
        let plant = rig(30, 6.0, 6.0);
        let (o, _) = fuse(&plant, 30);
        assert_eq!(o.support, 1.0);
    }

    #[test]
    fn unlocatable_outlier_is_skipped() {
        let plant = rig(30, 25.0, 0.0);
        let mut report = HierReport {
            outliers: vec![HierOutlier {
                index: None,
                ..outlier_at(30)
            }],
            warnings: vec![],
        };
        let outcome =
            fuse_support(&plant, &mut report, &FusionPolicy::default()).expect("fusion runs");
        assert_eq!(outcome.skipped, 1);
        assert_eq!(report.outliers[0].support, 0.5, "support untouched");
    }

    #[test]
    fn pair_regression_model_separates_at_lower_threshold() {
        // The OLS fit gives the probed spike leverage over its own
        // residual (it shrinks β towards the outlier), so the regression
        // model needs a lower threshold than the robust default.
        let policy = FusionPolicy {
            algo: AlgoSpec::new("pair-regression").with("signed", 1),
            z_threshold: 2.0,
            ..FusionPolicy::default()
        };
        let plant = rig(30, 6.0, 0.0);
        let mut report = HierReport {
            outliers: vec![outlier_at(30)],
            warnings: vec![],
        };
        fuse_support(&plant, &mut report, &policy).expect("fusion runs");
        assert_eq!(report.outliers[0].support, 0.0);
    }
}
