//! Adaptive detection for hierod: drift monitors, store-driven refits,
//! and cross-sensor fusion (DESIGN.md §4.19).
//!
//! Industrial sensor fleets do not stay stationary: gauges recalibrate,
//! recipes change, ambient regimes shift with the seasons. A scorer
//! trained on yesterday's regime keeps flagging today's normal. This
//! crate closes the loop in three layers, each usable on its own:
//!
//! 1. **Drift detection** ([`drift`], [`scorer`]) — [`DriftingScorer`]
//!    wraps any registry scorer and watches its *emitted scores* with a
//!    [`DriftMonitor`] ([`PageHinkley`] or the ADWIN-style
//!    [`AdwinWindow`]). Scores pass through bit-identical; sustained
//!    score inflation (model mismatch) raises typed [`DriftEvent`]s and
//!    per-lane `drift_events` counters surfaced through
//!    [`StreamStats`](hierod_stream::StreamStats) and the wire protocol.
//! 2. **Store-driven refit** ([`refit`]) — [`AdaptiveStream`] polls the
//!    drift flags at tick boundaries and, per [`RefitPolicy`], rebuilds
//!    drifted scorers from the store's own sealed history: rotate, range
//!    scan through [`HistoryReader`](hierod_history::HistoryReader),
//!    rebuild via the `AlgoSpec` registry, warm on the trailing training
//!    window, swap. Swaps never revise emitted scores and are
//!    deterministic functions of the driven sequence, so recovery
//!    re-derives them.
//! 3. **Cross-sensor fusion** ([`fusion`]) — [`fuse_support`] recomputes
//!    Algorithm 1's support term from pairwise residual models
//!    (`"pair-regression"` / `"pair-diff"` registry entries) between
//!    declared redundant sensors: a sibling that *moves with* the
//!    primary confirms a process anomaly even below the threshold vote's
//!    detection floor; a sibling that stays put is direct
//!    measurement-error evidence.
//!
//! Everything is opt-in: a passthrough [`AdaptiveStream`] and an unfused
//! report are byte-identical to the plain pipeline (pinned by
//! `tests/adapt_equivalence.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drift;
pub mod fusion;
pub mod refit;
pub mod scorer;

pub use drift::{AdwinWindow, DriftEvent, DriftKind, DriftMonitor, MonitorSpec, PageHinkley};
pub use fusion::{fuse_support, FusionOutcome, FusionPolicy};
pub use refit::{AdaptiveStream, RefitCause, RefitPolicy, RefitRecord};
pub use scorer::DriftingScorer;
