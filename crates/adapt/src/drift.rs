//! Residual drift monitors: Page–Hinkley and an ADWIN-style window.
//!
//! A drift monitor watches the stream of *scores* an online detector
//! emits. A well-fitted model produces scores whose distribution is
//! stationary; when the process (or the gauge — see
//! [`hierod_synth::faults`]) drifts away from the training regime, the
//! score stream's mean shifts, and the monitor raises a typed
//! [`DriftEvent`]. The refit layer ([`crate::refit`]) turns events into
//! store-driven model rebuilds.
//!
//! Two classical monitors are provided:
//!
//! * [`PageHinkley`] — the CUSUM-family sequential test: cheapest (O(1)
//!   state, a handful of FLOPs per sample), parameterized by a drift
//!   allowance `delta` and an alarm threshold `lambda`.
//! * [`AdwinWindow`] — an ADWIN-style adaptive window: keeps a bounded
//!   window of recent residuals and cuts it whenever two adjacent
//!   sub-windows have means further apart than a Hoeffding bound
//!   allows. Parameter-light (one confidence `delta`), adapts its own
//!   memory, detects both directions symmetrically.
//!
//! Both are deterministic functions of the residual sequence — replaying
//! the same stream reproduces the same events at the same positions,
//! which is what lets the refit layer keep the durable stream's
//! recovery deterministic (DESIGN.md §4.19).

/// Direction/mechanism of a detected drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// The residual mean shifted up (model under-fits: scores inflate).
    MeanIncrease,
    /// The residual mean shifted down.
    MeanDecrease,
    /// An ADWIN window cut: the retained suffix disagrees with the
    /// dropped prefix.
    WindowCut,
}

impl DriftKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DriftKind::MeanIncrease => "mean-increase",
            DriftKind::MeanDecrease => "mean-decrease",
            DriftKind::WindowCut => "window-cut",
        }
    }
}

/// One detected drift, typed and located in the residual stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftEvent {
    /// Number of residuals observed by the monitor when the event fired
    /// (1-based; monitor-local, reset on [`DriftMonitor::reset`]).
    pub at: u64,
    /// What kind of shift was detected.
    pub kind: DriftKind,
    /// The test statistic at the moment of the alarm.
    pub statistic: f64,
    /// The threshold the statistic exceeded.
    pub threshold: f64,
}

/// A sequential change detector over a residual stream.
pub trait DriftMonitor: Send {
    /// Feeds one residual; returns an event when a change is detected.
    /// After an event the monitor has re-armed itself (internal state
    /// reset), so a persistent shift fires again only after the test
    /// statistic rebuilds.
    fn observe(&mut self, residual: f64) -> Option<DriftEvent>;

    /// Discards all state (used after a refit: the new model's residuals
    /// are a fresh stream).
    fn reset(&mut self);

    /// Short label for reports.
    fn name(&self) -> &'static str;
}

/// The Page–Hinkley test, two-sided.
///
/// Maintains the running mean and the two cumulative deviation sums
/// `m⁺ = Σ (xᵢ − x̄ᵢ − δ)` and `m⁻ = Σ (xᵢ − x̄ᵢ + δ)`; alarms when
/// `m⁺ − min m⁺ > λ` (mean increased) or `max m⁻ − m⁻ > λ` (mean
/// decreased). `δ` absorbs tolerated wander, `λ` trades detection delay
/// against false alarms.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    delta: f64,
    lambda: f64,
    min_samples: u64,
    n: u64,
    mean: f64,
    m_pos: f64,
    min_pos: f64,
    m_neg: f64,
    max_neg: f64,
}

impl PageHinkley {
    /// Creates a monitor with drift allowance `delta`, alarm threshold
    /// `lambda`, and a warm-up of `min_samples` residuals before alarms
    /// are armed (the running mean needs a footing).
    pub fn new(delta: f64, lambda: f64, min_samples: u64) -> Self {
        Self {
            delta: delta.max(0.0),
            lambda: lambda.max(f64::EPSILON),
            min_samples,
            n: 0,
            mean: 0.0,
            m_pos: 0.0,
            min_pos: 0.0,
            m_neg: 0.0,
            max_neg: 0.0,
        }
    }
}

impl Default for PageHinkley {
    /// `delta = 0.05`, `lambda = 20`, warm-up 32 — conservative enough
    /// that stationary robust-z score streams stay quiet.
    fn default() -> Self {
        Self::new(0.05, 20.0, 32)
    }
}

impl DriftMonitor for PageHinkley {
    fn observe(&mut self, residual: f64) -> Option<DriftEvent> {
        if !residual.is_finite() {
            return None;
        }
        self.n += 1;
        self.mean += (residual - self.mean) / self.n as f64;
        self.m_pos += residual - self.mean - self.delta;
        self.min_pos = self.min_pos.min(self.m_pos);
        self.m_neg += residual - self.mean + self.delta;
        self.max_neg = self.max_neg.max(self.m_neg);
        if self.n < self.min_samples {
            return None;
        }
        let up = self.m_pos - self.min_pos;
        let down = self.max_neg - self.m_neg;
        let (kind, statistic) = if up > self.lambda {
            (DriftKind::MeanIncrease, up)
        } else if down > self.lambda {
            (DriftKind::MeanDecrease, down)
        } else {
            return None;
        };
        let event = DriftEvent {
            at: self.n,
            kind,
            statistic,
            threshold: self.lambda,
        };
        self.reset();
        Some(event)
    }

    fn reset(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.m_pos = 0.0;
        self.min_pos = 0.0;
        self.m_neg = 0.0;
        self.max_neg = 0.0;
    }

    fn name(&self) -> &'static str {
        "page-hinkley"
    }
}

/// An ADWIN-style adaptive window.
///
/// Keeps up to `max_window` recent residuals. Every `granularity`
/// insertions it examines the cut points at multiples of `granularity`:
/// a cut splitting the window into sub-windows of sizes `n₀`, `n₁` with
/// means `μ₀`, `μ₁` alarms when `|μ₀ − μ₁| > ε` for the
/// variance-adaptive bound of Bifet & Gavaldà's ADWIN2,
/// `ε = √((2/m)·σ²_W·ln(2/δ′)) + (2/(3m))·ln(2/δ′)` with `m` the
/// harmonic mean of `n₀`, `n₁`, `σ²_W` the whole-window variance, and
/// `δ′ = δ/n`. The variance term is what makes the bound usable on
/// low-variance score streams, where a range-based Hoeffding bound
/// would demand absurd gaps. Residuals are clipped to `[0, clip]`
/// first so a single non-physical spike cannot blow up `σ²_W`. On an
/// alarm the stale prefix is dropped — the window *adapts* — and a
/// [`DriftKind::WindowCut`] event is emitted.
#[derive(Debug, Clone)]
pub struct AdwinWindow {
    delta: f64,
    max_window: usize,
    granularity: usize,
    clip: f64,
    window: std::collections::VecDeque<f64>,
    since_check: usize,
    n_seen: u64,
}

impl AdwinWindow {
    /// Creates a window with confidence `delta` (smaller = fewer false
    /// cuts) and size cap `max_window`. Residuals are clipped to
    /// `[0, clip]` for the bound (scores are non-negative by the
    /// [`OnlineScorer`](hierod_detect::online::OnlineScorer) contract).
    pub fn new(delta: f64, max_window: usize, clip: f64) -> Self {
        Self {
            delta: delta.clamp(1e-9, 1.0),
            max_window: max_window.max(16),
            granularity: 8,
            clip: clip.max(f64::EPSILON),
            window: std::collections::VecDeque::new(),
            since_check: 0,
            n_seen: 0,
        }
    }

    /// Current window occupancy.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// `true` before the first observation.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Scans cut points; returns the prefix length to drop, if any.
    fn find_cut(&self) -> Option<(usize, f64, f64)> {
        let n = self.window.len();
        if n < 2 * self.granularity {
            return None;
        }
        // One forward pass: prefix sums at granularity boundaries.
        let total: f64 = self.window.iter().sum();
        let total_sq: f64 = self.window.iter().map(|v| v * v).sum();
        let mean_w = total / n as f64;
        let var_w = (total_sq / n as f64 - mean_w * mean_w).max(0.0);
        // δ′ = δ/n spreads the confidence over the n candidate cuts.
        let ln_term = (2.0 * n as f64 / self.delta).ln();
        let mut prefix = 0.0;
        let mut best: Option<(usize, f64, f64)> = None;
        for (i, v) in self.window.iter().enumerate() {
            prefix += v;
            let n0 = i + 1;
            let n1 = n - n0;
            if n0 % self.granularity != 0 || n1 < self.granularity {
                continue;
            }
            let mean0 = prefix / n0 as f64;
            let mean1 = (total - prefix) / n1 as f64;
            // Harmonic mean of the two sizes.
            let m = 1.0 / (1.0 / n0 as f64 + 1.0 / n1 as f64);
            let eps = (2.0 / m * var_w * ln_term).sqrt() + 2.0 / (3.0 * m) * ln_term;
            let gap = (mean0 - mean1).abs();
            if gap > eps && best.map_or(true, |(_, g, _)| gap > g) {
                best = Some((n0, gap, eps));
            }
        }
        best
    }
}

impl Default for AdwinWindow {
    /// `delta = 0.002`, window cap 512, clip 16 (robust-z scores above
    /// 16 sigmas carry no extra drift information).
    fn default() -> Self {
        Self::new(0.002, 512, 16.0)
    }
}

impl DriftMonitor for AdwinWindow {
    fn observe(&mut self, residual: f64) -> Option<DriftEvent> {
        if !residual.is_finite() {
            return None;
        }
        self.n_seen += 1;
        self.window.push_back(residual.clamp(0.0, self.clip));
        if self.window.len() > self.max_window {
            self.window.pop_front();
        }
        self.since_check += 1;
        if self.since_check < self.granularity {
            return None;
        }
        self.since_check = 0;
        let (drop, gap, eps) = self.find_cut()?;
        self.window.drain(..drop.min(self.window.len()));
        Some(DriftEvent {
            at: self.n_seen,
            kind: DriftKind::WindowCut,
            statistic: gap,
            threshold: eps,
        })
    }

    fn reset(&mut self) {
        self.window.clear();
        self.since_check = 0;
        self.n_seen = 0;
    }

    fn name(&self) -> &'static str {
        "adwin"
    }
}

/// A value-level recipe for building per-lane monitors: the refit layer
/// stores one spec and stamps out a fresh monitor for every pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorSpec {
    /// Build [`PageHinkley`] monitors.
    PageHinkley {
        /// Tolerated per-sample wander.
        delta: f64,
        /// Alarm threshold.
        lambda: f64,
        /// Warm-up before alarms arm.
        min_samples: u64,
    },
    /// Build [`AdwinWindow`] monitors.
    Adwin {
        /// Cut confidence (smaller = fewer false cuts).
        delta: f64,
        /// Window size cap.
        max_window: usize,
    },
}

impl MonitorSpec {
    /// The default Page–Hinkley recipe (see [`PageHinkley::default`]).
    pub fn page_hinkley() -> Self {
        MonitorSpec::PageHinkley {
            delta: 0.05,
            lambda: 20.0,
            min_samples: 32,
        }
    }

    /// The default ADWIN recipe (see [`AdwinWindow::default`]).
    pub fn adwin() -> Self {
        MonitorSpec::Adwin {
            delta: 0.002,
            max_window: 512,
        }
    }

    /// Builds one monitor instance.
    pub fn build(&self) -> Box<dyn DriftMonitor> {
        match *self {
            MonitorSpec::PageHinkley {
                delta,
                lambda,
                min_samples,
            } => Box::new(PageHinkley::new(delta, lambda, min_samples)),
            MonitorSpec::Adwin { delta, max_window } => {
                Box::new(AdwinWindow::new(delta, max_window, 16.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic noise in [-0.5, 0.5] (SplitMix64 finalizer).
    fn noise(i: u64) -> f64 {
        let mut z = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ((z ^ (z >> 31)) as f64 / u64::MAX as f64) - 0.5
    }

    #[test]
    fn page_hinkley_stays_quiet_on_stationary_noise() {
        let mut ph = PageHinkley::default();
        for i in 0..5000 {
            assert!(ph.observe(1.0 + noise(i)).is_none(), "false alarm at {i}");
        }
    }

    #[test]
    fn page_hinkley_detects_upward_shift() {
        let mut ph = PageHinkley::default();
        for i in 0..500 {
            assert!(ph.observe(1.0 + noise(i)).is_none());
        }
        let mut fired = None;
        for i in 0..500 {
            if let Some(e) = ph.observe(3.0 + noise(1000 + i)) {
                fired = Some((i, e));
                break;
            }
        }
        let (latency, event) = fired.expect("shift detected");
        assert_eq!(event.kind, DriftKind::MeanIncrease);
        assert!(latency < 64, "latency {latency}");
        assert!(event.statistic > event.threshold);
    }

    #[test]
    fn page_hinkley_detects_downward_shift() {
        let mut ph = PageHinkley::default();
        for i in 0..500 {
            assert!(ph.observe(3.0 + noise(i)).is_none());
        }
        let fired = (0..500).find_map(|i| ph.observe(0.5 + noise(1000 + i)));
        assert_eq!(fired.expect("detected").kind, DriftKind::MeanDecrease);
    }

    #[test]
    fn adwin_cuts_on_shift_and_stays_quiet_otherwise() {
        let mut aw = AdwinWindow::default();
        for i in 0..2000 {
            assert!(aw.observe(1.0 + noise(i)).is_none(), "false cut at {i}");
        }
        let fired = (0..500).find_map(|i| aw.observe(4.0 + noise(5000 + i)));
        let event = fired.expect("cut");
        assert_eq!(event.kind, DriftKind::WindowCut);
        // The stale prefix was dropped: the window is now dominated by
        // post-shift samples.
        let mean: f64 = aw.window.iter().sum::<f64>() / aw.len() as f64;
        assert!(mean > 2.0, "window mean {mean}");
    }

    #[test]
    fn monitors_are_deterministic() {
        for spec in [MonitorSpec::page_hinkley(), MonitorSpec::adwin()] {
            let run = || {
                let mut m = spec.build();
                let mut events = Vec::new();
                for i in 0..3000 {
                    let v = if i > 1500 { 3.0 } else { 1.0 } + noise(i);
                    if let Some(e) = m.observe(v) {
                        events.push((i, e));
                    }
                }
                events
            };
            assert_eq!(run(), run());
        }
    }

    #[test]
    fn reset_rearms() {
        let mut ph = PageHinkley::default();
        for i in 0..200 {
            ph.observe(1.0 + noise(i));
        }
        ph.reset();
        for i in 0..5000 {
            assert!(ph.observe(1.0 + noise(i)).is_none());
        }
    }

    #[test]
    fn non_finite_residuals_are_ignored() {
        let mut ph = PageHinkley::default();
        let mut aw = AdwinWindow::default();
        assert!(ph.observe(f64::NAN).is_none());
        assert!(ph.observe(f64::INFINITY).is_none());
        assert!(aw.observe(f64::NAN).is_none());
        assert_eq!(aw.len(), 0);
    }
}
