//! Normalization / scaling transforms.
//!
//! Sub-sequence detectors (phased k-means, SAX, SOM, …) operate on
//! z-normalized windows so that shape rather than offset drives similarity;
//! the job-level feature detectors use min-max or robust scaling so that
//! heterogeneous setup parameters become comparable.

use crate::error::{Error, Result};
use crate::stats;

/// Z-normalizes a slice in place: `(x - mean) / std`. Constant slices are
/// mapped to all zeros.
///
/// # Errors
/// Returns [`Error::Empty`] for an empty slice.
pub fn z_normalize_in_place(xs: &mut [f64]) -> Result<()> {
    let m = stats::mean(xs)?;
    let s = stats::std_dev(xs)?;
    if s == 0.0 {
        xs.iter_mut().for_each(|x| *x = 0.0);
        return Ok(());
    }
    xs.iter_mut().for_each(|x| *x = (*x - m) / s);
    Ok(())
}

/// Z-normalized copy of a slice.
///
/// # Errors
/// Returns [`Error::Empty`] for an empty slice.
pub fn z_normalize(xs: &[f64]) -> Result<Vec<f64>> {
    let mut out = xs.to_vec();
    z_normalize_in_place(&mut out)?;
    Ok(out)
}

/// Min-max scaling into `[0, 1]`. Constant slices map to all `0.5`.
///
/// # Errors
/// Returns [`Error::Empty`] for an empty slice.
pub fn min_max(xs: &[f64]) -> Result<Vec<f64>> {
    let lo = stats::min(xs)?;
    let hi = stats::max(xs)?;
    if hi == lo {
        return Ok(vec![0.5; xs.len()]);
    }
    Ok(xs.iter().map(|x| (x - lo) / (hi - lo)).collect())
}

/// Robust scaling: `(x - median) / IQR`. Zero-IQR slices map to all zeros.
///
/// # Errors
/// Returns [`Error::Empty`] for an empty slice.
pub fn robust_scale(xs: &[f64]) -> Result<Vec<f64>> {
    let med = stats::median(xs)?;
    let q1 = stats::quantile(xs, 0.25)?;
    let q3 = stats::quantile(xs, 0.75)?;
    let iqr = q3 - q1;
    if iqr == 0.0 {
        return Ok(vec![0.0; xs.len()]);
    }
    Ok(xs.iter().map(|x| (x - med) / iqr).collect())
}

/// A fitted per-column scaler for feature matrices (rows = samples).
///
/// Fit on training rows, then apply to new rows; columns with zero spread
/// pass through as zeros. Used by the supervised (SA) detectors and the
/// job-level PCA pipeline.
#[derive(Debug, Clone)]
pub struct ColumnScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl ColumnScaler {
    /// Fits mean/std per column. Generic over the row type so both owned
    /// (`&[Vec<f64>]`) and borrowed (`&[&[f64]]`) matrices fit without
    /// copying.
    ///
    /// # Errors
    /// Returns an error on an empty matrix or ragged rows.
    pub fn fit<R: AsRef<[f64]>>(rows: &[R]) -> Result<Self> {
        let first = rows.first().ok_or(Error::Empty {
            what: "ColumnScaler::fit",
        })?;
        let d = first.as_ref().len();
        if rows.iter().any(|r| r.as_ref().len() != d) {
            return Err(Error::invalid("rows", "ragged feature matrix"));
        }
        let n = rows.len() as f64;
        let mut means = vec![0.0; d];
        for r in rows {
            for (m, v) in means.iter_mut().zip(r.as_ref()) {
                *m += v;
            }
        }
        means.iter_mut().for_each(|m| *m /= n);
        let mut stds = vec![0.0; d];
        for r in rows {
            for ((s, v), m) in stds.iter_mut().zip(r.as_ref()).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        stds.iter_mut().for_each(|s| *s = (*s / n).sqrt());
        Ok(Self { means, stds })
    }

    /// Number of columns this scaler was fitted on.
    pub fn dims(&self) -> usize {
        self.means.len()
    }

    /// Scales one row: `(x - mean) / std` per column (zero-std columns → 0).
    ///
    /// # Errors
    /// Returns an error if the row width differs from the fitted width.
    pub fn transform(&self, row: &[f64]) -> Result<Vec<f64>> {
        if row.len() != self.means.len() {
            return Err(Error::LengthMismatch {
                what: "ColumnScaler::transform",
                left: row.len(),
                right: self.means.len(),
            });
        }
        Ok(row
            .iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((x, m), s)| if *s == 0.0 { 0.0 } else { (x - m) / s })
            .collect())
    }

    /// Scales many rows.
    ///
    /// # Errors
    /// Propagates the first row-width mismatch.
    pub fn transform_all<R: AsRef<[f64]>>(&self, rows: &[R]) -> Result<Vec<Vec<f64>>> {
        rows.iter().map(|r| self.transform(r.as_ref())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn z_normalize_gives_zero_mean_unit_std() {
        let out = z_normalize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(stats::mean(&out).unwrap().abs() < EPS);
        assert!((stats::std_dev(&out).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn z_normalize_constant_is_zeros() {
        assert_eq!(z_normalize(&[7.0, 7.0]).unwrap(), vec![0.0, 0.0]);
        assert!(z_normalize(&[]).is_err());
    }

    #[test]
    fn min_max_bounds() {
        let out = min_max(&[10.0, 20.0, 15.0]).unwrap();
        assert_eq!(out, vec![0.0, 1.0, 0.5]);
        assert_eq!(min_max(&[3.0, 3.0]).unwrap(), vec![0.5, 0.5]);
    }

    #[test]
    fn robust_scale_centers_on_median() {
        let out = robust_scale(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert!(out[2].abs() < EPS); // median maps to 0
        assert_eq!(robust_scale(&[2.0, 2.0, 2.0]).unwrap(), vec![0.0; 3]);
    }

    #[test]
    fn column_scaler_roundtrip() {
        let rows = vec![vec![0.0, 10.0], vec![2.0, 10.0], vec![4.0, 10.0]];
        let sc = ColumnScaler::fit(&rows).unwrap();
        assert_eq!(sc.dims(), 2);
        let t = sc.transform(&[2.0, 10.0]).unwrap();
        assert!(t[0].abs() < EPS); // column mean
        assert_eq!(t[1], 0.0); // zero-variance column
        let hi = sc.transform(&[4.0, 99.0]).unwrap();
        assert!(hi[0] > 0.0);
        assert!(sc.transform(&[1.0]).is_err());
    }

    #[test]
    fn column_scaler_rejects_bad_input() {
        assert!(ColumnScaler::fit::<Vec<f64>>(&[]).is_err());
        assert!(ColumnScaler::fit(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn transform_all_maps_every_row() {
        let rows = vec![vec![0.0], vec![2.0]];
        let sc = ColumnScaler::fit(&rows).unwrap();
        let out = sc.transform_all(&rows).unwrap();
        assert_eq!(out.len(), 2);
        assert!((out[0][0] + 1.0).abs() < EPS);
        assert!((out[1][0] - 1.0).abs() < EPS);
    }
}
