//! Resolution changes between hierarchy levels.
//!
//! The paper (Section 1) observes that industrial data arrives "in various
//! resolutions" and that CAQ assigns data "to a higher hierarchy level if it
//! has a lower resolution and vice versa". This module provides the
//! aggregation operators used when phase-level high-resolution series are
//! rolled up to job-, line-, and production-level views.

use crate::error::{Error, Result};
use crate::series::TimeSeries;

/// How a bucket of high-resolution samples is collapsed to one value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Arithmetic mean of the bucket.
    Mean,
    /// Minimum of the bucket.
    Min,
    /// Maximum of the bucket.
    Max,
    /// Last value of the bucket (sample-and-hold).
    Last,
    /// Sum of the bucket.
    Sum,
    /// Number of samples in the bucket (ignores values).
    Count,
}

impl Aggregate {
    /// Applies the aggregate to a non-empty bucket.
    fn apply(self, bucket: &[f64]) -> f64 {
        debug_assert!(!bucket.is_empty());
        match self {
            Aggregate::Mean => bucket.iter().sum::<f64>() / bucket.len() as f64,
            Aggregate::Min => bucket.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregate::Max => bucket.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregate::Last => *bucket.last().expect("non-empty bucket"),
            Aggregate::Sum => bucket.iter().sum(),
            Aggregate::Count => bucket.len() as f64,
        }
    }
}

/// Downsamples a series into fixed-duration time buckets.
///
/// Buckets are `[k·width, (k+1)·width)` anchored at the series start; empty
/// buckets are skipped (the output keeps strictly increasing timestamps, each
/// bucket stamped with its start time).
///
/// # Errors
/// Returns an error if `width == 0` or the series is empty.
pub fn downsample(series: &TimeSeries, width: u64, agg: Aggregate) -> Result<TimeSeries> {
    if width == 0 {
        return Err(Error::invalid("width", "bucket width must be > 0"));
    }
    let (t0, _) = series.span().ok_or(Error::Empty { what: "downsample" })?;
    let mut out_ts: Vec<u64> = Vec::new();
    let mut out_vals: Vec<f64> = Vec::new();
    let mut bucket: Vec<f64> = Vec::new();
    let mut bucket_idx = 0_u64;
    for (t, v) in series.iter() {
        let idx = (t - t0) / width;
        if idx != bucket_idx && !bucket.is_empty() {
            out_ts.push(t0 + bucket_idx * width);
            out_vals.push(agg.apply(&bucket));
            bucket.clear();
        }
        bucket_idx = idx;
        bucket.push(v);
    }
    if !bucket.is_empty() {
        out_ts.push(t0 + bucket_idx * width);
        out_vals.push(agg.apply(&bucket));
    }
    TimeSeries::new(series.name(), out_ts, out_vals)
}

/// Collapses a whole series to a single summary value (a "level roll-up"):
/// this is how one job's phase series becomes one point of the
/// production-line series.
///
/// # Errors
/// Returns [`Error::Empty`] for an empty series.
pub fn summarize(series: &TimeSeries, agg: Aggregate) -> Result<f64> {
    if series.is_empty() {
        return Err(Error::Empty { what: "summarize" });
    }
    Ok(agg.apply(series.values()))
}

/// Aligns a reference series with a context series (e.g. room temperature
/// measured on its own clock) by sampling, for each reference timestamp, the
/// most recent context value at or before it (last-observation-carried-
/// forward). Reference timestamps preceding all context samples take the
/// first context value.
///
/// # Errors
/// Returns an error if either series is empty.
pub fn align_last_value(reference: &TimeSeries, context: &TimeSeries) -> Result<TimeSeries> {
    if reference.is_empty() {
        return Err(Error::Empty {
            what: "align_last_value(reference)",
        });
    }
    if context.is_empty() {
        return Err(Error::Empty {
            what: "align_last_value(context)",
        });
    }
    let cts = context.timestamps();
    let cvs = context.values();
    let mut vals = Vec::with_capacity(reference.len());
    for &t in reference.timestamps() {
        let pos = cts.partition_point(|&ct| ct <= t);
        let v = if pos == 0 { cvs[0] } else { cvs[pos - 1] };
        vals.push(v);
    }
    TimeSeries::new(context.name(), reference.timestamps().to_vec(), vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_mean_buckets() {
        let s = TimeSeries::regular("x", 0, 1, vec![1.0, 3.0, 5.0, 7.0, 9.0]).unwrap();
        let d = downsample(&s, 2, Aggregate::Mean).unwrap();
        assert_eq!(d.timestamps(), &[0, 2, 4]);
        assert_eq!(d.values(), &[2.0, 6.0, 9.0]);
    }

    #[test]
    fn downsample_other_aggregates() {
        let s = TimeSeries::regular("x", 0, 1, vec![1.0, 3.0, 5.0, 7.0]).unwrap();
        assert_eq!(
            downsample(&s, 2, Aggregate::Min).unwrap().values(),
            &[1.0, 5.0]
        );
        assert_eq!(
            downsample(&s, 2, Aggregate::Max).unwrap().values(),
            &[3.0, 7.0]
        );
        assert_eq!(
            downsample(&s, 2, Aggregate::Last).unwrap().values(),
            &[3.0, 7.0]
        );
        assert_eq!(
            downsample(&s, 2, Aggregate::Sum).unwrap().values(),
            &[4.0, 12.0]
        );
        assert_eq!(
            downsample(&s, 2, Aggregate::Count).unwrap().values(),
            &[2.0, 2.0]
        );
    }

    #[test]
    fn downsample_skips_empty_buckets() {
        // Irregular series with a gap spanning bucket 1.
        let s = TimeSeries::new("x", vec![0, 1, 10, 11], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let d = downsample(&s, 4, Aggregate::Mean).unwrap();
        assert_eq!(d.timestamps(), &[0, 8]);
        assert_eq!(d.values(), &[1.5, 3.5]);
    }

    #[test]
    fn downsample_validates() {
        let s = TimeSeries::from_values("x", vec![1.0]);
        assert!(downsample(&s, 0, Aggregate::Mean).is_err());
        let empty = TimeSeries::from_values("x", vec![]);
        assert!(downsample(&empty, 2, Aggregate::Mean).is_err());
    }

    #[test]
    fn summarize_collapses_series() {
        let s = TimeSeries::from_values("x", vec![1.0, 2.0, 3.0]);
        assert_eq!(summarize(&s, Aggregate::Mean).unwrap(), 2.0);
        assert_eq!(summarize(&s, Aggregate::Max).unwrap(), 3.0);
        assert_eq!(summarize(&s, Aggregate::Count).unwrap(), 3.0);
        let empty = TimeSeries::from_values("x", vec![]);
        assert!(summarize(&empty, Aggregate::Mean).is_err());
    }

    #[test]
    fn align_last_value_carries_forward() {
        let reference = TimeSeries::new("r", vec![5, 10, 15, 20], vec![0.0; 4]).unwrap();
        let context = TimeSeries::new("room", vec![0, 12, 18], vec![20.0, 21.0, 22.0]).unwrap();
        let aligned = align_last_value(&reference, &context).unwrap();
        assert_eq!(aligned.timestamps(), reference.timestamps());
        assert_eq!(aligned.values(), &[20.0, 20.0, 21.0, 22.0]);
        assert_eq!(aligned.name(), "room");
    }

    #[test]
    fn align_before_first_context_sample_uses_first_value() {
        let reference = TimeSeries::new("r", vec![0, 1], vec![0.0, 0.0]).unwrap();
        let context = TimeSeries::new("c", vec![100], vec![7.0]).unwrap();
        let aligned = align_last_value(&reference, &context).unwrap();
        assert_eq!(aligned.values(), &[7.0, 7.0]);
    }

    #[test]
    fn align_rejects_empty_inputs() {
        let s = TimeSeries::from_values("x", vec![1.0]);
        let empty = TimeSeries::from_values("e", vec![]);
        assert!(align_last_value(&empty, &s).is_err());
        assert!(align_last_value(&s, &empty).is_err());
    }
}
