//! Core containers: [`TimeSeries`], [`DiscreteSequence`], [`MultiSeries`].
//!
//! The paper's phase level (its Fig. 2, level ①) delivers "either time series
//! data or discrete value sequences": numeric samples over time, or label
//! sequences. These two containers, plus an aligned multivariate bundle,
//! are the inputs every detector in `hierod-detect` consumes.
//!
//! ## Zero-copy storage
//!
//! [`TimeSeries`] is backed by shared storage — `Arc<[u64]>` timestamps and
//! `Arc<[f64]>` values plus an `(offset, len)` window — so `clone()`,
//! [`TimeSeries::view`], [`TimeSeries::slice`] and
//! [`TimeSeries::between`] are O(1): they bump two reference counts instead
//! of copying samples. Hierarchy-level view materialization
//! (`hierod-hierarchy`) and per-window detectors lean on this; a plant-wide
//! detection run no longer deep-copies the plant. Mutation stays safe via
//! copy-on-write: [`TimeSeries::values_mut`] detaches the series onto its
//! own uniquely-owned buffers first (see `DESIGN.md` §4.11 for the exact
//! rules of when a copy still happens).

use std::sync::Arc;

use crate::error::{Error, Result};

/// A regularly/irregularly sampled univariate numeric time series.
///
/// Timestamps are `u64` ticks (the unit is defined by the producer — the
/// additive-manufacturing simulator uses milliseconds). Values are `f64`.
/// Timestamps must be strictly increasing; constructors enforce this.
///
/// Cloning is O(1) (shared storage); equality is *logical* — two series are
/// equal when their names, timestamps and values match, regardless of
/// whether they share storage or where their windows sit in it.
#[derive(Clone)]
pub struct TimeSeries {
    name: Arc<str>,
    timestamps: Arc<[u64]>,
    values: Arc<[f64]>,
    /// First sample of this series' window within the shared storage.
    offset: usize,
    /// Window length in samples.
    len: usize,
}

impl std::fmt::Debug for TimeSeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeSeries")
            .field("name", &self.name())
            .field("timestamps", &self.timestamps())
            .field("values", &self.values())
            .finish()
    }
}

/// Logical equality: name + window contents, independent of storage layout.
impl PartialEq for TimeSeries {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.timestamps() == other.timestamps()
            && self.values() == other.values()
    }
}

impl TimeSeries {
    /// Creates a series from parallel timestamp/value vectors.
    ///
    /// # Errors
    /// Returns an error if the vectors differ in length or timestamps are
    /// not strictly increasing.
    pub fn new(name: impl Into<String>, timestamps: Vec<u64>, values: Vec<f64>) -> Result<Self> {
        if timestamps.len() != values.len() {
            return Err(Error::LengthMismatch {
                what: "TimeSeries::new",
                left: timestamps.len(),
                right: values.len(),
            });
        }
        if timestamps.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::invalid("timestamps", "must be strictly increasing"));
        }
        Ok(Self::from_parts(
            name.into().into(),
            timestamps.into(),
            values.into(),
        ))
    }

    /// Creates a regularly sampled series starting at `start` with the given
    /// sampling period (`step` ticks per sample).
    ///
    /// # Errors
    /// Returns an error if `step == 0`.
    pub fn regular(
        name: impl Into<String>,
        start: u64,
        step: u64,
        values: Vec<f64>,
    ) -> Result<Self> {
        if step == 0 {
            return Err(Error::invalid("step", "must be > 0"));
        }
        let timestamps: Vec<u64> = (0..values.len() as u64).map(|i| start + i * step).collect();
        Ok(Self::from_parts(
            name.into().into(),
            timestamps.into(),
            values.into(),
        ))
    }

    /// Creates a series from values only, with timestamps `0..n`.
    pub fn from_values(name: impl Into<String>, values: Vec<f64>) -> Self {
        let timestamps: Vec<u64> = (0..values.len() as u64).collect();
        Self::from_parts(name.into().into(), timestamps.into(), values.into())
    }

    /// Adopts already-shared column storage without copying: the series
    /// becomes a full window over `timestamps`/`values`, bumping two
    /// reference counts. This is how columns decoded from a `hierod-store`
    /// segment become live series — a recovered plant shares storage with
    /// the decoded segment instead of duplicating it.
    ///
    /// # Errors
    /// Returns an error if the columns differ in length or the timestamps
    /// are not strictly increasing (the same invariants
    /// [`TimeSeries::new`] enforces).
    pub fn from_shared(
        name: impl Into<String>,
        timestamps: Arc<[u64]>,
        values: Arc<[f64]>,
    ) -> Result<Self> {
        if timestamps.len() != values.len() {
            return Err(Error::LengthMismatch {
                what: "TimeSeries::from_shared",
                left: timestamps.len(),
                right: values.len(),
            });
        }
        let ordered = timestamps
            .iter()
            .zip(timestamps.iter().skip(1))
            .all(|(a, b)| a < b);
        if !ordered {
            return Err(Error::invalid("timestamps", "must be strictly increasing"));
        }
        Ok(Self::from_parts(name.into().into(), timestamps, values))
    }

    /// Assembles a full-window series over already-shared storage. The
    /// invariants (equal lengths, strictly increasing timestamps) must hold.
    fn from_parts(name: Arc<str>, timestamps: Arc<[u64]>, values: Arc<[f64]>) -> Self {
        debug_assert_eq!(timestamps.len(), values.len());
        let len = values.len();
        Self {
            name,
            timestamps,
            values,
            offset: 0,
            len,
        }
    }

    /// The series name (usually the producing sensor id).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The sample values.
    pub fn values(&self) -> &[f64] {
        &self.values[self.offset..self.offset + self.len]
    }

    /// The sample timestamps (strictly increasing).
    pub fn timestamps(&self) -> &[u64] {
        &self.timestamps[self.offset..self.offset + self.len]
    }

    /// The values as shared storage: O(1) when this series covers its whole
    /// backing buffer (the common case for sensor series), one copy when it
    /// is a proper sub-window.
    pub fn values_shared(&self) -> Arc<[f64]> {
        if self.offset == 0 && self.len == self.values.len() {
            Arc::clone(&self.values)
        } else {
            self.values().into()
        }
    }

    /// The timestamps as shared storage (same cost contract as
    /// [`Self::values_shared`]).
    pub fn timestamps_shared(&self) -> Arc<[u64]> {
        if self.offset == 0 && self.len == self.timestamps.len() {
            Arc::clone(&self.timestamps)
        } else {
            self.timestamps().into()
        }
    }

    /// An O(1) handle to the same series: bumps the storage reference
    /// counts, copies no samples. Semantically identical to `clone()`; use
    /// this name where sharing (rather than duplicating) is the point, e.g.
    /// hierarchy view materialization.
    pub fn share(&self) -> TimeSeries {
        self.clone()
    }

    /// `true` if `self` and `other` are windows over the *same* value
    /// storage (zero-copy sharing, not just equal contents).
    pub fn shares_storage_with(&self, other: &TimeSeries) -> bool {
        Arc::ptr_eq(&self.values, &other.values)
    }

    /// Returns `(timestamp, value)` at `idx`, if in bounds.
    pub fn get(&self, idx: usize) -> Option<(u64, f64)> {
        if idx < self.len {
            Some((self.timestamps()[idx], self.values()[idx]))
        } else {
            None
        }
    }

    /// Time span `(first, last)` covered by the series, if non-empty.
    pub fn span(&self) -> Option<(u64, u64)> {
        Some((*self.timestamps().first()?, *self.timestamps().last()?))
    }

    /// An O(1) zero-copy view of the sub-series with indices in `range`:
    /// shares storage with `self` (same name, narrowed window).
    ///
    /// # Panics
    /// Panics if the range is out of bounds (mirrors slice semantics).
    pub fn view(&self, range: std::ops::Range<usize>) -> TimeSeries {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "TimeSeries::view: range {}..{} out of bounds for length {}",
            range.start,
            range.end,
            self.len
        );
        TimeSeries {
            name: Arc::clone(&self.name),
            timestamps: Arc::clone(&self.timestamps),
            values: Arc::clone(&self.values),
            offset: self.offset + range.start,
            len: range.end - range.start,
        }
    }

    /// Extracts the sub-series with indices in `range`. Since the Arc
    /// storage refactor this is an O(1) view (alias of [`Self::view`]), not
    /// a copy.
    ///
    /// # Panics
    /// Panics if the range is out of bounds (mirrors slice semantics).
    pub fn slice(&self, range: std::ops::Range<usize>) -> TimeSeries {
        self.view(range)
    }

    /// Extracts the sub-series whose timestamps fall in `[t0, t1)` (an O(1)
    /// view sharing storage with `self`).
    pub fn between(&self, t0: u64, t1: u64) -> TimeSeries {
        let ts = self.timestamps();
        let start = ts.partition_point(|&t| t < t0);
        let end = ts.partition_point(|&t| t < t1);
        self.view(start..end)
    }

    /// Applies `f` to every value, producing a new series with the same
    /// timestamps (shared with `self` when `self` covers its whole backing
    /// buffer).
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> TimeSeries {
        let values: Arc<[f64]> = self.values().iter().copied().map(f).collect();
        TimeSeries {
            name: Arc::clone(&self.name),
            timestamps: self.timestamps_shared(),
            values,
            offset: 0,
            len: self.len,
        }
    }

    /// Returns a renamed handle to this series (shares storage).
    pub fn renamed(&self, name: impl Into<String>) -> TimeSeries {
        TimeSeries {
            name: name.into().into(),
            ..self.clone()
        }
    }

    /// Mutable access to values (for in-place injection by the simulator).
    ///
    /// Copy-on-write: if the storage is shared with other handles — or this
    /// series is a proper window into a larger buffer — the window is first
    /// detached onto its own uniquely-owned buffers, so mutation never leaks
    /// into views or clones taken earlier.
    pub fn values_mut(&mut self) -> &mut [f64] {
        // A proper window must detach: `Arc::make_mut` would clone (and
        // mutate) the *entire* backing buffer, aliasing the samples outside
        // our window with other views of the same storage.
        if self.offset != 0 || self.len != self.values.len() {
            self.values = self.values().into();
            self.timestamps = self.timestamps().into();
            self.offset = 0;
        }
        // Full-window: clone-if-shared, in place if uniquely owned.
        Arc::make_mut(&mut self.values)
    }

    /// Iterator over `(timestamp, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.timestamps()
            .iter()
            .copied()
            .zip(self.values().iter().copied())
    }
}

/// A discrete label sequence (the paper's "discrete value sequences" at the
/// phase level, e.g. machine state codes or CAQ event labels).
///
/// Symbols are small integers; the producer maintains the mapping from
/// domain labels to symbol ids via [`DiscreteSequence::with_alphabet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscreteSequence {
    name: String,
    symbols: Vec<u16>,
    /// Optional human-readable alphabet: `alphabet[sym as usize]` is the label.
    alphabet: Vec<String>,
}

impl DiscreteSequence {
    /// Creates a sequence from raw symbol ids with an empty alphabet.
    pub fn new(name: impl Into<String>, symbols: Vec<u16>) -> Self {
        Self {
            name: name.into(),
            symbols,
            alphabet: Vec::new(),
        }
    }

    /// Creates a sequence with an explicit alphabet.
    ///
    /// # Errors
    /// Returns an error if any symbol id is out of range for the alphabet.
    pub fn with_alphabet(
        name: impl Into<String>,
        symbols: Vec<u16>,
        alphabet: Vec<String>,
    ) -> Result<Self> {
        if let Some(&bad) = symbols.iter().find(|&&s| (s as usize) >= alphabet.len()) {
            return Err(Error::invalid(
                "symbols",
                format!(
                    "symbol {bad} out of range for alphabet of size {}",
                    alphabet.len()
                ),
            ));
        }
        Ok(Self {
            name: name.into(),
            symbols,
            alphabet,
        })
    }

    /// The sequence name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// `true` if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The raw symbol ids.
    pub fn symbols(&self) -> &[u16] {
        &self.symbols
    }

    /// Label for a symbol id, if an alphabet was attached.
    pub fn label(&self, sym: u16) -> Option<&str> {
        self.alphabet.get(sym as usize).map(String::as_str)
    }

    /// Number of distinct symbols actually used.
    pub fn distinct(&self) -> usize {
        let mut seen: Vec<u16> = self.symbols.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Size of the declared alphabet (0 when none was attached).
    pub fn alphabet_size(&self) -> usize {
        self.alphabet.len()
    }
}

/// A bundle of time-aligned univariate series (multivariate view).
///
/// All members must have identical timestamps; this is the form the
/// phase-level detectors consume when a phase carries several sensors of the
/// same physical quantity (the redundancy groups of the paper's support
/// mechanism).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSeries {
    series: Vec<TimeSeries>,
}

impl MultiSeries {
    /// Builds a bundle, verifying time alignment. Member series are moved,
    /// not copied (their storage stays shared with any other handles).
    ///
    /// # Errors
    /// Returns an error on an empty bundle or mismatched timestamps.
    pub fn new(series: Vec<TimeSeries>) -> Result<Self> {
        let first = series.first().ok_or(Error::Empty {
            what: "MultiSeries::new",
        })?;
        for s in &series[1..] {
            if s.timestamps() != first.timestamps() {
                return Err(Error::invalid(
                    "series",
                    format!(
                        "series `{}` is not time-aligned with `{}`",
                        s.name(),
                        first.name()
                    ),
                ));
            }
        }
        Ok(Self { series })
    }

    /// Number of member series (dimensionality).
    pub fn dims(&self) -> usize {
        self.series.len()
    }

    /// Number of time points.
    pub fn len(&self) -> usize {
        self.series[0].len()
    }

    /// `true` if there are no time points.
    pub fn is_empty(&self) -> bool {
        self.series[0].is_empty()
    }

    /// Member series.
    pub fn series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// The sample at time index `idx` as a vector across dimensions.
    pub fn row(&self, idx: usize) -> Vec<f64> {
        self.series.iter().map(|s| s.values()[idx]).collect()
    }

    /// All samples as row vectors (n × d).
    pub fn rows(&self) -> Vec<Vec<f64>> {
        (0..self.len()).map(|i| self.row(i)).collect()
    }

    /// Looks up a member series by name.
    pub fn by_name(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(vals: &[f64]) -> TimeSeries {
        TimeSeries::from_values("t", vals.to_vec())
    }

    #[test]
    fn new_rejects_length_mismatch() {
        let err = TimeSeries::new("x", vec![0, 1], vec![1.0]).unwrap_err();
        assert!(matches!(err, Error::LengthMismatch { .. }));
    }

    #[test]
    fn new_rejects_non_increasing_timestamps() {
        let err = TimeSeries::new("x", vec![0, 0], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter { .. }));
        let err = TimeSeries::new("x", vec![5, 3], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter { .. }));
    }

    #[test]
    fn regular_builds_arithmetic_timestamps() {
        let s = TimeSeries::regular("x", 10, 5, vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.timestamps(), &[10, 15, 20]);
        assert_eq!(s.span(), Some((10, 20)));
    }

    #[test]
    fn regular_rejects_zero_step() {
        assert!(TimeSeries::regular("x", 0, 0, vec![1.0]).is_err());
    }

    #[test]
    fn from_values_uses_unit_timestamps() {
        let s = ts(&[4.0, 5.0]);
        assert_eq!(s.timestamps(), &[0, 1]);
        assert_eq!(s.get(1), Some((1, 5.0)));
        assert_eq!(s.get(2), None);
    }

    #[test]
    fn between_selects_half_open_interval() {
        let s = TimeSeries::regular("x", 0, 10, vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        let sub = s.between(10, 30);
        assert_eq!(sub.values(), &[1.0, 2.0]);
        assert_eq!(sub.timestamps(), &[10, 20]);
        // Empty window.
        assert!(s.between(100, 200).is_empty());
    }

    #[test]
    fn slice_preserves_name() {
        let s = ts(&[1.0, 2.0, 3.0]);
        let sub = s.slice(1..3);
        assert_eq!(sub.name(), "t");
        assert_eq!(sub.values(), &[2.0, 3.0]);
    }

    #[test]
    fn clone_and_view_share_storage() {
        let s = ts(&[1.0, 2.0, 3.0, 4.0]);
        let c = s.clone();
        let sh = s.share();
        let v = s.view(1..3);
        assert!(s.shares_storage_with(&c));
        assert!(s.shares_storage_with(&sh));
        assert!(s.shares_storage_with(&v));
        assert_eq!(v.values(), &[2.0, 3.0]);
        assert_eq!(v.timestamps(), &[1, 2]);
        // Views of views still share.
        let vv = v.view(1..2);
        assert!(vv.shares_storage_with(&s));
        assert_eq!(vv.values(), &[3.0]);
        assert_eq!(vv.timestamps(), &[2]);
    }

    #[test]
    fn equality_is_logical_not_structural() {
        let owner = ts(&[9.0, 1.0, 2.0, 9.0]);
        let view = owner.view(1..3);
        let fresh = TimeSeries::new("t", vec![1, 2], vec![1.0, 2.0]).unwrap();
        // Same contents, different storage layout (offset 1 vs offset 0).
        assert_eq!(view, fresh);
        assert!(!view.shares_storage_with(&fresh));
    }

    #[test]
    fn values_mut_detaches_shared_storage() {
        let mut a = ts(&[1.0, 2.0, 3.0]);
        let b = a.clone();
        a.values_mut()[0] = 99.0;
        assert_eq!(a.values(), &[99.0, 2.0, 3.0]);
        assert_eq!(b.values(), &[1.0, 2.0, 3.0], "clone must be unaffected");
        assert!(!a.shares_storage_with(&b));
    }

    #[test]
    fn values_mut_detaches_views_without_touching_neighbors() {
        let base = ts(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        let mut v = base.view(1..4);
        v.values_mut()[1] = 77.0;
        assert_eq!(v.values(), &[1.0, 77.0, 3.0]);
        assert_eq!(v.timestamps(), &[1, 2, 3]);
        assert_eq!(base.values(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
        // After detaching, further mutation stays in place (unique owner).
        v.values_mut()[0] = -1.0;
        assert_eq!(v.values(), &[-1.0, 77.0, 3.0]);
    }

    #[test]
    fn values_mut_in_place_when_unique() {
        let mut s = ts(&[1.0, 2.0]);
        let before = s.values_shared();
        drop(before); // unique again
        s.values_mut()[1] = 5.0;
        assert_eq!(s.values(), &[1.0, 5.0]);
    }

    #[test]
    fn from_shared_adopts_columns_without_copying() {
        let ts: Arc<[u64]> = vec![1_u64, 5, 9].into();
        let vals: Arc<[f64]> = vec![1.0, 2.0, 3.0].into();
        let s = TimeSeries::from_shared("seg", Arc::clone(&ts), Arc::clone(&vals)).unwrap();
        assert_eq!(s.timestamps(), &[1, 5, 9]);
        // Zero-copy: the series' storage IS the adopted Arc.
        assert!(Arc::ptr_eq(&s.values_shared(), &vals));
        assert!(Arc::ptr_eq(&s.timestamps_shared(), &ts));
        // Invariants still enforced.
        let bad: Arc<[u64]> = vec![3_u64, 3].into();
        let v2: Arc<[f64]> = vec![0.0, 0.0].into();
        assert!(TimeSeries::from_shared("seg", bad, Arc::clone(&v2)).is_err());
        let short: Arc<[u64]> = vec![1_u64].into();
        assert!(TimeSeries::from_shared("seg", short, v2).is_err());
    }

    #[test]
    fn shared_accessors_are_zero_copy_for_full_windows() {
        let s = ts(&[1.0, 2.0, 3.0]);
        let v = s.values_shared();
        assert_eq!(&v[..], s.values());
        let t = s.timestamps_shared();
        assert_eq!(&t[..], s.timestamps());
        // A proper window must copy (an Arc window cannot be expressed).
        let w = s.view(0..2);
        assert_eq!(&w.values_shared()[..], &[1.0, 2.0]);
    }

    #[test]
    fn map_transforms_values_only() {
        let s = ts(&[1.0, 2.0]);
        let m = s.map(|v| v * 2.0);
        assert_eq!(m.values(), &[2.0, 4.0]);
        assert_eq!(m.timestamps(), s.timestamps());
        // Timestamps stay shared; values are fresh.
        let mv = s.view(0..1).map(|v| v + 1.0);
        assert_eq!(mv.values(), &[2.0]);
        assert_eq!(mv.timestamps(), &[0]);
    }

    #[test]
    fn renamed_shares_storage() {
        let s = ts(&[1.0, 2.0]);
        let r = s.renamed("other");
        assert_eq!(r.name(), "other");
        assert!(r.shares_storage_with(&s));
    }

    #[test]
    fn discrete_sequence_alphabet_roundtrip() {
        let seq = DiscreteSequence::with_alphabet(
            "states",
            vec![0, 1, 1, 2],
            vec!["idle".into(), "warm".into(), "print".into()],
        )
        .unwrap();
        assert_eq!(seq.label(2), Some("print"));
        assert_eq!(seq.distinct(), 3);
        assert_eq!(seq.alphabet_size(), 3);
    }

    #[test]
    fn discrete_sequence_rejects_out_of_range_symbol() {
        let err = DiscreteSequence::with_alphabet("s", vec![0, 7], vec!["a".into()]).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter { .. }));
    }

    #[test]
    fn multiseries_requires_alignment() {
        let a = TimeSeries::regular("a", 0, 1, vec![1.0, 2.0]).unwrap();
        let b = TimeSeries::regular("b", 0, 2, vec![1.0, 2.0]).unwrap();
        assert!(MultiSeries::new(vec![a.clone(), b]).is_err());
        let b2 = TimeSeries::regular("b", 0, 1, vec![3.0, 4.0]).unwrap();
        let m = MultiSeries::new(vec![a, b2]).unwrap();
        assert_eq!(m.dims(), 2);
        assert_eq!(m.row(1), vec![2.0, 4.0]);
        assert_eq!(m.by_name("b").unwrap().values(), &[3.0, 4.0]);
        assert!(m.by_name("zzz").is_none());
    }

    #[test]
    fn multiseries_rejects_empty() {
        assert!(MultiSeries::new(vec![]).is_err());
    }

    #[test]
    fn rows_materializes_matrix() {
        let a = TimeSeries::from_values("a", vec![1.0, 2.0]);
        let b = TimeSeries::from_values("b", vec![3.0, 4.0]);
        let m = MultiSeries::new(vec![a, b]).unwrap();
        assert_eq!(m.rows(), vec![vec![1.0, 3.0], vec![2.0, 4.0]]);
    }
}
