//! Core containers: [`TimeSeries`], [`DiscreteSequence`], [`MultiSeries`].
//!
//! The paper's phase level (its Fig. 2, level ①) delivers "either time series
//! data or discrete value sequences": numeric samples over time, or label
//! sequences. These two containers, plus an aligned multivariate bundle,
//! are the inputs every detector in `hierod-detect` consumes.

use crate::error::{Error, Result};

/// A regularly/irregularly sampled univariate numeric time series.
///
/// Timestamps are `u64` ticks (the unit is defined by the producer — the
/// additive-manufacturing simulator uses milliseconds). Values are `f64`.
/// Timestamps must be strictly increasing; constructors enforce this.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: String,
    timestamps: Vec<u64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series from parallel timestamp/value vectors.
    ///
    /// # Errors
    /// Returns an error if the vectors differ in length or timestamps are
    /// not strictly increasing.
    pub fn new(name: impl Into<String>, timestamps: Vec<u64>, values: Vec<f64>) -> Result<Self> {
        if timestamps.len() != values.len() {
            return Err(Error::LengthMismatch {
                what: "TimeSeries::new",
                left: timestamps.len(),
                right: values.len(),
            });
        }
        if timestamps.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::invalid("timestamps", "must be strictly increasing"));
        }
        Ok(Self {
            name: name.into(),
            timestamps,
            values,
        })
    }

    /// Creates a regularly sampled series starting at `start` with the given
    /// sampling period (`step` ticks per sample).
    ///
    /// # Errors
    /// Returns an error if `step == 0`.
    pub fn regular(
        name: impl Into<String>,
        start: u64,
        step: u64,
        values: Vec<f64>,
    ) -> Result<Self> {
        if step == 0 {
            return Err(Error::invalid("step", "must be > 0"));
        }
        let timestamps = (0..values.len() as u64).map(|i| start + i * step).collect();
        Ok(Self {
            name: name.into(),
            timestamps,
            values,
        })
    }

    /// Creates a series from values only, with timestamps `0..n`.
    pub fn from_values(name: impl Into<String>, values: Vec<f64>) -> Self {
        let timestamps = (0..values.len() as u64).collect();
        Self {
            name: name.into(),
            timestamps,
            values,
        }
    }

    /// The series name (usually the producing sensor id).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The sample timestamps (strictly increasing).
    pub fn timestamps(&self) -> &[u64] {
        &self.timestamps
    }

    /// Returns `(timestamp, value)` at `idx`, if in bounds.
    pub fn get(&self, idx: usize) -> Option<(u64, f64)> {
        Some((*self.timestamps.get(idx)?, *self.values.get(idx)?))
    }

    /// Time span `(first, last)` covered by the series, if non-empty.
    pub fn span(&self) -> Option<(u64, u64)> {
        Some((*self.timestamps.first()?, *self.timestamps.last()?))
    }

    /// Extracts the sub-series with indices in `range`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds (mirrors slice semantics).
    pub fn slice(&self, range: std::ops::Range<usize>) -> TimeSeries {
        TimeSeries {
            name: self.name.clone(),
            timestamps: self.timestamps[range.clone()].to_vec(),
            values: self.values[range].to_vec(),
        }
    }

    /// Extracts the sub-series whose timestamps fall in `[t0, t1)`.
    pub fn between(&self, t0: u64, t1: u64) -> TimeSeries {
        let start = self.timestamps.partition_point(|&t| t < t0);
        let end = self.timestamps.partition_point(|&t| t < t1);
        self.slice(start..end)
    }

    /// Applies `f` to every value, producing a new series with the same
    /// timestamps.
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> TimeSeries {
        TimeSeries {
            name: self.name.clone(),
            timestamps: self.timestamps.clone(),
            values: self.values.iter().copied().map(f).collect(),
        }
    }

    /// Returns a renamed copy of this series.
    pub fn renamed(&self, name: impl Into<String>) -> TimeSeries {
        TimeSeries {
            name: name.into(),
            ..self.clone()
        }
    }

    /// Mutable access to values (for in-place injection by the simulator).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Iterator over `(timestamp, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.timestamps
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }
}

/// A discrete label sequence (the paper's "discrete value sequences" at the
/// phase level, e.g. machine state codes or CAQ event labels).
///
/// Symbols are small integers; the producer maintains the mapping from
/// domain labels to symbol ids via [`DiscreteSequence::with_alphabet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscreteSequence {
    name: String,
    symbols: Vec<u16>,
    /// Optional human-readable alphabet: `alphabet[sym as usize]` is the label.
    alphabet: Vec<String>,
}

impl DiscreteSequence {
    /// Creates a sequence from raw symbol ids with an empty alphabet.
    pub fn new(name: impl Into<String>, symbols: Vec<u16>) -> Self {
        Self {
            name: name.into(),
            symbols,
            alphabet: Vec::new(),
        }
    }

    /// Creates a sequence with an explicit alphabet.
    ///
    /// # Errors
    /// Returns an error if any symbol id is out of range for the alphabet.
    pub fn with_alphabet(
        name: impl Into<String>,
        symbols: Vec<u16>,
        alphabet: Vec<String>,
    ) -> Result<Self> {
        if let Some(&bad) = symbols.iter().find(|&&s| (s as usize) >= alphabet.len()) {
            return Err(Error::invalid(
                "symbols",
                format!(
                    "symbol {bad} out of range for alphabet of size {}",
                    alphabet.len()
                ),
            ));
        }
        Ok(Self {
            name: name.into(),
            symbols,
            alphabet,
        })
    }

    /// The sequence name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// `true` if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The raw symbol ids.
    pub fn symbols(&self) -> &[u16] {
        &self.symbols
    }

    /// Label for a symbol id, if an alphabet was attached.
    pub fn label(&self, sym: u16) -> Option<&str> {
        self.alphabet.get(sym as usize).map(String::as_str)
    }

    /// Number of distinct symbols actually used.
    pub fn distinct(&self) -> usize {
        let mut seen: Vec<u16> = self.symbols.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Size of the declared alphabet (0 when none was attached).
    pub fn alphabet_size(&self) -> usize {
        self.alphabet.len()
    }
}

/// A bundle of time-aligned univariate series (multivariate view).
///
/// All members must have identical timestamps; this is the form the
/// phase-level detectors consume when a phase carries several sensors of the
/// same physical quantity (the redundancy groups of the paper's support
/// mechanism).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSeries {
    series: Vec<TimeSeries>,
}

impl MultiSeries {
    /// Builds a bundle, verifying time alignment.
    ///
    /// # Errors
    /// Returns an error on an empty bundle or mismatched timestamps.
    pub fn new(series: Vec<TimeSeries>) -> Result<Self> {
        let first = series.first().ok_or(Error::Empty {
            what: "MultiSeries::new",
        })?;
        for s in &series[1..] {
            if s.timestamps() != first.timestamps() {
                return Err(Error::invalid(
                    "series",
                    format!(
                        "series `{}` is not time-aligned with `{}`",
                        s.name(),
                        first.name()
                    ),
                ));
            }
        }
        Ok(Self { series })
    }

    /// Number of member series (dimensionality).
    pub fn dims(&self) -> usize {
        self.series.len()
    }

    /// Number of time points.
    pub fn len(&self) -> usize {
        self.series[0].len()
    }

    /// `true` if there are no time points.
    pub fn is_empty(&self) -> bool {
        self.series[0].is_empty()
    }

    /// Member series.
    pub fn series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// The sample at time index `idx` as a vector across dimensions.
    pub fn row(&self, idx: usize) -> Vec<f64> {
        self.series.iter().map(|s| s.values()[idx]).collect()
    }

    /// All samples as row vectors (n × d).
    pub fn rows(&self) -> Vec<Vec<f64>> {
        (0..self.len()).map(|i| self.row(i)).collect()
    }

    /// Looks up a member series by name.
    pub fn by_name(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(vals: &[f64]) -> TimeSeries {
        TimeSeries::from_values("t", vals.to_vec())
    }

    #[test]
    fn new_rejects_length_mismatch() {
        let err = TimeSeries::new("x", vec![0, 1], vec![1.0]).unwrap_err();
        assert!(matches!(err, Error::LengthMismatch { .. }));
    }

    #[test]
    fn new_rejects_non_increasing_timestamps() {
        let err = TimeSeries::new("x", vec![0, 0], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter { .. }));
        let err = TimeSeries::new("x", vec![5, 3], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter { .. }));
    }

    #[test]
    fn regular_builds_arithmetic_timestamps() {
        let s = TimeSeries::regular("x", 10, 5, vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.timestamps(), &[10, 15, 20]);
        assert_eq!(s.span(), Some((10, 20)));
    }

    #[test]
    fn regular_rejects_zero_step() {
        assert!(TimeSeries::regular("x", 0, 0, vec![1.0]).is_err());
    }

    #[test]
    fn from_values_uses_unit_timestamps() {
        let s = ts(&[4.0, 5.0]);
        assert_eq!(s.timestamps(), &[0, 1]);
        assert_eq!(s.get(1), Some((1, 5.0)));
        assert_eq!(s.get(2), None);
    }

    #[test]
    fn between_selects_half_open_interval() {
        let s = TimeSeries::regular("x", 0, 10, vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        let sub = s.between(10, 30);
        assert_eq!(sub.values(), &[1.0, 2.0]);
        assert_eq!(sub.timestamps(), &[10, 20]);
        // Empty window.
        assert!(s.between(100, 200).is_empty());
    }

    #[test]
    fn slice_preserves_name() {
        let s = ts(&[1.0, 2.0, 3.0]);
        let sub = s.slice(1..3);
        assert_eq!(sub.name(), "t");
        assert_eq!(sub.values(), &[2.0, 3.0]);
    }

    #[test]
    fn map_transforms_values_only() {
        let s = ts(&[1.0, 2.0]);
        let m = s.map(|v| v * 2.0);
        assert_eq!(m.values(), &[2.0, 4.0]);
        assert_eq!(m.timestamps(), s.timestamps());
    }

    #[test]
    fn discrete_sequence_alphabet_roundtrip() {
        let seq = DiscreteSequence::with_alphabet(
            "states",
            vec![0, 1, 1, 2],
            vec!["idle".into(), "warm".into(), "print".into()],
        )
        .unwrap();
        assert_eq!(seq.label(2), Some("print"));
        assert_eq!(seq.distinct(), 3);
        assert_eq!(seq.alphabet_size(), 3);
    }

    #[test]
    fn discrete_sequence_rejects_out_of_range_symbol() {
        let err = DiscreteSequence::with_alphabet("s", vec![0, 7], vec!["a".into()]).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter { .. }));
    }

    #[test]
    fn multiseries_requires_alignment() {
        let a = TimeSeries::regular("a", 0, 1, vec![1.0, 2.0]).unwrap();
        let b = TimeSeries::regular("b", 0, 2, vec![1.0, 2.0]).unwrap();
        assert!(MultiSeries::new(vec![a.clone(), b]).is_err());
        let b2 = TimeSeries::regular("b", 0, 1, vec![3.0, 4.0]).unwrap();
        let m = MultiSeries::new(vec![a, b2]).unwrap();
        assert_eq!(m.dims(), 2);
        assert_eq!(m.row(1), vec![2.0, 4.0]);
        assert_eq!(m.by_name("b").unwrap().values(), &[3.0, 4.0]);
        assert!(m.by_name("zzz").is_none());
    }

    #[test]
    fn multiseries_rejects_empty() {
        assert!(MultiSeries::new(vec![]).is_err());
    }

    #[test]
    fn rows_materializes_matrix() {
        let a = TimeSeries::from_values("a", vec![1.0, 2.0]);
        let b = TimeSeries::from_values("b", vec![3.0, 4.0]);
        let m = MultiSeries::new(vec![a, b]).unwrap();
        assert_eq!(m.rows(), vec![vec![1.0, 3.0], vec![2.0, 4.0]]);
    }
}
