//! Error type shared by the time-series substrate.

use std::fmt;

/// Errors produced by substrate operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The operation requires a non-empty input.
    Empty {
        /// Name of the operation that failed.
        what: &'static str,
    },
    /// Two inputs had incompatible lengths.
    LengthMismatch {
        /// Name of the operation that failed.
        what: &'static str,
        /// Left-hand length.
        left: usize,
        /// Right-hand length.
        right: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        param: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// A numeric routine failed to converge or produced a non-finite value.
    Numeric {
        /// Human-readable description.
        message: String,
    },
}

impl Error {
    /// Convenience constructor for [`Error::InvalidParameter`].
    pub fn invalid(param: &'static str, message: impl Into<String>) -> Self {
        Error::InvalidParameter {
            param,
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Empty { what } => write!(f, "{what}: input must be non-empty"),
            Error::LengthMismatch { what, left, right } => {
                write!(f, "{what}: length mismatch ({left} vs {right})")
            }
            Error::InvalidParameter { param, message } => {
                write!(f, "invalid parameter `{param}`: {message}")
            }
            Error::Numeric { message } => write!(f, "numeric error: {message}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for substrate operations.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::Empty { what: "mean" };
        assert_eq!(e.to_string(), "mean: input must be non-empty");
        let e = Error::LengthMismatch {
            what: "dot",
            left: 3,
            right: 4,
        };
        assert!(e.to_string().contains("3 vs 4"));
        let e = Error::invalid("k", "must be > 0");
        assert!(e.to_string().contains("`k`"));
        let e = Error::Numeric {
            message: "diverged".into(),
        };
        assert!(e.to_string().contains("diverged"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::Empty { what: "x" });
    }
}
