//! Descriptive statistics and robust estimators.
//!
//! These are the numeric primitives behind most point-granularity detectors
//! (z-scores, MAD fences) and behind the feature extraction used by the
//! window- and series-granularity detectors of Table 1.

use crate::error::{Error, Result};

/// Arithmetic mean.
///
/// # Errors
/// Returns [`Error::Empty`] for an empty slice.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(Error::Empty { what: "mean" });
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance (divides by `n`).
///
/// # Errors
/// Returns [`Error::Empty`] for an empty slice.
pub fn variance(xs: &[f64]) -> Result<f64> {
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Sample variance (divides by `n - 1`).
///
/// # Errors
/// Returns an error if fewer than two samples are supplied.
pub fn sample_variance(xs: &[f64]) -> Result<f64> {
    if xs.len() < 2 {
        return Err(Error::invalid("xs", "sample variance needs n >= 2"));
    }
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Population standard deviation.
///
/// # Errors
/// Returns [`Error::Empty`] for an empty slice.
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    Ok(variance(xs)?.sqrt())
}

/// Minimum value (NaN-propagating: any NaN yields NaN).
///
/// # Errors
/// Returns [`Error::Empty`] for an empty slice.
pub fn min(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(Error::Empty { what: "min" });
    }
    Ok(xs.iter().copied().fold(f64::INFINITY, f64::min))
}

/// Maximum value (NaN-propagating: any NaN yields NaN).
///
/// # Errors
/// Returns [`Error::Empty`] for an empty slice.
pub fn max(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(Error::Empty { what: "max" });
    }
    Ok(xs.iter().copied().fold(f64::NEG_INFINITY, f64::max))
}

/// Linear-interpolated quantile, `q` in `[0, 1]` (type-7, the R default).
///
/// # Errors
/// Returns an error for an empty slice or `q` outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(Error::Empty { what: "quantile" });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(Error::invalid("q", "must be in [0, 1]"));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Median (50 % quantile).
///
/// # Errors
/// Returns [`Error::Empty`] for an empty slice.
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// Median absolute deviation, scaled by 1.4826 to be consistent with the
/// standard deviation under normality.
///
/// # Errors
/// Returns [`Error::Empty`] for an empty slice.
pub fn mad(xs: &[f64]) -> Result<f64> {
    let med = median(xs)?;
    let dev: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    Ok(1.4826 * median(&dev)?)
}

/// Z-scores against the slice's own mean/std. A zero-variance input yields
/// all-zero scores (every point equals the mean, so none deviates).
///
/// # Errors
/// Returns [`Error::Empty`] for an empty slice.
pub fn z_scores(xs: &[f64]) -> Result<Vec<f64>> {
    let m = mean(xs)?;
    let s = std_dev(xs)?;
    // Relative guard: identical values can leave rounding dust in the
    // variance, which must not fabricate non-zero scores.
    if s <= 1e-12 * (1.0 + m.abs()) {
        return Ok(vec![0.0; xs.len()]);
    }
    Ok(xs.iter().map(|x| (x - m) / s).collect())
}

/// Robust z-scores using median/MAD. A zero-MAD input yields all-zero scores.
///
/// # Errors
/// Returns [`Error::Empty`] for an empty slice.
pub fn robust_z_scores(xs: &[f64]) -> Result<Vec<f64>> {
    let med = median(xs)?;
    let m = mad(xs)?;
    if m <= 1e-12 * (1.0 + med.abs()) {
        return Ok(vec![0.0; xs.len()]);
    }
    Ok(xs.iter().map(|x| (x - med) / m).collect())
}

/// Skewness (third standardized moment, population form). Zero-variance
/// inputs yield 0.
///
/// # Errors
/// Returns [`Error::Empty`] for an empty slice.
pub fn skewness(xs: &[f64]) -> Result<f64> {
    let m = mean(xs)?;
    let s = std_dev(xs)?;
    if s == 0.0 {
        return Ok(0.0);
    }
    let n = xs.len() as f64;
    Ok(xs.iter().map(|x| ((x - m) / s).powi(3)).sum::<f64>() / n)
}

/// Excess kurtosis (fourth standardized moment − 3). Zero-variance inputs
/// yield 0.
///
/// # Errors
/// Returns [`Error::Empty`] for an empty slice.
pub fn kurtosis(xs: &[f64]) -> Result<f64> {
    let m = mean(xs)?;
    let s = std_dev(xs)?;
    if s == 0.0 {
        return Ok(0.0);
    }
    let n = xs.len() as f64;
    Ok(xs.iter().map(|x| ((x - m) / s).powi(4)).sum::<f64>() / n - 3.0)
}

/// Exponentially weighted moving average with smoothing factor
/// `alpha` in `(0, 1]`.
///
/// # Errors
/// Returns an error for an empty input or `alpha` outside `(0, 1]`.
pub fn ewma(xs: &[f64], alpha: f64) -> Result<Vec<f64>> {
    if xs.is_empty() {
        return Err(Error::Empty { what: "ewma" });
    }
    if !(alpha > 0.0 && alpha <= 1.0) {
        return Err(Error::invalid("alpha", "must be in (0, 1]"));
    }
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = xs[0];
    out.push(acc);
    for &x in &xs[1..] {
        acc = alpha * x + (1.0 - alpha) * acc;
        out.push(acc);
    }
    Ok(out)
}

/// Autocorrelation at `lag` (biased estimator, normalized by the lag-0
/// autocovariance). Zero-variance inputs yield 0.
///
/// # Errors
/// Returns an error if `lag >= xs.len()` or the input is empty.
pub fn autocorrelation(xs: &[f64], lag: usize) -> Result<f64> {
    if xs.is_empty() {
        return Err(Error::Empty {
            what: "autocorrelation",
        });
    }
    if lag >= xs.len() {
        return Err(Error::invalid("lag", "must be < series length"));
    }
    let m = mean(xs)?;
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom == 0.0 {
        return Ok(0.0);
    }
    let num: f64 = (0..xs.len() - lag)
        .map(|i| (xs[i] - m) * (xs[i + lag] - m))
        .sum();
    Ok(num / denom)
}

/// Autocovariance sequence for lags `0..=max_lag` (biased, divides by `n`).
///
/// # Errors
/// Returns an error if `max_lag >= xs.len()` or the input is empty.
pub fn autocovariances(xs: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    if xs.is_empty() {
        return Err(Error::Empty {
            what: "autocovariances",
        });
    }
    if max_lag >= xs.len() {
        return Err(Error::invalid("max_lag", "must be < series length"));
    }
    let n = xs.len() as f64;
    let m = mean(xs)?;
    let mut out = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        let c: f64 = (0..xs.len() - lag)
            .map(|i| (xs[i] - m) * (xs[i + lag] - m))
            .sum::<f64>()
            / n;
        out.push(c);
    }
    Ok(out)
}

/// Pearson correlation between two equal-length slices. Returns 0 when either
/// side has zero variance.
///
/// # Errors
/// Returns an error on length mismatch or empty input.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(Error::LengthMismatch {
            what: "pearson",
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.is_empty() {
        return Err(Error::Empty { what: "pearson" });
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        num += (x - mx) * (y - my);
        dx += (x - mx) * (x - mx);
        dy += (y - my) * (y - my);
    }
    if dx == 0.0 || dy == 0.0 {
        return Ok(0.0);
    }
    Ok(num / (dx.sqrt() * dy.sqrt()))
}

/// Cross-correlation of `ys` against `xs` at an integer `lag`: the Pearson
/// correlation of `xs[t]` with `ys[t + lag]` (positive lag = `ys` lags
/// behind `xs`). Used to align environment series with process series.
///
/// # Errors
/// Returns an error on length mismatch, empty input, or a lag leaving fewer
/// than two overlapping samples.
pub fn cross_correlation(xs: &[f64], ys: &[f64], lag: isize) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(Error::LengthMismatch {
            what: "cross_correlation",
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.is_empty() {
        return Err(Error::Empty {
            what: "cross_correlation",
        });
    }
    let n = xs.len() as isize;
    if lag.abs() >= n - 1 {
        return Err(Error::invalid(
            "lag",
            "leaves fewer than 2 overlapping samples",
        ));
    }
    let (a, b): (&[f64], &[f64]) = if lag >= 0 {
        (&xs[..xs.len() - lag as usize], &ys[lag as usize..])
    } else {
        (&xs[(-lag) as usize..], &ys[..ys.len() - (-lag) as usize])
    };
    pearson(a, b)
}

/// Incremental mean/variance accumulator (Welford's algorithm). Useful for
/// streaming phase-level statistics where the paper demands "calculation
/// speed".
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Current population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn mean_and_variance_hand_checked() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs).unwrap() - 5.0).abs() < EPS);
        assert!((variance(&xs).unwrap() - 4.0).abs() < EPS);
        assert!((std_dev(&xs).unwrap() - 2.0).abs() < EPS);
        assert!((sample_variance(&xs).unwrap() - 32.0 / 7.0).abs() < EPS);
    }

    #[test]
    fn empty_inputs_error() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[]).is_err());
        assert!(min(&[]).is_err());
        assert!(max(&[]).is_err());
        assert!(quantile(&[], 0.5).is_err());
        assert!(ewma(&[], 0.5).is_err());
        assert!(autocorrelation(&[], 0).is_err());
        assert!(pearson(&[], &[]).is_err());
        assert!(sample_variance(&[1.0]).is_err());
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&xs, 0.0).unwrap() - 1.0).abs() < EPS);
        assert!((quantile(&xs, 1.0).unwrap() - 4.0).abs() < EPS);
        assert!((quantile(&xs, 0.5).unwrap() - 2.5).abs() < EPS);
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < EPS);
        assert!(quantile(&xs, 1.5).is_err());
    }

    #[test]
    fn median_odd_and_even() {
        assert!((median(&[3.0, 1.0, 2.0]).unwrap() - 2.0).abs() < EPS);
        assert!((median(&[4.0, 1.0, 2.0, 3.0]).unwrap() - 2.5).abs() < EPS);
    }

    #[test]
    fn mad_is_robust_to_one_outlier() {
        let xs = [1.0, 2.0, 3.0, 4.0, 1000.0];
        // Median 3, abs devs [2,1,0,1,997], median dev 1 -> MAD = 1.4826.
        assert!((mad(&xs).unwrap() - 1.4826).abs() < EPS);
    }

    #[test]
    fn z_scores_standardize() {
        let zs = z_scores(&[1.0, 2.0, 3.0]).unwrap();
        assert!((mean(&zs).unwrap()).abs() < EPS);
        assert!((std_dev(&zs).unwrap() - 1.0).abs() < EPS);
        // Constant input: all zeros, not NaN.
        assert_eq!(z_scores(&[5.0, 5.0]).unwrap(), vec![0.0, 0.0]);
    }

    #[test]
    fn robust_z_flags_outlier_strongly() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 100.0];
        let rz = robust_z_scores(&xs).unwrap();
        assert!(rz[5] > 10.0, "outlier robust-z = {}", rz[5]);
        assert!(rz[2].abs() < 1.0);
    }

    #[test]
    fn skew_kurtosis_of_symmetric_data() {
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&xs).unwrap().abs() < EPS);
        // Uniform-ish, platykurtic: excess kurtosis < 0.
        assert!(kurtosis(&xs).unwrap() < 0.0);
        assert_eq!(skewness(&[1.0, 1.0]).unwrap(), 0.0);
        assert_eq!(kurtosis(&[1.0, 1.0]).unwrap(), 0.0);
    }

    #[test]
    fn ewma_smooths_and_respects_alpha_one() {
        let xs = [0.0, 10.0, 10.0];
        let e = ewma(&xs, 0.5).unwrap();
        assert_eq!(e[0], 0.0);
        assert!((e[1] - 5.0).abs() < EPS);
        assert!((e[2] - 7.5).abs() < EPS);
        // alpha = 1 reproduces the input.
        assert_eq!(ewma(&xs, 1.0).unwrap(), xs.to_vec());
        assert!(ewma(&xs, 0.0).is_err());
        assert!(ewma(&xs, 1.5).is_err());
    }

    #[test]
    fn autocorrelation_of_alternating_series_is_negative_at_lag1() {
        let xs = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!((autocorrelation(&xs, 0).unwrap() - 1.0).abs() < EPS);
        assert!(autocorrelation(&xs, 1).unwrap() < -0.8);
        assert!(autocorrelation(&xs, 8).is_err());
        assert_eq!(autocorrelation(&[2.0, 2.0, 2.0], 1).unwrap(), 0.0);
    }

    #[test]
    fn autocovariances_lag0_is_variance() {
        let xs = [1.0, 3.0, 2.0, 5.0, 4.0];
        let ac = autocovariances(&xs, 2).unwrap();
        assert!((ac[0] - variance(&xs).unwrap()).abs() < EPS);
        assert_eq!(ac.len(), 3);
    }

    #[test]
    fn pearson_perfect_and_anti_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < EPS);
        let yneg = [6.0, 4.0, 2.0];
        assert!((pearson(&xs, &yneg).unwrap() + 1.0).abs() < EPS);
        assert_eq!(pearson(&xs, &[1.0, 1.0, 1.0]).unwrap(), 0.0);
        assert!(pearson(&xs, &[1.0]).is_err());
    }

    #[test]
    fn cross_correlation_finds_the_shift() {
        // ys is xs delayed by 3 samples.
        let xs: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).sin()).collect();
        let ys: Vec<f64> = (0..40).map(|i| ((i as f64 - 3.0) * 0.7).sin()).collect();
        let at_lag3 = cross_correlation(&xs, &ys, 3).unwrap();
        let at_lag0 = cross_correlation(&xs, &ys, 0).unwrap();
        assert!(at_lag3 > 0.99, "lag-3 correlation {at_lag3}");
        assert!(at_lag3 > at_lag0);
        // Negative lag looks the other way.
        let neg = cross_correlation(&ys, &xs, -3).unwrap();
        assert!(neg > 0.99);
        // Zero lag of identical series is 1.
        assert!((cross_correlation(&xs, &xs, 0).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn cross_correlation_validation() {
        let xs = [1.0, 2.0, 3.0];
        assert!(cross_correlation(&xs, &[1.0], 0).is_err());
        assert!(cross_correlation(&[], &[], 0).is_err());
        assert!(cross_correlation(&xs, &xs, 2).is_err());
        assert!(cross_correlation(&xs, &xs, -2).is_err());
        assert!(cross_correlation(&xs, &xs, 1).is_ok());
    }

    #[test]
    fn running_stats_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert_eq!(rs.count(), 8);
        assert!((rs.mean() - mean(&xs).unwrap()).abs() < EPS);
        assert!((rs.variance() - variance(&xs).unwrap()).abs() < EPS);
    }

    #[test]
    fn running_stats_merge_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0];
        let ys = [5.0, 5.0, 7.0, 9.0];
        let all: Vec<f64> = xs.iter().chain(&ys).copied().collect();
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs {
            a.push(x);
        }
        for &y in &ys {
            b.push(y);
        }
        a.merge(&b);
        assert!((a.mean() - mean(&all).unwrap()).abs() < EPS);
        assert!((a.variance() - variance(&all).unwrap()).abs() < EPS);
        // Merging into empty adopts the other side.
        let mut c = RunningStats::new();
        c.merge(&a);
        assert_eq!(c.count(), 8);
        // Merging empty is a no-op.
        let before = c.mean();
        c.merge(&RunningStats::new());
        assert_eq!(c.mean(), before);
    }
}
