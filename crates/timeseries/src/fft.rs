//! Radix-2 FFT and spectral features.
//!
//! Nairac et al.'s jet-engine vibration-signature detector (Table 1 row
//! *Vibration Signature*) clusters spectral shapes of vibration windows.
//! This module supplies the FFT, power spectrum, and the banded spectral
//! signature those detectors consume. Implemented from scratch (iterative
//! Cooley-Tukey with bit-reversal permutation).

use crate::error::{Error, Result};

/// A complex number (minimal, local — we only need FFT arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs `re + im·i`.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    fn mul(self, other: Complex) -> Complex {
        Complex::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }

    fn add(self, other: Complex) -> Complex {
        Complex::new(self.re + other.re, self.im + other.im)
    }

    fn sub(self, other: Complex) -> Complex {
        Complex::new(self.re - other.re, self.im - other.im)
    }
}

fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// In-place iterative radix-2 FFT. `inverse = true` computes the inverse
/// transform (including the `1/n` scaling).
///
/// # Errors
/// Returns an error unless the length is a power of two ≥ 1.
pub fn fft_in_place(data: &mut [Complex], inverse: bool) -> Result<()> {
    let n = data.len();
    if !is_power_of_two(n) {
        return Err(Error::invalid(
            "data",
            format!("length must be a power of two (got {n})"),
        ));
    }
    // Bit-reversal permutation.
    let mut j = 0_usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2].mul(w);
                data[i + k] = u.add(v);
                data[i + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for d in data.iter_mut() {
            d.re *= scale;
            d.im *= scale;
        }
    }
    Ok(())
}

/// Forward FFT of a real signal. Length must be a power of two.
///
/// # Errors
/// Returns an error on non-power-of-two lengths.
pub fn fft_real(signal: &[f64]) -> Result<Vec<Complex>> {
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft_in_place(&mut buf, false)?;
    Ok(buf)
}

/// One-sided power spectrum of a real signal: `n/2 + 1` bins, bin `k`
/// holding `|X_k|² / n`.
///
/// # Errors
/// Returns an error on non-power-of-two lengths.
pub fn power_spectrum(signal: &[f64]) -> Result<Vec<f64>> {
    let n = signal.len();
    let spec = fft_real(signal)?;
    Ok(spec[..=n / 2]
        .iter()
        .map(|c| c.norm_sq() / n as f64)
        .collect())
}

/// Zero-pads a signal to the next power of two (identity when already one).
pub fn pad_to_pow2(signal: &[f64]) -> Vec<f64> {
    let n = signal.len().max(1);
    let target = n.next_power_of_two();
    let mut out = signal.to_vec();
    out.resize(target, 0.0);
    out
}

/// Banded spectral signature: the one-sided power spectrum collapsed into
/// `bands` equal-width frequency bands (mean power per band), then
/// L1-normalized so signatures compare spectral *shape* independent of
/// energy. This is the feature vector of the vibration-signature detector.
///
/// # Errors
/// Returns an error if `bands == 0` or the signal is empty.
pub fn spectral_signature(signal: &[f64], bands: usize) -> Result<Vec<f64>> {
    if signal.is_empty() {
        return Err(Error::Empty {
            what: "spectral_signature",
        });
    }
    if bands == 0 {
        return Err(Error::invalid("bands", "must be > 0"));
    }
    let padded = pad_to_pow2(signal);
    let ps = power_spectrum(&padded)?;
    // Skip the DC bin so constant offsets don't dominate the signature.
    let ac = &ps[1..];
    let mut sig = vec![0.0_f64; bands];
    let mut counts = vec![0_usize; bands];
    if ac.is_empty() {
        return Ok(sig);
    }
    for (i, &p) in ac.iter().enumerate() {
        let band = (i * bands) / ac.len();
        let band = band.min(bands - 1);
        sig[band] += p;
        counts[band] += 1;
    }
    for (s, &c) in sig.iter_mut().zip(&counts) {
        if c > 0 {
            *s /= c as f64;
        }
    }
    let total: f64 = sig.iter().sum();
    if total > 0.0 {
        sig.iter_mut().for_each(|s| *s /= total);
    }
    Ok(sig)
}

/// Index of the strongest non-DC frequency bin of a real signal (the
/// dominant oscillation), or `None` for signals shorter than 2 samples.
///
/// # Errors
/// Returns an error on FFT failure (after internal padding this cannot
/// happen for non-empty input).
pub fn dominant_frequency_bin(signal: &[f64]) -> Result<Option<usize>> {
    if signal.len() < 2 {
        return Ok(None);
    }
    let padded = pad_to_pow2(signal);
    let ps = power_spectrum(&padded)?;
    let best = ps
        .iter()
        .enumerate()
        .skip(1)
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i);
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::default(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut data, false).unwrap();
        for c in &data {
            assert!((c.re - 1.0).abs() < EPS);
            assert!(c.im.abs() < EPS);
        }
    }

    #[test]
    fn fft_roundtrip_recovers_signal() {
        let signal = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft_in_place(&mut buf, false).unwrap();
        fft_in_place(&mut buf, true).unwrap();
        for (c, &x) in buf.iter().zip(&signal) {
            assert!((c.re - x).abs() < 1e-9);
            assert!(c.im.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_rejects_non_pow2() {
        let mut data = vec![Complex::default(); 6];
        assert!(fft_in_place(&mut data, false).is_err());
        assert!(fft_real(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn pure_tone_concentrates_power_in_one_bin() {
        let n = 64;
        let k = 5;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64).sin())
            .collect();
        let ps = power_spectrum(&signal).unwrap();
        assert_eq!(ps.len(), n / 2 + 1);
        let max_bin = ps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_bin, k);
        // All other bins (except k) carry negligible power.
        for (i, &p) in ps.iter().enumerate() {
            if i != k {
                assert!(p < 1e-9, "bin {i} leaked power {p}");
            }
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let signal = [1.0, -2.0, 3.0, 0.5, -0.25, 2.0, -1.0, 0.0];
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spec = fft_real(&signal).unwrap();
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sq()).sum::<f64>() / signal.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn pad_to_pow2_behaviour() {
        assert_eq!(pad_to_pow2(&[1.0, 2.0, 3.0]).len(), 4);
        assert_eq!(pad_to_pow2(&[1.0, 2.0]).len(), 2);
        assert_eq!(pad_to_pow2(&[]).len(), 1);
    }

    #[test]
    fn spectral_signature_is_normalized_and_shape_sensitive() {
        let n = 128;
        let low: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 3.0 * i as f64 / n as f64).sin())
            .collect();
        let high: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 50.0 * i as f64 / n as f64).sin())
            .collect();
        let sig_low = spectral_signature(&low, 8).unwrap();
        let sig_high = spectral_signature(&high, 8).unwrap();
        assert!((sig_low.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((sig_high.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Low tone's mass sits in the first band; high tone's in a later band.
        assert!(sig_low[0] > 0.9);
        assert!(sig_high[0] < 0.1);
        assert!(spectral_signature(&low, 0).is_err());
        assert!(spectral_signature(&[], 4).is_err());
    }

    #[test]
    fn signature_is_amplitude_invariant() {
        let n = 64;
        let base: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 4.0 * i as f64 / n as f64).sin())
            .collect();
        let loud: Vec<f64> = base.iter().map(|x| x * 10.0).collect();
        let s1 = spectral_signature(&base, 8).unwrap();
        let s2 = spectral_signature(&loud, 8).unwrap();
        for (a, b) in s1.iter().zip(&s2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn dominant_frequency_finds_the_tone() {
        let n = 64;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 7.0 * i as f64 / n as f64).cos())
            .collect();
        assert_eq!(dominant_frequency_bin(&signal).unwrap(), Some(7));
        assert_eq!(dominant_frequency_bin(&[1.0]).unwrap(), None);
        assert_eq!(dominant_frequency_bin(&[]).unwrap(), None);
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let p = a.mul(b);
        assert_eq!((p.re, p.im), (5.0, 5.0));
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < EPS);
    }
}
