//! Fixed-size overlapping window extraction.
//!
//! The paper (Section 3) singles out window-based detection: "outlier scores
//! are calculated for overlapping windows with fixed length as parameters"
//! and notes that this class "suits well for detecting exact positions of
//! anomalies". All sub-sequence (SSQ) detectors in `hierod-detect` consume
//! windows produced here.

use crate::error::{Error, Result};
use crate::series::TimeSeries;

/// Parameters for sliding-window extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Window length in samples (> 0).
    pub len: usize,
    /// Hop between consecutive window starts in samples (> 0).
    /// `stride == len` gives non-overlapping tumbling windows; `stride == 1`
    /// gives maximally overlapping sliding windows.
    pub stride: usize,
}

impl WindowSpec {
    /// Creates a spec, validating both fields.
    ///
    /// # Errors
    /// Returns an error if `len == 0` or `stride == 0`.
    pub fn new(len: usize, stride: usize) -> Result<Self> {
        if len == 0 {
            return Err(Error::invalid("len", "window length must be > 0"));
        }
        if stride == 0 {
            return Err(Error::invalid("stride", "stride must be > 0"));
        }
        Ok(Self { len, stride })
    }

    /// Sliding windows with stride 1.
    ///
    /// # Errors
    /// Returns an error if `len == 0`.
    pub fn sliding(len: usize) -> Result<Self> {
        Self::new(len, 1)
    }

    /// Non-overlapping tumbling windows.
    ///
    /// # Errors
    /// Returns an error if `len == 0`.
    pub fn tumbling(len: usize) -> Result<Self> {
        Self::new(len, len)
    }

    /// Number of complete windows a sequence of length `n` yields.
    pub fn count(&self, n: usize) -> usize {
        if n < self.len {
            0
        } else {
            (n - self.len) / self.stride + 1
        }
    }
}

/// One extracted window: a view plus its position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window<'a> {
    /// Index of the first sample of this window in the source.
    pub start: usize,
    /// The window's values.
    pub values: &'a [f64],
}

impl Window<'_> {
    /// Index one past the last sample of this window in the source.
    pub fn end(&self) -> usize {
        self.start + self.values.len()
    }

    /// `true` if source index `idx` falls inside this window.
    pub fn contains(&self, idx: usize) -> bool {
        idx >= self.start && idx < self.end()
    }
}

/// Iterator over the complete windows of a slice.
#[derive(Debug, Clone)]
pub struct WindowIter<'a> {
    data: &'a [f64],
    spec: WindowSpec,
    next_start: usize,
}

impl<'a> Iterator for WindowIter<'a> {
    type Item = Window<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        let end = self.next_start.checked_add(self.spec.len)?;
        let w = Window {
            start: self.next_start,
            values: self.data.get(self.next_start..end)?,
        };
        self.next_start += self.spec.stride;
        Some(w)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self
            .data
            .len()
            .saturating_sub(self.next_start)
            .checked_sub(self.spec.len)
            .map(|r| r / self.spec.stride + 1)
            .unwrap_or(0);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for WindowIter<'_> {}

/// Extracts complete windows from a slice.
pub fn windows(data: &[f64], spec: WindowSpec) -> WindowIter<'_> {
    WindowIter {
        data,
        spec,
        next_start: 0,
    }
}

/// Extracts complete windows from a [`TimeSeries`].
pub fn series_windows(series: &TimeSeries, spec: WindowSpec) -> WindowIter<'_> {
    windows(series.values(), spec)
}

/// Extracts complete windows of a discrete symbol sequence.
pub fn symbol_windows(symbols: &[u16], spec: WindowSpec) -> Vec<(usize, &[u16])> {
    let mut out = Vec::with_capacity(spec.count(symbols.len()));
    let mut start = 0_usize;
    while let Some(window) = start
        .checked_add(spec.len)
        .and_then(|end| symbols.get(start..end))
    {
        out.push((start, window));
        start += spec.stride;
    }
    out
}

/// Spreads per-window scores back to per-point scores by assigning each point
/// the **maximum** score over all windows covering it. Points covered by no
/// window (the tail shorter than one window) receive 0.
///
/// This is the standard way window-granularity detectors participate in
/// point-level evaluation, and is how the hierarchical pipeline lifts SSQ
/// detectors to the paper's point-score comparisons.
pub fn window_scores_to_point_scores(
    n: usize,
    spec: WindowSpec,
    window_scores: &[f64],
) -> Vec<f64> {
    let mut out = vec![0.0_f64; n];
    for (w_idx, &score) in window_scores.iter().enumerate() {
        let start = w_idx * spec.stride;
        let end = (start + spec.len).min(n);
        let covered = out.get_mut(start..end).unwrap_or(&mut []);
        for s in covered {
            if score > *s {
                *s = score;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation() {
        assert!(WindowSpec::new(0, 1).is_err());
        assert!(WindowSpec::new(1, 0).is_err());
        let s = WindowSpec::new(4, 2).unwrap();
        assert_eq!(s.len, 4);
        assert_eq!(s.stride, 2);
    }

    #[test]
    fn count_formula() {
        let s = WindowSpec::new(3, 1).unwrap();
        assert_eq!(s.count(5), 3);
        assert_eq!(s.count(3), 1);
        assert_eq!(s.count(2), 0);
        let t = WindowSpec::tumbling(2).unwrap();
        assert_eq!(t.count(7), 3);
        let h = WindowSpec::new(4, 3).unwrap();
        assert_eq!(h.count(10), 3); // starts 0,3,6
    }

    #[test]
    fn sliding_windows_cover_all_positions() {
        let data = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ws: Vec<_> = windows(&data, WindowSpec::sliding(2).unwrap()).collect();
        assert_eq!(ws.len(), 4);
        assert_eq!(ws[0].values, &[0.0, 1.0]);
        assert_eq!(ws[3].values, &[3.0, 4.0]);
        assert_eq!(ws[3].start, 3);
        assert_eq!(ws[3].end(), 5);
        assert!(ws[3].contains(4));
        assert!(!ws[3].contains(2));
    }

    #[test]
    fn tumbling_windows_do_not_overlap() {
        let data = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ws: Vec<_> = windows(&data, WindowSpec::tumbling(2).unwrap()).collect();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].values, &[0.0, 1.0]);
        assert_eq!(ws[1].values, &[2.0, 3.0]);
    }

    #[test]
    fn iterator_len_matches_count() {
        let data = vec![0.0; 100];
        for (len, stride) in [(5, 1), (5, 5), (7, 3), (100, 1), (101, 1)] {
            let spec = WindowSpec::new(len, stride).unwrap();
            let it = windows(&data, spec);
            assert_eq!(it.len(), spec.count(100), "len={len} stride={stride}");
            assert_eq!(it.count(), spec.count(100));
        }
    }

    #[test]
    fn symbol_windows_match_numeric_semantics() {
        let syms = [1_u16, 2, 3, 4, 5];
        let ws = symbol_windows(&syms, WindowSpec::new(3, 2).unwrap());
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0], (0, &syms[0..3]));
        assert_eq!(ws[1], (2, &syms[2..5]));
    }

    #[test]
    fn window_to_point_scores_takes_max_over_covering_windows() {
        // n=5, len=3, stride=1 -> 3 windows starting at 0,1,2.
        let spec = WindowSpec::sliding(3).unwrap();
        let pts = window_scores_to_point_scores(5, spec, &[1.0, 5.0, 2.0]);
        // point 0: only window 0 -> 1. point 1: windows 0,1 -> 5.
        // point 3: windows 1,2 -> 5. point 4: window 2 -> 2.
        assert_eq!(pts, vec![1.0, 5.0, 5.0, 5.0, 2.0]);
    }

    #[test]
    fn window_to_point_scores_uncovered_tail_is_zero() {
        let spec = WindowSpec::tumbling(2).unwrap();
        let pts = window_scores_to_point_scores(5, spec, &[3.0, 4.0]);
        assert_eq!(pts, vec![3.0, 3.0, 4.0, 4.0, 0.0]);
    }

    #[test]
    fn series_windows_delegate() {
        let s = TimeSeries::from_values("x", vec![1.0, 2.0, 3.0]);
        let ws: Vec<_> = series_windows(&s, WindowSpec::sliding(2).unwrap()).collect();
        assert_eq!(ws.len(), 2);
    }
}
