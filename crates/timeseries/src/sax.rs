//! Symbolic Aggregate approXimation (SAX).
//!
//! Implements Lin et al., "A symbolic representation of time series, with
//! implications for streaming algorithms" — Table 1 row *Symbolic
//! Representation* (class OS). A window is z-normalized, reduced by
//! Piecewise Aggregate Approximation (PAA), and each PAA segment is mapped to
//! a symbol by equiprobable Gaussian breakpoints. The companion `MINDIST`
//! lower-bounds the true Euclidean distance, which the property tests verify.

use crate::error::{Error, Result};
use crate::normalize;

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9 over (0, 1)).
///
/// # Errors
/// Returns an error unless `p` lies strictly inside `(0, 1)`.
pub fn inv_norm_cdf(p: f64) -> Result<f64> {
    if !(p > 0.0 && p < 1.0) {
        return Err(Error::invalid("p", "must be in (0, 1)"));
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    Ok(x)
}

/// Piecewise Aggregate Approximation: reduces `xs` to `segments` means.
///
/// Handles lengths not divisible by `segments` by fractional assignment
/// (each sample contributes to the segment(s) it overlaps).
///
/// # Errors
/// Returns an error if `segments == 0` or `segments > xs.len()` or `xs` is
/// empty.
pub fn paa(xs: &[f64], segments: usize) -> Result<Vec<f64>> {
    if xs.is_empty() {
        return Err(Error::Empty { what: "paa" });
    }
    if segments == 0 || segments > xs.len() {
        return Err(Error::invalid(
            "segments",
            format!("must be in 1..={} (got {segments})", xs.len()),
        ));
    }
    let n = xs.len();
    if n.is_multiple_of(segments) {
        let w = n / segments;
        return Ok(xs
            .chunks_exact(w)
            .map(|c| c.iter().sum::<f64>() / w as f64)
            .collect());
    }
    // Fractional PAA: conceptually stretch xs by `segments`, then average
    // blocks of length n.
    let mut out = vec![0.0_f64; segments];
    for (i, &x) in xs.iter().enumerate() {
        let start = i * segments;
        let end = (i + 1) * segments;
        let mut s = start;
        while s < end {
            let seg = s / n;
            let seg_end = (seg + 1) * n;
            let take = seg_end.min(end) - s;
            out[seg] += x * take as f64;
            s += take;
        }
    }
    out.iter_mut().for_each(|o| *o /= n as f64);
    Ok(out)
}

/// SAX quantizer: equiprobable Gaussian breakpoints for a given alphabet size.
#[derive(Debug, Clone)]
pub struct SaxQuantizer {
    breakpoints: Vec<f64>,
}

impl SaxQuantizer {
    /// Builds a quantizer for `alphabet_size` symbols (2..=64).
    ///
    /// # Errors
    /// Returns an error for alphabet sizes outside `2..=64`.
    pub fn new(alphabet_size: usize) -> Result<Self> {
        if !(2..=64).contains(&alphabet_size) {
            return Err(Error::invalid("alphabet_size", "must be in 2..=64"));
        }
        let a = alphabet_size as f64;
        let breakpoints = (1..alphabet_size)
            .map(|i| inv_norm_cdf(i as f64 / a))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { breakpoints })
    }

    /// Alphabet size.
    pub fn alphabet_size(&self) -> usize {
        self.breakpoints.len() + 1
    }

    /// The (sorted) breakpoints dividing the standard normal into
    /// equiprobable regions.
    pub fn breakpoints(&self) -> &[f64] {
        &self.breakpoints
    }

    /// Maps one (z-normalized) value to its symbol.
    pub fn symbol(&self, x: f64) -> u16 {
        self.breakpoints.partition_point(|&b| b <= x) as u16
    }

    /// Distance between two symbols under the SAX `dist` lookup table:
    /// adjacent or equal symbols have distance 0; otherwise the gap between
    /// the enclosing breakpoints.
    pub fn symbol_dist(&self, r: u16, c: u16) -> f64 {
        let (lo, hi) = if r < c { (r, c) } else { (c, r) };
        if hi - lo <= 1 {
            0.0
        } else {
            self.breakpoints[(hi - 1) as usize] - self.breakpoints[lo as usize]
        }
    }
}

/// A SAX word: the symbol string for one window, plus the parameters needed
/// for MINDIST.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SaxWord {
    /// Symbols, one per PAA segment.
    pub symbols: Vec<u16>,
    /// Original window length the word was derived from.
    pub source_len: usize,
}

impl SaxWord {
    /// Renders the word with letters `a`, `b`, `c`, … (alphabet ≤ 26), or
    /// numeric ids joined by `.` otherwise.
    pub fn pretty(&self) -> String {
        if self.symbols.iter().all(|&s| s < 26) {
            self.symbols
                .iter()
                .map(|&s| (b'a' + s as u8) as char)
                .collect()
        } else {
            let parts: Vec<String> = self.symbols.iter().map(|s| s.to_string()).collect();
            parts.join(".")
        }
    }
}

/// Full SAX encoder: z-normalize → PAA → quantize.
#[derive(Debug, Clone)]
pub struct SaxEncoder {
    quantizer: SaxQuantizer,
    segments: usize,
}

impl SaxEncoder {
    /// Creates an encoder producing words of `segments` symbols over an
    /// alphabet of `alphabet_size`.
    ///
    /// # Errors
    /// Returns an error for invalid alphabet sizes or `segments == 0`.
    pub fn new(segments: usize, alphabet_size: usize) -> Result<Self> {
        if segments == 0 {
            return Err(Error::invalid("segments", "must be > 0"));
        }
        Ok(Self {
            quantizer: SaxQuantizer::new(alphabet_size)?,
            segments,
        })
    }

    /// Number of symbols per word.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// The underlying quantizer.
    pub fn quantizer(&self) -> &SaxQuantizer {
        &self.quantizer
    }

    /// Encodes one window into a SAX word.
    ///
    /// # Errors
    /// Returns an error if the window is shorter than the segment count or
    /// empty.
    pub fn encode(&self, window: &[f64]) -> Result<SaxWord> {
        let z = normalize::z_normalize(window)?;
        let reduced = paa(&z, self.segments)?;
        Ok(SaxWord {
            symbols: reduced.iter().map(|&v| self.quantizer.symbol(v)).collect(),
            source_len: window.len(),
        })
    }

    /// The SAX `MINDIST` between two words of equal segment count derived
    /// from windows of equal length: a lower bound on the Euclidean distance
    /// of the z-normalized windows.
    ///
    /// # Errors
    /// Returns an error on mismatched segment counts or source lengths.
    pub fn mindist(&self, a: &SaxWord, b: &SaxWord) -> Result<f64> {
        if a.symbols.len() != b.symbols.len() {
            return Err(Error::LengthMismatch {
                what: "mindist(symbols)",
                left: a.symbols.len(),
                right: b.symbols.len(),
            });
        }
        if a.source_len != b.source_len {
            return Err(Error::LengthMismatch {
                what: "mindist(source_len)",
                left: a.source_len,
                right: b.source_len,
            });
        }
        let w = a.symbols.len() as f64;
        let n = a.source_len as f64;
        let sum: f64 = a
            .symbols
            .iter()
            .zip(&b.symbols)
            .map(|(&r, &c)| {
                let d = self.quantizer.symbol_dist(r, c);
                d * d
            })
            .sum();
        Ok((n / w).sqrt() * sum.sqrt())
    }
}

/// Numerosity reduction (Lin et al. §4.2): collapses consecutive identical
/// SAX words from a sliding-window encoding into one occurrence, returning
/// `(word, first_window_index)` pairs. Trivially-matching neighbors carry
/// no extra information for streaming pattern counting, and dropping them
/// is what keeps SAX-based discord search sub-quadratic in practice.
pub fn numerosity_reduce(words: &[SaxWord]) -> Vec<(SaxWord, usize)> {
    let mut out: Vec<(SaxWord, usize)> = Vec::new();
    for (i, w) in words.iter().enumerate() {
        match out.last() {
            Some((prev, _)) if prev.symbols == w.symbols => {}
            _ => out.push((w.clone(), i)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::euclidean;

    const EPS: f64 = 1e-6;

    #[test]
    fn inv_norm_cdf_known_values() {
        assert!(inv_norm_cdf(0.5).unwrap().abs() < 1e-9);
        assert!((inv_norm_cdf(0.975).unwrap() - 1.959964).abs() < 1e-4);
        assert!((inv_norm_cdf(0.025).unwrap() + 1.959964).abs() < 1e-4);
        assert!((inv_norm_cdf(0.8413447).unwrap() - 1.0).abs() < 1e-4);
        assert!(inv_norm_cdf(0.0).is_err());
        assert!(inv_norm_cdf(1.0).is_err());
    }

    #[test]
    fn paa_exact_division() {
        let xs = [1.0, 3.0, 2.0, 4.0, 10.0, 20.0];
        assert_eq!(paa(&xs, 3).unwrap(), vec![2.0, 3.0, 15.0]);
        assert_eq!(paa(&xs, 6).unwrap(), xs.to_vec());
        assert_eq!(paa(&xs, 1).unwrap(), vec![40.0 / 6.0]);
    }

    #[test]
    fn paa_fractional_division_preserves_mean() {
        // n=5, segments=2: total mass must be conserved.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let p = paa(&xs, 2).unwrap();
        let mean_in: f64 = xs.iter().sum::<f64>() / 5.0;
        let mean_out: f64 = p.iter().sum::<f64>() / 2.0;
        assert!((mean_in - mean_out).abs() < EPS);
        // First segment covers samples 0,1 and half of 2.
        assert!((p[0] - (1.0 + 2.0 + 1.5) / 2.5).abs() < EPS);
    }

    #[test]
    fn paa_validates() {
        assert!(paa(&[], 1).is_err());
        assert!(paa(&[1.0], 0).is_err());
        assert!(paa(&[1.0], 2).is_err());
    }

    #[test]
    fn quantizer_breakpoints_are_sorted_and_symmetric() {
        let q = SaxQuantizer::new(4).unwrap();
        let bp = q.breakpoints();
        assert_eq!(bp.len(), 3);
        assert!(bp.windows(2).all(|w| w[0] < w[1]));
        // Classic SAX table for a=4: [-0.6745, 0, 0.6745].
        assert!((bp[0] + 0.6745).abs() < 1e-3);
        assert!(bp[1].abs() < 1e-9);
        assert!((bp[2] - 0.6745).abs() < 1e-3);
        assert!(SaxQuantizer::new(1).is_err());
        assert!(SaxQuantizer::new(65).is_err());
    }

    #[test]
    fn quantizer_symbols_partition_the_line() {
        let q = SaxQuantizer::new(4).unwrap();
        assert_eq!(q.symbol(-2.0), 0);
        assert_eq!(q.symbol(-0.3), 1);
        assert_eq!(q.symbol(0.3), 2);
        assert_eq!(q.symbol(2.0), 3);
        assert_eq!(q.alphabet_size(), 4);
    }

    #[test]
    fn symbol_dist_adjacent_is_zero() {
        let q = SaxQuantizer::new(5).unwrap();
        for r in 0..5_u16 {
            assert_eq!(q.symbol_dist(r, r), 0.0);
            if r + 1 < 5 {
                assert_eq!(q.symbol_dist(r, r + 1), 0.0);
                assert_eq!(q.symbol_dist(r + 1, r), 0.0);
            }
        }
        assert!(q.symbol_dist(0, 4) > q.symbol_dist(0, 2));
    }

    #[test]
    fn encode_produces_expected_word_for_ramp() {
        let enc = SaxEncoder::new(4, 4).unwrap();
        let ramp: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let w = enc.encode(&ramp).unwrap();
        // Monotone ramp must produce non-decreasing symbols spanning the
        // alphabet.
        assert!(w.symbols.windows(2).all(|p| p[0] <= p[1]));
        assert_eq!(w.symbols.first(), Some(&0));
        assert_eq!(w.symbols.last(), Some(&3));
        assert_eq!(w.pretty().len(), 4);
        assert_eq!(w.pretty().chars().next(), Some('a'));
    }

    #[test]
    fn mindist_lower_bounds_euclidean_on_fixed_cases() {
        let enc = SaxEncoder::new(4, 6).unwrap();
        let a: Vec<f64> = (0..32).map(|i| ((i as f64) * 0.3).sin()).collect();
        let b: Vec<f64> = (0..32)
            .map(|i| ((i as f64) * 0.3 + 1.0).cos() * 2.0)
            .collect();
        let wa = enc.encode(&a).unwrap();
        let wb = enc.encode(&b).unwrap();
        let za = normalize::z_normalize(&a).unwrap();
        let zb = normalize::z_normalize(&b).unwrap();
        let true_d = euclidean(&za, &zb).unwrap();
        let lb = enc.mindist(&wa, &wb).unwrap();
        assert!(
            lb <= true_d + EPS,
            "MINDIST {lb} must lower-bound Euclidean {true_d}"
        );
    }

    #[test]
    fn mindist_rejects_mismatched_words() {
        let enc = SaxEncoder::new(2, 4).unwrap();
        let w1 = enc.encode(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let w2 = enc.encode(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert!(enc.mindist(&w1, &w2).is_err());
        let mut w3 = w1.clone();
        w3.symbols.push(0);
        assert!(enc.mindist(&w1, &w3).is_err());
    }

    #[test]
    fn identical_windows_have_zero_mindist() {
        let enc = SaxEncoder::new(4, 8).unwrap();
        let xs: Vec<f64> = (0..16).map(|i| (i as f64).sqrt()).collect();
        let w = enc.encode(&xs).unwrap();
        assert_eq!(enc.mindist(&w, &w).unwrap(), 0.0);
    }

    #[test]
    fn numerosity_reduction_collapses_runs() {
        let w = |syms: &[u16]| SaxWord {
            symbols: syms.to_vec(),
            source_len: 8,
        };
        let words = vec![w(&[0, 1]), w(&[0, 1]), w(&[2, 2]), w(&[2, 2]), w(&[0, 1])];
        let reduced = numerosity_reduce(&words);
        assert_eq!(reduced.len(), 3);
        assert_eq!(reduced[0].1, 0);
        assert_eq!(reduced[1].1, 2);
        assert_eq!(reduced[2].1, 4);
        assert_eq!(reduced[2].0.symbols, vec![0, 1]);
        assert!(numerosity_reduce(&[]).is_empty());
    }

    #[test]
    fn numerosity_reduction_keeps_all_distinct_words() {
        let w = |s: u16| SaxWord {
            symbols: vec![s],
            source_len: 4,
        };
        let words: Vec<SaxWord> = (0..5).map(w).collect();
        assert_eq!(numerosity_reduce(&words).len(), 5);
    }

    #[test]
    fn pretty_uses_numeric_form_for_large_alphabets() {
        let w = SaxWord {
            symbols: vec![30, 31],
            source_len: 8,
        };
        assert_eq!(w.pretty(), "30.31");
    }
}
