//! Distance and similarity measures.
//!
//! The discriminative (DA) detectors of Table 1 are all built on "a
//! similarity function \[that\] compares sequences and clusters"; the ones
//! implemented here are the measures their original papers use: Euclidean
//! (k-means, SOM, PCA space), DTW (shape-tolerant clustering), LCS (Budalakoti
//! et al., row "Longest Common Subsequence"), Hamming / match-count (Lane &
//! Brodley), and cosine (vibration signatures).

use crate::error::{Error, Result};

/// Squared Euclidean distance between equal-length slices.
///
/// # Errors
/// Returns an error on length mismatch.
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(Error::LengthMismatch {
            what: "sq_euclidean",
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>())
}

/// Euclidean distance between equal-length slices.
///
/// # Errors
/// Returns an error on length mismatch.
pub fn euclidean(a: &[f64], b: &[f64]) -> Result<f64> {
    Ok(sq_euclidean(a, b)?.sqrt())
}

/// Length-normalized Euclidean distance (`euclidean / sqrt(n)`), comparable
/// across window lengths. Empty inputs give 0.
///
/// # Errors
/// Returns an error on length mismatch.
pub fn norm_euclidean(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.is_empty() {
        return Ok(0.0);
    }
    Ok(euclidean(a, b)? / (a.len() as f64).sqrt())
}

/// Cosine distance `1 - cos(a, b)`. If either vector has zero norm the
/// distance is defined as 1 (maximally dissimilar), except two zero vectors
/// which are identical (0).
///
/// # Errors
/// Returns an error on length mismatch.
pub fn cosine(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(Error::LengthMismatch {
            what: "cosine",
            left: a.len(),
            right: b.len(),
        });
    }
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 && nb == 0.0 {
        return Ok(0.0);
    }
    if na == 0.0 || nb == 0.0 {
        return Ok(1.0);
    }
    Ok((1.0 - dot / (na * nb)).max(0.0))
}

/// Dynamic Time Warping distance with an optional Sakoe-Chiba band.
///
/// `band = None` means an unconstrained warp; `band = Some(r)` restricts the
/// warping path to `|i - j| <= r`. Cost is squared Euclidean per step; the
/// returned value is the square root of the accumulated cost, so
/// `dtw(x, x) == 0` and an unconstrained DTW never exceeds the Euclidean
/// distance on equal-length inputs.
///
/// # Errors
/// Returns an error when either input is empty, or when the band is too
/// narrow to connect the two corners (`r < |n - m|`).
pub fn dtw(a: &[f64], b: &[f64], band: Option<usize>) -> Result<f64> {
    if a.is_empty() || b.is_empty() {
        return Err(Error::Empty { what: "dtw" });
    }
    let n = a.len();
    let m = b.len();
    if let Some(r) = band {
        if n.abs_diff(m) > r {
            return Err(Error::invalid(
                "band",
                format!("band {r} too narrow for lengths {n} and {m}"),
            ));
        }
    }
    // Two-row DP over the cost matrix.
    let big = f64::INFINITY;
    let mut prev = vec![big; m + 1];
    let mut curr = vec![big; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr.iter_mut().for_each(|c| *c = big);
        let (j_lo, j_hi) = match band {
            Some(r) => (i.saturating_sub(r).max(1), (i + r).min(m)),
            None => (1, m),
        };
        for j in j_lo..=j_hi {
            let d = (a[i - 1] - b[j - 1]) * (a[i - 1] - b[j - 1]);
            let best = prev[j - 1].min(prev[j]).min(curr[j - 1]);
            curr[j] = d + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let total = prev[m];
    if !total.is_finite() {
        return Err(Error::Numeric {
            message: "dtw: no admissible warping path".into(),
        });
    }
    Ok(total.sqrt())
}

/// Longest common subsequence length between two symbol sequences.
pub fn lcs_len(a: &[u16], b: &[u16]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let m = b.len();
    let mut prev = vec![0_usize; m + 1];
    let mut curr = vec![0_usize; m + 1];
    for &ai in a {
        for (j, &bj) in b.iter().enumerate() {
            curr[j + 1] = if ai == bj {
                prev[j] + 1
            } else {
                prev[j + 1].max(curr[j])
            };
        }
        std::mem::swap(&mut prev, &mut curr);
        curr[0] = 0;
    }
    prev[m]
}

/// Normalized LCS similarity in `[0, 1]`: `lcs_len / max(|a|, |b|)`.
/// Two empty sequences are identical (1).
pub fn lcs_similarity(a: &[u16], b: &[u16]) -> f64 {
    let denom = a.len().max(b.len());
    if denom == 0 {
        return 1.0;
    }
    lcs_len(a, b) as f64 / denom as f64
}

/// Hamming distance between equal-length symbol sequences.
///
/// # Errors
/// Returns an error on length mismatch.
pub fn hamming(a: &[u16], b: &[u16]) -> Result<usize> {
    if a.len() != b.len() {
        return Err(Error::LengthMismatch {
            what: "hamming",
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(a.iter().zip(b).filter(|(x, y)| x != y).count())
}

/// Match-count similarity in `[0, 1]` for equal-length symbol sequences
/// (fraction of positions that agree). This is the similarity underlying
/// Lane & Brodley's sequence-matching detector.
///
/// # Errors
/// Returns an error on length mismatch or empty input.
pub fn match_count_similarity(a: &[u16], b: &[u16]) -> Result<f64> {
    if a.is_empty() {
        return Err(Error::Empty {
            what: "match_count_similarity",
        });
    }
    let mismatches = hamming(a, b)?;
    Ok(1.0 - mismatches as f64 / a.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn euclidean_hand_checked() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]).unwrap() - 5.0).abs() < EPS);
        assert_eq!(sq_euclidean(&[1.0], &[4.0]).unwrap(), 9.0);
        assert!(euclidean(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn norm_euclidean_is_length_invariant_for_constant_offset() {
        let a4 = vec![0.0; 4];
        let b4 = vec![1.0; 4];
        let a16 = vec![0.0; 16];
        let b16 = vec![1.0; 16];
        let d4 = norm_euclidean(&a4, &b4).unwrap();
        let d16 = norm_euclidean(&a16, &b16).unwrap();
        assert!((d4 - d16).abs() < EPS);
        assert_eq!(norm_euclidean(&[], &[]).unwrap(), 0.0);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0]).unwrap() - 1.0).abs() < EPS);
        assert!(cosine(&[1.0, 1.0], &[2.0, 2.0]).unwrap().abs() < EPS);
        assert_eq!(cosine(&[0.0], &[0.0]).unwrap(), 0.0);
        assert_eq!(cosine(&[0.0], &[1.0]).unwrap(), 1.0);
        assert!(cosine(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn dtw_identity_and_symmetry() {
        let a = [1.0, 2.0, 3.0, 2.0, 1.0];
        let b = [1.0, 1.0, 2.0, 3.0, 2.0];
        assert_eq!(dtw(&a, &a, None).unwrap(), 0.0);
        let dab = dtw(&a, &b, None).unwrap();
        let dba = dtw(&b, &a, None).unwrap();
        assert!((dab - dba).abs() < EPS);
    }

    #[test]
    fn dtw_absorbs_time_shift_that_euclid_penalizes() {
        // Same pulse, shifted by 2 samples.
        let a = [0.0, 0.0, 1.0, 5.0, 1.0, 0.0, 0.0, 0.0];
        let b = [0.0, 0.0, 0.0, 0.0, 1.0, 5.0, 1.0, 0.0];
        let de = euclidean(&a, &b).unwrap();
        let dw = dtw(&a, &b, None).unwrap();
        assert!(dw < de * 0.5, "dtw {dw} should be far below euclid {de}");
    }

    #[test]
    fn dtw_band_constrains() {
        let a = [0.0, 1.0, 2.0, 3.0];
        let b = [0.0, 1.0, 2.0, 3.0];
        // Band 0 forces the diagonal = Euclidean path.
        let d0 = dtw(&a, &b, Some(0)).unwrap();
        assert!(d0.abs() < EPS);
        // Unequal lengths with a too-narrow band error out.
        assert!(dtw(&a, &b[..2], Some(1)).is_err());
        // Wide-enough band succeeds.
        assert!(dtw(&a, &b[..2], Some(2)).is_ok());
        assert!(dtw(&[], &b, None).is_err());
    }

    #[test]
    fn dtw_unconstrained_never_exceeds_euclidean() {
        let a = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let b = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0, 1.0, 8.0];
        assert!(dtw(&a, &b, None).unwrap() <= euclidean(&a, &b).unwrap() + EPS);
    }

    #[test]
    fn lcs_hand_checked() {
        // "ABCBDAB" vs "BDCABA" -> LCS "BCBA" len 4.
        let a = [0_u16, 1, 2, 1, 3, 0, 1]; // A=0 B=1 C=2 D=3
        let b = [1_u16, 3, 2, 0, 1, 0];
        assert_eq!(lcs_len(&a, &b), 4);
        assert_eq!(lcs_len(&a, &[]), 0);
        assert_eq!(lcs_len(&[], &b), 0);
    }

    #[test]
    fn lcs_similarity_bounds() {
        let a = [1_u16, 2, 3];
        assert_eq!(lcs_similarity(&a, &a), 1.0);
        assert_eq!(lcs_similarity(&a, &[9, 9, 9]), 0.0);
        assert_eq!(lcs_similarity(&[], &[]), 1.0);
        let half = lcs_similarity(&a, &[1, 2]);
        assert!((half - 2.0 / 3.0).abs() < EPS);
    }

    #[test]
    fn hamming_and_match_count() {
        let a = [1_u16, 2, 3, 4];
        let b = [1_u16, 9, 3, 9];
        assert_eq!(hamming(&a, &b).unwrap(), 2);
        assert!((match_count_similarity(&a, &b).unwrap() - 0.5).abs() < EPS);
        assert!(hamming(&a, &b[..2]).is_err());
        assert!(match_count_similarity(&[], &[]).is_err());
    }
}
