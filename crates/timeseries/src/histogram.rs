//! Equi-width and V-optimal histograms.
//!
//! Muthukrishnan et al.'s deviant-mining detector (Table 1 row *Histogram
//! Representation*, class ITM) scores points by how much the error of an
//! optimal histogram representation improves when the point is removed.
//! The V-optimal histogram here is the exact dynamic program (O(n²·B)),
//! verified against brute force by property tests.

use crate::error::{Error, Result};

/// A fixed-bin equi-width histogram over a value range.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiWidthHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl EquiWidthHistogram {
    /// Builds a histogram of `bins` equal-width bins over `[lo, hi]`.
    /// Values outside the range are clamped into the edge bins.
    ///
    /// # Errors
    /// Returns an error if `bins == 0` or `lo >= hi`.
    pub fn build(values: &[f64], lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(Error::invalid("bins", "must be > 0"));
        }
        if lo >= hi {
            return Err(Error::invalid("lo/hi", "must satisfy lo < hi"));
        }
        let mut counts = vec![0_u64; bins];
        let width = (hi - lo) / bins as f64;
        for &v in values {
            let idx = if v <= lo {
                0
            } else if v >= hi {
                bins - 1
            } else {
                (((v - lo) / width) as usize).min(bins - 1)
            };
            counts[idx] += 1;
        }
        Ok(Self { lo, hi, counts })
    }

    /// Builds over the data's own min/max range (degenerate constant data
    /// uses a unit-width range around the value).
    ///
    /// # Errors
    /// Returns an error on empty input or `bins == 0`.
    pub fn auto(values: &[f64], bins: usize) -> Result<Self> {
        if values.is_empty() {
            return Err(Error::Empty {
                what: "EquiWidthHistogram::auto",
            });
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if lo == hi {
            return Self::build(values, lo - 0.5, hi + 0.5, bins);
        }
        Self::build(values, lo, hi, bins)
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total number of counted values.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Empirical probability of the bin containing `v` (Laplace-smoothed,
    /// so unseen bins get small non-zero mass). Used as a density-based
    /// rarity score.
    pub fn probability(&self, v: f64) -> f64 {
        let bins = self.bins();
        let width = (self.hi - self.lo) / bins as f64;
        let idx = if v <= self.lo {
            0
        } else if v >= self.hi {
            bins - 1
        } else {
            (((v - self.lo) / width) as usize).min(bins - 1)
        };
        (self.counts[idx] as f64 + 1.0) / (self.total() as f64 + bins as f64)
    }
}

/// One bucket of a V-optimal histogram: the index range `[start, end)`, the
/// represented mean, and the bucket's sum of squared errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// First covered index.
    pub start: usize,
    /// One-past-last covered index.
    pub end: usize,
    /// Bucket representative (mean of covered values).
    pub mean: f64,
    /// Sum of squared deviations from the mean within the bucket.
    pub sse: f64,
}

/// A V-optimal (minimum-SSE) histogram of a sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct VOptimalHistogram {
    buckets: Vec<Bucket>,
    total_sse: f64,
}

/// Prefix-sum helper giving O(1) SSE of any index range.
struct PrefixSse {
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
}

impl PrefixSse {
    fn new(xs: &[f64]) -> Self {
        let mut sum = Vec::with_capacity(xs.len() + 1);
        let mut sum_sq = Vec::with_capacity(xs.len() + 1);
        sum.push(0.0);
        sum_sq.push(0.0);
        for &x in xs {
            sum.push(sum.last().unwrap() + x);
            sum_sq.push(sum_sq.last().unwrap() + x * x);
        }
        Self { sum, sum_sq }
    }

    /// SSE of `xs[i..j]` around its own mean (0 for empty or singleton).
    fn sse(&self, i: usize, j: usize) -> f64 {
        if j <= i + 1 {
            return 0.0;
        }
        let n = (j - i) as f64;
        let s = self.sum[j] - self.sum[i];
        let ss = self.sum_sq[j] - self.sum_sq[i];
        (ss - s * s / n).max(0.0)
    }

    fn mean(&self, i: usize, j: usize) -> f64 {
        let n = (j - i) as f64;
        (self.sum[j] - self.sum[i]) / n
    }
}

impl VOptimalHistogram {
    /// Computes the exact minimum-SSE partition of `xs` into at most
    /// `buckets` contiguous buckets (dynamic programming, O(n²·B)).
    ///
    /// # Errors
    /// Returns an error on empty input or `buckets == 0`.
    #[allow(clippy::needless_range_loop)] // index DP/matrix kernels read clearer indexed
    pub fn fit(xs: &[f64], buckets: usize) -> Result<Self> {
        if xs.is_empty() {
            return Err(Error::Empty {
                what: "VOptimalHistogram::fit",
            });
        }
        if buckets == 0 {
            return Err(Error::invalid("buckets", "must be > 0"));
        }
        let n = xs.len();
        let b = buckets.min(n);
        let pre = PrefixSse::new(xs);
        // dp[k][j] = min SSE of xs[0..j] using exactly k buckets.
        // choice[k][j] = split point i (bucket k covers xs[i..j]).
        let inf = f64::INFINITY;
        let mut dp = vec![vec![inf; n + 1]; b + 1];
        let mut choice = vec![vec![0_usize; n + 1]; b + 1];
        dp[0][0] = 0.0;
        for k in 1..=b {
            for j in k..=n {
                let mut best = inf;
                let mut best_i = k - 1;
                for i in (k - 1)..j {
                    if dp[k - 1][i] == inf {
                        continue;
                    }
                    let cand = dp[k - 1][i] + pre.sse(i, j);
                    if cand < best {
                        best = cand;
                        best_i = i;
                    }
                }
                dp[k][j] = best;
                choice[k][j] = best_i;
            }
        }
        // Using fewer buckets can never help (SSE is monotone in B), so take
        // exactly b buckets.
        let mut bounds = Vec::with_capacity(b + 1);
        let mut j = n;
        let mut k = b;
        bounds.push(n);
        while k > 0 {
            let i = choice[k][j];
            bounds.push(i);
            j = i;
            k -= 1;
        }
        bounds.reverse();
        let mut out = Vec::with_capacity(b);
        for w in bounds.windows(2) {
            let (i, j) = (w[0], w[1]);
            out.push(Bucket {
                start: i,
                end: j,
                mean: pre.mean(i, j),
                sse: pre.sse(i, j),
            });
        }
        Ok(Self {
            total_sse: dp[b][n],
            buckets: out,
        })
    }

    /// The buckets, in index order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Total SSE of the representation.
    pub fn total_sse(&self) -> f64 {
        self.total_sse
    }

    /// Reconstructs the represented (piecewise-constant) sequence.
    pub fn reconstruct(&self, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; n];
        for bk in &self.buckets {
            for o in &mut out[bk.start..bk.end.min(n)] {
                *o = bk.mean;
            }
        }
        out
    }
}

/// Exact minimum SSE of partitioning `xs` into at most `buckets` contiguous
/// buckets — convenience wrapper returning only the objective value.
///
/// # Errors
/// Same conditions as [`VOptimalHistogram::fit`].
pub fn v_optimal_sse(xs: &[f64], buckets: usize) -> Result<f64> {
    Ok(VOptimalHistogram::fit(xs, buckets)?.total_sse())
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn equi_width_counts() {
        let h = EquiWidthHistogram::build(&[0.1, 0.2, 0.6, 0.9], 0.0, 1.0, 2).unwrap();
        assert_eq!(h.counts(), &[2, 2]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.bins(), 2);
    }

    #[test]
    fn equi_width_clamps_out_of_range() {
        let h = EquiWidthHistogram::build(&[-5.0, 0.5, 99.0], 0.0, 1.0, 4).unwrap();
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn equi_width_validates() {
        assert!(EquiWidthHistogram::build(&[1.0], 0.0, 1.0, 0).is_err());
        assert!(EquiWidthHistogram::build(&[1.0], 1.0, 1.0, 2).is_err());
        assert!(EquiWidthHistogram::auto(&[], 2).is_err());
    }

    #[test]
    fn auto_handles_constant_data() {
        let h = EquiWidthHistogram::auto(&[2.0, 2.0, 2.0], 3).unwrap();
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn probability_is_laplace_smoothed() {
        let h = EquiWidthHistogram::build(&[0.1, 0.1, 0.1], 0.0, 1.0, 2).unwrap();
        let p_dense = h.probability(0.1);
        let p_empty = h.probability(0.9);
        assert!(p_dense > p_empty);
        assert!(p_empty > 0.0);
        assert!((p_dense - 4.0 / 5.0).abs() < EPS);
        assert!((p_empty - 1.0 / 5.0).abs() < EPS);
    }

    #[test]
    fn v_optimal_two_level_signal_needs_two_buckets() {
        let xs = [1.0, 1.0, 1.0, 1.0, 9.0, 9.0, 9.0, 9.0];
        let h1 = VOptimalHistogram::fit(&xs, 1).unwrap();
        assert!(h1.total_sse() > 100.0);
        let h2 = VOptimalHistogram::fit(&xs, 2).unwrap();
        assert!(h2.total_sse() < EPS);
        assert_eq!(h2.buckets().len(), 2);
        assert_eq!(h2.buckets()[0].end, 4);
        assert!((h2.buckets()[0].mean - 1.0).abs() < EPS);
        assert!((h2.buckets()[1].mean - 9.0).abs() < EPS);
    }

    #[test]
    fn v_optimal_sse_monotone_in_buckets() {
        let xs: Vec<f64> = (0..20).map(|i| ((i * 7) % 11) as f64).collect();
        let mut prev = f64::INFINITY;
        for b in 1..=8 {
            let sse = v_optimal_sse(&xs, b).unwrap();
            assert!(sse <= prev + EPS, "SSE must not increase with buckets");
            prev = sse;
        }
        // n buckets represent exactly.
        assert!(v_optimal_sse(&xs, 20).unwrap() < EPS);
        // More buckets than points is clamped, still exact.
        assert!(v_optimal_sse(&xs, 50).unwrap() < EPS);
    }

    #[test]
    fn v_optimal_matches_brute_force_small() {
        // Brute-force all 2-bucket splits of a small array.
        let xs = [4.0, 1.0, 7.0, 2.0, 9.0, 3.0];
        let pre = PrefixSse::new(&xs);
        let mut best = f64::INFINITY;
        for split in 1..xs.len() {
            let cand = pre.sse(0, split) + pre.sse(split, xs.len());
            best = best.min(cand);
        }
        let dp = v_optimal_sse(&xs, 2).unwrap();
        assert!((dp - best).abs() < EPS);
    }

    #[test]
    fn reconstruct_is_piecewise_constant() {
        let xs = [1.0, 1.0, 5.0, 5.0];
        let h = VOptimalHistogram::fit(&xs, 2).unwrap();
        assert_eq!(h.reconstruct(4), vec![1.0, 1.0, 5.0, 5.0]);
    }

    #[test]
    fn v_optimal_validates() {
        assert!(VOptimalHistogram::fit(&[], 2).is_err());
        assert!(VOptimalHistogram::fit(&[1.0], 0).is_err());
    }

    #[test]
    fn buckets_tile_the_range() {
        let xs: Vec<f64> = (0..17).map(|i| (i as f64 * 0.77).sin()).collect();
        let h = VOptimalHistogram::fit(&xs, 5).unwrap();
        let bs = h.buckets();
        assert_eq!(bs.first().unwrap().start, 0);
        assert_eq!(bs.last().unwrap().end, 17);
        for w in bs.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }
}
