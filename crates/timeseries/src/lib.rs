//! # hierod-timeseries
//!
//! Time-series substrate for the `hierod` hierarchical outlier-detection
//! library (reproduction of Hoppenstedt et al., *Towards a Hierarchical
//! Approach for Outlier Detection in Industrial Production Settings*,
//! EDBT 2019 workshops).
//!
//! The paper's production hierarchy (its Fig. 2) mixes three data
//! granularities — points, sub-sequences, and whole time series — and its
//! Table 1 classifies detection techniques by which granularity they can
//! consume. This crate provides the shared machinery all of those detectors
//! are built on:
//!
//! * [`series`] — containers: [`TimeSeries`], [`DiscreteSequence`],
//!   [`MultiSeries`].
//! * [`stats`] — descriptive statistics, robust estimators, autocorrelation.
//! * [`window`] — fixed-size overlapping/sliding window extraction.
//! * [`resample`] — aggregation between hierarchy resolutions.
//! * [`normalize`] — z-/min-max/robust normalization.
//! * [`distance`] — Euclidean, DTW, LCS, Hamming, cosine distances.
//! * [`sax`] — Symbolic Aggregate approXimation (Lin et al., Table 1 row
//!   "Symbolic Representation").
//! * [`fft`] — radix-2 FFT and power spectra (Table 1 row "Vibration
//!   Signature").
//! * [`histogram`] — equi-width and V-optimal histograms (Table 1 row
//!   "Histogram Representation").
//!
//! Everything is implemented from scratch; the crate has no runtime
//! dependencies.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod distance;
pub mod error;
pub mod fft;
pub mod histogram;
pub mod normalize;
pub mod resample;
pub mod sax;
pub mod series;
pub mod stats;
pub mod window;

pub use error::{Error, Result};
pub use series::{DiscreteSequence, MultiSeries, TimeSeries};
pub use window::{Window, WindowIter, WindowSpec};
