//! Property-based tests for the time-series substrate invariants.

use hierod_timeseries::distance::{cosine, dtw, euclidean, lcs_len, lcs_similarity};
use hierod_timeseries::fft::{fft_in_place, Complex};
use hierod_timeseries::histogram::{v_optimal_sse, VOptimalHistogram};
use hierod_timeseries::normalize::z_normalize;
use hierod_timeseries::sax::{paa, SaxEncoder};
use hierod_timeseries::stats;
use hierod_timeseries::window::{window_scores_to_point_scores, windows, WindowSpec};
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3_f64..1e3, len)
}

proptest! {
    #[test]
    fn mean_lies_between_min_and_max(xs in finite_vec(1..64)) {
        let m = stats::mean(&xs).unwrap();
        let lo = stats::min(&xs).unwrap();
        let hi = stats::max(&xs).unwrap();
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn variance_is_non_negative(xs in finite_vec(1..64)) {
        prop_assert!(stats::variance(&xs).unwrap() >= -1e-9);
    }

    #[test]
    fn quantile_is_monotone_in_q(xs in finite_vec(1..64), q1 in 0.0_f64..1.0, q2 in 0.0_f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = stats::quantile(&xs, lo).unwrap();
        let b = stats::quantile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn autocorrelation_bounded(xs in finite_vec(2..64), lag in 0_usize..8) {
        prop_assume!(lag < xs.len());
        let r = stats::autocorrelation(&xs, lag).unwrap();
        prop_assert!((-1.0 - 1e-6..=1.0 + 1e-6).contains(&r));
    }

    #[test]
    fn euclidean_is_symmetric_and_nonneg(
        (a, b) in (1_usize..32).prop_flat_map(|n| (
            prop::collection::vec(-1e3_f64..1e3, n),
            prop::collection::vec(-1e3_f64..1e3, n),
        )),
    ) {
        let d1 = euclidean(&a, &b).unwrap();
        let d2 = euclidean(&b, &a).unwrap();
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!(d1 >= 0.0);
    }

    #[test]
    fn euclidean_triangle_inequality(
        a in prop::collection::vec(-100.0_f64..100.0, 8),
        b in prop::collection::vec(-100.0_f64..100.0, 8),
        c in prop::collection::vec(-100.0_f64..100.0, 8),
    ) {
        let ab = euclidean(&a, &b).unwrap();
        let bc = euclidean(&b, &c).unwrap();
        let ac = euclidean(&a, &c).unwrap();
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn dtw_identity_and_bound(a in prop::collection::vec(-50.0_f64..50.0, 2..24)) {
        prop_assert!(dtw(&a, &a, None).unwrap() < 1e-9);
        // Unconstrained DTW never exceeds Euclidean on equal lengths.
        let shifted: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
        let d = dtw(&a, &shifted, None).unwrap();
        let e = euclidean(&a, &shifted).unwrap();
        prop_assert!(d <= e + 1e-9);
    }

    #[test]
    fn dtw_symmetric(
        a in prop::collection::vec(-50.0_f64..50.0, 2..16),
        b in prop::collection::vec(-50.0_f64..50.0, 2..16),
    ) {
        let d1 = dtw(&a, &b, None).unwrap();
        let d2 = dtw(&b, &a, None).unwrap();
        prop_assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn cosine_in_unit_range(
        (a, b) in (1_usize..16).prop_flat_map(|n| (
            prop::collection::vec(-1e3_f64..1e3, n),
            prop::collection::vec(-1e3_f64..1e3, n),
        )),
    ) {
        let d = cosine(&a, &b).unwrap();
        prop_assert!((-1e-9..=2.0 + 1e-9).contains(&d));
    }

    #[test]
    fn lcs_len_bounded_by_shorter(
        a in prop::collection::vec(0_u16..5, 0..20),
        b in prop::collection::vec(0_u16..5, 0..20),
    ) {
        let l = lcs_len(&a, &b);
        prop_assert!(l <= a.len().min(b.len()));
        let sim = lcs_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&sim));
    }

    #[test]
    fn lcs_of_self_is_full_length(a in prop::collection::vec(0_u16..5, 0..20)) {
        prop_assert_eq!(lcs_len(&a, &a), a.len());
    }

    #[test]
    fn z_normalize_idempotent_shape(xs in finite_vec(2..32)) {
        let z = z_normalize(&xs).unwrap();
        let zz = z_normalize(&z).unwrap();
        for (a, b) in z.iter().zip(&zz) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn paa_conserves_mean(xs in finite_vec(1..64), segs in 1_usize..16) {
        prop_assume!(segs <= xs.len());
        let p = paa(&xs, segs).unwrap();
        // Fractional PAA conserves total mass exactly.
        let mean_in = stats::mean(&xs).unwrap();
        let mean_out = stats::mean(&p).unwrap();
        prop_assert!((mean_in - mean_out).abs() < 1e-6);
    }

    #[test]
    fn sax_mindist_lower_bounds_euclidean(
        a in prop::collection::vec(-10.0_f64..10.0, 16),
        b in prop::collection::vec(-10.0_f64..10.0, 16),
    ) {
        let enc = SaxEncoder::new(4, 5).unwrap();
        let wa = enc.encode(&a).unwrap();
        let wb = enc.encode(&b).unwrap();
        let za = z_normalize(&a).unwrap();
        let zb = z_normalize(&b).unwrap();
        let true_d = euclidean(&za, &zb).unwrap();
        let lb = enc.mindist(&wa, &wb).unwrap();
        prop_assert!(lb <= true_d + 1e-6, "MINDIST {} > Euclid {}", lb, true_d);
    }

    #[test]
    fn fft_roundtrip(xs in prop::collection::vec(-100.0_f64..100.0, 16)) {
        let mut buf: Vec<Complex> = xs.iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft_in_place(&mut buf, false).unwrap();
        fft_in_place(&mut buf, true).unwrap();
        for (c, &x) in buf.iter().zip(&xs) {
            prop_assert!((c.re - x).abs() < 1e-6);
            prop_assert!(c.im.abs() < 1e-6);
        }
    }

    #[test]
    fn v_optimal_monotone_and_bounded(xs in finite_vec(2..24), b in 1_usize..6) {
        let sse_b = v_optimal_sse(&xs, b).unwrap();
        let sse_b1 = v_optimal_sse(&xs, b + 1).unwrap();
        prop_assert!(sse_b1 <= sse_b + 1e-6);
        // One bucket equals n * variance.
        let one = v_optimal_sse(&xs, 1).unwrap();
        let nvar = stats::variance(&xs).unwrap() * xs.len() as f64;
        prop_assert!((one - nvar).abs() < 1e-5 * (1.0 + nvar));
    }

    #[test]
    fn v_optimal_buckets_tile(xs in finite_vec(1..24), b in 1_usize..6) {
        let h = VOptimalHistogram::fit(&xs, b).unwrap();
        let bs = h.buckets();
        prop_assert_eq!(bs.first().unwrap().start, 0);
        prop_assert_eq!(bs.last().unwrap().end, xs.len());
        for w in bs.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn window_count_matches_iterator(n in 0_usize..200, len in 1_usize..20, stride in 1_usize..10) {
        let data = vec![0.0; n];
        let spec = WindowSpec::new(len, stride).unwrap();
        prop_assert_eq!(windows(&data, spec).count(), spec.count(n));
    }

    #[test]
    fn window_point_spread_max_bounded(
        scores in prop::collection::vec(0.0_f64..10.0, 1..20),
        len in 1_usize..8,
        stride in 1_usize..4,
    ) {
        let spec = WindowSpec::new(len, stride).unwrap();
        let n = (scores.len() - 1) * stride + len;
        let pts = window_scores_to_point_scores(n, spec, &scores);
        let max_w = scores.iter().copied().fold(0.0_f64, f64::max);
        for p in &pts {
            prop_assert!(*p <= max_w + 1e-12);
            prop_assert!(*p >= 0.0);
        }
        // The max window score must appear somewhere.
        let max_p = pts.iter().copied().fold(0.0_f64, f64::max);
        prop_assert!((max_p - max_w).abs() < 1e-12);
    }
}

// Zero-copy view invariants: a view over any in-bounds range must read
// back exactly the parent's data in that range while sharing storage.
proptest! {

    #[test]
    fn view_values_equal_parent_range(
        vals in prop::collection::vec(-1e3_f64..1e3, 0..64),
        a in 0_usize..65,
        b in 0_usize..65,
    ) {
        let n = vals.len();
        let (lo, hi) = (a.min(b).min(n), a.max(b).min(n));
        let ts: Vec<u64> = (0..n as u64).collect();
        let s = hierod_timeseries::TimeSeries::new("p", ts, vals).unwrap();
        let v = s.view(lo..hi);
        prop_assert_eq!(v.values(), &s.values()[lo..hi]);
        prop_assert_eq!(v.timestamps(), &s.timestamps()[lo..hi]);
        prop_assert_eq!(v.name(), s.name());
        prop_assert!(v.shares_storage_with(&s));
        // slice() is an alias of view().
        let sl = s.slice(lo..hi);
        prop_assert_eq!(sl.values(), v.values());
        prop_assert!(sl.shares_storage_with(&s));
    }

    #[test]
    fn nested_views_compose(
        vals in prop::collection::vec(-1e3_f64..1e3, 8..64),
        cut in 1_usize..4,
    ) {
        let n = vals.len();
        let ts: Vec<u64> = (0..n as u64).collect();
        let s = hierod_timeseries::TimeSeries::new("p", ts, vals).unwrap();
        let outer = s.view(cut..n);
        let inner = outer.view(1..outer.len() - 1);
        prop_assert_eq!(inner.values(), &s.values()[cut + 1..n - 1]);
        prop_assert!(inner.shares_storage_with(&s));
    }
}

mod view_boundaries {
    use hierod_timeseries::TimeSeries;

    fn series(n: usize) -> TimeSeries {
        let ts: Vec<u64> = (10..10 + n as u64).collect();
        let vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        TimeSeries::new("boundary", ts, vals).unwrap()
    }

    #[test]
    fn empty_range_yields_empty_series() {
        let s = series(8);
        for start in [0, 4, 8] {
            let v = s.view(start..start);
            assert_eq!(v.len(), 0);
            assert!(v.is_empty());
            assert_eq!(v.values(), &[] as &[f64]);
            assert_eq!(v.name(), "boundary");
        }
    }

    #[test]
    fn full_range_view_is_logically_equal_and_shared() {
        let s = series(8);
        let v = s.view(0..8);
        assert_eq!(v, s);
        assert!(v.shares_storage_with(&s));
        assert_eq!(v.timestamps().first(), Some(&10));
    }

    #[test]
    fn view_preserves_name_and_timestamps() {
        let s = series(6);
        let v = s.view(2..5);
        assert_eq!(v.name(), "boundary");
        assert_eq!(v.timestamps(), &[12, 13, 14]);
        assert_eq!(v.values(), &[1.0, 1.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view_end_past_len_panics() {
        series(4).view(0..5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view_inverted_range_panics() {
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = 3..2;
        series(4).view(inverted);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        series(4).slice(2..9);
    }
}
