//! Two-tenant crash recovery: pins the tenancy tentpole's isolation
//! contract on [`PlantRegistry`].
//!
//! * A tenant that crashes mid-stream recovers from its own durable
//!   directory and — after the client resends the undelivered suffix —
//!   finishes with a report byte-identical to an uninterrupted run.
//! * The sibling tenant is entirely unaffected: same recovery counters
//!   and byte-identical report whether or not its neighbour crashed,
//!   was corrupted, or failed recovery outright.
//! * Hard damage (a corrupt sealed segment) parks only the damaged
//!   tenant in [`PlantRegistry::failed`]; soft damage (a flipped WAL
//!   bit) is truncated and counted only on the damaged tenant.

use hierod_core::AlgorithmPolicy;
use hierod_store::tenants::MemFactory;
use hierod_store::Storage;
use hierod_stream::{
    ControlEvent, LaneId, LaneKind, PlantRegistry, Sample, ScorerMode, StreamConfig, StreamReport,
    Tenant, TenantConfig,
};
use hierod_synth::{ReplayEvent, ScenarioBuilder};

const SHARDS: usize = 2;

fn config() -> TenantConfig {
    TenantConfig {
        shards: SHARDS,
        stream: StreamConfig {
            lateness: 0,
            mode: ScorerMode::BatchEquivalent,
        },
        ..TenantConfig::default()
    }
}

fn registry(factory: MemFactory) -> PlantRegistry<MemFactory> {
    PlantRegistry::open(factory, AlgorithmPolicy::default(), config())
        .expect("open registry")
        .0
}

/// The replay, lowered to (control | sample) steps in stream order.
enum Step {
    Control(ControlEvent),
    Sample(LaneId, Sample),
}

/// One machine, two jobs — returns the step stream and the index of
/// the clean crash boundary (just after the first `JobComplete`).
fn steps() -> (Vec<Step>, usize) {
    let scenario = ScenarioBuilder::new(11)
        .machines(1)
        .jobs_per_machine(2)
        .redundancy(2)
        .phase_samples(40)
        .anomaly_rate(1.0)
        .build();
    let mut steps = Vec::new();
    let mut boundary = None;
    for event in scenario.replay() {
        let step = match event {
            ReplayEvent::MachineUp {
                machine,
                sensors,
                redundancy,
                env_sensors,
            } => Step::Control(ControlEvent::MachineUp {
                machine,
                sensors,
                redundancy,
                env_sensors,
            }),
            ReplayEvent::JobStart {
                machine,
                job,
                start,
                config,
            } => Step::Control(ControlEvent::JobStart {
                machine,
                job,
                start,
                config,
            }),
            ReplayEvent::PhaseStart {
                machine,
                kind,
                sensors,
            } => Step::Control(ControlEvent::PhaseStart {
                machine,
                kind,
                sensors,
            }),
            ReplayEvent::PhaseSample {
                machine,
                sensor,
                timestamp,
                value,
            } => Step::Sample(
                LaneId {
                    machine,
                    sensor,
                    kind: LaneKind::Phase,
                },
                Sample { timestamp, value },
            ),
            ReplayEvent::EnvSample {
                machine,
                sensor,
                timestamp,
                value,
            } => Step::Sample(
                LaneId {
                    machine,
                    sensor,
                    kind: LaneKind::Environment,
                },
                Sample { timestamp, value },
            ),
            ReplayEvent::JobComplete { machine, caq, .. } => {
                Step::Control(ControlEvent::JobComplete { machine, caq })
            }
        };
        steps.push(step);
        if boundary.is_none()
            && matches!(
                steps.last(),
                Some(Step::Control(ControlEvent::JobComplete { .. }))
            )
        {
            boundary = Some(steps.len());
        }
    }
    (steps, boundary.expect("at least one completed job"))
}

fn drive(tenant: &mut Tenant<hierod_store::MemStorage>, steps: &[Step]) {
    for step in steps {
        match step {
            Step::Control(event) => tenant.control(event).expect("control"),
            Step::Sample(lane, sample) => tenant.ingest(lane, *sample).expect("ingest"),
        }
    }
}

/// Uninterrupted single-tenant run over `steps`, as a Debug rendering
/// (covers every score bit of the report).
fn baseline(steps: &[Step]) -> String {
    let mut reg = registry(MemFactory::new());
    drive(reg.create_tenant("base").expect("create"), steps);
    let report: StreamReport = reg.finish_tenant("base").expect("finish");
    format!("{report:?}")
}

/// Flips one bit near the durable tail of the first matching file on
/// one shard of a tenant. Returns the damaged file's name.
fn damage(factory: &MemFactory, tenant: &str, prefix: &str) -> String {
    let storage = factory.storage(tenant, 0).expect("shard 0 storage");
    let name = storage
        .list()
        .expect("list")
        .into_iter()
        .find(|n| n.starts_with(prefix))
        .unwrap_or_else(|| panic!("no {prefix} file on {tenant}/shard-0"));
    let len = storage.file_len(&name).expect("file length");
    assert!(storage.flip_bit(&name, len - 2, 3), "flip bit");
    name
}

#[test]
fn crashed_tenant_recovers_equivalent_and_sibling_is_untouched() {
    let (steps, boundary) = steps();
    let want = baseline(&steps);

    // Live run: plant-a crashes at the job boundary, plant-b runs to
    // the end (but the process dies before plant-b's finish).
    let mut reg = registry(MemFactory::new());
    drop(reg.create_tenant("plant-a"));
    drop(reg.create_tenant("plant-b"));
    drive(reg.tenant_mut("plant-a").expect("a"), &steps[..boundary]);
    drive(reg.tenant_mut("plant-b").expect("b"), &steps);
    // Durability points: both tenants hard-commit their WALs.
    reg.tenant_mut("plant-a")
        .expect("a")
        .tick()
        .expect("tick a");
    reg.tenant_mut("plant-b")
        .expect("b")
        .tick()
        .expect("tick b");

    // Crash: only fsynced bytes survive.
    let (mut recovered, recoveries) = PlantRegistry::open(
        reg.factory().crash_image(false),
        AlgorithmPolicy::default(),
        config(),
    )
    .expect("reopen");
    assert!(recovered.failed().is_empty(), "{:?}", recovered.failed());
    assert_eq!(recovered.tenant_ids(), ["plant-a", "plant-b"]);
    for id in ["plant-a", "plant-b"] {
        let rec = &recoveries[id];
        assert_eq!(rec.shards.len(), SHARDS, "{id} shard layout");
        assert_eq!(rec.corrupt_records(), 0, "{id} clean crash");
        assert!(rec.replayed_samples() + rec.restored_samples() > 0, "{id}");
    }

    // The crashed tenant resumes with the undelivered suffix and ends
    // byte-identical to the uninterrupted run...
    drive(
        recovered.tenant_mut("plant-a").expect("a"),
        &steps[boundary..],
    );
    let a = recovered.finish_tenant("plant-a").expect("finish a");
    assert_eq!(
        format!("{a:?}"),
        want,
        "plant-a diverged from uninterrupted run"
    );

    // ...and the sibling, which lost nothing, is also byte-identical.
    let b = recovered.finish_tenant("plant-b").expect("finish b");
    assert_eq!(format!("{b:?}"), want, "plant-b affected by sibling crash");
}

#[test]
fn corrupt_tenant_storage_cannot_poison_sibling_recovery() {
    let (steps, _) = steps();
    let want = baseline(&steps);

    let mut reg = registry(MemFactory::new());
    drop(reg.create_tenant("plant-a"));
    drop(reg.create_tenant("plant-b"));
    drive(reg.tenant_mut("plant-a").expect("a"), &steps);
    drive(reg.tenant_mut("plant-b").expect("b"), &steps);
    // Seal plant-a's history into a segment so hard (segment) damage is
    // possible; commit plant-b's WAL.
    reg.tenant_mut("plant-a")
        .expect("a")
        .rotate()
        .expect("rotate a");
    reg.tenant_mut("plant-b")
        .expect("b")
        .tick()
        .expect("tick b");

    // Soft damage: flip a bit in plant-a's WAL tail. Recovery truncates
    // and counts it — on plant-a only.
    let soft = reg.factory().crash_image(false);
    damage(&soft, "plant-a", "wal-");
    let (mut recovered, recoveries) =
        PlantRegistry::open(soft, AlgorithmPolicy::default(), config()).expect("reopen soft");
    assert!(recovered.failed().is_empty());
    assert!(
        recoveries["plant-a"].corrupt_records() > 0,
        "damage detected"
    );
    assert_eq!(recoveries["plant-b"].corrupt_records(), 0, "sibling clean");
    let b = recovered.finish_tenant("plant-b").expect("finish b");
    assert_eq!(
        format!("{b:?}"),
        want,
        "plant-b affected by sibling corruption"
    );

    // Hard damage: flip a bit in a sealed segment. Segments are fully
    // checksummed and fail recovery outright — plant-a is parked in
    // `failed()`, plant-b recovers as if nothing happened.
    let hard = reg.factory().crash_image(false);
    damage(&hard, "plant-a", "seg-");
    let (mut recovered, recoveries) =
        PlantRegistry::open(hard, AlgorithmPolicy::default(), config()).expect("reopen hard");
    assert!(recovered.failed().contains_key("plant-a"), "plant-a parked");
    assert!(!recoveries.contains_key("plant-a"));
    assert_eq!(recovered.tenant_ids(), ["plant-b"]);
    let b = recovered.finish_tenant("plant-b").expect("finish b");
    assert_eq!(
        format!("{b:?}"),
        want,
        "plant-b affected by sibling hard failure"
    );
}
