//! Pins the streaming detector's central guarantee: replaying a plant
//! through the router + `StreamDetector` in `BatchEquivalent` mode yields
//! the same outliers as batch detection on the finished plant — identical
//! outlier sets, scores within 1e-9, and the same Algorithm-1 global
//! scores and support fractions.

use std::collections::HashMap;

use hierod_core::pipeline::build_report;
use hierod_core::{detect_all_levels, AlgorithmPolicy, LevelOutlier};
use hierod_hierarchy::Level;
use hierod_stream::{
    IngestRouter, LaneId, LaneKind, Producer, Sample, ScorerMode, StreamConfig, StreamDetector,
    StreamReport,
};
use hierod_synth::{ReplayEvent, Scenario, ScenarioBuilder};

const LANE_CAPACITY: usize = 1024;

fn scenario() -> Scenario {
    ScenarioBuilder::new(42)
        .machines(2)
        .jobs_per_machine(3)
        .redundancy(2)
        .phase_samples(40)
        .anomaly_rate(0.8)
        .build()
}

/// Replays the scenario through ring lanes into a streaming detector.
/// The router is drained before every control event so lane contents
/// always belong to the still-open phase.
fn run_stream(scenario: &Scenario, policy: AlgorithmPolicy, mode: ScorerMode) -> StreamReport {
    let config = StreamConfig { lateness: 0, mode };
    let mut det = StreamDetector::new(policy, config).expect("stream detector");
    let mut router = IngestRouter::new();
    let mut lanes: HashMap<LaneId, Producer<Sample>> = HashMap::new();
    for event in scenario.replay() {
        match event {
            ReplayEvent::MachineUp {
                machine,
                sensors,
                redundancy,
                env_sensors,
            } => {
                det.machine_up(&machine, sensors, redundancy, &env_sensors)
                    .expect("machine_up");
                for sensor in env_sensors {
                    let id = LaneId {
                        machine: machine.clone(),
                        sensor,
                        kind: LaneKind::Environment,
                    };
                    let producer = router.add_lane(id.clone(), LANE_CAPACITY);
                    lanes.insert(id, producer);
                }
            }
            ReplayEvent::JobStart {
                machine,
                job,
                start,
                config,
            } => {
                det.drain(&mut router).expect("drain");
                det.job_start(&machine, &job, start, config)
                    .expect("job_start");
            }
            ReplayEvent::PhaseStart {
                machine,
                kind,
                sensors,
            } => {
                det.drain(&mut router).expect("drain");
                for sensor in &sensors {
                    let id = LaneId {
                        machine: machine.clone(),
                        sensor: sensor.clone(),
                        kind: LaneKind::Phase,
                    };
                    if let std::collections::hash_map::Entry::Vacant(entry) = lanes.entry(id) {
                        let producer = router.add_lane(entry.key().clone(), LANE_CAPACITY);
                        entry.insert(producer);
                    }
                }
                det.phase_start(&machine, kind, &sensors)
                    .expect("phase_start");
            }
            ReplayEvent::PhaseSample {
                machine,
                sensor,
                timestamp,
                value,
            } => {
                let id = LaneId {
                    machine,
                    sensor,
                    kind: LaneKind::Phase,
                };
                lanes
                    .get_mut(&id)
                    .expect("phase lane")
                    .push(Sample { timestamp, value })
                    .expect("lane open");
            }
            ReplayEvent::EnvSample {
                machine,
                sensor,
                timestamp,
                value,
            } => {
                let id = LaneId {
                    machine,
                    sensor,
                    kind: LaneKind::Environment,
                };
                lanes
                    .get_mut(&id)
                    .expect("env lane")
                    .push(Sample { timestamp, value })
                    .expect("lane open");
            }
            ReplayEvent::JobComplete { machine, caq, .. } => {
                det.drain(&mut router).expect("drain");
                det.job_complete(&machine, caq).expect("job_complete");
            }
        }
    }
    det.drain(&mut router).expect("final drain");
    det.finish().expect("finish")
}

fn outlier_key(o: &LevelOutlier) -> String {
    format!(
        "{:?}|{}|{:?}|{:?}|{:?}|{:?}",
        o.level, o.machine, o.job, o.phase, o.sensor, o.index
    )
}

fn assert_close(a: f64, b: f64, what: &str) {
    let tol = 1e-9 * b.abs().max(1.0);
    assert!((a - b).abs() <= tol, "{what}: stream {a} vs batch {b}");
}

#[test]
fn batch_equivalent_mode_reproduces_batch_verdicts() {
    let scenario = scenario();
    let policy = AlgorithmPolicy::default();

    let batch = detect_all_levels(&scenario.plant, &policy).expect("batch detections");
    let batch_report =
        build_report(&scenario.plant, Level::Phase, &batch, &policy).expect("batch report");

    let stream = run_stream(&scenario, policy, ScorerMode::BatchEquivalent);

    // Nothing was lost or reordered at lateness 0.
    assert_eq!(stream.stats.late_dropped, 0);
    assert_eq!(stream.stats.duplicates_dropped, 0);
    assert_eq!(stream.stats.series_failed, 0);
    assert_eq!(stream.stats.samples_released, stream.stats.samples_ingested);

    // Level by level: identical outlier sets, scores within tolerance.
    for level in Level::ALL {
        let b = batch.get(&level).expect("batch level");
        let s = stream.detections.get(&level).expect("stream level");
        let mut bo: Vec<&LevelOutlier> = b.outliers.iter().collect();
        let mut so: Vec<&LevelOutlier> = s.outliers.iter().collect();
        bo.sort_by_key(|o| outlier_key(o));
        so.sort_by_key(|o| outlier_key(o));
        assert_eq!(
            so.iter().map(|o| outlier_key(o)).collect::<Vec<_>>(),
            bo.iter().map(|o| outlier_key(o)).collect::<Vec<_>>(),
            "outlier set differs at level {level:?}"
        );
        for (s, b) in so.iter().zip(&bo) {
            let key = outlier_key(s);
            assert_close(s.outlierness, b.outlierness, &format!("outlierness {key}"));
            assert_close(s.raw_score, b.raw_score, &format!("raw_score {key}"));
        }
    }
    // At least one phase outlier exists with anomaly_rate 0.8, otherwise
    // the comparison above is vacuous.
    assert!(
        !batch.get(&Level::Phase).expect("phase").outliers.is_empty(),
        "scenario produced no phase outliers to compare"
    );

    // Algorithm-1 propagation: same global scores and support per outlier.
    let key = |machine: &str,
               job: &Option<String>,
               phase: &Option<_>,
               sensor: &Option<String>,
               index: &Option<usize>| {
        format!("{machine}|{job:?}|{phase:?}|{sensor:?}|{index:?}")
    };
    let mut bo: Vec<_> = batch_report.outliers.iter().collect();
    let mut so: Vec<_> = stream.report.outliers.iter().collect();
    bo.sort_by_key(|o| key(&o.machine, &o.job, &o.phase, &o.sensor, &o.index));
    so.sort_by_key(|o| key(&o.machine, &o.job, &o.phase, &o.sensor, &o.index));
    assert_eq!(so.len(), bo.len(), "report outlier count differs");
    for (s, b) in so.iter().zip(&bo) {
        let k = key(&b.machine, &b.job, &b.phase, &b.sensor, &b.index);
        assert_eq!(s.global_score, b.global_score, "global score {k}");
        assert_close(s.support, b.support, &format!("support {k}"));
        assert_close(s.outlierness, b.outlierness, &format!("outlierness {k}"));
    }
}

#[test]
fn incremental_mode_runs_the_same_replay_end_to_end() {
    let scenario = scenario();
    let stream = run_stream(
        &scenario,
        AlgorithmPolicy::default(),
        ScorerMode::Incremental,
    );
    assert_eq!(stream.stats.late_dropped, 0);
    assert_eq!(stream.stats.samples_released, stream.stats.samples_ingested);
    // Incremental scorers are approximations; the report must still be
    // structurally sound (outliers carry valid global scores).
    for o in &stream.report.outliers {
        assert!((1..=5).contains(&o.global_score));
    }
}
