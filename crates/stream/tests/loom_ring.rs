//! Model-checked interleavings of the SPSC [`ring`].
//!
//! Run with `cargo test -p hierod-stream --features loom --test loom_ring`.
//! Each test body executes under `loom::model`, which replays it across
//! permuted schedules: every atomic access, mutex acquire, condvar wait
//! and spawn is a decision point (preemption-bounded DFS — see
//! shims/loom). Capacities and item counts are deliberately tiny; the
//! schedule space is exponential.

#![cfg(feature = "loom")]

use hierod_stream::ring;

/// FIFO and losslessness under every schedule: with capacity below the
/// item count, the producer must block/retry and the consumer still
/// observes exactly 0..n in order.
#[test]
fn spsc_fifo_no_loss_under_all_interleavings() {
    loom::model(|| {
        let (mut tx, mut rx) = ring::<u32>(2);
        loom::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..3_u32 {
                    tx.push(i).expect("consumer alive");
                }
                // tx drops here: closes the ring, waking the consumer.
            });
            let mut seen = Vec::new();
            while let Some(v) = rx.pop() {
                seen.push(v);
            }
            assert_eq!(seen, vec![0, 1, 2]);
        });
    });
}

/// A producer blocked on a full ring must wake and observe the close
/// (instead of deadlocking) in every schedule.
#[test]
fn blocked_producer_observes_close_under_all_interleavings() {
    loom::model(|| {
        let (mut tx, mut rx) = ring::<u32>(1);
        loom::thread::scope(|s| {
            let h = s.spawn(move || {
                // Depending on the schedule the close may land before the
                // first push; either way the producer must terminate and
                // get the undelivered sample back. With capacity 1 and no
                // pops, the second push can only end via the close.
                match tx.push(1) {
                    Err(e) => e.0,
                    Ok(()) => tx.push(2).expect_err("ring stays full").0,
                }
            });
            rx.close();
            let undelivered = h.join().expect("no panic");
            assert!(undelivered == 1 || undelivered == 2);
        });
    });
}

/// A consumer blocked on an empty ring must wake on producer close and
/// drain whatever was pushed first.
#[test]
fn blocked_consumer_observes_close_under_all_interleavings() {
    loom::model(|| {
        let (mut tx, mut rx) = ring::<u32>(2);
        loom::thread::scope(|s| {
            s.spawn(move || {
                tx.push(7).expect("consumer alive");
                tx.close();
            });
            // pop blocks until data or close; after close + drain it must
            // return None, never hang.
            assert_eq!(rx.pop(), Some(7));
            assert_eq!(rx.pop(), None);
        });
    });
}
