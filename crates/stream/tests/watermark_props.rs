//! Property tests pinning the watermark semantics documented in
//! `watermark.rs`: bounded reordering is *lossless* (any delivery order
//! whose displacement stays within the allowed lateness releases the
//! in-order sequence), duplicates keep the first arrival, and the
//! released output is always sorted with nothing unaccounted for.

use hierod_stream::Watermark;
use proptest::prelude::*;

/// Offers every sample, flushes, and returns the released sequence.
fn drain(lateness: u64, samples: &[(u64, f64)]) -> (Vec<(u64, f64)>, hierod_stream::LatenessStats) {
    let mut w = Watermark::new(lateness);
    let mut out = Vec::new();
    for &(ts, v) in samples {
        w.offer(ts, v, &mut out);
    }
    w.flush(&mut out);
    let stats = w.stats();
    (out, stats)
}

/// Permutes `items` so each element moves only within its block of
/// `block` consecutive positions: the shuffled order's displacement is
/// bounded by `block - 1` positions.
fn block_shuffle<T: Clone>(items: &[T], block: usize, mut order: Vec<usize>) -> Vec<T> {
    order.truncate(items.len());
    while order.len() < items.len() {
        order.push(order.len());
    }
    let mut indices: Vec<usize> = (0..items.len()).collect();
    // Shuffle globally by the generated order, then restore block order
    // (stable), keeping only the within-block permutation.
    indices.sort_by_key(|&i| order[i]);
    indices.sort_by_key(|&i| i / block.max(1));
    indices.iter().map(|&i| items[i].clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Unit-spaced samples shuffled within blocks no larger than the
    /// lateness release exactly the in-order sequence, with zero drops.
    #[test]
    fn bounded_shuffle_is_lossless(
        n in 1_usize..160,
        lateness in 1_u64..12,
        order in prop::collection::vec(0_usize..1_000_000, 0..160),
    ) {
        let in_order: Vec<(u64, f64)> =
            (0..n as u64).map(|t| (t, t as f64 * 0.5)).collect();
        let shuffled = block_shuffle(&in_order, lateness as usize, order);
        let (out, stats) = drain(lateness, &shuffled);
        prop_assert_eq!(out, in_order);
        prop_assert_eq!(stats.late_dropped, 0);
        prop_assert_eq!(stats.duplicates_dropped, 0);
    }

    /// Exact duplicates injected into a bounded shuffle are dropped and
    /// the first arrival's value survives.
    #[test]
    fn duplicates_keep_the_first_arrival(
        n in 2_usize..120,
        lateness in 2_u64..10,
        order in prop::collection::vec(0_usize..1_000_000, 0..120),
        dup_at in 0_usize..120,
    ) {
        let in_order: Vec<(u64, f64)> =
            (0..n as u64).map(|t| (t, t as f64)).collect();
        let mut shuffled = block_shuffle(&in_order, lateness as usize, order);
        // Re-offer some timestamp immediately after its first arrival,
        // with a poisoned value that must not surface.
        let at = dup_at % shuffled.len();
        let dup = (shuffled[at].0, -1000.0);
        shuffled.insert(at + 1, dup);
        let (out, stats) = drain(lateness, &shuffled);
        prop_assert_eq!(out, in_order);
        prop_assert_eq!(stats.late_dropped + stats.duplicates_dropped, 1);
    }

    /// Whatever the delivery order and lateness: the released output is
    /// strictly increasing in timestamp, and every offered sample is
    /// either released or counted as dropped.
    #[test]
    fn releases_are_sorted_and_accounted(
        ts in prop::collection::vec(0_u64..500, 1..200),
        lateness in 0_u64..20,
    ) {
        let samples: Vec<(u64, f64)> =
            ts.iter().map(|&t| (t, t as f64)).collect();
        let (out, stats) = drain(lateness, &samples);
        for pair in out.windows(2) {
            prop_assert!(pair[0].0 < pair[1].0, "unsorted release: {pair:?}");
        }
        prop_assert_eq!(
            out.len() + stats.late_dropped + stats.duplicates_dropped,
            samples.len()
        );
    }

    /// The watermark never regresses.
    #[test]
    fn watermark_is_monotone(
        ts in prop::collection::vec(0_u64..500, 1..100),
        lateness in 0_u64..20,
    ) {
        let mut w = Watermark::new(lateness);
        let mut out = Vec::new();
        let mut prev = None;
        for &t in &ts {
            w.offer(t, 0.0, &mut out);
            let pos = w.position();
            prop_assert!(pos >= prev, "watermark regressed: {:?} -> {:?}", prev, pos);
            prev = pos;
        }
    }
}
