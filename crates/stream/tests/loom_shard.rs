//! Model-checked shard hand-off: the driver→shard-worker topology of
//! [`hierod_stream::ShardedStream`], reduced to its concurrency core —
//! one driver partitioning lanes over per-shard SPSC rings by
//! [`shard_of`] — and explored under every loom schedule.
//!
//! Run with `cargo test -p hierod-stream --features loom --test loom_shard`.
//!
//! The properties pinned here are exactly what the merge determinism
//! argument needs from the transport: **no lane's sample is lost** and
//! **every lane's samples arrive in send order at exactly one shard**
//! (the owner), regardless of how the scheduler interleaves the driver
//! with the workers.

#![cfg(feature = "loom")]

use hierod_stream::{ring, shard_of};

const SHARDS: usize = 2;

/// Lanes chosen so the FNV partition provably exercises both shards
/// (asserted below, so a hash change cannot silently weaken the test).
const LANES: [(&str, &str); 3] = [("m0", "s0"), ("m0", "s1"), ("m1", "s0")];

/// Per-lane FIFO and no-loss across the sharded hand-off under every
/// interleaving: each lane's samples land on its owning shard, in
/// order, with nothing lost and nothing duplicated — even though the
/// driver round-robins lanes and the rings (capacity below the total
/// sample count) force backpressure blocking.
#[test]
fn shard_hand_off_preserves_every_lane_under_all_interleavings() {
    let owners: Vec<usize> = LANES.iter().map(|(m, s)| shard_of(m, s, SHARDS)).collect();
    assert!(
        (0..SHARDS).all(|k| owners.contains(&k)),
        "lane set must cover both shards, owners {owners:?}"
    );
    loom::model(move || {
        let mut producers = Vec::new();
        let mut consumers = Vec::new();
        for _ in 0..SHARDS {
            // (lane index, sequence) — tiny capacity forces the driver
            // to block on a busy shard while the other drains.
            let (tx, rx) = ring::<(usize, u32)>(1);
            producers.push(tx);
            consumers.push(rx);
        }
        loom::thread::scope(|s| {
            let handles: Vec<_> = consumers
                .into_iter()
                .map(|mut rx| {
                    s.spawn(move || {
                        let mut seen: Vec<(usize, u32)> = Vec::new();
                        while let Some(item) = rx.pop() {
                            seen.push(item);
                        }
                        seen
                    })
                })
                .collect();
            // Driver: two samples per lane, round-robin across lanes —
            // the same interleaved order ShardedStream::send sees.
            for seq in 0..2_u32 {
                for (lane, (m, sensor)) in LANES.iter().enumerate() {
                    let owner = shard_of(m, sensor, SHARDS);
                    producers[owner].push((lane, seq)).expect("worker alive");
                }
            }
            drop(producers); // close every ring: workers drain and exit
            let per_shard: Vec<Vec<(usize, u32)>> = handles
                .into_iter()
                .map(|h| h.join().expect("worker did not panic"))
                .collect();
            // Exactly one shard saw each lane — the owner — and saw its
            // samples in send order.
            for (lane, (m, sensor)) in LANES.iter().enumerate() {
                let owner = shard_of(m, sensor, SHARDS);
                for (k, seen) in per_shard.iter().enumerate() {
                    let got: Vec<u32> = seen
                        .iter()
                        .filter(|(l, _)| *l == lane)
                        .map(|(_, seq)| *seq)
                        .collect();
                    if k == owner {
                        assert_eq!(got, vec![0, 1], "lane {lane} on owner {k}");
                    } else {
                        assert!(got.is_empty(), "lane {lane} leaked to shard {k}");
                    }
                }
            }
        });
    });
}
