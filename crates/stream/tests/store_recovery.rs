//! Fault-injection recovery suite: *write-crash-recover ≡ no-crash*.
//!
//! A scripted production scenario (machines, jobs, phases, out-of-order
//! samples, mid-stream rotations) runs against a [`MemStorage`] with an
//! injected write budget: once the budget is spent, the write tears at
//! an arbitrary byte and every later storage operation fails — the
//! process "crashes". The test then takes a crash image (optionally
//! dropping everything unsynced, i.e. the kernel page cache is lost
//! too), reopens a [`DurableStream`] on it, resumes the scenario from
//! the recovered [`DurableStream::delivered`] /
//! [`DurableStream::controls_applied`] cursors, and finishes.
//!
//! The resulting report — aggregate stats, per-lane stats, detections,
//! and the full Algorithm-1 triple report — must equal the report of an
//! uninterrupted run, for *every* crash point swept and for random
//! scenarios under proptest.

use std::collections::BTreeMap;

use hierod_core::AlgorithmPolicy;
use hierod_hierarchy::{CaqResult, JobConfig, PhaseKind, RedundancyGroup, Sensor, SensorKind};
use hierod_store::storage::Storage;
use hierod_store::store::StoreOptions;
use hierod_store::MemStorage;
use hierod_stream::{
    DurableStream, LaneId, LaneKind, Sample, ScorerMode, StreamConfig, StreamReport,
};
use proptest::prelude::*;

/// One step of a scripted scenario.
#[derive(Clone, Debug)]
enum Op {
    MachineUp(String, Vec<Sensor>, Vec<RedundancyGroup>, Vec<String>),
    JobStart(String, String, u64, JobConfig),
    PhaseStart(String, PhaseKind, Vec<String>),
    JobComplete(String, CaqResult),
    Sample(LaneId, u64, f64),
    Rotate,
    Tick,
}

fn lane(machine: &str, sensor: &str, kind: LaneKind) -> LaneId {
    LaneId {
        machine: machine.into(),
        sensor: sensor.into(),
        kind,
    }
}

/// Replays `ops` into `d`, skipping the prefix the store already holds:
/// the first `skip_controls` control events and, per lane, the first
/// `delivered[lane]` samples — exactly the resume contract a client
/// follows after a crash. Returns `false` when the storage was killed
/// mid-run (the injected crash fired).
fn run_ops(
    d: &mut DurableStream<MemStorage>,
    ops: &[Op],
    skip_controls: u64,
    delivered: &BTreeMap<LaneId, u64>,
) -> bool {
    let mut control_no = 0_u64;
    let mut lane_counts: BTreeMap<LaneId, u64> = BTreeMap::new();
    for op in ops {
        if let Op::MachineUp(..) | Op::JobStart(..) | Op::PhaseStart(..) | Op::JobComplete(..) = op
        {
            control_no += 1;
            if control_no <= skip_controls {
                continue;
            }
        }
        if let Op::Sample(id, _, _) = op {
            let count = lane_counts.entry(id.clone()).or_insert(0);
            *count += 1;
            if *count <= delivered.get(id).copied().unwrap_or(0) {
                continue;
            }
        }
        let result = match op {
            Op::MachineUp(m, sensors, groups, env) => {
                d.machine_up(m, sensors.clone(), groups.clone(), env)
            }
            Op::JobStart(m, j, start, config) => d.job_start(m, j, *start, config.clone()),
            Op::PhaseStart(m, kind, sensors) => d.phase_start(m, *kind, sensors),
            Op::JobComplete(m, caq) => d.job_complete(m, caq.clone()),
            Op::Sample(id, ts, v) => d.ingest(
                id,
                Sample {
                    timestamp: *ts,
                    value: *v,
                },
            ),
            Op::Rotate => d.rotate(),
            Op::Tick => d.tick().map(|_| ()),
        };
        if let Err(e) = result {
            assert!(
                d.store().storage().killed(),
                "only the injected crash may fail the scenario: {e:?}"
            );
            return false;
        }
    }
    true
}

/// A two-machine scenario with out-of-order samples, a duplicate, a
/// late drop, two jobs on one machine, and mid-stream rotations.
fn scenario(lateness_spice: u64) -> Vec<Op> {
    let mut ops = Vec::new();
    for m in ["m0", "m1"] {
        let bed = format!("{m}.bed.0");
        let room = format!("{m}.room");
        ops.push(Op::MachineUp(
            m.into(),
            vec![Sensor::new(&bed, SensorKind::BedTemperature)],
            vec![RedundancyGroup::new(
                SensorKind::BedTemperature,
                vec![bed.clone()],
            )],
            vec![room.clone()],
        ));
    }
    let jobs: [(&str, &str, u64); 3] = [("m0", "j0", 0), ("m1", "j0", 5), ("m0", "j1", 500)];
    for (slot, (m, j, start)) in jobs.iter().enumerate() {
        let bed = format!("{m}.bed.0");
        let room = format!("{m}.room");
        ops.push(Op::JobStart(
            (*m).into(),
            (*j).into(),
            *start,
            JobConfig::new(vec!["speed".into()], vec![1.0 + slot as f64]),
        ));
        ops.push(Op::PhaseStart(
            (*m).into(),
            PhaseKind::WarmUp,
            vec![bed.clone()],
        ));
        let base = *start;
        for i in 0..40_u64 {
            // Mild out-of-order jitter: swap each odd/even pair.
            let t = base + (i ^ 1);
            let v = if i == 25 {
                80.0 + slot as f64
            } else {
                (t as f64 * 0.37).sin() + slot as f64 * 0.1
            };
            ops.push(Op::Sample(lane(m, &bed, LaneKind::Phase), t, v));
            if i % 4 == 0 {
                ops.push(Op::Sample(
                    lane(m, &room, LaneKind::Environment),
                    t + lateness_spice,
                    21.0 + (t as f64 * 0.05).cos(),
                ));
            }
        }
        // One duplicate (still buffered in the watermark) and one late
        // straggler (far behind the frontier) on the phase lane.
        ops.push(Op::Sample(lane(m, &bed, LaneKind::Phase), base + 38, -1.0));
        ops.push(Op::Sample(lane(m, &bed, LaneKind::Phase), base + 1, -1.0));
        ops.push(Op::PhaseStart(
            (*m).into(),
            PhaseKind::Printing,
            vec![bed.clone()],
        ));
        for i in 0..24_u64 {
            let t = base + 100 + i;
            ops.push(Op::Sample(
                lane(m, &bed, LaneKind::Phase),
                t,
                (t as f64 * 0.21).cos(),
            ));
        }
        ops.push(Op::JobComplete(
            (*m).into(),
            CaqResult::new(vec!["q".into()], vec![0.9 + slot as f64 * 0.01], true),
        ));
        if slot == 0 {
            ops.push(Op::Rotate);
        }
        if slot == 1 {
            ops.push(Op::Tick);
        }
    }
    ops.push(Op::Rotate);
    ops
}

fn policy_and_config() -> (AlgorithmPolicy, StreamConfig) {
    (
        AlgorithmPolicy::default(),
        StreamConfig {
            lateness: 3,
            mode: ScorerMode::BatchEquivalent,
        },
    )
}

fn open(storage: MemStorage) -> DurableStream<MemStorage> {
    let (policy, config) = policy_and_config();
    let (d, _) = DurableStream::open(policy, config, storage, StoreOptions { group_commit: 8 })
        .expect("open");
    d
}

fn uninterrupted(ops: &[Op]) -> StreamReport {
    let mut d = open(MemStorage::new());
    assert!(run_ops(&mut d, ops, 0, &BTreeMap::new()), "no budget set");
    d.finish().expect("finish")
}

fn assert_reports_equal(got: &StreamReport, want: &StreamReport, context: &str) {
    assert_eq!(got.stats, want.stats, "stats diverged: {context}");
    assert_eq!(
        got.lane_stats, want.lane_stats,
        "lane stats diverged: {context}"
    );
    assert_eq!(
        format!("{:?}", got.detections),
        format!("{:?}", want.detections),
        "detections diverged: {context}"
    );
    assert_eq!(
        format!("{:?}", got.report),
        format!("{:?}", want.report),
        "report diverged: {context}"
    );
}

/// Crashes the scenario at `budget` written bytes, recovers, resumes,
/// and returns the final report.
fn crash_recover_resume(ops: &[Op], budget: u64, keep_unsynced: bool) -> StreamReport {
    let storage = MemStorage::new();
    storage.set_write_budget(Some(budget));
    let (policy, config) = policy_and_config();
    let survived = match DurableStream::open(
        policy,
        config,
        storage.clone(),
        StoreOptions { group_commit: 8 },
    ) {
        Ok((mut d, _)) => run_ops(&mut d, ops, 0, &BTreeMap::new()),
        // The crash can fire while the store itself bootstraps.
        Err(_) => false,
    };
    let image = storage.crash_image(keep_unsynced);
    let (policy, config) = policy_and_config();
    let (mut d, recovery) =
        DurableStream::open(policy, config, image, StoreOptions { group_commit: 8 })
            .expect("recovery must always succeed");
    if survived {
        // Budget outlasted the scenario: nothing to resume beyond the
        // cursors (which then cover the whole scenario).
        assert_eq!(recovery.controls_applied, d.controls_applied());
    }
    let skip = d.controls_applied();
    let delivered = d.delivered().clone();
    assert!(
        run_ops(&mut d, ops, skip, &delivered),
        "resume runs on healthy storage"
    );
    let mut report = d.finish().expect("finish after recovery");
    // A budget kill tears the in-flight write, which recovery rightly
    // reports as a (survived) corruption; the uninterrupted baseline
    // never saw damage, so mask the corruption counters before the
    // equivalence comparison — everything else must match exactly.
    report.stats.corrupt_records = 0;
    for stats in report.lane_stats.values_mut() {
        stats.corrupt_records = 0;
    }
    report
}

#[test]
fn crash_recover_resume_equals_uninterrupted_across_budgets() {
    let ops = scenario(1);
    let baseline = uninterrupted(&ops);

    // Measure the full-run write volume to bound the sweep.
    let probe = MemStorage::new();
    {
        let mut d = open(probe.clone());
        assert!(run_ops(&mut d, &ops, 0, &BTreeMap::new()));
        d.finish().expect("finish");
    }
    let total = probe.bytes_written();
    assert!(
        total > 2_000,
        "scenario writes enough to be interesting: {total}"
    );

    // Sweep crash points across the whole write stream; a prime stride
    // keeps the sampled offsets unaligned with record boundaries.
    let mut swept = 0;
    for budget in (0..=total).step_by(211) {
        for keep_unsynced in [false, true] {
            let report = crash_recover_resume(&ops, budget, keep_unsynced);
            assert_reports_equal(
                &report,
                &baseline,
                &format!("budget={budget} keep_unsynced={keep_unsynced}"),
            );
            swept += 1;
        }
    }
    assert!(swept >= 40, "sweep covered {swept} crash points");
}

#[test]
fn torn_and_bit_flipped_wal_tails_are_survived() {
    let ops = scenario(1);
    let baseline = uninterrupted(&ops);

    // Run ~60% of the scenario, then damage the active WAL image.
    let cut = ops.len() * 3 / 5;
    for damage in 0..3_u32 {
        let storage = MemStorage::new();
        let mut d = open(storage.clone());
        assert!(run_ops(&mut d, &ops[..cut], 0, &BTreeMap::new()));
        drop(d);
        let image = storage.crash_image(true);
        let wal_name = image
            .list()
            .expect("list")
            .into_iter()
            .find(|n| n.starts_with("wal-"))
            .expect("active wal");
        let len = image.file_len(&wal_name).expect("wal length");
        let hit = match damage {
            0 => image.tear(&wal_name, len.saturating_sub(5)),
            1 => image.flip_bit(&wal_name, len.saturating_sub(20), 3),
            _ => image.flip_bit(&wal_name, len / 2 + 7, 6),
        };
        assert!(hit, "damage {damage} targeted a real byte");
        let (policy, config) = policy_and_config();
        let (mut d, recovery) =
            DurableStream::open(policy, config, image, StoreOptions { group_commit: 8 })
                .expect("recovery survives a damaged tail");
        assert!(
            recovery.corrupt_records > 0 || recovery.store.wal_truncated_bytes > 0,
            "damage {damage} was actually hit"
        );
        assert_eq!(
            d.stats().corrupt_records,
            recovery.corrupt_records,
            "corruption surfaces in the stats"
        );
        let skip = d.controls_applied();
        let delivered = d.delivered().clone();
        assert!(run_ops(&mut d, &ops, skip, &delivered));
        let report = d.finish().expect("finish");
        // Corruption counters are part of the durable report; mask them
        // out for the equivalence comparison (the baseline never saw
        // damage).
        let mut got = report;
        got.stats.corrupt_records = 0;
        for stats in got.lane_stats.values_mut() {
            stats.corrupt_records = 0;
        }
        assert_reports_equal(&got, &baseline, &format!("damage={damage}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random crash points × random environment lateness spice: the
    /// recovered-and-resumed report always equals the uninterrupted one.
    #[test]
    fn random_crash_points_recover_equivalently(
        budget_seed in any::<u64>(),
        keep_unsynced in any::<bool>(),
        spice in 0_u64..3,
    ) {
        let ops = scenario(spice);
        let baseline = uninterrupted(&ops);
        let probe = MemStorage::new();
        {
            let mut d = open(probe.clone());
            prop_assert!(run_ops(&mut d, &ops, 0, &BTreeMap::new()));
            d.finish().expect("finish");
        }
        let total = probe.bytes_written();
        let budget = budget_seed % total.max(1);
        let report = crash_recover_resume(&ops, budget, keep_unsynced);
        assert_reports_equal(
            &report,
            &baseline,
            &format!("budget={budget} keep_unsynced={keep_unsynced} spice={spice}"),
        );
    }
}
