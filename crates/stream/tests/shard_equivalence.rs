//! Pins the sharding tentpole guarantee: a single plant streamed
//! through N shards — whether driven inline ([`ShardSet`]) or across
//! real worker threads ([`ShardedStream`]) — produces a
//! [`StreamReport`] **byte-identical** (same `Debug` rendering, which
//! covers every score bit) to the unsharded [`StreamDetector`] run in
//! `BatchEquivalent` mode.
//!
//! The argument, verified here end-to-end: controls are broadcast, so
//! every shard holds a congruent skeleton; each machine×sensor lane is
//! owned by exactly one shard, so its sample sequence and scorer state
//! are exactly those of the unsharded run; the merge walks the
//! skeleton in fixed order filling each slot from its owner.

use std::collections::HashMap;

use hierod_core::AlgorithmPolicy;
use hierod_stream::{
    ControlEvent, LaneId, LaneKind, Sample, ScorerMode, ShardSet, ShardedStream, StreamConfig,
    StreamDetector, StreamReport,
};
use hierod_synth::{ReplayEvent, Scenario, ScenarioBuilder};

fn scenario() -> Scenario {
    ScenarioBuilder::new(42)
        .machines(3)
        .jobs_per_machine(3)
        .redundancy(2)
        .phase_samples(40)
        .anomaly_rate(0.8)
        .environment_anomalies(0.5, 6.0)
        .build()
}

fn config() -> StreamConfig {
    StreamConfig {
        lateness: 0,
        mode: ScorerMode::BatchEquivalent,
    }
}

/// The replay, lowered to (control | sample) steps in stream order.
enum Step {
    Control(ControlEvent),
    Sample(LaneId, Sample),
}

fn steps(scenario: &Scenario) -> Vec<Step> {
    scenario
        .replay()
        .into_iter()
        .map(|event| match event {
            ReplayEvent::MachineUp {
                machine,
                sensors,
                redundancy,
                env_sensors,
            } => Step::Control(ControlEvent::MachineUp {
                machine,
                sensors,
                redundancy,
                env_sensors,
            }),
            ReplayEvent::JobStart {
                machine,
                job,
                start,
                config,
            } => Step::Control(ControlEvent::JobStart {
                machine,
                job,
                start,
                config,
            }),
            ReplayEvent::PhaseStart {
                machine,
                kind,
                sensors,
            } => Step::Control(ControlEvent::PhaseStart {
                machine,
                kind,
                sensors,
            }),
            ReplayEvent::PhaseSample {
                machine,
                sensor,
                timestamp,
                value,
            } => Step::Sample(
                LaneId {
                    machine,
                    sensor,
                    kind: LaneKind::Phase,
                },
                Sample { timestamp, value },
            ),
            ReplayEvent::EnvSample {
                machine,
                sensor,
                timestamp,
                value,
            } => Step::Sample(
                LaneId {
                    machine,
                    sensor,
                    kind: LaneKind::Environment,
                },
                Sample { timestamp, value },
            ),
            ReplayEvent::JobComplete { machine, caq, .. } => {
                Step::Control(ControlEvent::JobComplete { machine, caq })
            }
        })
        .collect()
}

fn run_unsharded(scenario: &Scenario) -> StreamReport {
    let mut det = StreamDetector::new(AlgorithmPolicy::default(), config()).expect("detector");
    for step in steps(scenario) {
        match step {
            Step::Control(event) => det.apply(&event).expect("control"),
            Step::Sample(lane, sample) => det.ingest(&lane, sample).expect("ingest"),
        }
    }
    det.finish().expect("finish")
}

fn run_shard_set(scenario: &Scenario, shards: usize) -> StreamReport {
    let mut set = ShardSet::new(&AlgorithmPolicy::default(), config(), shards).expect("shard set");
    for step in steps(scenario) {
        match step {
            Step::Control(event) => set.apply(&event).expect("control"),
            Step::Sample(lane, sample) => set.ingest(&lane, sample).expect("ingest"),
        }
    }
    set.finish().expect("finish")
}

fn run_sharded_stream(scenario: &Scenario, shards: usize) -> StreamReport {
    let mut stream = ShardedStream::spawn(&AlgorithmPolicy::default(), config(), shards, 64)
        .expect("sharded stream");
    let mut lanes: HashMap<LaneId, u32> = HashMap::new();
    for step in steps(scenario) {
        match step {
            Step::Control(event) => stream.control(&event).expect("control"),
            Step::Sample(lane, sample) => {
                let n = match lanes.get(&lane) {
                    Some(&n) => n,
                    None => {
                        let n = stream.lane(lane.clone()).expect("lane");
                        lanes.insert(lane, n);
                        n
                    }
                };
                stream.send(n, sample).expect("send");
            }
        }
    }
    stream.finish().expect("finish")
}

#[test]
fn sharded_report_is_byte_identical_to_unsharded() {
    let scenario = scenario();
    let baseline = run_unsharded(&scenario);
    assert!(
        baseline.stats.samples_ingested > 0,
        "scenario produced no samples"
    );
    assert!(
        !baseline.report.outliers.is_empty(),
        "scenario produced no outliers — the comparison would be weak"
    );
    let want = format!("{baseline:?}");
    for shards in [1, 2, 4] {
        let got = format!("{:?}", run_shard_set(&scenario, shards));
        assert_eq!(got, want, "ShardSet({shards}) diverged from unsharded");
    }
}

#[test]
fn worker_thread_sharding_is_byte_identical_to_unsharded() {
    let scenario = scenario();
    let want = format!("{:?}", run_unsharded(&scenario));
    let got = format!("{:?}", run_sharded_stream(&scenario, 4));
    assert_eq!(got, want, "ShardedStream(4) diverged from unsharded");
}

#[test]
fn shard_counts_agree_with_each_other_across_modes() {
    let scenario = scenario();
    let a = format!("{:?}", run_shard_set(&scenario, 3));
    let b = format!("{:?}", run_sharded_stream(&scenario, 3));
    assert_eq!(a, b, "inline and threaded sharding diverged");
}
