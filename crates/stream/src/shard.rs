//! Sharded multi-core streaming: N detector shards over per-shard rings.
//!
//! A **shard** is a [`StreamDetector`] scoped to the subset of lanes whose
//! stable machine×sensor hash ([`shard_of`]) lands on its index. Control
//! events are broadcast to every shard in the same order, so all shards
//! hold *congruent skeletons* — identical machines, jobs, phases, and
//! pipeline slots — while each slot's pipeline lives in exactly one shard.
//! Merging is therefore a fixed-order structural walk with no runtime
//! ordering decisions, and the merged [`StreamReport`] is byte-identical
//! to the single-shard run (the `shard_equivalence` test pins this).
//!
//! Two drivers are provided:
//!
//! * [`ShardSet`] — serial: the caller routes events inline; useful for
//!   deterministic tests, interim [`ShardSet::tick`] reports, and as the
//!   building block of the durable tenant registry.
//! * [`ShardedStream`] — threaded: one consumer thread per shard behind a
//!   per-shard SPSC ring carrying [`ShardEvent`]s. The single driver
//!   thread broadcasts controls in-band, which preserves the
//!   control-before-sample contract per shard without any cross-shard
//!   barrier. At [`ShardedStream::finish`], shard pipelines are finalized
//!   through the loom-verified detect [`TaskPool`] and assembled in fixed
//!   shard order.
//!
//! The hand-off protocol (single producer, per-shard SPSC, per-lane FIFO)
//! is model-checked in `tests/loom_shard.rs`; the hash partition
//! properties (stable, total, balanced) in `tests/shard_props.rs`.

use std::thread;

use hierod_core::AlgorithmPolicy;
use hierod_detect::engine::{Task, TaskPool};
use hierod_detect::{DetectError, Result};

use crate::detector::{assemble_multi, ControlEvent, StreamConfig, StreamDetector, StreamReport};
use crate::ring::{ring, Consumer, Producer};
use crate::router::{LaneId, Sample};

/// Default per-shard ring capacity of [`ShardedStream::spawn`].
pub const DEFAULT_SHARD_CAPACITY: usize = 1024;

/// The stable shard of `machine`×`sensor` among `shards` partitions.
///
/// FNV-1a over the machine id, a `0xFF` separator (so `("ab","c")` and
/// `("a","bc")` differ), and the sensor name, reduced modulo `shards`.
/// The function is **total** (every lane maps to exactly one shard for
/// any `shards >= 1`) and **stable** — it depends only on the two names,
/// never on registration order or process state, so producers, consumers,
/// recovery, and re-sharded replays all agree on lane ownership.
pub fn shard_of(machine: &str, sensor: &str, shards: usize) -> usize {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in machine.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash ^= 0xFF;
    hash = hash.wrapping_mul(PRIME);
    for &b in sensor.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    (hash % shards.max(1) as u64) as usize
}

/// One event on a shard's ring. Controls are broadcast to every shard;
/// lane definitions and samples go only to the lane's hash owner. Because
/// the driver pushes all three kinds through the same SPSC ring, each
/// shard observes controls and its samples in exactly the order the
/// driver issued them.
///
/// The rare variants (lane binding, control) are boxed so the enum —
/// and with it every ring slot — stays at the size of the hot
/// [`ShardEvent::Sample`] variant instead of the largest control
/// payload (104 bytes unboxed vs 24): ring memory scales with
/// capacity × shards, and the driver rewrites a slot per sample.
#[derive(Debug, Clone)]
pub enum ShardEvent {
    /// Interns a lane number → [`LaneId`] binding on the owning shard;
    /// sent once per lane, before any of its samples.
    Lane {
        /// Driver-assigned dense lane number.
        lane: u32,
        /// The lane's identity.
        id: Box<LaneId>,
    },
    /// A lifecycle event, broadcast to every shard.
    Control(Box<ControlEvent>),
    /// One sensor reading for an interned lane.
    Sample {
        /// Lane number from a previous [`ShardEvent::Lane`].
        lane: u32,
        /// The reading.
        sample: Sample,
    },
}

/// A serial shard set: `count` scoped detectors driven inline by the
/// caller. Routing and broadcast follow the same rules as the threaded
/// [`ShardedStream`], minus the rings — useful where determinism matters
/// more than parallelism, and for interim [`ShardSet::tick`] reports.
pub struct ShardSet {
    shards: Vec<StreamDetector>,
}

impl ShardSet {
    /// Creates `count` shard-scoped detectors for the policy.
    ///
    /// # Errors
    /// Rejects `count == 0`; otherwise as [`StreamDetector::new`].
    pub fn new(policy: &AlgorithmPolicy, config: StreamConfig, count: usize) -> Result<Self> {
        if count == 0 {
            return Err(DetectError::invalid("shards", "shard count must be >= 1"));
        }
        let shards = (0..count)
            .map(|i| StreamDetector::new_shard(policy.clone(), config, i, count))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { shards })
    }

    /// Number of shards.
    pub fn count(&self) -> usize {
        self.shards.len()
    }

    /// Broadcasts one control event to every shard (fixed shard order).
    ///
    /// # Errors
    /// The first shard's error; remaining shards still receive the event
    /// so the skeletons cannot silently diverge.
    pub fn apply(&mut self, event: &ControlEvent) -> Result<()> {
        let mut first_err = None;
        for shard in &mut self.shards {
            if let Err(e) = shard.apply(event) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Routes one sample to the lane's hash owner.
    ///
    /// # Errors
    /// As [`StreamDetector::ingest`] on the owning shard.
    pub fn ingest(&mut self, lane: &LaneId, sample: Sample) -> Result<()> {
        let owner = shard_of(&lane.machine, &lane.sensor, self.shards.len());
        match self.shards.get_mut(owner) {
            Some(shard) => shard.ingest(lane, sample),
            None => Err(DetectError::Missing {
                what: format!("shard {owner} of {}", self.shards.len()),
            }),
        }
    }

    /// Assembles an interim merged report across all shards, in fixed
    /// shard order (see [`StreamDetector::tick`] for scoring semantics).
    ///
    /// # Errors
    /// Propagates upper-level detector failures.
    pub fn tick(&self) -> Result<StreamReport> {
        let refs: Vec<&StreamDetector> = self.shards.iter().collect();
        assemble_multi(&refs)
    }

    /// Finalizes every shard's pipelines and assembles the final merged
    /// report, byte-identical to the unsharded run.
    ///
    /// # Errors
    /// Propagates upper-level detector failures.
    pub fn finish(self) -> Result<StreamReport> {
        finish_shards(self.shards)
    }
}

/// Finalizes shard pipelines in parallel through the detect [`TaskPool`]
/// (watermark flush + scorer finish are shard-local, so tasks are
/// independent), then assembles in fixed shard order. The pool returns
/// results in task order, so nothing about the merge depends on which
/// worker ran which shard.
fn finish_shards(mut shards: Vec<StreamDetector>) -> Result<StreamReport> {
    let pool = TaskPool::new(shards.len().max(1));
    let tasks: Vec<Task<'_, ()>> = shards
        .iter_mut()
        .map(|shard| Box::new(move || shard.finalize_pipelines()) as Task<'_, ()>)
        .collect();
    pool.run(tasks);
    let refs: Vec<&StreamDetector> = shards.iter().collect();
    assemble_multi(&refs)
}

/// The threaded shard runtime: one consumer thread per shard, each owning
/// a scoped [`StreamDetector`] fed by its own SPSC ring. See the module
/// docs for the ordering argument.
pub struct ShardedStream {
    /// `lanes[lane]` is the shard owning that lane number.
    lanes: Vec<usize>,
    /// One producer per shard; `None` after the rings are closed.
    producers: Vec<Option<Producer<ShardEvent>>>,
    workers: Vec<thread::JoinHandle<(StreamDetector, Result<()>)>>,
}

impl ShardedStream {
    /// Spawns `count` shard consumer threads with rings of `capacity`
    /// events each.
    ///
    /// # Errors
    /// Rejects `count == 0` or `capacity == 0`; otherwise as
    /// [`StreamDetector::new`].
    pub fn spawn(
        policy: &AlgorithmPolicy,
        config: StreamConfig,
        count: usize,
        capacity: usize,
    ) -> Result<Self> {
        if count == 0 {
            return Err(DetectError::invalid("shards", "shard count must be >= 1"));
        }
        if capacity == 0 {
            return Err(DetectError::invalid(
                "capacity",
                "ring capacity must be >= 1",
            ));
        }
        let mut producers = Vec::with_capacity(count);
        let mut workers = Vec::with_capacity(count);
        for i in 0..count {
            let detector = StreamDetector::new_shard(policy.clone(), config, i, count)?;
            let (tx, rx) = ring::<ShardEvent>(capacity);
            producers.push(Some(tx));
            workers.push(thread::spawn(move || shard_worker(detector, rx)));
        }
        Ok(Self {
            lanes: Vec::new(),
            producers,
            workers,
        })
    }

    /// Number of shards.
    pub fn count(&self) -> usize {
        self.producers.len()
    }

    /// Interns a lane, binding a dense lane number on the owning shard.
    /// Subsequent [`ShardedStream::send`] calls use the returned number —
    /// the per-sample fast path never touches the lane strings again.
    ///
    /// # Errors
    /// When the owning shard's worker has exited.
    pub fn lane(&mut self, id: LaneId) -> Result<u32> {
        let owner = shard_of(&id.machine, &id.sensor, self.producers.len());
        let lane = u32::try_from(self.lanes.len())
            .map_err(|_| DetectError::invalid("lane", "lane table overflow"))?;
        self.lanes.push(owner);
        self.push(
            owner,
            ShardEvent::Lane {
                lane,
                id: Box::new(id),
            },
        )?;
        Ok(lane)
    }

    /// Broadcasts one control event to every shard, in shard order.
    ///
    /// # Errors
    /// When a shard's worker has exited. Application errors surface at
    /// [`ShardedStream::finish`] — the driver cannot observe them sooner
    /// without a barrier per control.
    pub fn control(&mut self, event: &ControlEvent) -> Result<()> {
        for shard in 0..self.producers.len() {
            self.push(shard, ShardEvent::Control(Box::new(event.clone())))?;
        }
        Ok(())
    }

    /// Sends one sample to its lane's owning shard, blocking while the
    /// shard's ring is full (backpressure).
    ///
    /// # Errors
    /// An unknown lane number, or an owning worker that has exited.
    pub fn send(&mut self, lane: u32, sample: Sample) -> Result<()> {
        let Some(&owner) = self.lanes.get(lane as usize) else {
            return Err(DetectError::Missing {
                what: format!("shard lane {lane}"),
            });
        };
        self.push(owner, ShardEvent::Sample { lane, sample })
    }

    fn push(&mut self, shard: usize, event: ShardEvent) -> Result<()> {
        let Some(tx) = self.producers.get_mut(shard).and_then(Option::as_mut) else {
            return Err(DetectError::invalid("shard", "stream already finished"));
        };
        tx.push(event)
            .map_err(|_| DetectError::invalid("shard", format!("shard {shard} worker exited")))
    }

    /// Closes every ring, joins the shard threads, finalizes their
    /// pipelines through the detect [`TaskPool`], and assembles the final
    /// merged report in fixed shard order — byte-identical to the
    /// unsharded run over the same events.
    ///
    /// # Errors
    /// The first worker-side application error (in shard order), a worker
    /// panic, or upper-level detector failures.
    pub fn finish(mut self) -> Result<StreamReport> {
        for tx in self.producers.iter_mut() {
            drop(tx.take()); // dropping the producer closes the ring
        }
        let mut shards = Vec::with_capacity(self.workers.len());
        let mut first_err = None;
        for handle in self.workers.drain(..) {
            match handle.join() {
                Ok((detector, result)) => {
                    if let Err(e) = result {
                        first_err.get_or_insert(e);
                    }
                    shards.push(detector);
                }
                Err(_) => {
                    first_err.get_or_insert(DetectError::invalid("shard", "worker panicked"));
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        finish_shards(shards)
    }
}

impl Drop for ShardedStream {
    /// Closes the rings and joins the workers so an abandoned stream
    /// (e.g. after a driver-side error) never leaves threads parked.
    fn drop(&mut self) {
        for tx in self.producers.iter_mut() {
            drop(tx.take());
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The per-shard consumer loop: drains the ring to exhaustion, applying
/// controls and ingesting owned samples. The first error is recorded and
/// returned at join time, but draining continues — stopping early would
/// wedge the driver on a full ring.
fn shard_worker(
    mut detector: StreamDetector,
    mut rx: Consumer<ShardEvent>,
) -> (StreamDetector, Result<()>) {
    let mut lanes: Vec<Option<LaneId>> = Vec::new();
    let mut first_err: Option<DetectError> = None;
    while let Some(event) = rx.pop() {
        let result = match event {
            ShardEvent::Lane { lane, id } => {
                let at = lane as usize;
                if at >= lanes.len() {
                    lanes.resize(at + 1, None);
                }
                if let Some(slot) = lanes.get_mut(at) {
                    *slot = Some(*id);
                }
                Ok(())
            }
            ShardEvent::Control(control) => detector.apply(&control),
            ShardEvent::Sample { lane, sample } => {
                match lanes.get(lane as usize).and_then(Option::as_ref) {
                    Some(id) => detector.ingest(id, sample),
                    None => Err(DetectError::Missing {
                        what: format!("lane {lane} binding on shard"),
                    }),
                }
            }
        };
        if let Err(e) = result {
            first_err.get_or_insert(e);
        }
    }
    let result = match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    };
    (detector, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_total_and_stable() {
        for shards in [1, 2, 4, 8, 64] {
            for m in 0..8 {
                for s in 0..8 {
                    let machine = format!("m{m}");
                    let sensor = format!("m{m}.bed.{s}");
                    let a = shard_of(&machine, &sensor, shards);
                    let b = shard_of(&machine, &sensor, shards);
                    assert_eq!(a, b);
                    assert!(a < shards);
                }
            }
        }
    }

    #[test]
    fn shard_of_separates_machine_and_sensor_bytes() {
        // Without the 0xFF separator, ("ab", "c") and ("a", "bc") would
        // hash the same byte stream and always collide.
        assert_ne!(
            shard_of("ab", "c", 1 << 20),
            shard_of("a", "bc", 1 << 20),
            "separator has no effect"
        );
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        assert_eq!(shard_of("m", "s", 0), 0);
    }
}
