//! Value ↔ byte codecs for lanes and control events.
//!
//! The WAL record format ([`hierod_store::wal`]) treats lane metadata
//! and control payloads as opaque byte strings; this module is the one
//! place that gives those bytes meaning. It started as a private detail
//! of the durability layer, but the same encodings are now a **public
//! codec role**: the network wire protocol ([`hierod-wire`]) ships
//! `LaneDef`/`Control`/`Sample` records verbatim, so a captured ingest
//! stream is replayable through the store — both sides must agree on
//! exactly these bytes.
//!
//! Every decoder is total: arbitrary input either parses fully or
//! returns `None` — no panics, no indexing — so frames arriving off the
//! network degrade into a rejection the caller can count.
//!
//! [`hierod-wire`]: ../../hierod_wire/index.html

use hierod_hierarchy::{CaqResult, JobConfig, PhaseKind, RedundancyGroup, Sensor, SensorKind};
use hierod_store::codec;

use crate::detector::ControlEvent;
use crate::router::{LaneId, LaneKind};

const LANE_KIND_PHASE: u8 = 0;
const LANE_KIND_ENV: u8 = 1;

/// Serialises a [`LaneId`] as opaque lane metadata for the store and
/// the wire protocol.
pub fn encode_lane(id: &LaneId) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(match id.kind {
        LaneKind::Phase => LANE_KIND_PHASE,
        LaneKind::Environment => LANE_KIND_ENV,
    });
    codec::put_str(&mut out, &id.machine);
    codec::put_str(&mut out, &id.sensor);
    out
}

/// Total inverse of [`encode_lane`]; `None` on any malformation.
pub fn decode_lane(bytes: &[u8]) -> Option<LaneId> {
    let mut buf = bytes;
    let buf = &mut buf;
    let kind = match codec::take_u8(buf)? {
        LANE_KIND_PHASE => LaneKind::Phase,
        LANE_KIND_ENV => LaneKind::Environment,
        _ => return None,
    };
    let machine = codec::take_str(buf)?;
    let sensor = codec::take_str(buf)?;
    buf.is_empty().then_some(LaneId {
        machine,
        sensor,
        kind,
    })
}

/// Stable one-byte code of a [`SensorKind`] (storage + wire).
pub fn sensor_kind_code(kind: SensorKind) -> u8 {
    match kind {
        SensorKind::BedTemperature => 0,
        SensorKind::ChamberTemperature => 1,
        SensorKind::LaserPower => 2,
        SensorKind::Vibration => 3,
        SensorKind::OxygenLevel => 4,
        SensorKind::RoomTemperature => 5,
        SensorKind::Humidity => 6,
    }
}

/// Inverse of [`sensor_kind_code`].
pub fn sensor_kind_from(code: u8) -> Option<SensorKind> {
    match code {
        0 => Some(SensorKind::BedTemperature),
        1 => Some(SensorKind::ChamberTemperature),
        2 => Some(SensorKind::LaserPower),
        3 => Some(SensorKind::Vibration),
        4 => Some(SensorKind::OxygenLevel),
        5 => Some(SensorKind::RoomTemperature),
        6 => Some(SensorKind::Humidity),
        _ => None,
    }
}

/// Stable one-byte code of a [`PhaseKind`] (storage + wire).
pub fn phase_kind_code(kind: PhaseKind) -> u8 {
    match kind {
        PhaseKind::Preparation => 0,
        PhaseKind::WarmUp => 1,
        PhaseKind::Calibration => 2,
        PhaseKind::Printing => 3,
        PhaseKind::Cooling => 4,
    }
}

/// Inverse of [`phase_kind_code`].
pub fn phase_kind_from(code: u8) -> Option<PhaseKind> {
    match code {
        0 => Some(PhaseKind::Preparation),
        1 => Some(PhaseKind::WarmUp),
        2 => Some(PhaseKind::Calibration),
        3 => Some(PhaseKind::Printing),
        4 => Some(PhaseKind::Cooling),
        _ => None,
    }
}

const EV_MACHINE_UP: u8 = 1;
const EV_JOB_START: u8 = 2;
const EV_PHASE_START: u8 = 3;
const EV_JOB_COMPLETE: u8 = 4;

fn put_str_list(out: &mut Vec<u8>, items: &[String]) {
    codec::put_varint(out, items.len() as u64);
    for s in items {
        codec::put_str(out, s);
    }
}

fn take_str_list(buf: &mut &[u8]) -> Option<Vec<String>> {
    let n = codec::take_varint(buf)?;
    let mut out = Vec::new();
    for _ in 0..n {
        out.push(codec::take_str(buf)?);
    }
    Some(out)
}

/// Serialises a [`ControlEvent`] as a WAL/segment/wire payload.
pub fn encode_control(event: &ControlEvent) -> Vec<u8> {
    let mut out = Vec::new();
    match event {
        ControlEvent::MachineUp {
            machine,
            sensors,
            redundancy,
            env_sensors,
        } => {
            out.push(EV_MACHINE_UP);
            codec::put_str(&mut out, machine);
            codec::put_varint(&mut out, sensors.len() as u64);
            for s in sensors {
                codec::put_str(&mut out, &s.name);
                out.push(sensor_kind_code(s.kind));
            }
            codec::put_varint(&mut out, redundancy.len() as u64);
            for g in redundancy {
                out.push(sensor_kind_code(g.kind));
                put_str_list(&mut out, &g.sensors);
            }
            put_str_list(&mut out, env_sensors);
        }
        ControlEvent::JobStart {
            machine,
            job,
            start,
            config,
        } => {
            out.push(EV_JOB_START);
            codec::put_str(&mut out, machine);
            codec::put_str(&mut out, job);
            codec::put_u64(&mut out, *start);
            // One count covers both parallel lists, so the decoded
            // pair is equal-length by construction.
            codec::put_varint(&mut out, config.names.len() as u64);
            for name in &config.names {
                codec::put_str(&mut out, name);
            }
            for v in &config.values {
                codec::put_f64(&mut out, *v);
            }
        }
        ControlEvent::PhaseStart {
            machine,
            kind,
            sensors,
        } => {
            out.push(EV_PHASE_START);
            codec::put_str(&mut out, machine);
            out.push(phase_kind_code(*kind));
            put_str_list(&mut out, sensors);
        }
        ControlEvent::JobComplete { machine, caq } => {
            out.push(EV_JOB_COMPLETE);
            codec::put_str(&mut out, machine);
            codec::put_varint(&mut out, caq.names.len() as u64);
            for name in &caq.names {
                codec::put_str(&mut out, name);
            }
            for v in &caq.values {
                codec::put_f64(&mut out, *v);
            }
            out.push(u8::from(caq.passed));
        }
    }
    out
}

/// Total inverse of [`encode_control`]; `None` on any malformation
/// (WAL payloads come from CRC-verified records, so a `None` there
/// means a logic error; wire payloads are untrusted and a `None` is an
/// ordinary protocol rejection).
pub fn decode_control(bytes: &[u8]) -> Option<ControlEvent> {
    let mut buf = bytes;
    let buf = &mut buf;
    let event = match codec::take_u8(buf)? {
        EV_MACHINE_UP => {
            let machine = codec::take_str(buf)?;
            let n = codec::take_varint(buf)?;
            let mut sensors = Vec::new();
            for _ in 0..n {
                let name = codec::take_str(buf)?;
                let kind = sensor_kind_from(codec::take_u8(buf)?)?;
                sensors.push(Sensor { name, kind });
            }
            let n = codec::take_varint(buf)?;
            let mut redundancy = Vec::new();
            for _ in 0..n {
                let kind = sensor_kind_from(codec::take_u8(buf)?)?;
                let group = take_str_list(buf)?;
                redundancy.push(RedundancyGroup {
                    kind,
                    sensors: group,
                });
            }
            let env_sensors = take_str_list(buf)?;
            ControlEvent::MachineUp {
                machine,
                sensors,
                redundancy,
                env_sensors,
            }
        }
        EV_JOB_START => {
            let machine = codec::take_str(buf)?;
            let job = codec::take_str(buf)?;
            let start = codec::take_u64(buf)?;
            let n = codec::take_varint(buf)?;
            let mut names = Vec::new();
            for _ in 0..n {
                names.push(codec::take_str(buf)?);
            }
            let mut values = Vec::new();
            for _ in 0..n {
                values.push(codec::take_f64(buf)?);
            }
            ControlEvent::JobStart {
                machine,
                job,
                start,
                config: JobConfig { names, values },
            }
        }
        EV_PHASE_START => {
            let machine = codec::take_str(buf)?;
            let kind = phase_kind_from(codec::take_u8(buf)?)?;
            let sensors = take_str_list(buf)?;
            ControlEvent::PhaseStart {
                machine,
                kind,
                sensors,
            }
        }
        EV_JOB_COMPLETE => {
            let machine = codec::take_str(buf)?;
            let n = codec::take_varint(buf)?;
            let mut names = Vec::new();
            for _ in 0..n {
                names.push(codec::take_str(buf)?);
            }
            let mut values = Vec::new();
            for _ in 0..n {
                values.push(codec::take_f64(buf)?);
            }
            let passed = match codec::take_u8(buf)? {
                0 => false,
                1 => true,
                _ => return None,
            };
            ControlEvent::JobComplete {
                machine,
                caq: CaqResult {
                    names,
                    values,
                    passed,
                },
            }
        }
        _ => return None,
    };
    buf.is_empty().then_some(event)
}
