//! # hierod-stream
//!
//! Streaming ingestion and **online hierarchical detection**: the paper
//! frames hierarchical outlier detection as continuous monitoring of a
//! live plant, and this crate turns the batch engine into that always-on
//! pipeline.
//!
//! * [`ring`] — dependency-free bounded SPSC ring buffers: the per-sensor
//!   transport, lock-free on the fast path with parking backpressure, and
//!   model-checked under `--features loom`.
//! * [`watermark`] — per-sensor watermarks with bounded allowed lateness:
//!   out-of-order, late, and duplicate samples are reordered (or counted
//!   and dropped) before any scorer sees them.
//! * [`router`] — the multi-sensor ingest router: one ring per lane,
//!   drained into the detector.
//! * [`detector`] — [`StreamDetector`]: feeds per-sample phase/environment
//!   scores from [`hierod_detect::online`] scorers upward through the
//!   existing Algorithm-1 `CalcGlobalScore` propagation on watermark
//!   ticks, emitting the same ⟨global score, outlierness, support⟩
//!   triples as the batch path (the stream/batch equivalence test pins
//!   this).
//! * [`durable`] — [`DurableStream`]: wraps the detector in a
//!   [`hierod_store`] write-ahead log + columnar segment store, making
//!   every accepted sample and control event crash-durable; on restart it
//!   rebuilds the exact pre-crash detector state from segments plus the
//!   WAL tail (the fault-injection suite pins crash-equivalence).
//! * [`shard`] — multi-core scale-out: N shard-scoped detectors behind
//!   per-shard SPSC rings, keyed by a stable machine×sensor hash, merged
//!   in fixed order into one report byte-identical to the single-shard
//!   run.
//! * [`tenant`] — multi-plant tenancy: a [`PlantRegistry`] hosting N
//!   independent plants in one process, each with its own shard set and
//!   per-tenant durable directory, recovered in isolation.
//! * [`codec`] — the public value ↔ byte codecs for lanes and control
//!   events shared by the durability WAL and the network wire protocol
//!   (`hierod-wire`): both serialise the same opaque bodies, so a
//!   captured ingest stream is replayable through the store.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod codec;
pub mod detector;
pub mod durable;
pub mod ring;
pub mod router;
pub mod shard;
pub mod tenant;
pub mod watermark;

pub use detector::{
    ControlEvent, LaneStats, ScorerMode, ScorerVisitor, StreamConfig, StreamDetector, StreamReport,
    StreamStats,
};
pub use durable::{DurableRecovery, DurableStream};
pub use ring::{ring, ClosedError, Consumer, Producer, TryPushError};
pub use router::{IngestRouter, LaneId, LaneKind, Sample};
pub use shard::{shard_of, ShardEvent, ShardSet, ShardedStream, DEFAULT_SHARD_CAPACITY};
pub use tenant::{PlantRegistry, Tenant, TenantConfig, TenantRecovery};
pub use watermark::{LatenessStats, Watermark};
