//! Multi-sensor ingest: one SPSC ring per sensor lane.
//!
//! Producers (fieldbus adapters, gateway threads, the synth replay driver)
//! each own a [`Producer`] handle for their lane and push [`Sample`]s
//! concurrently; the detection side periodically drains every lane on one
//! thread. Backpressure is per-lane: a full ring blocks (or rejects, with
//! `try_push`) only its own producer, so one stalled sensor cannot corrupt
//! or reorder its neighbours.

use crate::ring::{ring, Consumer, Producer};

/// One timestamped sensor reading. 16 bytes — the wire unit of every lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Sample timestamp (the plant-wide tick domain).
    pub timestamp: u64,
    /// Measured value.
    pub value: f64,
}

/// Which hierarchy level a lane's samples belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LaneKind {
    /// A production-phase sensor (bed/chamber temperature, laser power, …);
    /// samples are routed to the machine's *current* job and phase.
    Phase,
    /// An environment sensor (room temperature, humidity); samples are
    /// routed to the machine's environment series.
    Environment,
}

/// Identifies a sensor lane: machine + sensor name + level.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LaneId {
    /// Machine (production line) id.
    pub machine: String,
    /// Sensor / series name (e.g. `"m0.bed_temp.0"`, `"m0.room_temp"`).
    pub sensor: String,
    /// Whether this is a phase or an environment stream.
    pub kind: LaneKind,
}

/// The consumer side of a set of sensor lanes.
#[derive(Default)]
pub struct IngestRouter {
    lanes: Vec<(LaneId, Consumer<Sample>)>,
}

impl IngestRouter {
    /// Creates an empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a lane with a ring of (at least) `capacity` samples,
    /// returning the producer handle to hand to the sensor's source.
    pub fn add_lane(&mut self, id: LaneId, capacity: usize) -> Producer<Sample> {
        let (tx, rx) = ring(capacity);
        self.lanes.push((id, rx));
        tx
    }

    /// Number of registered lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Whether every lane has been closed by its producer **and** drained.
    pub fn exhausted(&self) -> bool {
        self.lanes
            .iter()
            .all(|(_, rx)| rx.is_closed() && rx.is_empty())
    }

    /// Drains every lane without blocking, feeding each sample (with its
    /// lane id) to `sink`. Returns the number of samples delivered. Lanes
    /// are visited in registration order; within a lane, samples arrive in
    /// push order — cross-lane ordering is the watermark's job, not the
    /// router's.
    pub fn drain(&mut self, mut sink: impl FnMut(&LaneId, Sample)) -> usize {
        let mut delivered = 0;
        for (id, rx) in &mut self.lanes {
            while let Some(sample) = rx.try_pop() {
                sink(id, sample);
                delivered += 1;
            }
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane(machine: &str, sensor: &str, kind: LaneKind) -> LaneId {
        LaneId {
            machine: machine.into(),
            sensor: sensor.into(),
            kind,
        }
    }

    #[test]
    fn drains_all_lanes_in_registration_order() {
        let mut router = IngestRouter::new();
        let mut tx_a = router.add_lane(lane("m0", "a", LaneKind::Phase), 8);
        let mut tx_b = router.add_lane(lane("m0", "b", LaneKind::Environment), 8);
        for i in 0..3 {
            tx_a.try_push(Sample {
                timestamp: i,
                value: i as f64,
            })
            .unwrap();
        }
        tx_b.try_push(Sample {
            timestamp: 9,
            value: 9.0,
        })
        .unwrap();
        let mut seen = Vec::new();
        let n = router.drain(|id, s| seen.push((id.sensor.clone(), s.timestamp)));
        assert_eq!(n, 4);
        assert_eq!(
            seen,
            vec![
                ("a".to_string(), 0),
                ("a".to_string(), 1),
                ("a".to_string(), 2),
                ("b".to_string(), 9)
            ]
        );
    }

    #[test]
    fn exhausted_requires_close_and_drain() {
        let mut router = IngestRouter::new();
        let mut tx = router.add_lane(lane("m0", "a", LaneKind::Phase), 4);
        tx.try_push(Sample {
            timestamp: 0,
            value: 1.0,
        })
        .unwrap();
        assert!(!router.exhausted());
        drop(tx);
        assert!(!router.exhausted(), "closed but not drained");
        router.drain(|_, _| {});
        assert!(router.exhausted());
    }
}
