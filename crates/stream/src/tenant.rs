//! Multi-plant tenancy: many independent plants in one process.
//!
//! The paper's setting is a *production site* — but real deployments
//! monitor several sites from one collector. [`PlantRegistry`] lifts
//! "plant" to a first-class [`Tenant`]: each tenant owns a full
//! durable shard set ([`DurableStream`] per shard, see
//! [`crate::shard`]) rooted at its own storage directory
//! (`<root>/<plant-id>/shard-<k>/`, via
//! [`hierod_store::StorageFactory`]).
//!
//! ## Isolation contract
//!
//! Tenants never share WAL, segments, detectors, or error state:
//!
//! * [`PlantRegistry::open`] recovers every discovered tenant
//!   **independently**. A tenant whose storage is too damaged to open
//!   is parked in [`PlantRegistry::failed`] with its error — its
//!   siblings recover exactly as if it did not exist.
//! * Soft corruption (torn WAL tails, flipped bits) surfaces per
//!   tenant in that tenant's [`TenantRecovery`] counters, never in
//!   another's.
//! * All per-tenant operations route through [`PlantRegistry::tenant_mut`];
//!   there is no cross-tenant state to poison.
//!
//! ## Determinism
//!
//! A tenant's merged report is assembled across its shards in fixed
//! shard order (see [`crate::shard`]): for a given event stream it is
//! byte-identical to a single-shard, single-tenant run.
//!
//! ## Layering
//!
//! [`Tenant`] and [`PlantRegistry`] are the **engine**: raw
//! [`ControlEvent`] broadcast, routed ingest, merged tick/finish, and
//! isolated recovery. The typed plant-driving surface (machine-up /
//! job-start / phase-start / job-complete convenience calls) lives one
//! layer up, in `hierod-service`'s `PlantService` trait — the shared
//! entry point of the embedded-library path and the network path.

use std::collections::BTreeMap;
use std::io;

use hierod_core::AlgorithmPolicy;
use hierod_detect::{DetectError, Result};
use hierod_store::store::StoreOptions;
use hierod_store::tenants::{valid_tenant_id, StorageFactory};

use crate::detector::{assemble_multi, ControlEvent, StreamConfig, StreamDetector, StreamReport};
use crate::durable::{DurableRecovery, DurableStream};
use crate::router::{LaneId, Sample};
use crate::shard::shard_of;

/// Maps a storage failure into the detection error domain.
fn substrate(e: io::Error) -> DetectError {
    DetectError::Substrate(format!("tenants: {e}"))
}

/// Per-tenant configuration applied to every plant a registry hosts.
#[derive(Debug, Clone, Copy)]
pub struct TenantConfig {
    /// Shard count for **newly created** tenants. Existing tenants
    /// reopen with the shard count their directory was laid out with.
    pub shards: usize,
    /// Streaming configuration shared by every shard.
    pub stream: StreamConfig,
    /// Store tuning shared by every shard.
    pub store: StoreOptions,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            shards: 1,
            stream: StreamConfig::default(),
            store: StoreOptions::default(),
        }
    }
}

/// What reopening one tenant recovered, shard by shard.
#[derive(Debug, Clone, Default)]
pub struct TenantRecovery {
    /// Per-shard recovery detail, indexed by shard.
    pub shards: Vec<DurableRecovery>,
}

impl TenantRecovery {
    /// Highest control sequence durable on any shard (controls are
    /// broadcast, so shards can trail each other only by a crash).
    pub fn controls_applied(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.controls_applied)
            .max()
            .unwrap_or(0)
    }

    /// Samples restored from sealed segments, across all shards.
    pub fn restored_samples(&self) -> u64 {
        self.shards.iter().map(|s| s.restored_samples).sum()
    }

    /// WAL samples replayed through live ingest, across all shards.
    pub fn replayed_samples(&self) -> u64 {
        self.shards.iter().map(|s| s.replayed_samples).sum()
    }

    /// Corruption events survived, across all shards.
    pub fn corrupt_records(&self) -> u64 {
        self.shards.iter().map(|s| s.corrupt_records).sum()
    }
}

/// One plant: a durable shard set under a tenant-scoped storage root.
///
/// Controls are broadcast to every shard (each shard journals them to
/// its own WAL); samples are journalled and scored only on the shard
/// that owns their machine×sensor lane ([`shard_of`]). Reports are
/// merged across shards in fixed order, so they are byte-identical to
/// an unsharded run of the same event stream.
pub struct Tenant<S: hierod_store::Storage> {
    id: String,
    shards: Vec<DurableStream<S>>,
}

impl<S: hierod_store::Storage> Tenant<S> {
    /// The tenant id (a valid storage directory name).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Number of shards this tenant is laid out with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read-only access to the underlying durable shards.
    pub fn shards(&self) -> &[DurableStream<S>] {
        &self.shards
    }

    /// Journals and applies a control event on **every** shard, in
    /// shard order. Later shards are still driven after an earlier
    /// failure so the set never diverges structurally; the first error
    /// is returned.
    ///
    /// # Errors
    /// Storage failures as [`DetectError::Substrate`], then lifecycle
    /// errors from the detectors.
    pub fn control(&mut self, event: &ControlEvent) -> Result<()> {
        let mut first_err = None;
        for shard in &mut self.shards {
            if let Err(e) = shard.control(event) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Journals and ingests a sample on the shard owning its lane.
    ///
    /// # Errors
    /// As [`DurableStream::ingest`].
    pub fn ingest(&mut self, lane: &LaneId, sample: Sample) -> Result<()> {
        let owner = shard_of(&lane.machine, &lane.sensor, self.shards.len());
        match self.shards.get_mut(owner) {
            Some(shard) => shard.ingest(lane, sample),
            None => Err(DetectError::Missing {
                what: format!(
                    "shard {owner} of {} on tenant {}",
                    self.shards.len(),
                    self.id
                ),
            }),
        }
    }

    /// Rotates every shard's WAL into a sealed segment (see
    /// [`DurableStream::rotate`]).
    ///
    /// # Errors
    /// The first storage failure; remaining shards are still rotated.
    pub fn rotate(&mut self) -> Result<()> {
        let mut first_err = None;
        for shard in &mut self.shards {
            if let Err(e) = shard.rotate() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Current ingestion counters merged across all shards — the same
    /// totals a [`tick`](Tenant::tick) report would carry, without
    /// assembling one.
    pub fn stats(&self) -> crate::detector::StreamStats {
        let mut out = crate::detector::StreamStats::default();
        for shard in &self.shards {
            let s = shard.stats();
            out.samples_ingested += s.samples_ingested;
            out.samples_released += s.samples_released;
            out.late_dropped += s.late_dropped;
            out.duplicates_dropped += s.duplicates_dropped;
            out.series_failed += s.series_failed;
            out.corrupt_records += s.corrupt_records;
        }
        out
    }

    /// Per-lane release/drop/corruption counters merged across all
    /// shards (each lane lives on exactly one shard, so the merge is a
    /// disjoint union). This is the direct query-path accessor — callers
    /// no longer need to assemble a full report to read lane health.
    pub fn lane_stats(&self) -> BTreeMap<LaneId, crate::detector::LaneStats> {
        let mut out: BTreeMap<LaneId, crate::detector::LaneStats> = BTreeMap::new();
        for shard in &self.shards {
            for (lane, l) in shard.lane_stats() {
                let entry = out.entry(lane).or_default();
                entry.released += l.released;
                entry.late_dropped += l.late_dropped;
                entry.duplicates_dropped += l.duplicates_dropped;
                entry.corrupt_records += l.corrupt_records;
            }
        }
        out
    }

    /// Hard-commits every shard's WAL, then assembles an interim merged
    /// report in fixed shard order — every score it exposes is backed
    /// by durable input on its owning shard.
    ///
    /// # Errors
    /// Storage failures as [`DetectError::Substrate`]; upper-level
    /// detector failures as in [`crate::StreamDetector::tick`].
    pub fn tick(&mut self) -> Result<StreamReport> {
        for shard in &mut self.shards {
            shard.commit_wal()?;
        }
        let refs: Vec<&StreamDetector> = self.shards.iter().map(|s| s.detector()).collect();
        let mut report = assemble_multi(&refs)?;
        for shard in &self.shards {
            shard.patch_report(&mut report);
        }
        Ok(report)
    }

    /// Hard-commits and finalizes every shard, then assembles the final
    /// merged report — byte-identical to the unsharded run.
    ///
    /// # Errors
    /// Storage failures as [`DetectError::Substrate`]; upper-level
    /// detector failures as in [`crate::StreamDetector::finish`].
    pub fn finish(mut self) -> Result<StreamReport> {
        for shard in &mut self.shards {
            shard.finalize_pipelines()?;
        }
        let refs: Vec<&StreamDetector> = self.shards.iter().map(|s| s.detector()).collect();
        let mut report = assemble_multi(&refs)?;
        for shard in &self.shards {
            shard.patch_report(&mut report);
        }
        Ok(report)
    }
}

/// Hosts N independent plants in one process, each with its own shard
/// set and per-tenant durable directory. See the module docs for the
/// isolation contract.
pub struct PlantRegistry<F: StorageFactory> {
    factory: F,
    policy: AlgorithmPolicy,
    config: TenantConfig,
    tenants: BTreeMap<String, Tenant<F::Storage>>,
    failed: BTreeMap<String, String>,
}

fn open_tenant<F: StorageFactory>(
    factory: &F,
    policy: &AlgorithmPolicy,
    config: &TenantConfig,
    id: &str,
    shards: usize,
) -> Result<(Tenant<F::Storage>, TenantRecovery)> {
    let count = shards.max(1);
    let mut set = Vec::with_capacity(count);
    let mut recovery = TenantRecovery::default();
    for k in 0..count {
        let storage = factory.open_shard(id, k).map_err(substrate)?;
        let (shard, rec) = DurableStream::open_shard(
            policy.clone(),
            config.stream,
            storage,
            config.store,
            k,
            count,
        )?;
        set.push(shard);
        recovery.shards.push(rec);
    }
    Ok((
        Tenant {
            id: id.to_string(),
            shards: set,
        },
        recovery,
    ))
}

impl<F: StorageFactory> PlantRegistry<F> {
    /// Opens a registry over `factory`, recovering every tenant that
    /// already has storage — **each in isolation**. Tenants that fail
    /// hard to open (e.g. damaged segments) are recorded in
    /// [`PlantRegistry::failed`] and skipped; their siblings recover
    /// normally. Returns the per-tenant recovery summaries.
    ///
    /// # Errors
    /// Only on failure to enumerate tenants at all (the factory root
    /// itself is unreadable) or on policy rejection.
    pub fn open(
        factory: F,
        policy: AlgorithmPolicy,
        config: TenantConfig,
    ) -> Result<(Self, BTreeMap<String, TenantRecovery>)> {
        let ids = factory.list_tenants().map_err(substrate)?;
        let mut registry = PlantRegistry {
            factory,
            policy,
            config,
            tenants: BTreeMap::new(),
            failed: BTreeMap::new(),
        };
        let mut recoveries = BTreeMap::new();
        for id in ids {
            let shards = match registry.factory.shard_count(&id) {
                Ok(n) => n.max(1),
                Err(e) => {
                    registry.failed.insert(id, substrate(e).to_string());
                    continue;
                }
            };
            match open_tenant(
                &registry.factory,
                &registry.policy,
                &registry.config,
                &id,
                shards,
            ) {
                Ok((tenant, recovery)) => {
                    registry.tenants.insert(id.clone(), tenant);
                    recoveries.insert(id, recovery);
                }
                Err(e) => {
                    registry.failed.insert(id, e.to_string());
                }
            }
        }
        Ok((registry, recoveries))
    }

    /// Creates (and registers) a fresh tenant with
    /// [`TenantConfig::shards`] shards.
    ///
    /// # Errors
    /// Invalid tenant id, an id already live or failed, or storage /
    /// policy errors opening the shard set.
    pub fn create_tenant(&mut self, id: &str) -> Result<&mut Tenant<F::Storage>> {
        if !valid_tenant_id(id) {
            return Err(DetectError::invalid(
                "tenant",
                format!("invalid tenant id {id:?}"),
            ));
        }
        if self.tenants.contains_key(id) || self.failed.contains_key(id) {
            return Err(DetectError::invalid(
                "tenant",
                format!("tenant {id:?} already exists"),
            ));
        }
        let (tenant, _) = open_tenant(
            &self.factory,
            &self.policy,
            &self.config,
            id,
            self.config.shards,
        )?;
        Ok(self.tenants.entry(id.to_string()).or_insert(tenant))
    }

    /// Read-only access to a live tenant.
    pub fn tenant(&self, id: &str) -> Option<&Tenant<F::Storage>> {
        self.tenants.get(id)
    }

    /// Mutable access to a live tenant (ingest, controls, tick).
    pub fn tenant_mut(&mut self, id: &str) -> Option<&mut Tenant<F::Storage>> {
        self.tenants.get_mut(id)
    }

    /// Ids of all live tenants, sorted.
    pub fn tenant_ids(&self) -> Vec<&str> {
        self.tenants.keys().map(String::as_str).collect()
    }

    /// Tenants that failed hard to recover, with their errors. Their
    /// storage is left untouched for offline repair.
    pub fn failed(&self) -> &BTreeMap<String, String> {
        &self.failed
    }

    /// Removes a tenant from the registry and finalizes its merged
    /// report (see [`Tenant::finish`]).
    ///
    /// # Errors
    /// Unknown tenant id, or any shard's finalize/assemble error.
    pub fn finish_tenant(&mut self, id: &str) -> Result<StreamReport> {
        let tenant = self
            .tenants
            .remove(id)
            .ok_or_else(|| DetectError::invalid("tenant", format!("no live tenant {id:?}")))?;
        tenant.finish()
    }

    /// The storage factory (read-only; useful for fault injection in
    /// tests).
    pub fn factory(&self) -> &F {
        &self.factory
    }

    /// The algorithm policy every tenant in this registry runs with.
    /// Backfill re-detection clones it to replay stored ranges through a
    /// fresh detector.
    pub fn policy(&self) -> &AlgorithmPolicy {
        &self.policy
    }

    /// The per-tenant configuration applied to every plant.
    pub fn config(&self) -> &TenantConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::ScorerMode;
    use crate::router::LaneKind;
    use hierod_hierarchy::{CaqResult, JobConfig, PhaseKind, RedundancyGroup, Sensor, SensorKind};
    use hierod_store::tenants::MemFactory;

    fn config() -> TenantConfig {
        TenantConfig {
            shards: 2,
            stream: StreamConfig {
                lateness: 2,
                mode: ScorerMode::BatchEquivalent,
            },
            store: StoreOptions::default(),
        }
    }

    fn drive(tenant: &mut Tenant<hierod_store::MemStorage>, bias: f64) {
        let (machine, bed, room) = ("m0", "m0.bed.0", "m0.room");
        tenant
            .control(&ControlEvent::MachineUp {
                machine: machine.into(),
                sensors: vec![Sensor::new(bed, SensorKind::BedTemperature)],
                redundancy: vec![RedundancyGroup::new(
                    SensorKind::BedTemperature,
                    vec![bed.into()],
                )],
                env_sensors: vec![room.to_string()],
            })
            .unwrap();
        tenant
            .control(&ControlEvent::JobStart {
                machine: machine.into(),
                job: "j0".into(),
                start: 0,
                config: JobConfig::new(vec!["p".into()], vec![1.0]),
            })
            .unwrap();
        tenant
            .control(&ControlEvent::PhaseStart {
                machine: machine.into(),
                kind: PhaseKind::WarmUp,
                sensors: vec![bed.to_string()],
            })
            .unwrap();
        let bed_lane = LaneId {
            machine: machine.into(),
            sensor: bed.into(),
            kind: LaneKind::Phase,
        };
        let room_lane = LaneId {
            machine: machine.into(),
            sensor: room.into(),
            kind: LaneKind::Environment,
        };
        for t in 0..40_u64 {
            tenant
                .ingest(
                    &bed_lane,
                    Sample {
                        timestamp: t,
                        value: if t == 30 {
                            bias + 55.0
                        } else {
                            bias + (t as f64 * 0.3).cos()
                        },
                    },
                )
                .unwrap();
            tenant
                .ingest(
                    &room_lane,
                    Sample {
                        timestamp: t,
                        value: 20.0 + bias,
                    },
                )
                .unwrap();
        }
        tenant
            .control(&ControlEvent::JobComplete {
                machine: machine.into(),
                caq: CaqResult::new(vec!["q".into()], vec![0.9], true),
            })
            .unwrap();
    }

    #[test]
    fn registry_hosts_independent_tenants() {
        let (mut registry, recovered) =
            PlantRegistry::open(MemFactory::new(), AlgorithmPolicy::default(), config()).unwrap();
        assert!(recovered.is_empty());
        drive(registry.create_tenant("plant-a").unwrap(), 0.0);
        drive(registry.create_tenant("plant-b").unwrap(), 5.0);
        assert_eq!(registry.tenant_ids(), ["plant-a", "plant-b"]);

        let a = registry.finish_tenant("plant-a").unwrap();
        let b = registry.finish_tenant("plant-b").unwrap();
        assert_eq!(a.stats.samples_ingested, 80);
        assert_eq!(b.stats.samples_ingested, 80);
        assert_eq!(a.lane_stats.len(), 2, "phase + environment lanes");
        assert_eq!(b.lane_stats.len(), 2);
        assert!(registry.tenant_ids().is_empty());
        assert!(registry.finish_tenant("plant-a").is_err());
    }

    #[test]
    fn reopen_recovers_each_tenant_with_its_own_layout() {
        let factory = MemFactory::new();
        {
            let (mut registry, _) = PlantRegistry::open(
                factory.crash_image(true),
                AlgorithmPolicy::default(),
                config(),
            )
            .unwrap();
            drop(registry.create_tenant("solo"));
        }
        let (mut registry, _) =
            PlantRegistry::open(factory, AlgorithmPolicy::default(), config()).unwrap();
        drive(registry.create_tenant("plant-a").unwrap(), 0.0);
        let report = registry.tenant_mut("plant-a").unwrap().tick().unwrap();

        let image = registry.factory().crash_image(false);
        let (reopened, recovered) =
            PlantRegistry::open(image, AlgorithmPolicy::default(), config()).unwrap();
        assert_eq!(reopened.tenant_ids(), ["plant-a"]);
        assert!(reopened.failed().is_empty());
        let rec = &recovered["plant-a"];
        assert_eq!(rec.shards.len(), 2);
        assert_eq!(rec.restored_samples() + rec.replayed_samples(), 80);
        let tenant = reopened.tenant("plant-a").unwrap();
        assert_eq!(tenant.shard_count(), 2);
        let recovered_report = {
            let mut reopened = reopened;
            reopened.tenant_mut("plant-a").unwrap().tick().unwrap()
        };
        assert_eq!(
            format!("{report:?}"),
            format!("{recovered_report:?}"),
            "post-recovery tick matches pre-crash tick"
        );
    }

    #[test]
    fn invalid_and_duplicate_tenant_ids_are_rejected() {
        let (mut registry, _) =
            PlantRegistry::open(MemFactory::new(), AlgorithmPolicy::default(), config()).unwrap();
        assert!(registry.create_tenant("../evil").is_err());
        assert!(registry.create_tenant(".hidden").is_err());
        registry.create_tenant("plant-a").unwrap();
        assert!(registry.create_tenant("plant-a").is_err());
    }
}
