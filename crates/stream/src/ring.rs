//! Bounded single-producer / single-consumer ring buffer.
//!
//! The ingestion transport of hierod-stream: one fixed-capacity ring per
//! sensor lane. The fast path is lock-free — free-running `head`/`tail`
//! counters over a power-of-two slot array, so neither side touches a
//! mutex while the ring is neither full nor empty. The slow path parks
//! through a mutex + condvar *gate* instead of spinning: a producer hitting
//! a full ring (backpressure) or a consumer draining an empty one sleeps
//! until its peer wakes it, and closing the ring from either side wakes
//! every sleeper.
//!
//! The wake protocol is flag-then-recheck: a sleeper (a) takes the gate,
//! (b) raises its waiting flag, (c) rechecks the ring state, and only then
//! waits; the peer (a) publishes its ring-state change, then (b) checks the
//! waiting flag and, if raised, takes the gate before notifying. The
//! memory orderings are the weakest that keep this sound: `head`/`tail`
//! use the classic SPSC split — `Relaxed` on a side's own counter,
//! `Acquire` on the peer's, `Release` to publish — and `closed` is
//! `Release`/`Acquire`. The flag-vs-recheck handshake is the one place
//! that genuinely needs more: it is a store-buffering (Dekker) shape —
//! sleeper stores flag then loads ring state, waker stores ring state
//! then loads flag — and acquire/release permits *both* loads to miss,
//! which would strand the sleeper. A pair of `SeqCst` fences (one on each
//! side, between its store and its load) forbids that outcome, so the
//! flags themselves stay `Relaxed`. The loom model in `tests/loom_ring.rs`
//! explores the interleavings mechanically (its scheduler runs every
//! access `SeqCst`, so it checks the protocol logic; the nightly TSan job
//! covers the weak-memory axis).
//!
//! The waiting flag is a *wake token*, not a level: the waker clears it
//! (under the gate) as it notifies, and a sleeper re-raises it before
//! every wait. One park therefore costs one notify — without the clear,
//! the flag would stay raised from the moment the peer parks until the
//! OS actually reschedules it, and on a loaded core every operation in
//! that window would pay the gate lock and a futex wake for a peer that
//! is already runnable. Clearing cannot strand a sleeper: raise and
//! clear are both gate-serialized, so when the waker holds the gate a
//! raised flag means the sleeper is inside `wait` (it releases the gate
//! only by waiting) and the notify is guaranteed to reach it.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::{Arc, PoisonError};

#[cfg(feature = "loom")]
use loom::sync::{
    atomic::{fence, AtomicBool, AtomicUsize, Ordering},
    Condvar, Mutex,
};
#[cfg(not(feature = "loom"))]
use std::sync::{
    atomic::{fence, AtomicBool, AtomicUsize, Ordering},
    Condvar, Mutex,
};

/// Error returned by [`Producer::try_push`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The ring is full; the sample is handed back for retry (or drop —
    /// the caller owns the backpressure policy).
    Full(T),
    /// The consumer is gone or the ring was closed; the sample can never
    /// be delivered.
    Closed(T),
}

impl<T> TryPushError<T> {
    /// Recovers the sample that could not be pushed.
    pub fn into_inner(self) -> T {
        match self {
            Self::Full(v) | Self::Closed(v) => v,
        }
    }
}

/// Error returned by the blocking [`Producer::push`]: the ring closed
/// underneath the producer; the undelivered sample is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct ClosedError<T>(pub T);

struct Shared<T> {
    /// Slot array; length is a power of two.
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot to pop; written only by the consumer.
    head: AtomicUsize,
    /// Next slot to push; written only by the producer.
    tail: AtomicUsize,
    /// Sticky: set by `close()` or either handle dropping.
    closed: AtomicBool,
    /// Raised (under the gate) by a consumer about to park.
    pop_waiting: AtomicBool,
    /// Raised (under the gate) by a producer about to park.
    push_waiting: AtomicBool,
    gate: Mutex<()>,
    not_empty: Condvar,
    not_full: Condvar,
}

// SAFETY: the ring hands each `T` from exactly one thread to exactly one
// other; slots are published via the Release/Acquire head/tail protocol,
// and the single-producer/single-consumer split (unique, non-Clone handles
// with `&mut self` operations) guarantees no slot is accessed concurrently.
unsafe impl<T: Send> Send for Shared<T> {}
// SAFETY: see above — shared access is limited to the atomics and the gate.
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Shared<T> {
    fn capacity(&self) -> usize {
        self.buf.len()
    }

    fn slot(&self, pos: usize) -> &UnsafeCell<MaybeUninit<T>> {
        let idx = pos & self.mask;
        debug_assert!(idx < self.buf.len());
        // SAFETY: `mask == buf.len() - 1` with a power-of-two length, so
        // `idx` is always in bounds.
        unsafe { self.buf.get_unchecked(idx) }
    }

    /// Consumer-side emptiness recheck (called with its park fence issued:
    /// `Relaxed` loads suffice for the Dekker argument, and the actual
    /// slot read in `try_pop` re-loads `tail` with `Acquire`).
    fn is_empty_now(&self) -> bool {
        self.head.load(Ordering::Relaxed) == self.tail.load(Ordering::Relaxed)
    }

    /// Producer-side fullness recheck (same contract as `is_empty_now`).
    fn is_full_now(&self) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        tail.wrapping_sub(head) >= self.capacity()
    }

    /// Wakes a parked consumer, if the waiting flag says there may be one.
    /// Called by the producer right after its `tail` publish.
    fn wake_consumer(&self) {
        // ORDERING: store-buffering guard — the `tail` store above and the
        // flag load below must both reach the other thread or this side
        // must see the flag; acquire/release allows both loads of the
        // Dekker pair to miss. This fence pairs with the one in
        // `park_until_data` (flag store → fence → state recheck), making
        // that outcome impossible, so the flag itself stays `Relaxed`.
        fence(Ordering::SeqCst);
        if self.pop_waiting.load(Ordering::Relaxed) {
            // Taking the gate orders this notify after the waiter's
            // recheck-then-wait, closing the missed-wakeup window. The
            // token is consumed under the same gate: follow-up pushes
            // skip the wake until the consumer parks again.
            let gate = self.gate.lock().unwrap_or_else(PoisonError::into_inner);
            self.pop_waiting.store(false, Ordering::Relaxed);
            self.not_empty.notify_all();
            drop(gate);
        }
    }

    /// Wakes a parked producer once half the capacity has drained (wake
    /// hysteresis). A producer parks only on a *full* ring; waking it per
    /// pop would lock-step the two threads — one futex pair and (on a
    /// single core) one context switch per sample. Deferring the wake to
    /// the half-empty mark lets the producer refill in half-capacity
    /// bursts instead. The skipped wakes cannot be missed: while the
    /// producer is parked only this consumer moves `head`, so the
    /// threshold-crossing pop always runs this check and notifies.
    fn wake_producer(&self) {
        // ORDERING: store-buffering guard, the mirror of `wake_consumer`:
        // pairs with the fence in `park_until_space` so the `head` store
        // above and this flag load cannot both miss; the flag stays
        // `Relaxed`.
        fence(Ordering::SeqCst);
        if !self.push_waiting.load(Ordering::Relaxed) {
            return;
        }
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        if tail.wrapping_sub(head) <= self.capacity() / 2 {
            // Taking the gate orders this notify after the waiter's
            // recheck-then-wait, closing the missed-wakeup window. The
            // token is consumed under the same gate: follow-up pops
            // skip the wake until the producer parks again.
            let gate = self.gate.lock().unwrap_or_else(PoisonError::into_inner);
            self.push_waiting.store(false, Ordering::Relaxed);
            self.not_full.notify_all();
            drop(gate);
        }
    }

    fn close(&self) {
        // Release pairs with the Acquire loads in `try_push`/`pop`: a
        // consumer that observes `closed` also observes every `tail`
        // publish sequenced before the close (final-drain guarantee).
        self.closed.store(true, Ordering::Release);
        // Unconditional wake of both sides: close is rare, a spurious
        // notify is harmless, and skipping the flag check removes a race
        // to reason about.
        drop(self.gate.lock().unwrap_or_else(PoisonError::into_inner));
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Last handle gone: drain whatever the consumer never popped.
        // `&mut self` proves exclusivity (Arc's drop already fenced), so
        // Relaxed is enough here.
        let mut head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        while head != tail {
            // SAFETY: slots in `head..tail` were initialized by the
            // producer and never popped; we have exclusive ownership.
            unsafe { (*self.slot(head).get()).assume_init_drop() };
            head = head.wrapping_add(1);
        }
    }
}

/// The push side of a ring; unique (not `Clone`).
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The pop side of a ring; unique (not `Clone`).
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded SPSC ring. `capacity` is rounded up to the next power
/// of two (minimum 1).
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(1).next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(Shared {
        mask: cap - 1,
        buf,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
        pop_waiting: AtomicBool::new(false),
        push_waiting: AtomicBool::new(false),
        gate: Mutex::new(()),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Producer {
            shared: shared.clone(),
        },
        Consumer { shared },
    )
}

impl<T> Producer<T> {
    /// Pushes without blocking; `Err(Full)` applies backpressure to the
    /// caller, `Err(Closed)` means the consumer is gone.
    pub fn try_push(&mut self, value: T) -> Result<(), TryPushError<T>> {
        let s = &*self.shared;
        if s.closed.load(Ordering::Acquire) {
            return Err(TryPushError::Closed(value));
        }
        // Own counter Relaxed (only this thread writes it); Acquire on the
        // consumer's `head` so the drained slot's previous contents are
        // fully read before this side overwrites them.
        let tail = s.tail.load(Ordering::Relaxed);
        let head = s.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= s.capacity() {
            return Err(TryPushError::Full(value));
        }
        // SAFETY: `tail - head < capacity` means the consumer has drained
        // slot `tail & mask`, and only this (unique) producer writes slots.
        unsafe { (*s.slot(tail).get()).write(value) };
        // Release publishes the slot write above to the consumer's
        // Acquire load of `tail`.
        s.tail.store(tail.wrapping_add(1), Ordering::Release);
        s.wake_consumer();
        Ok(())
    }

    /// Pushes, parking on a full ring until the consumer makes room; this
    /// is the backpressure edge. `Err` hands the sample back if the ring
    /// closes while waiting.
    pub fn push(&mut self, value: T) -> Result<(), ClosedError<T>> {
        let mut value = value;
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(TryPushError::Closed(v)) => return Err(ClosedError(v)),
                Err(TryPushError::Full(v)) => {
                    value = v;
                    self.park_until_space();
                }
            }
        }
    }

    /// Parks until the ring has room or is closed. Returns with no claim:
    /// the caller retries `try_push`, which settles the outcome (the
    /// single producer is the only one who can re-fill the ring, so space
    /// observed here cannot vanish).
    fn park_until_space(&self) {
        let s = &*self.shared;
        let mut gate = s.gate.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            // Raise the wake token *before* rechecking the ring — on
            // every iteration, since a notify consumes it.
            s.push_waiting.store(true, Ordering::Relaxed);
            // ORDERING: store-buffering guard — pairs with the fence in
            // `wake_producer` (head store → fence → flag load). Without
            // it this recheck and the consumer's flag load could both
            // read stale values and the producer would sleep through its
            // wake. See the module docs.
            fence(Ordering::SeqCst);
            if !s.is_full_now() || s.closed.load(Ordering::Acquire) {
                break;
            }
            gate = s
                .not_full
                .wait(gate)
                .unwrap_or_else(PoisonError::into_inner);
        }
        s.push_waiting.store(false, Ordering::Relaxed);
    }

    /// Closes the ring: the consumer drains what is buffered, then sees
    /// end-of-stream. Dropping the producer does the same.
    pub fn close(&mut self) {
        self.shared.close();
    }

    /// Whether the consumer side is still alive.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.close();
    }
}

impl<T> Consumer<T> {
    /// Pops without blocking; `None` means currently empty (not
    /// necessarily end-of-stream — see [`Consumer::is_closed`]).
    pub fn try_pop(&mut self) -> Option<T> {
        let s = &*self.shared;
        // Own counter Relaxed; Acquire on the producer's `tail` pairs
        // with its Release publish, making the slot write visible.
        let head = s.head.load(Ordering::Relaxed);
        let tail = s.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head != tail` means the producer initialized slot
        // `head & mask` before publishing `tail`; only this (unique)
        // consumer reads slots and advances `head`.
        let value = unsafe { (*s.slot(head).get()).assume_init_read() };
        // Release hands the drained slot back to the producer's Acquire
        // load of `head`: the read above completes before the reuse.
        s.head.store(head.wrapping_add(1), Ordering::Release);
        s.wake_producer();
        Some(value)
    }

    /// Pops, parking on an empty ring until a sample arrives; `None` only
    /// after the ring is closed *and* fully drained.
    pub fn pop(&mut self) -> Option<T> {
        loop {
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            self.park_until_data();
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            if self.shared.closed.load(Ordering::Acquire) {
                // Closed and the drain above found nothing: a producer
                // publishes strictly before closing, and this Acquire
                // pairs with close()'s Release, so every pre-close
                // publish is visible to the final drain below.
                return self.try_pop();
            }
        }
    }

    /// Parks until the ring is non-empty or closed.
    fn park_until_data(&self) {
        let s = &*self.shared;
        let mut gate = s.gate.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            // Raise the wake token *before* rechecking the ring — on
            // every iteration, since a notify consumes it.
            s.pop_waiting.store(true, Ordering::Relaxed);
            // ORDERING: store-buffering guard — pairs with the fence in
            // `wake_consumer` (tail store → fence → flag load); without
            // it this recheck and the producer's flag load could both
            // read stale values and the consumer would sleep through
            // its wake. See the module docs.
            fence(Ordering::SeqCst);
            if !s.is_empty_now() || s.closed.load(Ordering::Acquire) {
                break;
            }
            gate = s
                .not_empty
                .wait(gate)
                .unwrap_or_else(PoisonError::into_inner);
        }
        s.pop_waiting.store(false, Ordering::Relaxed);
    }

    /// Closes the ring from the consumer side: the producer's next push
    /// fails instead of blocking forever. Dropping the consumer does the
    /// same.
    pub fn close(&mut self) {
        self.shared.close();
    }

    /// Whether the ring has been closed (buffered samples may remain).
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Buffered sample count (a racy snapshot; exact only once closed).
    pub fn len(&self) -> usize {
        let head = self.shared.head.load(Ordering::Relaxed);
        let tail = self.shared.tail.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Whether the buffer is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut tx, mut rx) = ring::<u32>(4);
        for i in 0..4 {
            tx.try_push(i).unwrap();
        }
        assert!(matches!(tx.try_push(99), Err(TryPushError::Full(99))));
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (mut tx, rx) = ring::<u8>(5);
        for i in 0..8 {
            tx.try_push(i).unwrap();
        }
        assert!(matches!(tx.try_push(9), Err(TryPushError::Full(9))));
        assert_eq!(rx.len(), 8);
    }

    #[test]
    fn close_drains_then_ends() {
        let (mut tx, mut rx) = ring::<u32>(4);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        tx.close();
        assert!(matches!(tx.try_push(3), Err(TryPushError::Closed(3))));
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn dropping_consumer_fails_pushes() {
        let (mut tx, rx) = ring::<u32>(4);
        drop(rx);
        assert!(matches!(tx.push(7), Err(ClosedError(7))));
    }

    #[test]
    fn dropping_producer_ends_stream() {
        let (mut tx, mut rx) = ring::<u32>(4);
        tx.try_push(5).unwrap();
        drop(tx);
        assert_eq!(rx.pop(), Some(5));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn unpopped_values_are_dropped_with_the_ring() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, rx) = ring::<Tracked>(4);
        tx.try_push(Tracked).unwrap();
        tx.try_push(Tracked).unwrap();
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn cross_thread_stream_with_backpressure() {
        let (mut tx, mut rx) = ring::<u64>(8);
        let n: u64 = 10_000;
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                tx.push(i).expect("consumer alive");
            }
        });
        let mut expected = 0;
        while let Some(v) = rx.pop() {
            assert_eq!(v, expected);
            expected += 1;
        }
        assert_eq!(expected, n);
        producer.join().expect("producer");
    }

    #[test]
    fn blocked_producer_unblocks_on_close() {
        let (mut tx, mut rx) = ring::<u32>(1);
        tx.try_push(0).unwrap();
        let producer = std::thread::spawn(move || tx.push(1));
        // Give the producer a moment to park, then close without popping.
        std::thread::sleep(std::time::Duration::from_millis(20));
        rx.close();
        assert_eq!(producer.join().expect("join"), Err(ClosedError(1)));
        assert_eq!(rx.pop(), Some(0));
        assert_eq!(rx.pop(), None);
    }
}
