//! [`DurableStream`]: crash-durable online detection.
//!
//! Wraps a [`StreamDetector`] in a [`hierod_store::Store`] so that every
//! accepted sample and every control event is journalled to a
//! write-ahead log **before** it mutates detector state. On restart,
//! [`DurableStream::open`] rebuilds the exact pre-crash detector from
//! the sealed segments plus the WAL tail — the fault-injection suite
//! pins *write-crash-recover ≡ no-crash*.
//!
//! ## Journal-at-offer-time
//!
//! * A **control event** (machine up, job start, phase start, job
//!   complete) is encoded, appended, and fsynced before it is applied.
//!   If the application fails (lifecycle violation), the record stays in
//!   the WAL and the replay repeats the same failure deterministically —
//!   a rejected control has no effect either way.
//! * A **sample** is journalled before [`StreamDetector::ingest`] runs,
//!   under the store's group-commit batching. A sample the detector then
//!   rejects (no open pipeline) is replayed and re-rejected identically.
//! * [`DurableStream::tick`] and [`DurableStream::finish`] hard-commit
//!   the WAL first, so any score ever exposed to a caller is backed by
//!   durable input.
//!
//! ## Rotation and recovery
//!
//! [`DurableStream::rotate`] seals everything *released* so far into an
//! immutable columnar segment: per-pipeline chunks (the unsealed suffix
//! of released history plus the absolute drop counters), the control
//! events journalled since the last rotation, and every lane
//! declaration. Samples still buffered in watermarks are carried over
//! as the opening records of the next WAL.
//!
//! Recovery replays segments in order — within one segment, controls
//! and chunks merge by sequence number, each chunk landing in the
//! pipeline whose opening control matches its `after_control_seq` — and
//! then replays the WAL tail through the ordinary ingest path. The
//! watermark rewind plus re-offered carry-over samples reconstruct the
//! reorder buffers exactly.
//!
//! ## Exactly-once resume
//!
//! [`DurableStream::delivered`] and [`DurableStream::controls_applied`]
//! tell a reconnecting client how much of its stream survived the
//! crash: resend lane samples from the delivered index and controls
//! with higher sequence numbers, and the merged stream is gap-free
//! without double-applying anything that was already durable.

use std::collections::BTreeMap;
use std::io;

use hierod_core::AlgorithmPolicy;
use hierod_detect::{DetectError, Result};
use hierod_hierarchy::{CaqResult, JobConfig, PhaseKind, RedundancyGroup, Sensor};
use hierod_store::segment::{ControlRecord, LaneDef, SegmentChunk, SegmentDraft};
use hierod_store::storage::Storage;
use hierod_store::store::{RecoveryStats, Store, StoreOptions};
use hierod_store::wal::WalRecord;

use crate::codec::{decode_control, decode_lane, encode_control, encode_lane};
use crate::detector::{
    ControlEvent, LaneStats, StreamConfig, StreamDetector, StreamReport, StreamStats,
};
use crate::router::{IngestRouter, LaneId, Sample};

/// Maps a storage failure into the detection error domain.
fn substrate(e: io::Error) -> DetectError {
    DetectError::Substrate(format!("store: {e}"))
}

/// Stamps every pipeline the control `seq` just opened. Pipelines only
/// come into existence through control events, so "untagged" means
/// "created by the event that was just applied".
fn tag_new_pipelines(inner: &mut StreamDetector, seq: u64) {
    for slot in inner.pipelines_mut() {
        if slot.pipe.opened_seq.is_none() {
            slot.pipe.opened_seq = Some(seq);
        }
    }
}

/// What [`DurableStream::open`] rebuilt and repaired.
#[derive(Debug, Clone, Default)]
pub struct DurableRecovery {
    /// Highest control sequence number found durable (segments + WAL).
    /// A resuming client resends controls with higher sequence numbers.
    pub controls_applied: u64,
    /// Samples restored from sealed segment chunks (released or dropped
    /// before the last rotation).
    pub restored_samples: u64,
    /// WAL sample records replayed through the live ingest path.
    pub replayed_samples: u64,
    /// Corruption events survived (a damaged WAL tail truncated at the
    /// first bad record counts once).
    pub corrupt_records: u64,
    /// Low-level store repair accounting.
    pub store: RecoveryStats,
}

/// A [`StreamDetector`] whose inputs are crash-durable: WAL + columnar
/// segments underneath, identical detection semantics on top. See the
/// module docs for the journaling and recovery contract.
pub struct DurableStream<S: Storage> {
    inner: StreamDetector,
    store: Store<S>,
    /// Lane metadata by store-local lane number (`None` only for numbers
    /// a damaged def left unbound).
    lanes: Vec<Option<LaneId>>,
    lane_index: BTreeMap<LaneId, u32>,
    next_seq: u64,
    delivered: BTreeMap<LaneId, u64>,
    /// Controls journalled to the active WAL, owed to the next segment.
    unsealed_controls: Vec<ControlRecord>,
    corrupt_records: u64,
    corrupt_by_lane: BTreeMap<LaneId, u64>,
}

fn bind_lane(lanes: &mut Vec<Option<LaneId>>, lane: u32, meta: &[u8]) {
    let Some(id) = decode_lane(meta) else { return };
    let idx = lane as usize;
    if lanes.len() <= idx {
        lanes.resize(idx + 1, None);
    }
    if let Some(slot) = lanes.get_mut(idx) {
        *slot = Some(id);
    }
}

impl<S: Storage> DurableStream<S> {
    /// Opens (or recovers) a durable detector on `storage`.
    ///
    /// An empty directory starts a fresh stream. Otherwise every sealed
    /// segment is decoded and replayed — controls and chunks merged in
    /// sequence order — and the WAL tail (truncated at its first
    /// corrupt record, if any) is re-ingested through the ordinary
    /// paths, leaving the detector in exactly the state the last
    /// durable write observed.
    ///
    /// # Errors
    /// Storage failures and segment damage (segments are fully
    /// checksummed; unlike the append-path WAL they are never silently
    /// truncated) surface as [`DetectError::Substrate`]; policy
    /// rejection as in [`StreamDetector::new`].
    pub fn open(
        policy: AlgorithmPolicy,
        config: StreamConfig,
        storage: S,
        options: StoreOptions,
    ) -> Result<(Self, DurableRecovery)> {
        Self::open_with(policy, config, storage, options, None)
    }

    /// Opens (or recovers) shard `index` of a set of `count` durable
    /// detectors — see [`StreamDetector::new_shard`]. Each shard journals
    /// to its **own** storage: its WAL carries the broadcast control
    /// events plus only the samples of lanes it owns, so shard recoveries
    /// are fully independent of each other.
    ///
    /// # Errors
    /// As [`DurableStream::open`], plus `index >= count`.
    pub fn open_shard(
        policy: AlgorithmPolicy,
        config: StreamConfig,
        storage: S,
        options: StoreOptions,
        index: usize,
        count: usize,
    ) -> Result<(Self, DurableRecovery)> {
        if index >= count {
            return Err(DetectError::invalid(
                "shard",
                format!("shard index {index} out of range for {count} shards"),
            ));
        }
        Self::open_with(policy, config, storage, options, Some((index, count)))
    }

    fn open_with(
        policy: AlgorithmPolicy,
        config: StreamConfig,
        storage: S,
        options: StoreOptions,
        shard: Option<(usize, usize)>,
    ) -> Result<(Self, DurableRecovery)> {
        let (store, recovered) = Store::open(storage, options).map_err(substrate)?;
        let mut inner = match shard {
            None => StreamDetector::new(policy, config)?,
            Some((index, count)) => StreamDetector::new_shard(policy, config, index, count)?,
        };
        let mut lanes: Vec<Option<LaneId>> = Vec::new();
        let mut next_seq = 1_u64;
        let mut delivered: BTreeMap<LaneId, u64> = BTreeMap::new();
        let mut restored_samples = 0_u64;
        let mut replayed_samples = 0_u64;

        for seg in &recovered.segments {
            for def in &seg.lane_defs {
                bind_lane(&mut lanes, def.lane, &def.meta);
            }
            // Merge controls and chunks back into the order they were
            // journalled: a chunk sorts directly after the control that
            // opened its pipeline and before any later control (which
            // may close that pipeline again).
            enum Item<'a> {
                Control(&'a ControlRecord),
                Chunk(&'a hierod_store::segment::DecodedChunk),
            }
            let mut items: Vec<(u64, u8, Item)> = Vec::new();
            for c in &seg.controls {
                items.push((c.seq, 0, Item::Control(c)));
            }
            for ch in &seg.chunks {
                items.push((ch.after_control_seq, 1, Item::Chunk(ch)));
            }
            items.sort_by_key(|&(seq, order, _)| (seq, order));
            for (_, _, item) in items {
                match item {
                    Item::Control(c) => {
                        next_seq = next_seq.max(c.seq.saturating_add(1));
                        if let Some(event) = decode_control(&c.payload) {
                            if inner.apply(&event).is_ok() {
                                tag_new_pipelines(&mut inner, c.seq);
                            }
                        }
                    }
                    Item::Chunk(ch) => {
                        let Some(id) = lanes
                            .get(ch.lane as usize)
                            .and_then(|slot| slot.as_ref())
                            .cloned()
                        else {
                            continue;
                        };
                        let mut adjustment = None;
                        for slot in inner.pipelines_mut() {
                            if slot.machine == id.machine
                                && slot.sensor == id.sensor
                                && slot.kind == id.kind
                                && slot.pipe.opened_seq == Some(ch.after_control_seq)
                            {
                                let before = slot.pipe.watermark.stats();
                                slot.pipe.restore_chunk(
                                    &ch.timestamps,
                                    &ch.values,
                                    ch.late_dropped,
                                    ch.duplicates_dropped,
                                );
                                // Counters in the chunk are absolute;
                                // the offer-time credit is this chunk's
                                // increment over the previous one.
                                let late =
                                    ch.late_dropped.saturating_sub(before.late_dropped as u64);
                                let dups = ch
                                    .duplicates_dropped
                                    .saturating_sub(before.duplicates_dropped as u64);
                                adjustment = Some(ch.timestamps.len() as u64 + late + dups);
                                break;
                            }
                        }
                        if let Some(adj) = adjustment {
                            inner.add_recovered_ingested(adj);
                            restored_samples += ch.timestamps.len() as u64;
                            *delivered.entry(id).or_insert(0) += adj;
                        }
                    }
                }
            }
        }

        let mut unsealed_controls = Vec::new();
        for record in &recovered.wal {
            match record {
                WalRecord::LaneDef { lane, meta } => bind_lane(&mut lanes, *lane, meta),
                WalRecord::Control { seq, payload } => {
                    next_seq = next_seq.max(seq.saturating_add(1));
                    unsealed_controls.push(ControlRecord {
                        seq: *seq,
                        payload: payload.clone(),
                    });
                    if let Some(event) = decode_control(payload) {
                        if inner.apply(&event).is_ok() {
                            tag_new_pipelines(&mut inner, *seq);
                        }
                    }
                }
                WalRecord::Sample {
                    lane,
                    timestamp,
                    value,
                } => {
                    let Some(id) = lanes
                        .get(*lane as usize)
                        .and_then(|slot| slot.as_ref())
                        .cloned()
                    else {
                        continue;
                    };
                    replayed_samples += 1;
                    *delivered.entry(id.clone()).or_insert(0) += 1;
                    // A sample the pre-crash detector rejected is
                    // re-rejected here with the same error; either way
                    // it was journalled, so it counts as delivered.
                    let _ = inner.ingest(
                        &id,
                        Sample {
                            timestamp: *timestamp,
                            value: *value,
                        },
                    );
                }
            }
        }

        let mut corrupt_by_lane = BTreeMap::new();
        let corrupt_records = match &recovered.stats.corruption {
            Some(c) => {
                if let Some(id) = c
                    .lane
                    .and_then(|n| lanes.get(n as usize).and_then(|slot| slot.as_ref()))
                {
                    corrupt_by_lane.insert(id.clone(), 1_u64);
                }
                1
            }
            None => 0,
        };

        let mut lane_index = BTreeMap::new();
        for (idx, id) in lanes.iter().enumerate() {
            if let Some(id) = id {
                lane_index.insert(id.clone(), idx as u32);
            }
        }
        let recovery = DurableRecovery {
            controls_applied: next_seq - 1,
            restored_samples,
            replayed_samples,
            corrupt_records,
            store: recovered.stats,
        };
        Ok((
            Self {
                inner,
                store,
                lanes,
                lane_index,
                next_seq,
                delivered,
                unsealed_controls,
                corrupt_records,
                corrupt_by_lane,
            },
            recovery,
        ))
    }

    /// Interns a lane number without journalling (rotation publishes
    /// every definition in the segment footer anyway).
    fn intern_lane(&mut self, id: &LaneId) -> u32 {
        if let Some(&n) = self.lane_index.get(id) {
            return n;
        }
        let n = self.lanes.len() as u32;
        self.lanes.push(Some(id.clone()));
        self.lane_index.insert(id.clone(), n);
        n
    }

    /// Lane number for the sample path: first use journals a
    /// [`WalRecord::LaneDef`] ahead of the sample that references it.
    fn lane_no(&mut self, id: &LaneId) -> Result<u32> {
        if let Some(&n) = self.lane_index.get(id) {
            return Ok(n);
        }
        let n = self.lanes.len() as u32;
        self.store
            .append(&WalRecord::LaneDef {
                lane: n,
                meta: encode_lane(id),
            })
            .map_err(substrate)?;
        Ok(self.intern_lane(id))
    }

    /// Journals and fsyncs a control payload, assigning its sequence
    /// number. Controls are never batched: a lifecycle event must be
    /// durable before the state machine moves.
    fn journal_control(&mut self, payload: Vec<u8>) -> Result<u64> {
        let seq = self.next_seq;
        self.store
            .append(&WalRecord::Control {
                seq,
                payload: payload.clone(),
            })
            .map_err(substrate)?;
        self.store.commit().map_err(substrate)?;
        self.unsealed_controls.push(ControlRecord { seq, payload });
        self.next_seq = seq.saturating_add(1);
        Ok(seq)
    }

    /// Journals (fsynced) and applies one control event — the value-form
    /// entry point the tenant registry and shard broadcast use.
    ///
    /// # Errors
    /// Storage failures as [`DetectError::Substrate`], then the inner
    /// detector's lifecycle errors.
    pub fn control(&mut self, event: &ControlEvent) -> Result<()> {
        let seq = self.journal_control(encode_control(event))?;
        let result = self.inner.apply(event);
        if result.is_ok() {
            tag_new_pipelines(&mut self.inner, seq);
        }
        result
    }

    /// Durable [`StreamDetector::machine_up`].
    ///
    /// # Errors
    /// Storage failures as [`DetectError::Substrate`], then the inner
    /// detector's lifecycle errors.
    pub fn machine_up(
        &mut self,
        machine: &str,
        sensors: Vec<Sensor>,
        redundancy: Vec<RedundancyGroup>,
        env_sensors: &[String],
    ) -> Result<()> {
        self.control(&ControlEvent::MachineUp {
            machine: machine.to_string(),
            sensors,
            redundancy,
            env_sensors: env_sensors.to_vec(),
        })
    }

    /// Durable [`StreamDetector::job_start`].
    ///
    /// # Errors
    /// Storage failures as [`DetectError::Substrate`], then the inner
    /// detector's lifecycle errors.
    pub fn job_start(
        &mut self,
        machine: &str,
        job: &str,
        start: u64,
        config: JobConfig,
    ) -> Result<()> {
        self.control(&ControlEvent::JobStart {
            machine: machine.to_string(),
            job: job.to_string(),
            start,
            config,
        })
    }

    /// Durable [`StreamDetector::phase_start`].
    ///
    /// # Errors
    /// Storage failures as [`DetectError::Substrate`], then the inner
    /// detector's lifecycle errors.
    pub fn phase_start(
        &mut self,
        machine: &str,
        kind: PhaseKind,
        sensors: &[String],
    ) -> Result<()> {
        self.control(&ControlEvent::PhaseStart {
            machine: machine.to_string(),
            kind,
            sensors: sensors.to_vec(),
        })
    }

    /// Durable [`StreamDetector::job_complete`].
    ///
    /// # Errors
    /// Storage failures as [`DetectError::Substrate`], then the inner
    /// detector's lifecycle errors.
    pub fn job_complete(&mut self, machine: &str, caq: CaqResult) -> Result<()> {
        self.control(&ControlEvent::JobComplete {
            machine: machine.to_string(),
            caq,
        })
    }

    /// Durable [`StreamDetector::ingest`]: the sample is journalled
    /// (group-committed) before the detector sees it, so a crash never
    /// loses an accepted sample that a later fsync covered.
    ///
    /// # Errors
    /// Storage failures as [`DetectError::Substrate`]; routing errors
    /// from the inner detector (the sample is journalled regardless —
    /// replay repeats the rejection).
    pub fn ingest(&mut self, lane: &LaneId, sample: Sample) -> Result<()> {
        let n = self.lane_no(lane)?;
        self.store
            .append(&WalRecord::Sample {
                lane: n,
                timestamp: sample.timestamp,
                value: sample.value,
            })
            .map_err(substrate)?;
        *self.delivered.entry(lane.clone()).or_insert(0) += 1;
        self.inner.ingest(lane, sample)
    }

    /// Durable [`StreamDetector::drain`].
    ///
    /// # Errors
    /// The first journaling or routing error; remaining samples of the
    /// pass are still consumed so producers are never wedged.
    pub fn drain(&mut self, router: &mut IngestRouter) -> Result<usize> {
        let mut first_err = None;
        let n = router.drain(|lane, sample| {
            if let Err(e) = self.ingest(lane, sample) {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok(n),
        }
    }

    /// Hard-commits the WAL, then assembles an interim report — every
    /// score it exposes is backed by durable input.
    ///
    /// # Errors
    /// Storage failures as [`DetectError::Substrate`]; upper-level
    /// detector failures as in [`StreamDetector::tick`].
    pub fn tick(&mut self) -> Result<StreamReport> {
        self.store.commit().map_err(substrate)?;
        let mut report = self.inner.tick()?;
        self.patch_report(&mut report);
        Ok(report)
    }

    /// Hard-commits the WAL, then finalizes every pipeline and
    /// assembles the final report.
    ///
    /// # Errors
    /// Storage failures as [`DetectError::Substrate`]; upper-level
    /// detector failures as in [`StreamDetector::finish`].
    pub fn finish(mut self) -> Result<StreamReport> {
        self.store.commit().map_err(substrate)?;
        let corrupt = self.corrupt_records;
        let by_lane = std::mem::take(&mut self.corrupt_by_lane);
        let mut report = self.inner.finish()?;
        report.stats.corrupt_records = corrupt;
        for (lane, n) in by_lane {
            report.lane_stats.entry(lane).or_default().corrupt_records = n;
        }
        Ok(report)
    }

    /// Seals everything released so far into an immutable columnar
    /// segment and starts a fresh WAL whose opening records are the
    /// samples still buffered in watermarks. Call between jobs (or on a
    /// size trigger) to bound WAL replay time; recovery cost after this
    /// is segment decoding plus the short new tail.
    ///
    /// # Errors
    /// Storage failures as [`DetectError::Substrate`]. On error the
    /// store is still on the old WAL and nothing is lost.
    pub fn rotate(&mut self) -> Result<()> {
        struct Sealed {
            id: LaneId,
            after: u64,
            timestamps: Vec<u64>,
            values: Vec<f64>,
            late: u64,
            dups: u64,
        }
        let mut sealed = Vec::new();
        let mut pending: Vec<(LaneId, u64, f64)> = Vec::new();
        for slot in self.inner.pipelines_mut() {
            let id = LaneId {
                machine: slot.machine.to_string(),
                sensor: slot.sensor.to_string(),
                kind: slot.kind,
            };
            let stats = slot.pipe.watermark.stats();
            if slot.pipe.timestamps.len() > slot.pipe.sealed || stats != slot.pipe.sealed_stats {
                sealed.push(Sealed {
                    id: id.clone(),
                    after: slot.pipe.opened_seq.unwrap_or(0),
                    timestamps: slot
                        .pipe
                        .timestamps
                        .get(slot.pipe.sealed..)
                        .unwrap_or(&[])
                        .to_vec(),
                    values: slot
                        .pipe
                        .values
                        .get(slot.pipe.sealed..)
                        .unwrap_or(&[])
                        .to_vec(),
                    late: stats.late_dropped as u64,
                    dups: stats.duplicates_dropped as u64,
                });
                slot.pipe.sealed = slot.pipe.timestamps.len();
                slot.pipe.sealed_stats = stats;
            }
            for (t, v) in slot.pipe.watermark.pending_samples() {
                pending.push((id.clone(), t, v));
            }
        }
        let mut draft = SegmentDraft {
            controls: std::mem::take(&mut self.unsealed_controls),
            ..SegmentDraft::default()
        };
        for s in sealed {
            let lane = self.intern_lane(&s.id);
            draft.chunks.push(SegmentChunk {
                lane,
                after_control_seq: s.after,
                timestamps: s.timestamps,
                values: s.values,
                late_dropped: s.late,
                duplicates_dropped: s.dups,
            });
        }
        let mut carry = Vec::new();
        for (id, timestamp, value) in pending {
            let lane = self.intern_lane(&id);
            carry.push(WalRecord::Sample {
                lane,
                timestamp,
                value,
            });
        }
        for (idx, id) in self.lanes.iter().enumerate() {
            if let Some(id) = id {
                draft.lane_defs.push(LaneDef {
                    lane: idx as u32,
                    meta: encode_lane(id),
                });
            }
        }
        self.store.rotate(&draft, &carry).map_err(substrate)
    }

    /// Folds this stream's recovery corruption counters into `report`.
    /// Accumulating (`+=`) so a merged multi-shard report can be patched
    /// by every shard in turn — shard lane sets are disjoint.
    pub(crate) fn patch_report(&self, report: &mut StreamReport) {
        report.stats.corrupt_records += self.corrupt_records;
        for (lane, &n) in &self.corrupt_by_lane {
            report
                .lane_stats
                .entry(lane.clone())
                .or_default()
                .corrupt_records += n;
        }
    }

    /// Hard-commits the WAL so everything journalled is durable.
    pub(crate) fn commit_wal(&mut self) -> Result<()> {
        self.store.commit().map_err(substrate)
    }

    /// Hard-commits the WAL, then flushes every watermark and finishes
    /// every scorer — the per-shard half of a merged multi-shard finish
    /// (the tenant layer assembles across shards afterwards).
    pub(crate) fn finalize_pipelines(&mut self) -> Result<()> {
        self.commit_wal()?;
        self.inner.finalize_pipelines();
        Ok(())
    }

    /// Current counters, with recovery corruption folded in.
    pub fn stats(&self) -> StreamStats {
        let mut stats = self.inner.stats();
        stats.corrupt_records = self.corrupt_records;
        stats
    }

    /// Per-lane release/drop counters with recovery corruption folded
    /// in — the live query surface: unlike walking a [`StreamReport`],
    /// this never runs detection, so operators can poll it cheaply.
    pub fn lane_stats(&self) -> BTreeMap<LaneId, LaneStats> {
        let mut out = self.inner.lane_stats();
        for (lane, &n) in &self.corrupt_by_lane {
            out.entry(lane.clone()).or_default().corrupt_records += n;
        }
        out
    }

    /// Per-lane count of samples made durable (journalled, whether or
    /// not the detector accepted them). A resuming client resends each
    /// lane's stream starting at this index.
    pub fn delivered(&self) -> &BTreeMap<LaneId, u64> {
        &self.delivered
    }

    /// Highest control sequence number journalled so far; a resuming
    /// client resends controls with higher sequence numbers.
    pub fn controls_applied(&self) -> u64 {
        self.next_seq - 1
    }

    /// The wrapped in-memory detector (read-only).
    pub fn detector(&self) -> &StreamDetector {
        &self.inner
    }

    /// Mutable access to the wrapped detector — the `hierod-adapt` hook
    /// for installing scorer wrappers and swapping pipeline scorers at
    /// tick boundaries (see DESIGN.md §4.19).
    ///
    /// Scorer-level mutation only: scorers are *derived* state, rebuilt
    /// deterministically on recovery from the journalled inputs, so
    /// replacing one does not touch the durability contract. Driving
    /// lifecycle methods directly on the returned detector (instead of
    /// through [`DurableStream::control`]) would bypass the WAL and must
    /// not be done.
    pub fn detector_mut(&mut self) -> &mut StreamDetector {
        &mut self.inner
    }

    /// The underlying store (read-only; exposes WAL index and storage).
    pub fn store(&self) -> &Store<S> {
        &self.store
    }

    /// Hands the sealed half of the store to the history tier: the
    /// backing storage plus the first *unsealed* index (the active
    /// WAL's). Every rotation segment below that index is immutable, so
    /// a compactor may merge and retire them through this handle while
    /// the stream keeps writing — the two sides never touch the same
    /// file.
    pub fn sealed_storage(&self) -> (&S, u64) {
        (self.store.storage(), self.store.wal_index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::ScorerMode;
    use crate::router::LaneKind;
    use hierod_hierarchy::SensorKind;
    use hierod_store::MemStorage;

    fn lane(machine: &str, sensor: &str, kind: LaneKind) -> LaneId {
        LaneId {
            machine: machine.into(),
            sensor: sensor.into(),
            kind,
        }
    }

    #[test]
    fn lane_codec_round_trips() {
        for kind in [LaneKind::Phase, LaneKind::Environment] {
            let id = lane("m0", "m0.bed.0", kind);
            assert_eq!(decode_lane(&encode_lane(&id)), Some(id));
        }
        assert_eq!(decode_lane(&[9]), None);
        assert_eq!(decode_lane(&[]), None);
    }

    #[test]
    fn control_codec_round_trips() {
        let events = vec![
            ControlEvent::MachineUp {
                machine: "m0".into(),
                sensors: vec![Sensor::new("m0.bed.0", SensorKind::BedTemperature)],
                redundancy: vec![RedundancyGroup::new(
                    SensorKind::BedTemperature,
                    vec!["m0.bed.0".into()],
                )],
                env_sensors: vec!["m0.room".into()],
            },
            ControlEvent::JobStart {
                machine: "m0".into(),
                job: "j0".into(),
                start: 17,
                config: JobConfig::new(vec!["speed".into()], vec![1.25]),
            },
            ControlEvent::PhaseStart {
                machine: "m0".into(),
                kind: PhaseKind::Printing,
                sensors: vec!["m0.bed.0".into(), "m0.laser".into()],
            },
            ControlEvent::JobComplete {
                machine: "m0".into(),
                caq: CaqResult::new(vec!["q".into()], vec![0.5], false),
            },
        ];
        for ev in &events {
            let bytes = encode_control(ev);
            let back = decode_control(&bytes).expect("decode");
            assert_eq!(encode_control(&back), bytes, "re-encode is identity");
        }
        // Every truncation of a valid payload is rejected, never panics.
        let bytes = encode_control(events.first().unwrap());
        for cut in 0..bytes.len() {
            assert!(decode_control(&bytes[..cut]).is_none(), "cut {cut}");
        }
    }

    fn policy_and_config() -> (AlgorithmPolicy, StreamConfig) {
        (
            AlgorithmPolicy::default(),
            StreamConfig {
                lateness: 2,
                mode: ScorerMode::BatchEquivalent,
            },
        )
    }

    fn run_scenario(d: &mut DurableStream<MemStorage>, rotate_mid: bool) {
        let (machine, bed, room) = ("m0", "m0.bed.0", "m0.room");
        d.machine_up(
            machine,
            vec![Sensor::new(bed, SensorKind::BedTemperature)],
            vec![RedundancyGroup::new(
                SensorKind::BedTemperature,
                vec![bed.into()],
            )],
            &[room.to_string()],
        )
        .unwrap();
        d.job_start(
            machine,
            "j0",
            0,
            JobConfig::new(vec!["p".into()], vec![1.0]),
        )
        .unwrap();
        d.phase_start(machine, PhaseKind::WarmUp, &[bed.to_string()])
            .unwrap();
        let bed_lane = lane(machine, bed, LaneKind::Phase);
        let room_lane = lane(machine, room, LaneKind::Environment);
        for t in 0..48_u64 {
            let v = if t == 30 {
                55.0
            } else {
                (t as f64 * 0.3).cos()
            };
            d.ingest(
                &bed_lane,
                Sample {
                    timestamp: t,
                    value: v,
                },
            )
            .unwrap();
            if t % 2 == 0 {
                d.ingest(
                    &room_lane,
                    Sample {
                        timestamp: t,
                        value: 20.0 + (t as f64 * 0.1).sin(),
                    },
                )
                .unwrap();
            }
        }
        if rotate_mid {
            d.rotate().unwrap();
        }
        d.job_complete(machine, CaqResult::new(vec!["q".into()], vec![0.97], true))
            .unwrap();
    }

    #[test]
    fn clean_restart_rebuilds_identical_report() {
        for rotate_mid in [false, true] {
            let storage = MemStorage::new();
            let (policy, config) = policy_and_config();
            let (mut d, _) =
                DurableStream::open(policy, config, storage.clone(), StoreOptions::default())
                    .unwrap();
            run_scenario(&mut d, rotate_mid);
            let baseline = d.tick().unwrap();
            let delivered = d.delivered().clone();
            let controls = d.controls_applied();
            drop(d);

            // Reopen on the synced image (commit happened in tick()).
            let image = storage.crash_image(false);
            let (policy, config) = policy_and_config();
            let (d2, recovery) =
                DurableStream::open(policy, config, image, StoreOptions::default()).unwrap();
            assert_eq!(d2.controls_applied(), controls);
            assert_eq!(d2.delivered(), &delivered);
            assert_eq!(recovery.corrupt_records, 0);
            let report = d2.finish().unwrap();
            let baseline_final = {
                // The baseline detector above was only ticked; finish the
                // same scenario in one uninterrupted life for comparison.
                let (policy, config) = policy_and_config();
                let (mut d3, _) =
                    DurableStream::open(policy, config, MemStorage::new(), StoreOptions::default())
                        .unwrap();
                run_scenario(&mut d3, rotate_mid);
                d3.finish().unwrap()
            };
            assert_eq!(
                report.stats, baseline_final.stats,
                "rotate_mid={rotate_mid}"
            );
            assert_eq!(
                report.lane_stats, baseline_final.lane_stats,
                "rotate_mid={rotate_mid}"
            );
            assert_eq!(
                format!("{:?}", report.report),
                format!("{:?}", baseline_final.report),
                "rotate_mid={rotate_mid}"
            );
            drop(baseline);
        }
    }

    #[test]
    fn recovery_reports_progress_counters() {
        let storage = MemStorage::new();
        let (policy, config) = policy_and_config();
        let (mut d, fresh) =
            DurableStream::open(policy, config, storage.clone(), StoreOptions::default()).unwrap();
        assert_eq!(fresh.controls_applied, 0);
        assert_eq!(fresh.restored_samples + fresh.replayed_samples, 0);
        run_scenario(&mut d, true);
        d.tick().unwrap();
        drop(d);

        let image = storage.crash_image(false);
        let (policy, config) = policy_and_config();
        let (_, recovery) =
            DurableStream::open(policy, config, image, StoreOptions::default()).unwrap();
        assert!(recovery.restored_samples > 0, "rotation sealed chunks");
        assert_eq!(
            recovery.restored_samples + recovery.replayed_samples,
            48 + 24,
            "every journalled sample is accounted for"
        );
        assert_eq!(recovery.controls_applied, 4);
    }

    #[test]
    fn journalled_but_rejected_samples_replay_deterministically() {
        let storage = MemStorage::new();
        let (policy, config) = policy_and_config();
        let (mut d, _) =
            DurableStream::open(policy, config, storage.clone(), StoreOptions::default()).unwrap();
        d.machine_up("m0", vec![], vec![], &["m0.room".to_string()])
            .unwrap();
        // Phase lane with no open phase: journalled, then rejected.
        let bad = lane("m0", "m0.bed.0", LaneKind::Phase);
        assert!(d
            .ingest(
                &bad,
                Sample {
                    timestamp: 0,
                    value: 1.0
                }
            )
            .is_err());
        assert_eq!(d.delivered().get(&bad), Some(&1));
        d.tick().unwrap();
        drop(d);

        let image = storage.crash_image(false);
        let (policy, config) = policy_and_config();
        let (d2, recovery) =
            DurableStream::open(policy, config, image, StoreOptions::default()).unwrap();
        assert_eq!(recovery.replayed_samples, 1);
        assert_eq!(d2.delivered().get(&bad), Some(&1));
        assert_eq!(d2.stats().samples_ingested, 0, "rejection replayed");
    }
}
