//! [`StreamDetector`]: online hierarchical detection over ingested samples.
//!
//! The driver consumes two interleaved inputs:
//!
//! * **Control events** — machine/job/phase lifecycle calls
//!   ([`StreamDetector::machine_up`], [`StreamDetector::job_start`],
//!   [`StreamDetector::phase_start`], [`StreamDetector::job_complete`])
//!   that mirror the production process structure of the paper's Fig. 2.
//! * **Samples** — per-sensor readings arriving through [`IngestRouter`]
//!   lanes ([`StreamDetector::drain`]) or directly
//!   ([`StreamDetector::ingest`]).
//!
//! Each open (machine, job, phase, sensor) series and each environment
//! sensor gets its own **pipeline**: a [`Watermark`] reorder stage feeding
//! an [`OnlineScorer`]. Control events apply to samples ingested *after*
//! the call, so callers must drain the router at phase boundaries (the
//! synth replay and the equivalence test follow this contract).
//!
//! On a [`StreamDetector::tick`] or at [`StreamDetector::finish`], the
//! detector materializes a [`Plant`] from everything released so far,
//! turns the pipelines' per-sample scores into phase/environment
//! [`LevelDetections`] through the *same* `emit_series` thresholding path
//! the batch engine uses, runs the upper levels (job, production line,
//! production) on the materialized plant, and propagates everything
//! through Algorithm 1's `CalcGlobalScore` — yielding the same
//! ⟨global score, outlierness, support⟩ triples as a batch run.
//!
//! ## Scorer modes
//!
//! * [`ScorerMode::BatchEquivalent`] wraps the policy's engine scorer in a
//!   full-history [`WindowedBatch`]: per-series raw scores are
//!   bit-identical to batch, at O(series) memory. Scores appear when a
//!   series closes (phase boundary / finish).
//! * [`ScorerMode::Incremental`] uses true per-sample scorers
//!   ([`IncrementalAr`], [`RollingRobustZ`], hopping [`WindowedBatch`]
//!   fallback): bounded memory and immediate scores, approximating batch.

use std::collections::BTreeMap;

use hierod_core::detect_level::{detect_level, emit_series, LevelDetections};
use hierod_core::pipeline::build_report;
use hierod_core::{AlgorithmPolicy, HierReport, PhaseChoice, PointAlgo};
use hierod_detect::engine;
use hierod_detect::online::{
    IncrementalAr, OnlineScorer, RollingRobustZ, ScoredPoint, WindowedBatch,
};
use hierod_detect::{DetectError, Result};
use hierod_hierarchy::{
    CaqResult, Environment, Job, JobConfig, Level, LevelView, Phase, PhaseKind, Plant,
    ProductionLine, RedundancyGroup, Sensor, SeriesAt,
};
use hierod_timeseries::TimeSeries;
use std::sync::Arc;

use crate::router::{IngestRouter, LaneId, LaneKind, Sample};
use crate::watermark::{LatenessStats, Watermark};

/// How phase/environment series are scored online.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScorerMode {
    /// Full-history [`WindowedBatch`] around the policy's engine scorer:
    /// raw scores bit-identical to the batch pipeline (the equivalence
    /// test pins this), O(series) memory per open series.
    BatchEquivalent,
    /// True incremental scorers with bounded memory: AR choices run
    /// [`IncrementalAr`], sliding/robust z-choices run [`RollingRobustZ`],
    /// everything else falls back to a hopping [`WindowedBatch`].
    Incremental,
    /// [`Incremental`](ScorerMode::Incremental) scorers, each passed
    /// through the detector's scorer wrapper (see
    /// [`StreamDetector::set_scorer_wrapper`]) so an adaptive layer — the
    /// `hierod-adapt` drift monitors — can interpose on every pipeline.
    /// With no wrapper installed this mode scores identically to
    /// `Incremental`.
    Adaptive,
}

/// Configuration of a [`StreamDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Allowed lateness (ticks) per sensor watermark; `0` means in-order
    /// streams release immediately and any out-of-order sample is dropped.
    pub lateness: u64,
    /// Online scoring mode.
    pub mode: ScorerMode,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            lateness: 0,
            mode: ScorerMode::BatchEquivalent,
        }
    }
}

/// Ingestion counters of a [`StreamDetector`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Samples accepted by [`StreamDetector::ingest`].
    pub samples_ingested: u64,
    /// Samples released by watermarks into scorers.
    pub samples_released: u64,
    /// Samples dropped as late (behind a passed watermark).
    pub late_dropped: u64,
    /// Samples dropped as duplicate timestamps.
    pub duplicates_dropped: u64,
    /// Series whose scorer failed (skipped in detections, like batch skips
    /// unscorable series).
    pub series_failed: u64,
    /// WAL records rejected as corrupt during recovery (always 0 for a
    /// purely in-memory detector; the durable wrapper fills it in).
    pub corrupt_records: u64,
    /// Drift events emitted by adaptive scorer wrappers (always 0 outside
    /// [`ScorerMode::Adaptive`]).
    pub drift_events: u64,
    /// Scorer refits performed by adaptive scorer wrappers (always 0
    /// outside [`ScorerMode::Adaptive`]).
    pub refits: u64,
}

/// Per-lane ingestion counters, keyed by [`LaneId`] in [`StreamReport`].
/// Unlike the aggregate [`StreamStats`], these survive recovery
/// round-trips individually — the crash-equivalence tests assert them
/// lane by lane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Samples released by this lane's watermarks into scorers.
    pub released: u64,
    /// Samples dropped as late on this lane.
    pub late_dropped: u64,
    /// Samples dropped as duplicates on this lane.
    pub duplicates_dropped: u64,
    /// WAL records for this lane rejected as corrupt during recovery.
    pub corrupt_records: u64,
    /// Drift events emitted on this lane by adaptive scorer wrappers.
    pub drift_events: u64,
    /// Scorer refits performed on this lane by adaptive scorer wrappers.
    pub refits: u64,
}

/// The output of a tick or finish: per-level detections plus the
/// Algorithm-1 report with ⟨global score, outlierness, support⟩ triples.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Detections per level, same shape as the batch
    /// [`detect_all_levels`](hierod_core::detect_all_levels).
    pub detections: BTreeMap<Level, LevelDetections>,
    /// The hierarchical report (triples + measurement-error warnings).
    pub report: HierReport,
    /// Ingestion counters at assembly time.
    pub stats: StreamStats,
    /// Per-lane release/drop counters at assembly time. A lane appears
    /// once any pipeline has opened for it; counters aggregate across all
    /// phases and jobs the lane fed.
    pub lane_stats: BTreeMap<LaneId, LaneStats>,
}

/// One machine/job/phase lifecycle event in value form — the common
/// currency of the durability WAL, the shard runtime (controls are
/// broadcast to every shard so all shard detectors hold congruent
/// skeletons), and the tenant registry.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlEvent {
    /// A machine comes online with its sensor inventory.
    MachineUp {
        /// Machine identifier.
        machine: String,
        /// Full sensor inventory.
        sensors: Vec<Sensor>,
        /// Redundancy groups over those sensors.
        redundancy: Vec<RedundancyGroup>,
        /// Ambient sensors sampled outside any job.
        env_sensors: Vec<String>,
    },
    /// A job starts with its configuration vector.
    JobStart {
        /// Machine identifier.
        machine: String,
        /// Job identifier.
        job: String,
        /// First tick of the job.
        start: u64,
        /// Configuration the operator submitted.
        config: JobConfig,
    },
    /// A phase begins; subsequent phase samples belong to it.
    PhaseStart {
        /// Machine identifier.
        machine: String,
        /// Which of the five phases.
        kind: PhaseKind,
        /// The sensors that will report during this phase.
        sensors: Vec<String>,
    },
    /// The machine's open job is closed with its CAQ result.
    JobComplete {
        /// Machine identifier.
        machine: String,
        /// Computer-aided quality result for the finished part.
        caq: CaqResult,
    },
}

/// A mutable view of one open pipeline with its lane coordinates —
/// the durability layer walks these to seal chunks and tag pipelines
/// with the control sequence that opened them.
pub(crate) struct PipeSlot<'a> {
    pub(crate) machine: &'a str,
    pub(crate) sensor: &'a str,
    pub(crate) kind: LaneKind,
    pub(crate) pipe: &'a mut Pipeline,
}

/// One sensor stream's online scoring state: watermark reorder buffer,
/// the scorer, and the released/scored history.
pub(crate) struct Pipeline {
    pub(crate) watermark: Watermark,
    scorer: Box<dyn OnlineScorer>,
    pub(crate) timestamps: Vec<u64>,
    pub(crate) values: Vec<f64>,
    scored: Vec<ScoredPoint>,
    failed: bool,
    finished: bool,
    /// How many released samples have already been sealed into a segment
    /// (durability layer); samples beyond this index still live only in
    /// the WAL and must be re-emitted on the next rotation.
    pub(crate) sealed: usize,
    /// Drop counters at the last seal — a rotation emits a chunk whenever
    /// the live counters moved past these, even with no new releases.
    pub(crate) sealed_stats: LatenessStats,
    /// Sequence number of the control event that opened this pipeline
    /// (`None` until the durability layer tags it). Recovery matches
    /// restored chunks to pipelines through this tag.
    pub(crate) opened_seq: Option<u64>,
}

impl Pipeline {
    fn new(lateness: u64, scorer: Box<dyn OnlineScorer>) -> Self {
        Self {
            watermark: Watermark::new(lateness),
            scorer,
            timestamps: Vec::new(),
            values: Vec::new(),
            scored: Vec::new(),
            failed: false,
            finished: false,
            sealed: 0,
            sealed_stats: LatenessStats::default(),
            opened_seq: None,
        }
    }

    /// Restores a sealed chunk of released history: the samples flow into
    /// the history and scorer exactly as their original releases did, then
    /// the watermark rewinds to the recovered frontier (`floor = max
    /// restored timestamp`) with the chunk's absolute drop counters.
    /// Re-offering the journalled carry-over samples afterwards (ascending
    /// timestamps, all above the floor) rebuilds the pre-crash watermark
    /// state exactly. Only valid on a fresh pipeline or directly after a
    /// previous `restore_chunk`.
    pub(crate) fn restore_chunk(
        &mut self,
        timestamps: &[u64],
        values: &[f64],
        late: u64,
        dups: u64,
    ) {
        for (&t, &v) in timestamps.iter().zip(values.iter()) {
            self.timestamps.push(t);
            self.values.push(v);
            if !self.failed && self.scorer.push(t, v, &mut self.scored).is_err() {
                self.failed = true;
            }
        }
        let stats = LatenessStats {
            late_dropped: late as usize,
            duplicates_dropped: dups as usize,
        };
        self.watermark
            .restore_state(self.timestamps.last().copied(), stats);
        self.sealed = self.timestamps.len();
        self.sealed_stats = stats;
    }

    /// Offers one sample; everything the watermark releases flows into the
    /// history and the scorer. A scorer error poisons the series (it will
    /// be skipped at assembly, mirroring the batch skip of unscorable
    /// series).
    fn offer(&mut self, ts: u64, value: f64, scratch: &mut Vec<(u64, f64)>) {
        scratch.clear();
        self.watermark.offer(ts, value, scratch);
        self.absorb_released(scratch);
    }

    /// Flushes the watermark and finishes the scorer (phase boundary or
    /// end of stream).
    fn finish(&mut self, scratch: &mut Vec<(u64, f64)>) {
        if self.finished {
            return;
        }
        scratch.clear();
        self.watermark.flush(scratch);
        self.absorb_released(scratch);
        if !self.failed && self.scorer.finish(&mut self.scored).is_err() {
            self.failed = true;
        }
        self.finished = true;
    }

    fn absorb_released(&mut self, released: &[(u64, f64)]) {
        for &(t, v) in released {
            self.timestamps.push(t);
            self.values.push(v);
            if !self.failed && self.scorer.push(t, v, &mut self.scored).is_err() {
                self.failed = true;
            }
        }
    }

    /// The released history as a series, when non-degenerate.
    fn series(&self, name: &str) -> Option<TimeSeries> {
        TimeSeries::new(name, self.timestamps.clone(), self.values.clone()).ok()
    }
}

/// One executed (or executing) phase: its kind and per-sensor pipeline
/// slots in declaration order (which is the plant's series order, so the
/// materialized view ordering matches batch). A slot is `None` when the
/// sensor's lane hashes to a different shard: every shard keeps the full
/// declaration skeleton — same machines, jobs, phases, and slot order —
/// and owns only the pipelines of its own lanes, which is what makes the
/// fixed-order shard merge structurally trivial and deterministic.
struct PhaseState {
    kind: PhaseKind,
    pipes: Vec<(String, Option<Pipeline>)>,
}

/// One job's event-sourced state; `caq: None` marks it still open.
struct JobState {
    id: String,
    start: u64,
    config: JobConfig,
    phases: Vec<PhaseState>,
    caq: Option<CaqResult>,
}

/// One machine's event-sourced state.
struct MachineState {
    sensors: Vec<Sensor>,
    redundancy: Vec<RedundancyGroup>,
    jobs: Vec<JobState>,
    /// Environment pipeline slots, continuous across jobs, in declaration
    /// order; `None` for lanes owned by a different shard.
    env: Vec<(String, Option<Pipeline>)>,
}

impl MachineState {
    fn open_job_mut(&mut self) -> Option<&mut JobState> {
        self.jobs.last_mut().filter(|j| j.caq.is_none())
    }
}

/// The streaming counterpart of
/// [`find_hierarchical_outliers`](hierod_core::find_hierarchical_outliers):
/// event-sourced plant state plus per-sensor online scoring pipelines.
/// See the module docs for the driving contract.
pub struct StreamDetector {
    policy: AlgorithmPolicy,
    config: StreamConfig,
    phase_algo: PointAlgo,
    /// `Some((index, count))` when this detector is one shard of a set:
    /// it applies every control event (keeping the skeleton congruent
    /// with its siblings) but opens pipelines only for lanes whose
    /// machine×sensor hash lands on `index`.
    shard: Option<(usize, usize)>,
    /// Machines in arrival order (plant line order).
    machines: Vec<(String, MachineState)>,
    scratch: Vec<(u64, f64)>,
    samples_ingested: u64,
    /// Wrapper applied to every scorer built under
    /// [`ScorerMode::Adaptive`] (e.g. the `hierod-adapt` drift monitor).
    /// Lives outside [`StreamConfig`] so the config stays `Copy`.
    scorer_wrapper: Option<Arc<ScorerWrapper>>,
}

/// A hook turning a freshly built incremental scorer into its adaptive
/// wrapper. Receives the lane kind so environment and phase lanes can be
/// wrapped differently.
pub type ScorerWrapper =
    dyn Fn(LaneKind, Box<dyn OnlineScorer>) -> Box<dyn OnlineScorer> + Send + Sync;

/// The visitor for [`StreamDetector::visit_scorers`]: machine, sensor,
/// lane kind, and the replaceable scorer slot.
pub type ScorerVisitor<'a> = dyn FnMut(&str, &str, LaneKind, &mut Box<dyn OnlineScorer>) + 'a;

impl StreamDetector {
    /// Creates a detector for the given policy.
    ///
    /// # Errors
    /// Rejects [`PhaseChoice::ProfileAcrossJobs`] — profiles are learned
    /// across completed jobs and have no per-sample online form; use the
    /// batch pipeline for profile mode.
    pub fn new(policy: AlgorithmPolicy, config: StreamConfig) -> Result<Self> {
        Self::with_shard(policy, config, None)
    }

    /// Creates shard `index` of a set of `count` detectors: structurally
    /// identical to [`StreamDetector::new`] but only lanes with
    /// [`shard_of(machine, sensor, count)`](crate::shard::shard_of)` ==
    /// index` get pipelines. Control events must be broadcast to every
    /// shard of the set, in the same order.
    ///
    /// # Errors
    /// As [`StreamDetector::new`], plus `index >= count`.
    pub fn new_shard(
        policy: AlgorithmPolicy,
        config: StreamConfig,
        index: usize,
        count: usize,
    ) -> Result<Self> {
        if index >= count {
            return Err(DetectError::invalid(
                "shard",
                format!("shard index {index} out of range for {count} shards"),
            ));
        }
        Self::with_shard(policy, config, Some((index, count)))
    }

    fn with_shard(
        policy: AlgorithmPolicy,
        config: StreamConfig,
        shard: Option<(usize, usize)>,
    ) -> Result<Self> {
        let PhaseChoice::PerSeries(phase_algo) = policy.phase else {
            return Err(DetectError::invalid(
                "policy.phase",
                "ProfileAcrossJobs is not streamable per-series; use batch detection",
            ));
        };
        Ok(Self {
            policy,
            config,
            phase_algo,
            shard,
            machines: Vec::new(),
            scratch: Vec::new(),
            samples_ingested: 0,
            scorer_wrapper: None,
        })
    }

    /// Installs the wrapper applied to every scorer built under
    /// [`ScorerMode::Adaptive`]. Only pipelines opened *after* the call
    /// are wrapped — install before driving control events (the adapt
    /// layer re-wraps existing pipelines through
    /// [`visit_scorers`](Self::visit_scorers) when attaching late).
    pub fn set_scorer_wrapper(&mut self, wrapper: Arc<ScorerWrapper>) {
        self.scorer_wrapper = Some(wrapper);
    }

    /// Visits every open pipeline's scorer with its lane coordinates, in
    /// plant order — the adapt layer's swap point for store-driven refits.
    /// Replacing the scorer box mid-stream changes future scores only;
    /// already-emitted points are kept (the commit-point rules in
    /// DESIGN.md §4.19 restrict swaps to tick boundaries).
    pub fn visit_scorers(&mut self, f: &mut ScorerVisitor<'_>) {
        for slot in self.pipelines_mut() {
            if !slot.pipe.finished && !slot.pipe.failed {
                f(slot.machine, slot.sensor, slot.kind, &mut slot.pipe.scorer);
            }
        }
    }

    /// Builds a fresh (unwrapped) scorer for a lane of the given kind
    /// under the configured mode — what a refit uses to rebuild a
    /// pipeline's model through the registry before re-warming it from
    /// history.
    ///
    /// # Errors
    /// Propagates registry construction failures.
    pub fn build_lane_scorer(&self, kind: LaneKind) -> Result<Box<dyn OnlineScorer>> {
        let algo = match kind {
            LaneKind::Environment => self.policy.environment,
            LaneKind::Phase => self.phase_algo,
        };
        self.build_bare_scorer(algo)
    }

    /// Whether this detector owns the pipeline of `machine`×`sensor`
    /// (always true for an unsharded detector).
    fn owns(&self, machine: &str, sensor: &str) -> bool {
        match self.shard {
            None => true,
            Some((index, count)) => crate::shard::shard_of(machine, sensor, count) == index,
        }
    }

    /// Applies one lifecycle event in value form — the dispatch used by
    /// the durability WAL replay, the shard broadcast path, and the
    /// tenant registry.
    ///
    /// # Errors
    /// As the corresponding lifecycle method.
    pub fn apply(&mut self, event: &ControlEvent) -> Result<()> {
        match event {
            ControlEvent::MachineUp {
                machine,
                sensors,
                redundancy,
                env_sensors,
            } => self.machine_up(machine, sensors.clone(), redundancy.clone(), env_sensors),
            ControlEvent::JobStart {
                machine,
                job,
                start,
                config,
            } => self.job_start(machine, job, *start, config.clone()),
            ControlEvent::PhaseStart {
                machine,
                kind,
                sensors,
            } => self.phase_start(machine, *kind, sensors),
            ControlEvent::JobComplete { machine, caq } => self.job_complete(machine, caq.clone()),
        }
    }

    /// Registers a machine: its sensor inventory, redundancy groups (the
    /// support computation needs them), and environment sensors, whose
    /// pipelines open immediately and stay open until finish.
    ///
    /// # Errors
    /// Rejects a machine id registered twice, and propagates scorer
    /// construction failures for the environment pipelines.
    pub fn machine_up(
        &mut self,
        machine: &str,
        sensors: Vec<Sensor>,
        redundancy: Vec<RedundancyGroup>,
        env_sensors: &[String],
    ) -> Result<()> {
        if self.machines.iter().any(|(id, _)| id == machine) {
            return Err(DetectError::invalid(
                "machine",
                format!("machine {machine} already registered"),
            ));
        }
        let mut env = Vec::with_capacity(env_sensors.len());
        for name in env_sensors {
            let pipe = if self.owns(machine, name) {
                let scorer = self.build_scorer(self.policy.environment, LaneKind::Environment)?;
                Some(Pipeline::new(self.config.lateness, scorer))
            } else {
                None
            };
            env.push((name.clone(), pipe));
        }
        self.machines.push((
            machine.to_string(),
            MachineState {
                sensors,
                redundancy,
                jobs: Vec::new(),
                env,
            },
        ));
        Ok(())
    }

    /// Opens a job on a machine. The previous job must have been completed.
    ///
    /// # Errors
    /// [`DetectError::Missing`] for an unregistered machine; invalid when
    /// the machine still has an open job.
    pub fn job_start(
        &mut self,
        machine: &str,
        job: &str,
        start: u64,
        config: JobConfig,
    ) -> Result<()> {
        let m = self.machine_mut(machine)?;
        if m.open_job_mut().is_some() {
            return Err(DetectError::invalid(
                "job",
                format!("machine {machine} already has an open job"),
            ));
        }
        m.jobs.push(JobState {
            id: job.to_string(),
            start,
            config,
            phases: Vec::new(),
            caq: None,
        });
        Ok(())
    }

    /// Opens a phase within the machine's open job, finalizing the
    /// previous phase's pipelines (their watermarks flush and their
    /// scorers finish — drain the router first so no sample of the old
    /// phase is still in flight).
    ///
    /// # Errors
    /// [`DetectError::Missing`] without a registered machine or open job;
    /// propagates scorer construction failures.
    pub fn phase_start(
        &mut self,
        machine: &str,
        kind: PhaseKind,
        sensors: &[String],
    ) -> Result<()> {
        let mut pipes = Vec::with_capacity(sensors.len());
        for name in sensors {
            let pipe = if self.owns(machine, name) {
                let scorer = self.build_scorer(self.phase_algo, LaneKind::Phase)?;
                Some(Pipeline::new(self.config.lateness, scorer))
            } else {
                None
            };
            pipes.push((name.clone(), pipe));
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = (|| {
            let m = self.machine_mut(machine)?;
            let Some(job) = m.open_job_mut() else {
                return Err(DetectError::Missing {
                    what: format!("open job on machine {machine}"),
                });
            };
            if let Some(prev) = job.phases.last_mut() {
                for pipe in prev.pipes.iter_mut().filter_map(|(_, p)| p.as_mut()) {
                    pipe.finish(&mut scratch);
                }
            }
            job.phases.push(PhaseState { kind, pipes });
            Ok(())
        })();
        self.scratch = scratch;
        result
    }

    /// Completes the machine's open job with its CAQ result, finalizing
    /// the last phase's pipelines.
    ///
    /// # Errors
    /// [`DetectError::Missing`] without a registered machine or open job.
    pub fn job_complete(&mut self, machine: &str, caq: CaqResult) -> Result<()> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = (|| {
            let m = self.machine_mut(machine)?;
            let Some(job) = m.open_job_mut() else {
                return Err(DetectError::Missing {
                    what: format!("open job on machine {machine}"),
                });
            };
            if let Some(last) = job.phases.last_mut() {
                for pipe in last.pipes.iter_mut().filter_map(|(_, p)| p.as_mut()) {
                    pipe.finish(&mut scratch);
                }
            }
            job.caq = Some(caq);
            Ok(())
        })();
        self.scratch = scratch;
        result
    }

    /// Routes one sample into its pipeline: phase lanes go to the current
    /// open phase of the machine's open job, environment lanes to the
    /// machine's continuous environment pipeline.
    ///
    /// # Errors
    /// [`DetectError::Missing`] when no pipeline is open for the lane.
    pub fn ingest(&mut self, lane: &LaneId, sample: Sample) -> Result<()> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = self.ingest_inner(lane, sample, &mut scratch);
        self.scratch = scratch;
        result
    }

    fn ingest_inner(
        &mut self,
        lane: &LaneId,
        sample: Sample,
        scratch: &mut Vec<(u64, f64)>,
    ) -> Result<()> {
        let Some(m) = self
            .machines
            .iter_mut()
            .find(|(id, _)| *id == lane.machine)
            .map(|(_, m)| m)
        else {
            return Err(DetectError::Missing {
                what: format!("machine {} for lane {}", lane.machine, lane.sensor),
            });
        };
        let pipe = match lane.kind {
            LaneKind::Environment => m
                .env
                .iter_mut()
                .find(|(n, _)| *n == lane.sensor)
                .and_then(|(_, p)| p.as_mut()),
            LaneKind::Phase => m
                .open_job_mut()
                .and_then(|j| j.phases.last_mut())
                .and_then(|p| {
                    p.pipes
                        .iter_mut()
                        .find(|(n, _)| *n == lane.sensor)
                        .and_then(|(_, p)| p.as_mut())
                }),
        };
        let Some(pipe) = pipe else {
            return Err(DetectError::Missing {
                what: format!("open pipeline for lane {}", lane.sensor),
            });
        };
        pipe.offer(sample.timestamp, sample.value, scratch);
        self.samples_ingested += 1;
        Ok(())
    }

    /// Drains every lane of the router into the detector, returning how
    /// many samples were routed.
    ///
    /// # Errors
    /// The first routing error (remaining samples of that drain pass are
    /// still consumed from the rings, so producers are never wedged).
    pub fn drain(&mut self, router: &mut IngestRouter) -> Result<usize> {
        let mut first_err = None;
        let n = router.drain(|lane, sample| {
            if let Err(e) = self.ingest(lane, sample) {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok(n),
        }
    }

    /// Current ingestion counters.
    pub fn stats(&self) -> StreamStats {
        let mut stats = StreamStats {
            samples_ingested: self.samples_ingested,
            ..StreamStats::default()
        };
        let mut tally = |pipe: &Pipeline| {
            stats.samples_released += pipe.timestamps.len() as u64;
            let w = pipe.watermark.stats();
            stats.late_dropped += w.late_dropped as u64;
            stats.duplicates_dropped += w.duplicates_dropped as u64;
            if pipe.failed {
                stats.series_failed += 1;
            }
            stats.drift_events += pipe.scorer.drift_events();
            stats.refits += pipe.scorer.refits();
        };
        for (_, m) in &self.machines {
            for pipe in m.env.iter().filter_map(|(_, p)| p.as_ref()) {
                tally(pipe);
            }
            for job in &m.jobs {
                for phase in &job.phases {
                    for pipe in phase.pipes.iter().filter_map(|(_, p)| p.as_ref()) {
                        tally(pipe);
                    }
                }
            }
        }
        stats
    }

    /// Per-lane release/drop counters, aggregated over every pipeline
    /// (open or closed) the lane ever fed.
    pub fn lane_stats(&self) -> BTreeMap<LaneId, LaneStats> {
        let mut out: BTreeMap<LaneId, LaneStats> = BTreeMap::new();
        let mut tally = |machine: &str, sensor: &str, kind: LaneKind, pipe: &Pipeline| {
            let entry = out
                .entry(LaneId {
                    machine: machine.to_string(),
                    sensor: sensor.to_string(),
                    kind,
                })
                .or_default();
            entry.released += pipe.timestamps.len() as u64;
            let w = pipe.watermark.stats();
            entry.late_dropped += w.late_dropped as u64;
            entry.duplicates_dropped += w.duplicates_dropped as u64;
            entry.drift_events += pipe.scorer.drift_events();
            entry.refits += pipe.scorer.refits();
        };
        for (machine, m) in &self.machines {
            for (name, pipe) in m.env.iter().filter_map(|(n, p)| Some((n, p.as_ref()?))) {
                tally(machine, name, LaneKind::Environment, pipe);
            }
            for job in &m.jobs {
                for phase in &job.phases {
                    for (name, pipe) in phase
                        .pipes
                        .iter()
                        .filter_map(|(n, p)| Some((n, p.as_ref()?)))
                    {
                        tally(machine, name, LaneKind::Phase, pipe);
                    }
                }
            }
        }
        out
    }

    /// Every open-or-closed pipeline with its lane coordinates, in plant
    /// order: each machine's environment pipelines first, then its jobs'
    /// phases in execution order. The durability layer iterates this to
    /// seal rotation chunks and to tag/restore pipelines.
    pub(crate) fn pipelines_mut(&mut self) -> Vec<PipeSlot<'_>> {
        let mut slots = Vec::new();
        for (machine, m) in self.machines.iter_mut() {
            for (name, pipe) in m.env.iter_mut().filter_map(|(n, p)| Some((n, p.as_mut()?))) {
                slots.push(PipeSlot {
                    machine,
                    sensor: name,
                    kind: LaneKind::Environment,
                    pipe,
                });
            }
            for job in m.jobs.iter_mut() {
                for phase in job.phases.iter_mut() {
                    for (name, pipe) in phase
                        .pipes
                        .iter_mut()
                        .filter_map(|(n, p)| Some((n, p.as_mut()?)))
                    {
                        slots.push(PipeSlot {
                            machine,
                            sensor: name,
                            kind: LaneKind::Phase,
                            pipe,
                        });
                    }
                }
            }
        }
        slots
    }

    /// Credits samples that were ingested before a crash and restored from
    /// sealed segments (their releases and drops are rebuilt by
    /// [`Pipeline::restore_chunk`], but the offer-time counter lives here).
    pub(crate) fn add_recovered_ingested(&mut self, n: u64) {
        self.samples_ingested += n;
    }

    /// Assembles an interim report from everything released so far:
    /// completed jobs are materialized, their phase scores thresholded,
    /// the upper levels re-evaluated, and Algorithm 1's propagation run.
    /// In [`ScorerMode::BatchEquivalent`], a series' scores exist only
    /// once its phase closed; [`ScorerMode::Incremental`] scores appear
    /// per sample.
    ///
    /// # Errors
    /// Propagates upper-level detector failures.
    pub fn tick(&self) -> Result<StreamReport> {
        self.assemble()
    }

    /// Flushes every watermark, finishes every scorer, and assembles the
    /// final report. Environment pipelines and any still-open phases are
    /// finalized here.
    ///
    /// # Errors
    /// Propagates upper-level detector failures.
    pub fn finish(mut self) -> Result<StreamReport> {
        self.finalize_pipelines();
        self.assemble()
    }

    /// Flushes every watermark and finishes every scorer without
    /// assembling. The shard runtime runs this per shard (through the
    /// detect `TaskPool`) before the merged assembly.
    pub(crate) fn finalize_pipelines(&mut self) {
        let mut scratch = std::mem::take(&mut self.scratch);
        for (_, m) in self.machines.iter_mut() {
            for pipe in m.env.iter_mut().filter_map(|(_, p)| p.as_mut()) {
                pipe.finish(&mut scratch);
            }
            for job in m.jobs.iter_mut() {
                for phase in job.phases.iter_mut() {
                    for pipe in phase.pipes.iter_mut().filter_map(|(_, p)| p.as_mut()) {
                        pipe.finish(&mut scratch);
                    }
                }
            }
        }
        self.scratch = scratch;
    }

    fn assemble(&self) -> Result<StreamReport> {
        assemble_multi(&[self])
    }

    fn pipeline_for(&self, at: &SeriesAt) -> Option<&Pipeline> {
        let m = self
            .machines
            .iter()
            .find(|(id, _)| *id == at.machine)
            .map(|(_, m)| m)?;
        match (at.job.as_deref(), at.phase) {
            (Some(job), Some(kind)) => m
                .jobs
                .iter()
                .find(|j| j.id == job)?
                .phases
                .iter()
                .find(|p| p.kind == kind)?
                .pipes
                .iter()
                .find(|(n, _)| n == at.series.name())
                .and_then(|(_, p)| p.as_ref()),
            _ => m
                .env
                .iter()
                .find(|(n, _)| n == at.series.name())
                .and_then(|(_, p)| p.as_ref()),
        }
    }

    fn machine_mut(&mut self, machine: &str) -> Result<&mut MachineState> {
        self.machines
            .iter_mut()
            .find(|(id, _)| id == machine)
            .map(|(_, m)| m)
            .ok_or_else(|| DetectError::Missing {
                what: format!("machine {machine}"),
            })
    }

    /// Builds the online scorer for a point algorithm under the configured
    /// mode, applying the adaptive wrapper when one is installed.
    fn build_scorer(&self, algo: PointAlgo, kind: LaneKind) -> Result<Box<dyn OnlineScorer>> {
        let scorer = self.build_bare_scorer(algo)?;
        match (&self.config.mode, &self.scorer_wrapper) {
            (ScorerMode::Adaptive, Some(wrap)) => Ok(wrap(kind, scorer)),
            _ => Ok(scorer),
        }
    }

    /// Builds the online scorer without the adaptive wrapper.
    /// [`ScorerMode::Adaptive`] builds the same incremental scorers as
    /// [`ScorerMode::Incremental`] — the modes differ only in wrapping.
    fn build_bare_scorer(&self, algo: PointAlgo) -> Result<Box<dyn OnlineScorer>> {
        match self.config.mode {
            ScorerMode::BatchEquivalent => Ok(Box::new(WindowedBatch::full_history(
                engine::build(&algo.spec())?,
            ))),
            ScorerMode::Incremental | ScorerMode::Adaptive => match algo {
                PointAlgo::Autoregressive { order } => Ok(Box::new(IncrementalAr::new(order, 32)?)),
                PointAlgo::SlidingZ { window } => Ok(Box::new(RollingRobustZ::new(window.max(3))?)),
                PointAlgo::RobustZ | PointAlgo::GlobalZ => Ok(Box::new(RollingRobustZ::new(256)?)),
                PointAlgo::Iqr | PointAlgo::Deviants { .. } => Ok(Box::new(
                    WindowedBatch::hopping(engine::build(&algo.spec())?, 256, 64)?,
                )),
            },
        }
    }
}

/// Assembles one merged [`StreamReport`] from a fixed-order slice of
/// shard detectors (a single unsharded detector is the 1-shard case).
///
/// Determinism and equivalence argument: every shard received the same
/// control sequence, so all skeletons are congruent — same machines,
/// jobs, phases, and pipeline slots in the same order — and each slot is
/// `Some` in exactly one shard (the lane's hash owner). The merge
/// therefore walks the first shard's skeleton and fills each slot from
/// its unique owner: no ordering decision depends on thread timing, and
/// the materialized plant, detections, and Algorithm-1 report are
/// byte-identical to the unsharded run, whose pipelines saw the exact
/// same per-lane sample sequences.
///
/// # Errors
/// Invalid when the shard skeletons diverge (control events were not
/// broadcast identically); propagates upper-level detector failures.
pub(crate) fn assemble_multi(shards: &[&StreamDetector]) -> Result<StreamReport> {
    let Some(first) = shards.first() else {
        return Err(DetectError::invalid("shards", "empty shard set"));
    };
    for (i, other) in shards.iter().enumerate().skip(1) {
        if !skeletons_congruent(first, other) {
            return Err(DetectError::invalid(
                "shards",
                format!("shard {i} skeleton diverges from shard 0"),
            ));
        }
    }
    let plant = materialize_multi(shards);
    let policy = &first.policy;
    let mut detections = BTreeMap::new();
    detections.insert(Level::Phase, emit_level_multi(shards, &plant, Level::Phase));
    detections.insert(
        Level::Environment,
        emit_level_multi(shards, &plant, Level::Environment),
    );
    for level in [Level::Job, Level::ProductionLine, Level::Production] {
        detections.insert(level, detect_level(&plant, level, policy)?);
    }
    let report = build_report(&plant, Level::Phase, &detections, policy)?;
    let mut stats = StreamStats::default();
    let mut lane_stats: BTreeMap<LaneId, LaneStats> = BTreeMap::new();
    for shard in shards {
        let s = shard.stats();
        stats.samples_ingested += s.samples_ingested;
        stats.samples_released += s.samples_released;
        stats.late_dropped += s.late_dropped;
        stats.duplicates_dropped += s.duplicates_dropped;
        stats.series_failed += s.series_failed;
        stats.corrupt_records += s.corrupt_records;
        stats.drift_events += s.drift_events;
        stats.refits += s.refits;
        for (lane, l) in shard.lane_stats() {
            let entry = lane_stats.entry(lane).or_default();
            entry.released += l.released;
            entry.late_dropped += l.late_dropped;
            entry.duplicates_dropped += l.duplicates_dropped;
            entry.corrupt_records += l.corrupt_records;
            entry.drift_events += l.drift_events;
            entry.refits += l.refits;
        }
    }
    Ok(StreamReport {
        detections,
        report,
        stats,
        lane_stats,
    })
}

/// Structural congruence of two shard skeletons: same machines, jobs,
/// phases, and pipeline slot names in the same order. Pipeline contents
/// are deliberately not compared — slots differ by ownership.
fn skeletons_congruent(a: &StreamDetector, b: &StreamDetector) -> bool {
    a.machines.len() == b.machines.len()
        && a.machines
            .iter()
            .zip(&b.machines)
            .all(|((ida, ma), (idb, mb))| {
                ida == idb
                    && ma.env.len() == mb.env.len()
                    && ma
                        .env
                        .iter()
                        .zip(&mb.env)
                        .all(|((na, _), (nb, _))| na == nb)
                    && ma.jobs.len() == mb.jobs.len()
                    && ma.jobs.iter().zip(&mb.jobs).all(|(ja, jb)| {
                        ja.id == jb.id
                            && ja.caq.is_some() == jb.caq.is_some()
                            && ja.phases.len() == jb.phases.len()
                            && ja.phases.iter().zip(&jb.phases).all(|(pa, pb)| {
                                pa.kind == pb.kind
                                    && pa.pipes.len() == pb.pipes.len()
                                    && pa
                                        .pipes
                                        .iter()
                                        .zip(&pb.pipes)
                                        .all(|((na, _), (nb, _))| na == nb)
                            })
                    })
            })
}

/// The pipeline owning phase slot `(machine, job, phase, pipe)` across the
/// shard set — `None` when no shard released anything into it yet.
fn phase_pipe_at<'a>(
    shards: &[&'a StreamDetector],
    mi: usize,
    ji: usize,
    pi: usize,
    ki: usize,
) -> Option<&'a Pipeline> {
    shards.iter().find_map(|d| {
        d.machines
            .get(mi)?
            .1
            .jobs
            .get(ji)?
            .phases
            .get(pi)?
            .pipes
            .get(ki)?
            .1
            .as_ref()
    })
}

/// The pipeline owning environment slot `(machine, pipe)` across the set.
fn env_pipe_at<'a>(shards: &[&'a StreamDetector], mi: usize, ki: usize) -> Option<&'a Pipeline> {
    shards
        .iter()
        .find_map(|d| d.machines.get(mi)?.1.env.get(ki)?.1.as_ref())
}

/// Materializes the released state of a shard set as a [`Plant`], walking
/// the first shard's skeleton and filling every slot from its owner. Only
/// completed jobs (CAQ present) are included — their feature vectors would
/// otherwise change dimension mid-job and poison the line-level series.
fn materialize_multi(shards: &[&StreamDetector]) -> Plant {
    let Some(first) = shards.first() else {
        return Plant::new("streamed-plant", Vec::new());
    };
    let mut lines = Vec::with_capacity(first.machines.len());
    for (mi, (machine_id, m)) in first.machines.iter().enumerate() {
        let mut jobs = Vec::new();
        for (ji, j) in m.jobs.iter().enumerate() {
            let Some(caq) = &j.caq else { continue };
            let mut phases = Vec::with_capacity(j.phases.len());
            for (pi, p) in j.phases.iter().enumerate() {
                let series = p
                    .pipes
                    .iter()
                    .enumerate()
                    .filter_map(|(ki, (name, _))| {
                        phase_pipe_at(shards, mi, ji, pi, ki).and_then(|pipe| pipe.series(name))
                    })
                    .collect();
                phases.push(Phase::new(p.kind, series, Vec::new()));
            }
            jobs.push(Job {
                id: j.id.clone(),
                start: j.start,
                config: j.config.clone(),
                phases,
                caq: caq.clone(),
            });
        }
        let env_series = m
            .env
            .iter()
            .enumerate()
            .filter_map(|(ki, (name, _))| {
                env_pipe_at(shards, mi, ki).and_then(|pipe| pipe.series(name))
            })
            .collect();
        lines.push(ProductionLine {
            machine_id: machine_id.clone(),
            sensors: m.sensors.clone(),
            redundancy: m.redundancy.clone(),
            jobs,
            environment: Environment::new(env_series),
        });
    }
    Plant::new("streamed-plant", lines)
}

/// Builds the phase or environment detections from pipeline scores,
/// iterating the materialized plant's level view so the result order is
/// exactly the batch order. Each series' pipeline lives in exactly one
/// shard; series whose scorer failed or whose scores are not yet complete
/// (open phase in batch-equivalent mode) are skipped — the batch path
/// skips unscorable series the same way.
fn emit_level_multi(shards: &[&StreamDetector], plant: &Plant, level: Level) -> LevelDetections {
    let view = LevelView::extract(plant, level);
    let mut det = LevelDetections::empty(level);
    let Some(threshold) = shards.first().map(|d| d.policy.threshold(level)) else {
        return det;
    };
    for at in &view.series {
        let Some(pipe) = shards.iter().find_map(|d| d.pipeline_for(at)) else {
            continue;
        };
        if pipe.failed || pipe.scored.len() != at.series.len() {
            continue;
        }
        let raw: Vec<f64> = pipe.scored.iter().map(|p| p.score).collect();
        emit_series(plant, level, threshold, at, &raw, false, &mut det);
    }
    det
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierod_hierarchy::SensorKind;

    fn detector(mode: ScorerMode) -> StreamDetector {
        StreamDetector::new(
            AlgorithmPolicy::default(),
            StreamConfig { lateness: 0, mode },
        )
        .expect("default policy is streamable")
    }

    fn bring_up(det: &mut StreamDetector) {
        let sensors = vec![Sensor::new("m0.bed.0", SensorKind::BedTemperature)];
        let groups = vec![RedundancyGroup::new(
            SensorKind::BedTemperature,
            vec!["m0.bed.0".into()],
        )];
        det.machine_up("m0", sensors, groups, &["m0.room_temp".into()])
            .expect("machine_up");
    }

    #[test]
    fn rejects_profile_mode() {
        let policy = AlgorithmPolicy {
            phase: PhaseChoice::ProfileAcrossJobs,
            ..AlgorithmPolicy::default()
        };
        assert!(StreamDetector::new(policy, StreamConfig::default()).is_err());
    }

    #[test]
    fn lifecycle_is_enforced() {
        let mut det = detector(ScorerMode::BatchEquivalent);
        // No machine yet.
        assert!(det
            .job_start("m0", "j0", 0, JobConfig::new(vec![], vec![]))
            .is_err());
        bring_up(&mut det);
        // Phase before job.
        assert!(det
            .phase_start("m0", PhaseKind::WarmUp, &["m0.bed.0".into()])
            .is_err());
        det.job_start("m0", "j0", 0, JobConfig::new(vec![], vec![]))
            .expect("job_start");
        // Double job open.
        assert!(det
            .job_start("m0", "j1", 1, JobConfig::new(vec![], vec![]))
            .is_err());
        // Duplicate machine.
        assert!(det.machine_up("m0", vec![], vec![], &[]).is_err());
    }

    #[test]
    fn ingest_requires_an_open_pipeline() {
        let mut det = detector(ScorerMode::BatchEquivalent);
        bring_up(&mut det);
        let phase_lane = LaneId {
            machine: "m0".into(),
            sensor: "m0.bed.0".into(),
            kind: LaneKind::Phase,
        };
        let sample = Sample {
            timestamp: 0,
            value: 1.0,
        };
        // Phase sample with no open phase.
        assert!(det.ingest(&phase_lane, sample).is_err());
        // Environment lanes are open from machine_up.
        let env_lane = LaneId {
            machine: "m0".into(),
            sensor: "m0.room_temp".into(),
            kind: LaneKind::Environment,
        };
        det.ingest(&env_lane, sample).expect("env ingest");
        assert_eq!(det.stats().samples_ingested, 1);
    }

    #[test]
    fn end_to_end_single_job_produces_a_report() {
        let mut det = detector(ScorerMode::BatchEquivalent);
        bring_up(&mut det);
        det.job_start("m0", "j0", 0, JobConfig::new(vec!["p".into()], vec![1.0]))
            .expect("job_start");
        det.phase_start("m0", PhaseKind::WarmUp, &["m0.bed.0".into()])
            .expect("phase_start");
        let lane = LaneId {
            machine: "m0".into(),
            sensor: "m0.bed.0".into(),
            kind: LaneKind::Phase,
        };
        for t in 0..64_u64 {
            let v = if t == 40 {
                90.0
            } else {
                (t as f64 * 0.4).sin()
            };
            det.ingest(
                &lane,
                Sample {
                    timestamp: t,
                    value: v,
                },
            )
            .expect("ingest");
        }
        det.job_complete("m0", CaqResult::new(vec!["q".into()], vec![0.98], true))
            .expect("job_complete");
        let report = det.finish().expect("finish");
        assert_eq!(report.stats.samples_ingested, 64);
        assert_eq!(report.stats.samples_released, 64);
        let phase = report
            .detections
            .get(&Level::Phase)
            .expect("phase detections");
        assert!(
            phase.outliers.iter().any(|o| o.index == Some(40)),
            "the spike must be detected: {:?}",
            phase.outliers
        );
        for o in &report.report.outliers {
            assert!((1..=5).contains(&o.global_score));
        }
    }

    #[test]
    fn incremental_mode_scores_before_finish() {
        let mut det = detector(ScorerMode::Incremental);
        bring_up(&mut det);
        det.job_start("m0", "j0", 0, JobConfig::new(vec!["p".into()], vec![1.0]))
            .expect("job_start");
        det.phase_start("m0", PhaseKind::WarmUp, &["m0.bed.0".into()])
            .expect("phase_start");
        let lane = LaneId {
            machine: "m0".into(),
            sensor: "m0.bed.0".into(),
            kind: LaneKind::Phase,
        };
        // A noiseless sinusoid is degenerate for AR fitting (zero
        // innovation variance), so jitter it with deterministic noise.
        let mut state = 0x9e37_79b9_u64;
        let mut noise = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1_u64 << 53) as f64 - 0.5
        };
        for t in 0..200_u64 {
            let v = if t == 150 {
                60.0
            } else {
                (t as f64 * 0.3).sin() + 0.2 * noise()
            };
            det.ingest(
                &lane,
                Sample {
                    timestamp: t,
                    value: v,
                },
            )
            .expect("ingest");
        }
        det.job_complete("m0", CaqResult::new(vec!["q".into()], vec![0.98], true))
            .expect("job_complete");
        // tick() after job completion sees per-sample scores without any
        // finish() — incremental scorers emit as samples arrive.
        let report = det.tick().expect("tick");
        let phase = report
            .detections
            .get(&Level::Phase)
            .expect("phase detections");
        assert!(
            phase.outliers.iter().any(|o| o.index == Some(150)),
            "incremental scorers must flag the spike: {:?}",
            phase.outliers
        );
    }

    #[test]
    fn reports_carry_per_lane_drop_counters() {
        let mut det = StreamDetector::new(
            AlgorithmPolicy::default(),
            StreamConfig {
                lateness: 1,
                mode: ScorerMode::BatchEquivalent,
            },
        )
        .expect("streamable policy");
        bring_up(&mut det);
        det.job_start("m0", "j0", 0, JobConfig::new(vec!["p".into()], vec![1.0]))
            .expect("job_start");
        det.phase_start("m0", PhaseKind::WarmUp, &["m0.bed.0".into()])
            .expect("phase_start");
        let bed = LaneId {
            machine: "m0".into(),
            sensor: "m0.bed.0".into(),
            kind: LaneKind::Phase,
        };
        let room = LaneId {
            machine: "m0".into(),
            sensor: "m0.room_temp".into(),
            kind: LaneKind::Environment,
        };
        let push = |det: &mut StreamDetector, lane: &LaneId, ts: u64| {
            det.ingest(
                lane,
                Sample {
                    timestamp: ts,
                    value: ts as f64,
                },
            )
            .expect("ingest");
        };
        // Bed lane: a duplicate and a late sample. Room lane: clean.
        for ts in [0_u64, 1, 2, 2, 10, 3] {
            push(&mut det, &bed, ts);
        }
        for ts in 0..4_u64 {
            push(&mut det, &room, ts);
        }
        det.job_complete("m0", CaqResult::new(vec!["q".into()], vec![0.98], true))
            .expect("job_complete");
        let report = det.finish().expect("finish");
        let bed_stats = report.lane_stats.get(&bed).expect("bed lane tracked");
        assert_eq!(bed_stats.duplicates_dropped, 1);
        assert_eq!(bed_stats.late_dropped, 1);
        assert_eq!(bed_stats.released, 4);
        let room_stats = report.lane_stats.get(&room).expect("room lane tracked");
        assert_eq!(room_stats.late_dropped, 0);
        assert_eq!(room_stats.duplicates_dropped, 0);
        assert_eq!(room_stats.released, 4);
        // The aggregate view is the sum of the per-lane views.
        let agg: u64 = report.lane_stats.values().map(|l| l.released).sum();
        assert_eq!(agg, report.stats.samples_released);
    }

    #[test]
    fn tick_before_any_completed_job_is_empty_but_valid() {
        let mut det = detector(ScorerMode::BatchEquivalent);
        bring_up(&mut det);
        let report = det.tick().expect("tick");
        assert!(report.report.is_empty());
        assert_eq!(report.stats.samples_ingested, 0);
    }
}
