//! Per-sensor watermarks: bounded reordering of late samples.
//!
//! Industrial sensor streams arrive out of order — fieldbus retries,
//! gateway batching, clock skew between cabinets. A [`Watermark`] buffers
//! samples for a configurable **allowed lateness** `L` and releases them
//! in timestamp order once the watermark (`max_ts_seen - L`) passes them,
//! so every downstream [`OnlineScorer`](hierod_detect::online::OnlineScorer)
//! observes a clean, ordered series regardless of delivery order.
//!
//! Rules (the property tests in `tests/watermark_props.rs` pin them):
//!
//! * The watermark is `max(ts seen) - L`, monotonically non-decreasing.
//!   Until `max(ts seen) >= L` it has not formed yet (conceptually
//!   negative) and nothing is considered late or releasable.
//! * A sample is **released** once the watermark reaches its timestamp;
//!   releases happen in strict timestamp order.
//! * A sample arriving at or before an already-passed watermark is
//!   **late**: counted and dropped (its window was already emitted).
//! * Duplicate timestamps keep the first arrival; later ones are counted
//!   and dropped.
//! * [`Watermark::flush`] releases everything still buffered (end of
//!   stream / phase boundary).
//!
//! Consequence: any two delivery orders of the same samples whose
//! displacement stays within `L` release the identical sequence.

use std::collections::BTreeMap;

/// Counters for samples the watermark refused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatenessStats {
    /// Samples that arrived after the watermark had passed them.
    pub late_dropped: usize,
    /// Samples whose timestamp was already buffered or released.
    pub duplicates_dropped: usize,
}

/// Reorder buffer with bounded lateness for one sensor stream.
#[derive(Debug)]
pub struct Watermark {
    lateness: u64,
    /// Highest timestamp seen so far.
    max_ts: Option<u64>,
    /// Highest timestamp ever emitted (fast path, watermark advance, or
    /// flush). Guards against re-opening a timestamp after a flush.
    floor: Option<u64>,
    pending: BTreeMap<u64, f64>,
    stats: LatenessStats,
}

impl Watermark {
    /// Creates a watermark that tolerates samples up to `lateness` ticks
    /// behind the newest one seen. `lateness == 0` releases in-order
    /// streams immediately (zero buffering on the fast path).
    pub fn new(lateness: u64) -> Self {
        Self {
            lateness,
            max_ts: None,
            floor: None,
            pending: BTreeMap::new(),
            stats: LatenessStats::default(),
        }
    }

    /// Offers one sample; releases (in timestamp order, appended to `out`)
    /// everything the advancing watermark now covers.
    pub fn offer(&mut self, ts: u64, value: f64, out: &mut Vec<(u64, f64)>) {
        if self.frontier().is_some_and(|w| ts <= w) || self.floor.is_some_and(|f| ts <= f) {
            self.stats.late_dropped += 1;
            return;
        }
        let max_ts = match self.max_ts {
            Some(m) => m.max(ts),
            None => ts,
        };
        self.max_ts = Some(max_ts);
        match self.frontier() {
            // In-order fast path: nothing buffered and this sample is
            // already covered by the watermark — release it without
            // touching the BTreeMap.
            Some(watermark) if self.pending.is_empty() && ts <= watermark => {
                self.floor = Some(ts);
                out.push((ts, value));
            }
            frontier => {
                if let Some(first) = self.pending.insert(ts, value) {
                    // Keep the first arrival: restore it over the newcomer.
                    self.pending.insert(ts, first);
                    self.stats.duplicates_dropped += 1;
                    return;
                }
                if let Some(watermark) = frontier {
                    self.advance_to(watermark, out);
                }
            }
        }
    }

    /// The watermark, once it has formed (`max_ts >= lateness`). Before
    /// that, no sample is late and nothing can be released: the lateness
    /// window has not elapsed for *any* timestamp yet.
    fn frontier(&self) -> Option<u64> {
        self.max_ts.and_then(|m| m.checked_sub(self.lateness))
    }

    /// Releases every pending sample with `ts <= watermark`.
    fn advance_to(&mut self, watermark: u64, out: &mut Vec<(u64, f64)>) {
        let keep = self.pending.split_off(&watermark.saturating_add(1));
        let release = std::mem::replace(&mut self.pending, keep);
        if let Some((&last, _)) = release.last_key_value() {
            self.floor = Some(last);
        }
        out.extend(release);
    }

    /// End of stream: releases everything still buffered, in order.
    pub fn flush(&mut self, out: &mut Vec<(u64, f64)>) {
        let release = std::mem::take(&mut self.pending);
        if let Some((&last, _)) = release.last_key_value() {
            self.floor = Some(last);
        }
        out.extend(release);
    }

    /// The current watermark position, once it has formed.
    pub fn position(&self) -> Option<u64> {
        self.frontier()
    }

    /// Late/duplicate drop counters.
    pub fn stats(&self) -> LatenessStats {
        self.stats
    }

    /// Number of samples waiting for the watermark to pass them.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The buffered (offered but unreleased) samples in timestamp order —
    /// the durability layer journals these as carry-over when it rotates
    /// a WAL into a segment, so a restart can re-offer them.
    pub fn pending_samples(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.pending.iter().map(|(&t, &v)| (t, v))
    }

    /// Rewinds this watermark to a recovered mid-stream state: `floor` is
    /// the highest released timestamp of the restored history (also the
    /// new `max_ts` — re-offering the journalled unreleased samples in
    /// timestamp order rebuilds the true maximum), and `stats` are the
    /// absolute drop counters frozen when the state was sealed. Only
    /// meaningful on a fresh watermark with nothing buffered.
    pub(crate) fn restore_state(&mut self, floor: Option<u64>, stats: LatenessStats) {
        self.floor = floor;
        self.max_ts = floor;
        self.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut Watermark, samples: &[(u64, f64)]) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        for &(ts, v) in samples {
            w.offer(ts, v, &mut out);
        }
        w.flush(&mut out);
        out
    }

    #[test]
    fn in_order_zero_lateness_releases_immediately() {
        let mut w = Watermark::new(0);
        let mut out = Vec::new();
        for ts in 0..5_u64 {
            w.offer(ts, ts as f64, &mut out);
            assert_eq!(out.len() as u64, ts + 1, "immediate release");
            assert_eq!(w.pending(), 0);
        }
    }

    #[test]
    fn out_of_order_within_lateness_is_reordered() {
        let mut w = Watermark::new(3);
        let shuffled = [(2, 2.0), (0, 0.0), (1, 1.0), (3, 3.0), (5, 5.0), (4, 4.0)];
        let out = drain(&mut w, &shuffled);
        assert_eq!(
            out,
            vec![(0, 0.0), (1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0), (5, 5.0)]
        );
        assert_eq!(w.stats(), LatenessStats::default());
    }

    #[test]
    fn too_late_samples_are_dropped_and_counted() {
        let mut w = Watermark::new(1);
        let mut out = Vec::new();
        w.offer(0, 0.0, &mut out);
        w.offer(10, 10.0, &mut out); // watermark jumps to 9, releases 0
        w.offer(2, 2.0, &mut out); // behind the watermark: dropped
        assert_eq!(w.stats().late_dropped, 1);
        w.flush(&mut out);
        assert_eq!(out, vec![(0, 0.0), (10, 10.0)]);
    }

    #[test]
    fn duplicates_keep_first_arrival() {
        let mut w = Watermark::new(10);
        let out = drain(&mut w, &[(1, 1.0), (1, 99.0), (2, 2.0)]);
        assert_eq!(out, vec![(1, 1.0), (2, 2.0)]);
        assert_eq!(w.stats().duplicates_dropped, 1);
    }

    #[test]
    fn watermark_is_monotone() {
        let mut w = Watermark::new(2);
        let mut out = Vec::new();
        let mut prev = None;
        for &ts in &[5_u64, 3, 9, 2, 9, 20] {
            w.offer(ts, 0.0, &mut out);
            let pos = w.position();
            assert!(pos >= prev, "watermark regressed: {prev:?} -> {pos:?}");
            prev = pos;
        }
    }

    #[test]
    fn released_output_is_always_sorted() {
        let mut w = Watermark::new(4);
        let out = drain(
            &mut w,
            &[(7, 0.0), (3, 0.0), (9, 0.0), (1, 0.0), (12, 0.0), (8, 0.0)],
        );
        let ts: Vec<u64> = out.iter().map(|&(t, _)| t).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted);
    }
}
