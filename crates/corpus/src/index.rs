//! Inverted index with positional postings.
//!
//! Supports term lookup, phrase matching (via positions), conjunction, and
//! category filtering — exactly the operations the Fig.-3 query plan needs.

use std::collections::HashMap;

use crate::document::{tokenize, Category, DocId, Document};

/// A posting: document id plus the token positions of the term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    /// Document id.
    pub doc: DocId,
    /// Sorted token positions at which the term occurs.
    pub positions: Vec<u32>,
}

/// Positional inverted index over a corpus of [`Document`]s.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    docs: Vec<Document>,
    postings: HashMap<String, Vec<Posting>>,
    by_category: HashMap<Category, Vec<DocId>>,
}

impl InvertedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an index over a document collection.
    pub fn build(docs: Vec<Document>) -> Self {
        let mut idx = Self::new();
        for d in docs {
            idx.add(d);
        }
        idx
    }

    /// Adds one document, returning its id.
    pub fn add(&mut self, doc: Document) -> DocId {
        let id = self.docs.len() as DocId;
        let tokens = tokenize(&doc.full_text());
        let mut term_positions: HashMap<&str, Vec<u32>> = HashMap::new();
        for (pos, tok) in tokens.iter().enumerate() {
            term_positions.entry(tok).or_default().push(pos as u32);
        }
        for (term, positions) in term_positions {
            self.postings
                .entry(term.to_string())
                .or_default()
                .push(Posting { doc: id, positions });
        }
        for &cat in &doc.categories {
            let ids = self.by_category.entry(cat).or_default();
            // A document may list a category twice; register it once.
            if ids.last() != Some(&id) {
                ids.push(id);
            }
        }
        self.docs.push(doc);
        id
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// `true` if no documents are indexed.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Number of distinct terms.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// The document with id `id`, if present.
    pub fn doc(&self, id: DocId) -> Option<&Document> {
        self.docs.get(id as usize)
    }

    /// Document ids containing `term` (case-insensitive; single token).
    pub fn term_docs(&self, term: &str) -> Vec<DocId> {
        let key = term.to_lowercase();
        self.postings
            .get(&key)
            .map(|ps| ps.iter().map(|p| p.doc).collect())
            .unwrap_or_default()
    }

    /// Document ids containing the exact phrase (consecutive tokens).
    /// A single-token phrase degenerates to [`Self::term_docs`]; an empty
    /// phrase matches nothing.
    pub fn phrase_docs(&self, phrase: &str) -> Vec<DocId> {
        let terms = tokenize(phrase);
        let Some(head) = terms.first() else {
            return Vec::new();
        };
        match terms.len() {
            1 => self.term_docs(head),
            _ => {
                // Intersect postings of all terms, then verify adjacency.
                let first = match self.postings.get(head) {
                    Some(p) => p,
                    None => return Vec::new(),
                };
                let mut out = Vec::new();
                'docs: for posting in first {
                    // Collect candidate start positions, advance per term.
                    let mut starts: Vec<u32> = posting.positions.clone();
                    for (offset, term) in terms.iter().enumerate().skip(1) {
                        let Some(plist) = self.postings.get(term) else {
                            continue 'docs;
                        };
                        let Some(entry) = plist
                            .binary_search_by_key(&posting.doc, |p| p.doc)
                            .ok()
                            .and_then(|i| plist.get(i))
                        else {
                            continue 'docs;
                        };
                        let positions = &entry.positions;
                        starts.retain(|&s| positions.binary_search(&(s + offset as u32)).is_ok());
                        if starts.is_empty() {
                            continue 'docs;
                        }
                    }
                    out.push(posting.doc);
                }
                out
            }
        }
    }

    /// Document ids tagged with `cat`.
    pub fn category_docs(&self, cat: Category) -> &[DocId] {
        self.by_category.get(&cat).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Sorted intersection of two ascending id lists.
pub fn intersect(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while let (Some(&x), Some(&y)) = (a.get(i), b.get(j)) {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(x);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(title: &str, cats: &[Category]) -> Document {
        Document {
            title: title.into(),
            abstract_text: String::new(),
            keywords: vec![],
            year: 2018,
            categories: cats.to_vec(),
        }
    }

    fn sample_index() -> InvertedIndex {
        InvertedIndex::build(vec![
            doc(
                "Anomaly detection in time series",
                &[Category::AutomationControlSystems],
            ),
            doc(
                "Outlier detection for sensor data",
                &[Category::ComputerScience],
            ),
            doc(
                "Time series forecasting of series time",
                &[Category::Statistics],
            ),
            doc(
                "Fault detection in time series control loops",
                &[Category::AutomationControlSystems, Category::Engineering],
            ),
        ])
    }

    #[test]
    fn term_lookup_is_case_insensitive() {
        let idx = sample_index();
        assert_eq!(idx.term_docs("ANOMALY"), vec![0]);
        assert_eq!(idx.term_docs("detection"), vec![0, 1, 3]);
        assert!(idx.term_docs("nonexistent").is_empty());
    }

    #[test]
    fn phrase_requires_adjacency_in_order() {
        let idx = sample_index();
        assert_eq!(idx.phrase_docs("time series"), vec![0, 2, 3]);
        // Doc 2 contains both orders; "series time" matches only doc 2.
        assert_eq!(idx.phrase_docs("series time"), vec![2]);
        // Non-adjacent words do not match as a phrase.
        assert!(idx.phrase_docs("anomaly series").is_empty());
        assert!(idx.phrase_docs("").is_empty());
        assert_eq!(idx.phrase_docs("outlier"), vec![1]);
        assert!(idx.phrase_docs("missing phrase entirely").is_empty());
    }

    #[test]
    fn category_filter() {
        let idx = sample_index();
        assert_eq!(
            idx.category_docs(Category::AutomationControlSystems),
            &[0, 3]
        );
        assert!(idx.category_docs(Category::LifeSciences).is_empty());
    }

    #[test]
    fn intersect_merges_sorted_lists() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[2, 3, 5, 8]), vec![3, 5]);
        assert!(intersect(&[], &[1]).is_empty());
        assert_eq!(intersect(&[4], &[4]), vec![4]);
    }

    #[test]
    fn index_statistics() {
        let idx = sample_index();
        assert_eq!(idx.len(), 4);
        assert!(!idx.is_empty());
        assert!(idx.vocabulary_size() >= 10);
        assert!(idx.doc(0).unwrap().title.contains("Anomaly"));
        assert!(idx.doc(99).is_none());
        assert!(InvertedIndex::new().is_empty());
    }

    #[test]
    fn phrase_spanning_title_and_keywords_uses_token_stream() {
        // full_text joins fields with spaces, so a phrase can only match
        // within the concatenated stream.
        let d = Document {
            title: "change point".into(),
            abstract_text: "detection".into(),
            keywords: vec![],
            year: 2019,
            categories: vec![Category::Statistics],
        };
        let idx = InvertedIndex::build(vec![d]);
        assert_eq!(idx.phrase_docs("point detection"), vec![0]);
        assert_eq!(idx.phrase_docs("change point detection"), vec![0]);
    }

    #[test]
    fn repeated_term_positions_recorded() {
        let idx = sample_index();
        // Doc 2 has "series" twice; phrase "series forecasting" still found.
        assert_eq!(idx.phrase_docs("series forecasting"), vec![2]);
    }
}
