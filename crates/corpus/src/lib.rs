//! # hierod-corpus
//!
//! A bibliographic document store with an inverted index — the substrate
//! for reproducing the paper's Fig. 3 ("Research Fields of Outlier
//! Detection"). The original figure counts Web-of-Science articles per
//! synonym research field, where "each term was filtered with the word
//! *time series* and afterwards limited to those items that are connected to
//! the category *automation control systems*".
//!
//! Web of Science is proprietary and unreachable offline, so [`generator`]
//! synthesizes a corpus whose per-field document populations are calibrated
//! to the **relative bar heights** of Fig. 3; [`index::InvertedIndex`]
//! then executes the exact query plan of the paper (phrase AND phrase,
//! category restriction) against it. See DESIGN.md §2 for the substitution
//! rationale.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod document;
pub mod generator;
pub mod index;
pub mod query;

pub use document::{Category, DocId, Document};
pub use generator::{CorpusGenerator, FieldSpec, FIG3_FIELDS};
pub use index::InvertedIndex;
pub use query::{Query, QueryEngine};
