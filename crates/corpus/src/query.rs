//! Boolean query layer: phrases, conjunction, category restriction.
//!
//! The Fig.-3 query plan is `Phrase(field) AND Phrase("time series") AND
//! Category(AutomationControlSystems)`; [`QueryEngine::count`] executes it.

use crate::document::{Category, DocId};
use crate::index::{intersect, InvertedIndex};

/// A boolean query over the corpus.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Exact phrase match (single tokens degenerate to term match).
    Phrase(String),
    /// Restriction to a subject category.
    Category(Category),
    /// Conjunction of sub-queries.
    And(Vec<Query>),
    /// Disjunction of sub-queries.
    Or(Vec<Query>),
}

impl Query {
    /// Convenience: `Phrase` from a `&str`.
    pub fn phrase(s: &str) -> Query {
        Query::Phrase(s.to_string())
    }

    /// Convenience: conjunction of two queries.
    pub fn and(self, other: Query) -> Query {
        match self {
            Query::And(mut qs) => {
                qs.push(other);
                Query::And(qs)
            }
            q => Query::And(vec![q, other]),
        }
    }
}

/// Executes queries against an [`InvertedIndex`].
#[derive(Debug)]
pub struct QueryEngine<'a> {
    index: &'a InvertedIndex,
}

impl<'a> QueryEngine<'a> {
    /// Wraps an index.
    pub fn new(index: &'a InvertedIndex) -> Self {
        Self { index }
    }

    /// Evaluates a query to a sorted list of matching document ids.
    pub fn execute(&self, query: &Query) -> Vec<DocId> {
        match query {
            Query::Phrase(p) => {
                let mut ids = self.index.phrase_docs(p);
                ids.sort_unstable();
                ids
            }
            Query::Category(c) => {
                let mut ids = self.index.category_docs(*c).to_vec();
                ids.sort_unstable();
                ids
            }
            Query::And(qs) => {
                let mut iter = qs.iter();
                let Some(first) = iter.next() else {
                    return Vec::new();
                };
                let mut acc = self.execute(first);
                for q in iter {
                    if acc.is_empty() {
                        break;
                    }
                    acc = intersect(&acc, &self.execute(q));
                }
                acc
            }
            Query::Or(qs) => {
                let mut acc: Vec<DocId> = Vec::new();
                for q in qs {
                    acc.extend(self.execute(q));
                }
                acc.sort_unstable();
                acc.dedup();
                acc
            }
        }
    }

    /// Number of matching documents.
    pub fn count(&self, query: &Query) -> usize {
        self.execute(query).len()
    }

    /// The paper's Fig.-3 query for one research-field term: field phrase
    /// AND "time series" AND category Automation & Control Systems.
    pub fn fig3_query(field_term: &str) -> Query {
        Query::phrase(field_term)
            .and(Query::phrase("time series"))
            .and(Query::Category(Category::AutomationControlSystems))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;

    fn doc(title: &str, cats: &[Category]) -> Document {
        Document {
            title: title.into(),
            abstract_text: String::new(),
            keywords: vec![],
            year: 2018,
            categories: cats.to_vec(),
        }
    }

    fn index() -> InvertedIndex {
        InvertedIndex::build(vec![
            doc(
                "Anomaly detection in time series for plants",
                &[Category::AutomationControlSystems],
            ),
            doc(
                "Anomaly detection without the magic words",
                &[Category::AutomationControlSystems],
            ),
            doc(
                "Anomaly detection in time series for genomes",
                &[Category::LifeSciences],
            ),
            doc(
                "Fault detection in time series",
                &[Category::AutomationControlSystems],
            ),
        ])
    }

    #[test]
    fn and_intersects() {
        let idx = index();
        let eng = QueryEngine::new(&idx);
        let q = Query::phrase("anomaly detection").and(Query::phrase("time series"));
        assert_eq!(eng.execute(&q), vec![0, 2]);
    }

    #[test]
    fn fig3_query_applies_all_three_filters() {
        let idx = index();
        let eng = QueryEngine::new(&idx);
        let q = QueryEngine::fig3_query("anomaly detection");
        // Doc 0 matches; doc 1 lacks "time series"; doc 2 wrong category.
        assert_eq!(eng.execute(&q), vec![0]);
        assert_eq!(eng.count(&QueryEngine::fig3_query("fault detection")), 1);
        assert_eq!(eng.count(&QueryEngine::fig3_query("novelty detection")), 0);
    }

    #[test]
    fn or_unions_and_dedups() {
        let idx = index();
        let eng = QueryEngine::new(&idx);
        let q = Query::Or(vec![
            Query::phrase("anomaly detection"),
            Query::phrase("fault detection"),
            Query::phrase("anomaly detection"),
        ]);
        assert_eq!(eng.execute(&q), vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_and_matches_nothing() {
        let idx = index();
        let eng = QueryEngine::new(&idx);
        assert!(eng.execute(&Query::And(vec![])).is_empty());
        assert!(eng.execute(&Query::Or(vec![])).is_empty());
    }

    #[test]
    fn category_query_alone() {
        let idx = index();
        let eng = QueryEngine::new(&idx);
        assert_eq!(
            eng.count(&Query::Category(Category::AutomationControlSystems)),
            3
        );
        assert_eq!(eng.count(&Query::Category(Category::Environment)), 0);
    }

    #[test]
    fn and_short_circuits_on_empty() {
        let idx = index();
        let eng = QueryEngine::new(&idx);
        let q = Query::phrase("zzz").and(Query::phrase("anomaly"));
        assert!(eng.execute(&q).is_empty());
    }

    #[test]
    fn query_builder_flattens_ands() {
        let q = Query::phrase("a")
            .and(Query::phrase("b"))
            .and(Query::phrase("c"));
        if let Query::And(parts) = &q {
            assert_eq!(parts.len(), 3);
        } else {
            panic!("expected flattened And");
        }
    }
}
