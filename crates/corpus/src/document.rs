//! Documents, categories, and tokenization.

/// Identifier of a document within a corpus (dense, 0-based).
pub type DocId = u32;

/// A Web-of-Science-style subject category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// "Automation & Control Systems" — the filter category of Fig. 3.
    AutomationControlSystems,
    /// Computer science venues.
    ComputerScience,
    /// Engineering venues.
    Engineering,
    /// Mathematics/statistics venues.
    Statistics,
    /// Medicine/biology venues.
    LifeSciences,
    /// Geoscience/environment venues.
    Environment,
}

impl Category {
    /// All categories, in a fixed order.
    pub const ALL: [Category; 6] = [
        Category::AutomationControlSystems,
        Category::ComputerScience,
        Category::Engineering,
        Category::Statistics,
        Category::LifeSciences,
        Category::Environment,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Category::AutomationControlSystems => "Automation & Control Systems",
            Category::ComputerScience => "Computer Science",
            Category::Engineering => "Engineering",
            Category::Statistics => "Statistics",
            Category::LifeSciences => "Life Sciences",
            Category::Environment => "Environment",
        }
    }
}

/// A bibliographic record: title, abstract, keywords, publication year, and
/// subject categories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Title text.
    pub title: String,
    /// Abstract text.
    pub abstract_text: String,
    /// Author keywords.
    pub keywords: Vec<String>,
    /// Publication year.
    pub year: u16,
    /// Subject categories (at least one).
    pub categories: Vec<Category>,
}

impl Document {
    /// Concatenated searchable text (title + abstract + keywords).
    pub fn full_text(&self) -> String {
        let mut s = String::with_capacity(
            self.title.len() + self.abstract_text.len() + self.keywords.len() * 16 + 2,
        );
        s.push_str(&self.title);
        s.push(' ');
        s.push_str(&self.abstract_text);
        for k in &self.keywords {
            s.push(' ');
            s.push_str(k);
        }
        s
    }

    /// `true` if the document is tagged with `cat`.
    pub fn has_category(&self, cat: Category) -> bool {
        self.categories.contains(&cat)
    }
}

/// Lower-cases and splits text into alphanumeric tokens (anything else is a
/// separator). Hyphenated compounds split into their parts, matching how
/// bibliographic engines index "change-point" as `change`, `point`.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits() {
        assert_eq!(
            tokenize("Outlier Detection in Time-Series!"),
            vec!["outlier", "detection", "in", "time", "series"]
        );
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("  ,,  "), Vec::<String>::new());
        assert_eq!(tokenize("4.0 Industry"), vec!["4", "0", "industry"]);
    }

    #[test]
    fn full_text_concatenates_fields() {
        let d = Document {
            title: "A study".into(),
            abstract_text: "of things".into(),
            keywords: vec!["anomaly".into(), "control".into()],
            year: 2018,
            categories: vec![Category::Engineering],
        };
        let ft = d.full_text();
        assert!(ft.contains("A study"));
        assert!(ft.contains("of things"));
        assert!(ft.contains("anomaly"));
        assert!(ft.contains("control"));
    }

    #[test]
    fn category_membership() {
        let d = Document {
            title: String::new(),
            abstract_text: String::new(),
            keywords: vec![],
            year: 2018,
            categories: vec![Category::AutomationControlSystems, Category::Engineering],
        };
        assert!(d.has_category(Category::AutomationControlSystems));
        assert!(!d.has_category(Category::Statistics));
    }

    #[test]
    fn category_labels_are_distinct() {
        let labels: std::collections::BTreeSet<&str> =
            Category::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), Category::ALL.len());
    }
}
