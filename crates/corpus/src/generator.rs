//! Calibrated corpus generator for the Fig.-3 reproduction.
//!
//! Web of Science is proprietary, so the absolute counts of the paper's
//! Fig. 3 cannot be re-queried offline. What the figure communicates — and
//! what this generator is calibrated to — is the *relative* popularity of
//! the eight synonym research fields after the "time series" +
//! "automation control systems" restriction: fault detection and anomaly
//! detection dominate, intrusion/outlier/event detection form a middle
//! tier, and novelty detection, change-point detection, and especially
//! deviant discovery are rare. The target counts below encode that shape on
//! the figure's 0–2000 axis.
//!
//! For every field the generator emits `target` fully matching documents
//! plus three kinds of distractors (wrong category, missing "time series",
//! words present but not adjacent as a phrase), so the query engine's
//! phrase/AND/category machinery is genuinely exercised rather than fed
//! only positives.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::document::{Category, Document};
use crate::index::InvertedIndex;

/// One research-field bar of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSpec {
    /// The search phrase (the bar's label).
    pub term: &'static str,
    /// Calibrated target count at scale 1.0 (documents matching the full
    /// Fig.-3 query).
    pub target: usize,
}

/// The eight fields of Fig. 3 with calibrated relative targets.
pub const FIG3_FIELDS: [FieldSpec; 8] = [
    FieldSpec {
        term: "anomaly detection",
        target: 1850,
    },
    FieldSpec {
        term: "outlier detection",
        target: 950,
    },
    FieldSpec {
        term: "event detection",
        target: 700,
    },
    FieldSpec {
        term: "novelty detection",
        target: 150,
    },
    FieldSpec {
        term: "deviant discovery",
        target: 4,
    },
    FieldSpec {
        term: "change point detection",
        target: 300,
    },
    FieldSpec {
        term: "fault detection",
        target: 1950,
    },
    FieldSpec {
        term: "intrusion detection",
        target: 600,
    },
];

const FILLER: &[&str] = &[
    "robust",
    "adaptive",
    "online",
    "distributed",
    "industrial",
    "sensor",
    "streaming",
    "multivariate",
    "probabilistic",
    "spectral",
    "wavelet",
    "deep",
    "statistical",
    "data-driven",
    "real-time",
    "scalable",
];

const DOMAINS: &[&str] = &[
    "manufacturing plants",
    "process control loops",
    "rotating machinery",
    "chemical reactors",
    "power grids",
    "production lines",
    "hydraulic systems",
    "assembly robots",
];

/// A uniformly random element ("" only for an empty slice, which the
/// word tables above never are).
fn pick<'a>(rng: &mut StdRng, options: &[&'a str]) -> &'a str {
    options
        .get(rng.gen_range(0..options.len()))
        .copied()
        .unwrap_or("")
}

/// Deterministic corpus generator.
#[derive(Debug, Clone)]
pub struct CorpusGenerator {
    seed: u64,
    /// Multiplier applied to every field target (and distractor volume);
    /// use < 1.0 for fast tests, 1.0 for the full figure.
    scale: f64,
    /// Distractors per matching document.
    distractor_ratio: f64,
}

impl CorpusGenerator {
    /// Creates a generator with the given RNG seed at full scale.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            scale: 1.0,
            distractor_ratio: 0.5,
        }
    }

    /// Sets the scale multiplier (clamped to be ≥ 0).
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale.max(0.0);
        self
    }

    /// Sets the distractor ratio (distractors per matching document).
    pub fn with_distractor_ratio(mut self, ratio: f64) -> Self {
        self.distractor_ratio = ratio.max(0.0);
        self
    }

    /// Scaled expected count for one field (what the Fig.-3 query should
    /// return, up to the rounding applied here).
    pub fn expected_count(&self, field: &FieldSpec) -> usize {
        (field.target as f64 * self.scale).round() as usize
    }

    /// Generates the whole corpus (all eight fields + distractors),
    /// shuffled deterministically.
    pub fn generate(&self) -> Vec<Document> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut docs = Vec::new();
        for field in &FIG3_FIELDS {
            let n = self.expected_count(field);
            for _ in 0..n {
                docs.push(self.matching_doc(field.term, &mut rng));
            }
            let d = (n as f64 * self.distractor_ratio).round() as usize;
            for i in 0..d {
                docs.push(self.distractor_doc(field.term, i % 3, &mut rng));
            }
        }
        docs.shuffle(&mut rng);
        docs
    }

    /// Generates and indexes the corpus in one step.
    pub fn build_index(&self) -> InvertedIndex {
        InvertedIndex::build(self.generate())
    }

    /// A document matching the full Fig.-3 query for `term`.
    fn matching_doc(&self, term: &str, rng: &mut StdRng) -> Document {
        let f1 = pick(rng, FILLER);
        let f2 = pick(rng, FILLER);
        let dom = pick(rng, DOMAINS);
        let title = format!("{f1} {term} for time series in {dom}");
        let abstract_text = format!(
            "We present a {f2} approach to {term} on time series data collected from {dom}."
        );
        let mut categories = vec![Category::AutomationControlSystems];
        if rng.gen_bool(0.4) {
            categories.push(Category::Engineering);
        }
        Document {
            title,
            abstract_text,
            keywords: vec![term.to_string(), "time series".to_string()],
            year: rng.gen_range(1995..=2018),
            categories,
        }
    }

    /// A distractor that fails exactly one clause of the Fig.-3 query.
    fn distractor_doc(&self, term: &str, kind: usize, rng: &mut StdRng) -> Document {
        let f1 = pick(rng, FILLER);
        let dom = pick(rng, DOMAINS);
        match kind {
            // Wrong category: everything matches textually, category fails.
            0 => Document {
                title: format!("{f1} {term} for time series beyond {dom}"),
                abstract_text: format!("A {term} study on time series."),
                keywords: vec![term.to_string()],
                year: rng.gen_range(1995..=2018),
                categories: vec![match rng.gen_range(0..4) {
                    0 => Category::ComputerScience,
                    1 => Category::Statistics,
                    2 => Category::LifeSciences,
                    _ => Category::Environment,
                }],
            },
            // Missing the "time series" phrase ("time" and "series" appear,
            // but never adjacent).
            1 => Document {
                title: format!("{f1} {term} with series models over time in {dom}"),
                abstract_text: format!("This {term} work studies series data where time matters."),
                keywords: vec![term.to_string()],
                year: rng.gen_range(1995..=2018),
                categories: vec![Category::AutomationControlSystems],
            },
            // Field words present but not adjacent as a phrase.
            _ => {
                let words: Vec<&str> = term.split(' ').collect();
                let scrambled = words.join(" of the ");
                Document {
                    title: format!("{f1} {scrambled} in time series from {dom}"),
                    abstract_text: "A survey.".to_string(),
                    keywords: vec![],
                    year: rng.gen_range(1995..=2018),
                    categories: vec![Category::AutomationControlSystems],
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryEngine;

    #[test]
    fn generation_is_deterministic() {
        let a = CorpusGenerator::new(7).with_scale(0.02).generate();
        let b = CorpusGenerator::new(7).with_scale(0.02).generate();
        assert_eq!(a, b);
        let c = CorpusGenerator::new(8).with_scale(0.02).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn fig3_counts_match_targets_exactly_at_small_scale() {
        let g = CorpusGenerator::new(42).with_scale(0.05);
        let idx = g.build_index();
        let eng = QueryEngine::new(&idx);
        for field in &FIG3_FIELDS {
            let expected = g.expected_count(field);
            let got = eng.count(&QueryEngine::fig3_query(field.term));
            assert_eq!(
                got, expected,
                "field `{}`: expected {expected}, got {got}",
                field.term
            );
        }
    }

    #[test]
    fn distractors_inflate_corpus_but_not_counts() {
        let lean = CorpusGenerator::new(1)
            .with_scale(0.05)
            .with_distractor_ratio(0.0);
        let fat = CorpusGenerator::new(1)
            .with_scale(0.05)
            .with_distractor_ratio(2.0);
        let lean_docs = lean.generate().len();
        let fat_docs = fat.generate().len();
        assert!(fat_docs > lean_docs * 2);
        let eng_idx = fat.build_index();
        let eng = QueryEngine::new(&eng_idx);
        let g_expected = fat.expected_count(&FIG3_FIELDS[0]);
        assert_eq!(
            eng.count(&QueryEngine::fig3_query(FIG3_FIELDS[0].term)),
            g_expected
        );
    }

    #[test]
    fn relative_ordering_matches_paper_shape() {
        let g = CorpusGenerator::new(3).with_scale(0.05);
        let idx = g.build_index();
        let eng = QueryEngine::new(&idx);
        let count = |t: &str| eng.count(&QueryEngine::fig3_query(t));
        // Fault & anomaly dominate; deviant discovery is (near) zero.
        assert!(count("fault detection") > count("outlier detection"));
        assert!(count("anomaly detection") > count("outlier detection"));
        assert!(count("outlier detection") > count("novelty detection"));
        assert!(count("deviant discovery") <= count("novelty detection"));
    }

    #[test]
    fn scale_zero_yields_empty_corpus() {
        let g = CorpusGenerator::new(1).with_scale(0.0);
        assert!(g.generate().is_empty());
    }

    #[test]
    fn expected_count_rounds() {
        let g = CorpusGenerator::new(1).with_scale(0.001);
        // 1850 * 0.001 = 1.85 -> 2.
        assert_eq!(g.expected_count(&FIG3_FIELDS[0]), 2);
        assert_eq!(g.expected_count(&FIG3_FIELDS[4]), 0); // 4 * 0.001 -> 0
    }
}
