//! Property tests: the inverted index must agree with a naive scan oracle.

use hierod_corpus::{Category, Document, InvertedIndex, Query, QueryEngine};
use proptest::prelude::*;

const WORDS: [&str; 10] = [
    "anomaly",
    "detection",
    "time",
    "series",
    "fault",
    "control",
    "sensor",
    "industrial",
    "outlier",
    "process",
];

fn doc_strategy() -> impl Strategy<Value = Document> {
    (
        prop::collection::vec(0_usize..WORDS.len(), 1..12),
        prop::collection::vec(0_usize..6, 1..3),
    )
        .prop_map(|(word_idx, cats)| Document {
            title: word_idx
                .iter()
                .map(|&i| WORDS[i])
                .collect::<Vec<_>>()
                .join(" "),
            abstract_text: String::new(),
            keywords: vec![],
            year: 2018,
            categories: cats.into_iter().map(|c| Category::ALL[c]).collect(),
        })
}

/// Naive oracle: does the document's tokenized title contain the phrase?
fn naive_phrase_match(doc: &Document, phrase: &[&str]) -> bool {
    let tokens: Vec<&str> = doc.title.split(' ').filter(|t| !t.is_empty()).collect();
    if phrase.is_empty() || tokens.len() < phrase.len() {
        return false;
    }
    tokens.windows(phrase.len()).any(|w| w == phrase)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn phrase_queries_match_naive_scan(
        docs in prop::collection::vec(doc_strategy(), 1..24),
        phrase_idx in prop::collection::vec(0_usize..WORDS.len(), 1..3),
    ) {
        let phrase_words: Vec<&str> = phrase_idx.iter().map(|&i| WORDS[i]).collect();
        let phrase = phrase_words.join(" ");
        let index = InvertedIndex::build(docs.clone());
        let engine = QueryEngine::new(&index);
        let got = engine.execute(&Query::phrase(&phrase));
        let expected: Vec<u32> = docs
            .iter()
            .enumerate()
            .filter(|(_, d)| naive_phrase_match(d, &phrase_words))
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, expected, "phrase `{}`", phrase);
    }

    #[test]
    fn and_is_intersection_of_parts(
        docs in prop::collection::vec(doc_strategy(), 1..24),
        t1 in 0_usize..WORDS.len(),
        t2 in 0_usize..WORDS.len(),
    ) {
        let index = InvertedIndex::build(docs);
        let engine = QueryEngine::new(&index);
        let a = engine.execute(&Query::phrase(WORDS[t1]));
        let b = engine.execute(&Query::phrase(WORDS[t2]));
        let both = engine.execute(&Query::phrase(WORDS[t1]).and(Query::phrase(WORDS[t2])));
        for id in &both {
            prop_assert!(a.contains(id) && b.contains(id));
        }
        for id in &a {
            if b.contains(id) {
                prop_assert!(both.contains(id));
            }
        }
    }

    #[test]
    fn or_is_union_of_parts(
        docs in prop::collection::vec(doc_strategy(), 1..24),
        t1 in 0_usize..WORDS.len(),
        t2 in 0_usize..WORDS.len(),
    ) {
        let index = InvertedIndex::build(docs);
        let engine = QueryEngine::new(&index);
        let a = engine.execute(&Query::phrase(WORDS[t1]));
        let b = engine.execute(&Query::phrase(WORDS[t2]));
        let either = engine.execute(&Query::Or(vec![
            Query::phrase(WORDS[t1]),
            Query::phrase(WORDS[t2]),
        ]));
        for id in a.iter().chain(&b) {
            prop_assert!(either.contains(id));
        }
        prop_assert!(either.len() <= a.len() + b.len());
    }

    #[test]
    fn category_filter_matches_membership(
        docs in prop::collection::vec(doc_strategy(), 1..24),
        cat_idx in 0_usize..6,
    ) {
        let cat = Category::ALL[cat_idx];
        let index = InvertedIndex::build(docs.clone());
        let engine = QueryEngine::new(&index);
        let got = engine.execute(&Query::Category(cat));
        let expected: Vec<u32> = docs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.has_category(cat))
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn counts_never_exceed_corpus(docs in prop::collection::vec(doc_strategy(), 0..24)) {
        let n = docs.len();
        let index = InvertedIndex::build(docs);
        let engine = QueryEngine::new(&index);
        for field in hierod_corpus::FIG3_FIELDS {
            prop_assert!(engine.count(&QueryEngine::fig3_query(field.term)) <= n);
        }
    }
}
