//! The history tier's equivalence suite.
//!
//! * **Scan ≡ replay** — a range scan over compacted, Gorilla-compressed
//!   history files returns bit-identical samples to a forward replay of
//!   the uncompacted rotation segments.
//! * **Crash equivalence** — compaction is interrupted at every written
//!   byte (× page cache kept/lost); recovery plus a re-run always
//!   converges to the same scan results and the same detector report.
//! * **Backfill** — replaying the stored record through a fresh
//!   detector with the original policy reproduces the original report
//!   byte-for-byte, before and after compaction; replaying under a
//!   different phase algorithm diffs cleanly.

use std::collections::BTreeMap;

use hierod_core::AlgorithmPolicy;
use hierod_detect::engine::AlgoSpec;
use hierod_hierarchy::{CaqResult, JobConfig, PhaseKind, RedundancyGroup, Sensor, SensorKind};
use hierod_history::backfill::{backfill, diff_reports};
use hierod_history::compact::{compact, parse_level, CompactionOptions};
use hierod_history::reader::{snapshot, HistoryReader, RangeQuery};
use hierod_store::store::{parse_hist_name, read_floor, StoreOptions};
use hierod_store::{segment, MemStorage, Storage};
use hierod_stream::codec::decode_lane;
use hierod_stream::{
    DurableStream, LaneId, LaneKind, Sample, ScorerMode, StreamConfig, StreamReport,
};

fn lane(machine: &str, sensor: &str, kind: LaneKind) -> LaneId {
    LaneId {
        machine: machine.into(),
        sensor: sensor.into(),
        kind,
    }
}

fn policy_and_config() -> (AlgorithmPolicy, StreamConfig) {
    (
        AlgorithmPolicy::default(),
        StreamConfig {
            lateness: 3,
            mode: ScorerMode::BatchEquivalent,
        },
    )
}

fn open(storage: MemStorage) -> DurableStream<MemStorage> {
    let (policy, config) = policy_and_config();
    // group_commit = 1: every journalled byte is synced, so the suite's
    // compaction crashes are the only source of lost bytes.
    let (d, _) = DurableStream::open(policy, config, storage, StoreOptions { group_commit: 1 })
        .expect("open");
    d
}

/// Drives a two-machine, three-job scenario with out-of-order samples,
/// a duplicate, a late straggler, and rotations after every job.
fn run_scenario(d: &mut DurableStream<MemStorage>) {
    for m in ["m0", "m1"] {
        let bed = format!("{m}.bed.0");
        let room = format!("{m}.room");
        d.machine_up(
            m,
            vec![Sensor::new(&bed, SensorKind::BedTemperature)],
            vec![RedundancyGroup::new(
                SensorKind::BedTemperature,
                vec![bed.clone()],
            )],
            &[room],
        )
        .expect("machine up");
    }
    let jobs: [(&str, &str, u64); 3] = [("m0", "j0", 0), ("m1", "j0", 5), ("m0", "j1", 500)];
    for (slot, (m, j, start)) in jobs.iter().enumerate() {
        let bed = format!("{m}.bed.0");
        let room = format!("{m}.room");
        d.job_start(
            m,
            j,
            *start,
            JobConfig::new(vec!["speed".into()], vec![1.0 + slot as f64]),
        )
        .expect("job start");
        d.phase_start(m, PhaseKind::WarmUp, std::slice::from_ref(&bed))
            .expect("phase start");
        let base = *start;
        for i in 0..40_u64 {
            let t = base + (i ^ 1); // mild out-of-order jitter
            let v = if i == 25 {
                80.0 + slot as f64
            } else {
                (t as f64 * 0.37).sin() + slot as f64 * 0.1
            };
            d.ingest(
                &lane(m, &bed, LaneKind::Phase),
                Sample {
                    timestamp: t,
                    value: v,
                },
            )
            .expect("ingest");
            if i % 4 == 0 {
                d.ingest(
                    &lane(m, &room, LaneKind::Environment),
                    Sample {
                        timestamp: t + 1,
                        value: 21.0 + (t as f64 * 0.05).cos(),
                    },
                )
                .expect("ingest env");
            }
        }
        // A duplicate and a far-behind straggler: journalled, rejected.
        let _ = d.ingest(
            &lane(m, &bed, LaneKind::Phase),
            Sample {
                timestamp: base + 38,
                value: -1.0,
            },
        );
        let _ = d.ingest(
            &lane(m, &bed, LaneKind::Phase),
            Sample {
                timestamp: base + 1,
                value: -1.0,
            },
        );
        d.phase_start(m, PhaseKind::Printing, std::slice::from_ref(&bed))
            .expect("phase start");
        for i in 0..24_u64 {
            let t = base + 100 + i;
            d.ingest(
                &lane(m, &bed, LaneKind::Phase),
                Sample {
                    timestamp: t,
                    value: (t as f64 * 0.21).cos(),
                },
            )
            .expect("ingest");
        }
        d.job_complete(
            m,
            CaqResult::new(vec!["q".into()], vec![0.9 + slot as f64 * 0.01], true),
        )
        .expect("job complete");
        d.rotate().expect("rotate");
    }
}

/// A populated store directory: the scenario's segments plus a WAL tail,
/// with the stream dropped (not finished).
fn populated_store() -> (MemStorage, u64) {
    let storage = MemStorage::new();
    let mut d = open(storage.clone());
    run_scenario(&mut d);
    let sealed_end = d.store().wal_index();
    drop(d);
    (storage, sealed_end)
}

/// Brute-force ground truth: every sealed sample per lane, decoded
/// straight from the raw rotation segments in file order.
fn sealed_samples(storage: &MemStorage) -> BTreeMap<LaneId, Vec<(u64, u64)>> {
    let mut lanes: BTreeMap<u32, LaneId> = BTreeMap::new();
    let mut out: BTreeMap<LaneId, Vec<(u64, u64)>> = BTreeMap::new();
    let mut names: Vec<(u64, String)> = storage
        .list()
        .expect("list")
        .into_iter()
        .filter_map(|n| {
            let i: u64 = n.strip_prefix("seg-")?.strip_suffix(".seg")?.parse().ok()?;
            Some((i, n))
        })
        .collect();
    names.sort();
    for (_, name) in names {
        let data = segment::decode(&storage.read(&name).expect("read")).expect("decode");
        for def in &data.lane_defs {
            lanes.insert(def.lane, decode_lane(&def.meta).expect("lane id"));
        }
        for chunk in &data.chunks {
            let id = lanes.get(&chunk.lane).expect("declared lane").clone();
            let samples = out.entry(id).or_default();
            for (&t, &v) in chunk.timestamps.iter().zip(chunk.values.iter()) {
                samples.push((t, v.to_bits()));
            }
        }
    }
    out
}

/// Scans `[start, end]` and returns per-lane `(ts, value bits)` pairs.
fn scan_samples(storage: &MemStorage, start: u64, end: u64) -> BTreeMap<LaneId, Vec<(u64, u64)>> {
    let reader = HistoryReader::new(snapshot(storage).expect("snapshot")).expect("reader");
    let (series, _) = reader.scan(&RangeQuery::range(start, end)).expect("scan");
    series
        .into_iter()
        .map(|ls| {
            let pairs = ls
                .series
                .timestamps()
                .iter()
                .zip(ls.series.values().iter())
                .map(|(&t, &v)| (t, v.to_bits()))
                .collect();
            (ls.id, pairs)
        })
        .collect()
}

#[test]
fn compacted_scan_equals_uncompacted_replay() {
    let (storage, sealed_end) = populated_store();
    let expected = sealed_samples(&storage);
    assert!(expected.values().map(Vec::len).sum::<usize>() > 150);

    let stats = compact(
        &storage,
        sealed_end,
        &CompactionOptions {
            l0_batch: 2,
            partition_ticks: 64,
            ..CompactionOptions::default()
        },
    )
    .expect("compact");
    assert_eq!(stats.floor, sealed_end);
    assert!(stats.l0_files >= 2, "batched into multiple files");

    // Rotation segments below the floor are gone; hist files tile 0..floor.
    let names = storage.list().expect("list");
    assert!(!names.iter().any(|n| n.starts_with("seg-")));
    assert!(names.iter().any(|n| parse_hist_name(n).is_some()));
    assert_eq!(read_floor(&storage).expect("floor"), sealed_end);

    let got = scan_samples(&storage, 0, u64::MAX);
    assert_eq!(got, expected, "full-range scan ≡ raw segment replay");
}

#[test]
fn tier_merges_preserve_scans_and_levels() {
    let (storage, sealed_end) = populated_store();
    let expected = sealed_samples(&storage);
    let stats = compact(
        &storage,
        sealed_end,
        &CompactionOptions {
            l0_batch: 1,
            fanout: 2,
            partition_ticks: 0,
            max_level: 3,
        },
    )
    .expect("compact");
    assert!(stats.tier_merges >= 1, "fanout 2 over 3 files tier-merges");

    // Exactly one covering run, with levels recorded in the footers.
    let snap = snapshot(&storage).expect("snapshot");
    for file in &snap.files {
        let level = parse_level(&file.index.extra).expect("level tag");
        assert!((1..=3).contains(&level));
    }
    assert_eq!(scan_samples(&storage, 0, u64::MAX), expected);
}

#[test]
fn range_scans_prune_and_filter_exactly() {
    let (storage, sealed_end) = populated_store();
    let expected = sealed_samples(&storage);
    compact(
        &storage,
        sealed_end,
        &CompactionOptions {
            partition_ticks: 32,
            ..CompactionOptions::default()
        },
    )
    .expect("compact");

    let reader = HistoryReader::new(snapshot(&storage).expect("snapshot")).expect("reader");
    for (start, end) in [
        (0_u64, 50_u64),
        (100, 140),
        (500, 560),
        (90, 505),
        (600, 700),
    ] {
        let want: BTreeMap<LaneId, Vec<(u64, u64)>> = expected
            .iter()
            .filter_map(|(id, samples)| {
                let inside: Vec<(u64, u64)> = samples
                    .iter()
                    .copied()
                    .filter(|&(t, _)| start <= t && t <= end)
                    .collect();
                (!inside.is_empty()).then(|| (id.clone(), inside))
            })
            .collect();
        let (series, stats) = reader.scan(&RangeQuery::range(start, end)).expect("scan");
        let got: BTreeMap<LaneId, Vec<(u64, u64)>> = series
            .into_iter()
            .map(|ls| {
                (
                    ls.id,
                    ls.series
                        .timestamps()
                        .iter()
                        .zip(ls.series.values().iter())
                        .map(|(&t, &v)| (t, v.to_bits()))
                        .collect(),
                )
            })
            .collect();
        assert_eq!(got, want, "range [{start}, {end}]");
        assert!(
            stats.chunks_pruned > 0,
            "narrow range [{start}, {end}] prunes chunks on footer bounds"
        );
        assert_eq!(
            stats.chunks_total,
            stats.chunks_pruned + stats.chunks_decoded
        );
    }

    // Lane filters restrict without losing samples.
    let (series, _) = reader
        .scan(&RangeQuery {
            start: 0,
            end: u64::MAX,
            machine: Some("m0".into()),
            sensor: None,
        })
        .expect("scan");
    assert!(!series.is_empty());
    assert!(series.iter().all(|ls| ls.id.machine == "m0"));
}

fn finish_report(storage: MemStorage) -> StreamReport {
    let (policy, config) = policy_and_config();
    let (d, _) = DurableStream::open(policy, config, storage, StoreOptions { group_commit: 1 })
        .expect("recover");
    d.finish().expect("finish")
}

#[test]
fn compaction_crash_points_recover_equivalently() {
    let (pristine, sealed_end) = populated_store();
    let expected = sealed_samples(&pristine);
    let options = CompactionOptions {
        l0_batch: 1,
        fanout: 2,
        partition_ticks: 128,
        max_level: 3,
    };

    // The detector report an uninterrupted recovery-and-finish reaches.
    let baseline = finish_report(pristine.crash_image(true));

    // Measure compaction's write volume to bound the sweep.
    let probe = pristine.crash_image(true);
    let before = probe.bytes_written();
    compact(&probe, sealed_end, &options).expect("probe compact");
    let total = probe.bytes_written() - before;
    assert!(total > 1_000, "compaction writes enough to sweep: {total}");

    let mut swept = 0;
    for offset in (0..=total).step_by(97) {
        for keep_unsynced in [false, true] {
            let image = pristine.crash_image(true);
            image.set_write_budget(Some(image.bytes_written() + offset));
            let result = compact(&image, sealed_end, &options);
            if result.is_err() {
                assert!(image.killed(), "only the injected crash may fail");
            }
            let recovered = image.crash_image(keep_unsynced);

            // Recovery (the store's own rules) + a re-run converge.
            let report = finish_report(recovered.crash_image(true));
            assert_eq!(
                format!("{:?}", report.report),
                format!("{:?}", baseline.report),
                "offset={offset} keep_unsynced={keep_unsynced}"
            );
            compact(&recovered, sealed_end, &options).expect("re-run compact");
            assert_eq!(
                scan_samples(&recovered, 0, u64::MAX),
                expected,
                "offset={offset} keep_unsynced={keep_unsynced}"
            );
            assert_eq!(read_floor(&recovered).expect("floor"), sealed_end);
            swept += 1;
        }
    }
    assert!(swept >= 20, "sweep covered {swept} crash points");
}

#[test]
fn backfill_with_original_policy_reproduces_the_report() {
    let (storage, sealed_end) = populated_store();
    let (policy, config) = policy_and_config();
    let original = finish_report(storage.crash_image(true));

    let outcome = backfill(&[&storage], &policy, config, 0, u64::MAX, None).expect("backfill");
    assert_eq!(
        format!("{:?}", outcome.report.report),
        format!("{:?}", original.report),
        "backfill under the original policy is byte-identical"
    );
    assert!(outcome.samples_replayed > 0);
    assert!(diff_reports(&original.report, &outcome.report.report).identical());

    // Compaction is invisible to backfill.
    compact(&storage, sealed_end, &CompactionOptions::default()).expect("compact");
    let after = backfill(&[&storage], &policy, config, 0, u64::MAX, None).expect("backfill");
    assert_eq!(
        format!("{:?}", after.report.report),
        format!("{:?}", original.report),
        "backfill over compacted history is byte-identical"
    );
}

#[test]
fn backfill_with_updated_spec_rescored_range() {
    let (storage, sealed_end) = populated_store();
    compact(&storage, sealed_end, &CompactionOptions::default()).expect("compact");
    let (policy, config) = policy_and_config();
    let original =
        backfill(&[&storage], &policy, config, 0, u64::MAX, None).expect("original backfill");

    // Re-detect under a different phase algorithm.
    let spec = AlgoSpec::new("sliding-z").with("window", 8);
    let rescored = backfill(&[&storage], &policy, config, 0, u64::MAX, Some(&spec))
        .expect("rescored backfill");
    let diff = diff_reports(&original.report.report, &rescored.report.report);
    assert_eq!(
        diff.added.len() + original.report.report.outliers.len() - diff.removed.len(),
        rescored.report.report.outliers.len(),
        "diff accounts for every outlier"
    );

    // A restricted range replays fewer samples but all controls.
    let windowed = backfill(&[&storage], &policy, config, 500, u64::MAX, Some(&spec))
        .expect("windowed backfill");
    assert_eq!(windowed.controls_replayed, original.controls_replayed);
    assert!(windowed.samples_replayed < original.samples_replayed);
    assert!(windowed.samples_skipped > 0);
}

#[test]
fn compaction_shrinks_the_stored_bytes() {
    let (storage, sealed_end) = populated_store();
    let seg_bytes: usize = storage
        .list()
        .expect("list")
        .iter()
        .filter(|n| n.starts_with("seg-"))
        .map(|n| storage.read(n).expect("read").len())
        .sum();
    compact(&storage, sealed_end, &CompactionOptions::default()).expect("compact");
    let hist_bytes: usize = storage
        .list()
        .expect("list")
        .iter()
        .filter(|n| parse_hist_name(n).is_some())
        .map(|n| storage.read(n).expect("read").len())
        .sum();
    assert!(
        hist_bytes < seg_bytes,
        "compressed history is smaller: {hist_bytes} vs {seg_bytes}"
    );
}
