//! Tiered compaction: sealed rotation segments → Gorilla-compressed
//! history files.
//!
//! # Protocol
//!
//! The store directory holds (in recovery order) history files
//! `hist-LO-HI.seg`, the floor marker `compaction.floor`, rotation
//! segments `seg-N.seg`, and the active WAL. The **floor** F is the
//! first rotation index not yet absorbed into history; everything below
//! it lives in hist files that tile `0..F` exactly.
//!
//! An L0 step absorbs up to [`CompactionOptions::l0_batch`] rotation
//! segments at the floor:
//!
//! 1. publish `hist-F-H.seg` (tmp → fsync → rename, via
//!    [`hierod_store::store::publish`]) — the merged, re-encoded image;
//! 2. publish `compaction.floor` = H+1 — **the commit point**;
//! 3. remove `seg-F.seg ..= seg-H.seg` — now stale.
//!
//! A crash after (1) leaves an *uncommitted* hist file (`hi >= floor`)
//! that recovery removes; a crash after (2) leaves *stale* rotation
//! segments (`index < floor`) that recovery removes. Either way the
//! directory recovers to a consistent tiling — the same
//! "highest-WAL-wins" discipline the rotation protocol uses.
//!
//! Tier merges then fold [`CompactionOptions::fanout`] *adjacent*
//! same-level hist files into one file at the next level: publish the
//! merged file (a strict superset of each input — the inputs become
//! *superseded* and recovery would remove them), then remove the
//! inputs. The floor does not move.
//!
//! # Merging
//!
//! Chunks keep their `(lane, after_control_seq)` identity so the
//! store's recovery replay — which interleaves chunks with control
//! events by sequence number — is oblivious to compaction. Within one
//! `(lane, seq)` run, sample columns are concatenated and re-split into
//! time partitions of at most [`CompactionOptions::partition_ticks`]
//! ticks. The drop counters sealed into chunks are *absolute* at seal
//! time, so each output chunk carries the counters of the input chunk
//! that provided its last sample (and the run's final chunk carries the
//! run's final counters) — replayed drop accounting is unchanged.

use std::collections::BTreeMap;
use std::io;

use hierod_store::segment::{self, ColumnEncoding, ControlRecord, LaneDef, SegmentChunk};
use hierod_store::store::{
    hist_name, parse_hist_name, publish, publish_floor, read_floor, seg_name,
};
use hierod_store::{SegmentData, SegmentDraft, Storage};

/// Footer-extension tag for the history level byte in
/// [`SegmentDraft::extra`]: `[LEVEL_TAG, level]`.
const LEVEL_TAG: u8 = 1;

/// Encodes a history level as the segment's `extra` metadata.
pub fn level_extra(level: u8) -> Vec<u8> {
    vec![LEVEL_TAG, level]
}

/// Reads the history level back out of a segment's `extra` metadata.
/// `None` for rotation segments (empty extra) or foreign metadata.
pub fn parse_level(extra: &[u8]) -> Option<u8> {
    match extra {
        [LEVEL_TAG, level] => Some(*level),
        _ => None,
    }
}

/// Tuning knobs for [`compact`].
#[derive(Debug, Clone)]
pub struct CompactionOptions {
    /// Rotation segments absorbed per L0 history file (≥ 1).
    pub l0_batch: usize,
    /// Adjacent same-level history files merged per tier step (≥ 2).
    pub fanout: usize,
    /// Maximum time span (in timestamp ticks) of one output chunk;
    /// `0` disables re-partitioning.
    pub partition_ticks: u64,
    /// Highest level tier merges may produce; level-`max_level` files
    /// are left alone.
    pub max_level: u8,
}

impl Default for CompactionOptions {
    fn default() -> Self {
        Self {
            l0_batch: 4,
            fanout: 4,
            partition_ticks: 4096,
            max_level: 3,
        }
    }
}

/// What one [`compact`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Rotation segments absorbed below the floor.
    pub segments_absorbed: usize,
    /// L0 history files published.
    pub l0_files: usize,
    /// Tier merges performed (each removes `fanout` files, adds one).
    pub tier_merges: usize,
    /// Total bytes published (hist files; excludes floor markers).
    pub bytes_written: u64,
    /// The floor after compaction: `seg-N` for `N < floor` are gone.
    pub floor: u64,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_segment<S: Storage>(storage: &S, name: &str) -> io::Result<SegmentData> {
    let bytes = storage.read(name)?;
    segment::decode(&bytes).map_err(|e| invalid(format!("{name}: {e}")))
}

/// One `(lane, after_control_seq)` run of chunks in encounter order.
struct Run {
    lane: u32,
    seq: u64,
    timestamps: Vec<u64>,
    values: Vec<f64>,
    /// `(end_index_exclusive, late_dropped, duplicates_dropped)` — the
    /// absolute counters in effect for samples before `end_index`.
    counters: Vec<(usize, u64, u64)>,
}

/// Merges decoded segments (in rotation order) into one draft, re-split
/// into `partition_ticks` time partitions.
fn merge_segments(inputs: &[SegmentData], partition_ticks: u64) -> io::Result<SegmentDraft> {
    // Lane defs: union by lane number; conflicting metadata for the
    // same lane number would make replay ambiguous.
    let mut lanes: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
    for data in inputs {
        for def in &data.lane_defs {
            match lanes.get(&def.lane) {
                None => {
                    lanes.insert(def.lane, def.meta.clone());
                }
                Some(meta) if *meta == def.meta => {}
                Some(_) => {
                    return Err(invalid(format!(
                        "lane {} redefined with different metadata",
                        def.lane
                    )))
                }
            }
        }
    }

    // Controls: rotation segments seal only the controls that arrived
    // since the previous rotation, so concatenation in rotation order
    // is the full record; sequences must stay strictly increasing.
    let mut controls: Vec<ControlRecord> = Vec::new();
    for data in inputs {
        for c in &data.controls {
            if controls.last().is_some_and(|prev| prev.seq >= c.seq) {
                return Err(invalid(format!(
                    "control sequence {} not increasing across merged segments",
                    c.seq
                )));
            }
            controls.push(c.clone());
        }
    }

    // Chunks: group into (lane, seq) runs in encounter order, keeping
    // per-sample attribution to the sealing chunk's absolute counters.
    let mut order: Vec<Run> = Vec::new();
    let mut index: BTreeMap<(u32, u64), usize> = BTreeMap::new();
    for data in inputs {
        for chunk in &data.chunks {
            let key = (chunk.lane, chunk.after_control_seq);
            let at = *index.entry(key).or_insert_with(|| {
                order.push(Run {
                    lane: chunk.lane,
                    seq: chunk.after_control_seq,
                    timestamps: Vec::new(),
                    values: Vec::new(),
                    counters: Vec::new(),
                });
                order.len() - 1
            });
            let run = match order.get_mut(at) {
                Some(run) => run,
                None => return Err(invalid("run index out of bounds".into())),
            };
            if let (Some(&last), Some(&first)) = (run.timestamps.last(), chunk.timestamps.first()) {
                if last >= first {
                    return Err(invalid(format!(
                        "lane {} seq {}: chunk timestamps overlap across segments",
                        chunk.lane, chunk.after_control_seq
                    )));
                }
            }
            run.timestamps.extend_from_slice(&chunk.timestamps);
            run.values.extend_from_slice(&chunk.values);
            run.counters.push((
                run.timestamps.len(),
                chunk.late_dropped,
                chunk.duplicates_dropped,
            ));
        }
    }

    let mut draft = SegmentDraft {
        lane_defs: lanes
            .into_iter()
            .map(|(lane, meta)| LaneDef { lane, meta })
            .collect(),
        controls,
        ..SegmentDraft::default()
    };
    for run in order {
        split_run(run, partition_ticks, &mut draft.chunks);
    }
    Ok(draft)
}

/// Splits one merged run into output chunks of at most
/// `partition_ticks` time span, assigning each chunk the absolute drop
/// counters of the input chunk that sealed its last sample.
fn split_run(run: Run, partition_ticks: u64, out: &mut Vec<SegmentChunk>) {
    let (final_late, final_dups) = run
        .counters
        .last()
        .map(|&(_, late, dups)| (late, dups))
        .unwrap_or((0, 0));
    if run.timestamps.is_empty() {
        // Drop-counter-only run: one empty chunk keeps the accounting.
        out.push(SegmentChunk {
            lane: run.lane,
            after_control_seq: run.seq,
            timestamps: Vec::new(),
            values: Vec::new(),
            late_dropped: final_late,
            duplicates_dropped: final_dups,
        });
        return;
    }

    // Partition boundaries by time span.
    let mut bounds: Vec<usize> = Vec::new();
    if partition_ticks > 0 {
        let mut start_ts = None;
        for (i, &ts) in run.timestamps.iter().enumerate() {
            match start_ts {
                None => start_ts = Some(ts),
                Some(s) if ts.saturating_sub(s) >= partition_ticks => {
                    bounds.push(i);
                    start_ts = Some(ts);
                }
                Some(_) => {}
            }
        }
    }
    bounds.push(run.timestamps.len());

    let mut lo = 0;
    let last_bound = bounds.len() - 1;
    for (b, &hi) in bounds.iter().enumerate() {
        // Counters of the input chunk that sealed sample `hi - 1`; the
        // run's last chunk carries the run's final counters so the
        // replayed totals match even when trailing input chunks were
        // empty.
        let (late, dups) = if b == last_bound {
            (final_late, final_dups)
        } else {
            run.counters
                .iter()
                .find(|&&(end, _, _)| end >= hi)
                .map(|&(_, l, d)| (l, d))
                .unwrap_or((final_late, final_dups))
        };
        out.push(SegmentChunk {
            lane: run.lane,
            after_control_seq: run.seq,
            timestamps: run.timestamps.get(lo..hi).unwrap_or_default().to_vec(),
            values: run.values.get(lo..hi).unwrap_or_default().to_vec(),
            late_dropped: late,
            duplicates_dropped: dups,
        });
        lo = hi;
    }
}

/// Merges, re-encodes, and publishes one history file covering
/// rotation range `lo..=hi` at `level`; returns its byte size.
fn publish_hist<S: Storage>(
    storage: &S,
    inputs: &[SegmentData],
    lo: u64,
    hi: u64,
    level: u8,
    partition_ticks: u64,
) -> io::Result<u64> {
    let mut draft = merge_segments(inputs, partition_ticks)?;
    draft.extra = level_extra(level);
    let bytes = draft
        .encode_as(ColumnEncoding::Gorilla)
        .map_err(|e| invalid(format!("{}: {e}", hist_name(lo, hi))))?;
    publish(storage, &hist_name(lo, hi), &bytes)?;
    Ok(bytes.len() as u64)
}

/// One live history file during tier planning.
struct HistFile {
    lo: u64,
    hi: u64,
    level: u8,
}

/// Lists committed history files sorted by range start, with levels.
fn live_hist_files<S: Storage>(storage: &S, floor: u64) -> io::Result<Vec<HistFile>> {
    let mut files: Vec<HistFile> = Vec::new();
    for name in storage.list()? {
        let Some((lo, hi)) = parse_hist_name(&name) else {
            continue;
        };
        if hi >= floor {
            // Uncommitted leftover from a crashed L0 step; recovery
            // removes it — compaction just ignores it.
            continue;
        }
        let bytes = storage.read(&name)?;
        let index = segment::decode_index(&bytes).map_err(|e| invalid(format!("{name}: {e}")))?;
        let level = parse_level(&index.extra).unwrap_or(1);
        files.push(HistFile { lo, hi, level });
    }
    files.sort_by_key(|f| (f.lo, f.hi));
    // Drop superseded files (strict subset of a larger committed file),
    // mirroring recovery's liveness rule.
    let keep: Vec<bool> = files
        .iter()
        .map(|f| {
            !files
                .iter()
                .any(|g| g.lo <= f.lo && f.hi <= g.hi && (g.hi - g.lo) > (f.hi - f.lo))
        })
        .collect();
    Ok(files
        .into_iter()
        .zip(keep)
        .filter_map(|(f, k)| k.then_some(f))
        .collect())
}

/// Runs compaction over a sealed store directory.
///
/// `sealed_end` is the first rotation index **not** yet sealed — i.e.
/// the store's current WAL index
/// ([`DurableStream::sealed_storage`](hierod_stream::DurableStream::sealed_storage)
/// hands out exactly this pair). All rotation segments below it are
/// absorbed into L0 history files, then adjacent same-level files are
/// tier-merged up to [`CompactionOptions::max_level`].
///
/// The caller must be the only compactor for the directory, but the
/// owning store may keep appending to its WAL concurrently: compaction
/// only touches files strictly below `sealed_end`.
///
/// # Errors
/// Storage I/O failures (including injected crashes) and corrupt
/// segment images. Interrupted runs are safe: recovery (or the next
/// `compact` call) resumes from the published floor.
pub fn compact<S: Storage>(
    storage: &S,
    sealed_end: u64,
    options: &CompactionOptions,
) -> io::Result<CompactionStats> {
    if options.l0_batch == 0 {
        return Err(invalid("l0_batch must be at least 1".into()));
    }
    if options.fanout < 2 {
        return Err(invalid("fanout must be at least 2".into()));
    }
    let mut stats = CompactionStats::default();
    let mut floor = read_floor(storage)?;

    // L0: absorb rotation segments at the floor, batch by batch.
    while floor < sealed_end {
        let hi = (floor + options.l0_batch as u64).min(sealed_end) - 1;
        let mut inputs = Vec::with_capacity((hi + 1 - floor) as usize);
        for i in floor..=hi {
            inputs.push(read_segment(storage, &seg_name(i))?);
        }
        stats.bytes_written +=
            publish_hist(storage, &inputs, floor, hi, 1, options.partition_ticks)?;
        publish_floor(storage, hi + 1)?; // commit point
        for i in floor..=hi {
            storage.remove(&seg_name(i))?;
        }
        stats.segments_absorbed += inputs.len();
        stats.l0_files += 1;
        floor = hi + 1;
    }
    stats.floor = floor;

    // Tier merges: fold `fanout` adjacent same-level files into one
    // file at the next level, repeating until no group is full.
    loop {
        let files = live_hist_files(storage, floor)?;
        let Some(group) = find_merge_group(&files, options) else {
            break;
        };
        let Some((first, last)) = group.first().zip(group.last()) else {
            break;
        };
        let (lo, hi) = (first.lo, last.hi);
        let level = first.level + 1;
        let mut inputs = Vec::with_capacity(group.len());
        for f in group {
            inputs.push(read_segment(storage, &hist_name(f.lo, f.hi))?);
        }
        stats.bytes_written +=
            publish_hist(storage, &inputs, lo, hi, level, options.partition_ticks)?;
        // The merged file strictly contains each input, so a crash here
        // leaves them superseded — recovery removes them just like the
        // explicit removal below does.
        for f in group {
            storage.remove(&hist_name(f.lo, f.hi))?;
        }
        stats.tier_merges += 1;
    }
    Ok(stats)
}

/// Finds the first run of `fanout` adjacent files sharing a level below
/// `max_level`.
fn find_merge_group<'a>(
    files: &'a [HistFile],
    options: &CompactionOptions,
) -> Option<&'a [HistFile]> {
    if files.len() < options.fanout {
        return None;
    }
    for start in 0..=(files.len() - options.fanout) {
        let group = files.get(start..start + options.fanout)?;
        let level = group.first()?.level;
        if level >= options.max_level {
            continue;
        }
        let uniform = group.iter().all(|f| f.level == level);
        let adjacent = group.windows(2).all(|w| match w {
            [a, b] => b.lo == a.hi + 1,
            _ => true,
        });
        if uniform && adjacent {
            return Some(group);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_extra_round_trips() {
        for level in [0u8, 1, 2, 255] {
            assert_eq!(parse_level(&level_extra(level)), Some(level));
        }
        assert_eq!(parse_level(&[]), None);
        assert_eq!(parse_level(&[2, 1]), None);
        assert_eq!(parse_level(&[1, 1, 0]), None);
    }

    fn chunk(lane: u32, seq: u64, ts: &[u64], late: u64, dups: u64) -> SegmentChunk {
        SegmentChunk {
            lane,
            after_control_seq: seq,
            timestamps: ts.to_vec(),
            values: ts.iter().map(|&t| t as f64 * 0.5).collect(),
            late_dropped: late,
            duplicates_dropped: dups,
        }
    }

    fn data(chunks: Vec<SegmentChunk>, controls: Vec<(u64, &[u8])>) -> SegmentData {
        let draft = SegmentDraft {
            lane_defs: vec![LaneDef {
                lane: 0,
                meta: b"lane-0".to_vec(),
            }],
            controls: controls
                .into_iter()
                .map(|(seq, payload)| ControlRecord {
                    seq,
                    payload: payload.to_vec(),
                })
                .collect(),
            chunks,
            extra: Vec::new(),
        };
        let bytes = draft.encode().expect("encode");
        segment::decode(&bytes).expect("decode")
    }

    #[test]
    fn merge_concatenates_runs_and_splits_partitions() {
        let a = data(vec![chunk(0, 1, &[0, 10, 20], 1, 0)], vec![(1, b"up")]);
        let b = data(vec![chunk(0, 1, &[30, 120, 130], 4, 2)], vec![(2, b"job")]);
        let draft = merge_segments(&[a, b], 100).expect("merge");
        assert_eq!(draft.controls.len(), 2);
        assert_eq!(draft.chunks.len(), 2);
        // First partition spans [0, 100): samples 0..4 — its last
        // sample (ts 30) was sealed by the second input chunk.
        assert_eq!(draft.chunks[0].timestamps, vec![0, 10, 20, 30]);
        assert_eq!(draft.chunks[0].late_dropped, 4);
        assert_eq!(draft.chunks[0].duplicates_dropped, 2);
        // Second partition gets the run's final counters.
        assert_eq!(draft.chunks[1].timestamps, vec![120, 130]);
        assert_eq!(draft.chunks[1].late_dropped, 4);
    }

    #[test]
    fn merge_keeps_first_partition_counters_when_split_mid_chunk() {
        let a = data(vec![chunk(0, 1, &[0, 10], 7, 3)], vec![]);
        let b = data(vec![chunk(0, 1, &[200, 210], 9, 5)], vec![]);
        let draft = merge_segments(&[a, b], 50).expect("merge");
        assert_eq!(draft.chunks.len(), 2);
        // Partition 1 ends at the first input chunk's seal point.
        assert_eq!(draft.chunks[0].late_dropped, 7);
        assert_eq!(draft.chunks[0].duplicates_dropped, 3);
        assert_eq!(draft.chunks[1].late_dropped, 9);
        assert_eq!(draft.chunks[1].duplicates_dropped, 5);
    }

    #[test]
    fn empty_run_keeps_final_drop_counters() {
        let a = data(vec![chunk(0, 1, &[], 2, 0)], vec![]);
        let b = data(vec![chunk(0, 1, &[], 6, 1)], vec![]);
        let draft = merge_segments(&[a, b], 0).expect("merge");
        assert_eq!(draft.chunks.len(), 1);
        assert!(draft.chunks[0].timestamps.is_empty());
        assert_eq!(draft.chunks[0].late_dropped, 6);
        assert_eq!(draft.chunks[0].duplicates_dropped, 1);
    }

    #[test]
    fn overlapping_runs_are_rejected() {
        let a = data(vec![chunk(0, 1, &[0, 50], 0, 0)], vec![]);
        let b = data(vec![chunk(0, 1, &[50, 60], 0, 0)], vec![]);
        assert!(merge_segments(&[a, b], 0).is_err());
    }

    #[test]
    fn conflicting_lane_defs_are_rejected() {
        let a = data(vec![], vec![]);
        let mut b = data(vec![], vec![]);
        b.lane_defs[0].meta = b"other".to_vec();
        assert!(merge_segments(&[a, b], 0).is_err());
    }

    #[test]
    fn non_increasing_controls_are_rejected() {
        let a = data(vec![], vec![(5, b"x")]);
        let b = data(vec![], vec![(5, b"y")]);
        assert!(merge_segments(&[a, b], 0).is_err());
    }
}
