//! # hierod-history
//!
//! The historical query tier over `hierod-store`'s sealed segments:
//! everything that happens to plant data *after* it stops being hot.
//!
//! The durability layer ([`hierod_store::store`]) rotates the live WAL
//! into one raw segment per rotation — ideal for crash recovery, poor
//! for history: a month of ingest is thousands of small files with
//! ~21 bytes per sample. This crate adds the cold path on top, without
//! changing a single byte the hot path writes:
//!
//! * [`compact`] — tiered compaction. Sealed rotation segments
//!   (`seg-N.seg`) merge into per-level history files
//!   (`hist-LO-HI.seg`) whose chunk columns are re-encoded with the
//!   Gorilla-style codecs ([`hierod_store::gorilla`]). The merge is
//!   crash-safe under the store's own recovery rules: every commit
//!   point is a tmp → fsync → rename publish, and a crash at any
//!   intermediate step recovers to either the old or the new state.
//! * [`reader`] — [`HistoryReader`]: time-range scans over a read-only
//!   snapshot of a store directory. Chunk min/max footer metadata
//!   prunes whole chunks without touching (or checksumming) their
//!   columns; decoded columns are adopted into
//!   [`TimeSeries`](hierod_timeseries::TimeSeries) zero-copy where the
//!   range allows.
//! * [`backfill`] — re-detection over stored ranges: replay a plant's
//!   stored stream through a fresh detector, optionally with a
//!   different phase-level algorithm, and diff the outlier report
//!   against what the original policy produces. "What would last
//!   month's report have looked like under `sliding-z(window=64)`?"
//!   becomes a pure function of the store directory.
//!
//! The crate is std-only and panic-free in library code (the `xtask`
//! panic lint holds it at a zero budget, like the store beneath it).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod backfill;
pub mod compact;
pub mod reader;

pub use backfill::{backfill, diff_reports, point_algo_from_spec, BackfillDiff, BackfillOutcome};
pub use compact::{compact, CompactionOptions, CompactionStats};
pub use reader::{snapshot, HistoryReader, LaneSeries, RangeQuery, ScanStats, StoreSnapshot};
