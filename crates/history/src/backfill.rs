//! Backfill re-detection: replay a stored time range through a fresh
//! detector, optionally under a different phase-level algorithm, and
//! diff the resulting outlier report against another run.
//!
//! The store keeps everything the detector ever saw — control events
//! and released samples in sealed files, the still-hot tail in the
//! WAL. [`backfill`] reassembles that record across a plant's shards
//! into one globally ordered stream and drives an unsharded
//! [`StreamDetector`] over it:
//!
//! * control events replay in sequence order (they are broadcast to
//!   every shard, so duplicates across shards collapse by sequence
//!   number);
//! * sealed chunk samples replay right after the control that opened
//!   their pipeline (the chunk's `after_control_seq` tag), exactly as
//!   store recovery does;
//! * WAL-tail samples replay after the last control journalled before
//!   them.
//!
//! Shard-merged live reports are pinned byte-identical to an unsharded
//! run, so replaying the full range with the original policy
//! reproduces the original report — and replaying with a different
//! [`AlgoSpec`] answers "what would that month have looked like under
//! sliding-z?" without touching the live plant. [`diff_reports`]
//! compares the two as multisets of outliers (keyed by their debug
//! form, so NaN scores cannot make an outlier unequal to itself).

use std::collections::{BTreeMap, BTreeSet};
use std::io;

use hierod_core::{AlgorithmPolicy, HierOutlier, HierReport, PhaseChoice, PointAlgo};
use hierod_detect::engine::AlgoSpec;
use hierod_detect::{DetectError, Result};
use hierod_store::{segment, Storage, WalRecord};
use hierod_stream::codec::{decode_control, decode_lane};
use hierod_stream::{ControlEvent, LaneId, Sample, StreamConfig, StreamDetector, StreamReport};

use crate::reader::{snapshot, StoreSnapshot};

fn substrate(e: io::Error) -> DetectError {
    DetectError::Substrate(e.to_string())
}

/// Replay order within one control sequence number: the control itself,
/// then every sample attributed to it.
const ORDER_CONTROL: u8 = 0;
const ORDER_SAMPLE: u8 = 1;

enum Payload {
    Control(ControlEvent),
    Sample(LaneId, Sample),
}

/// Translates a phase-level [`AlgoSpec`] back into the [`PointAlgo`]
/// it names — the inverse of [`PointAlgo::spec`].
///
/// # Errors
/// An unknown algorithm name, or parameter values of the wrong shape.
pub fn point_algo_from_spec(spec: &AlgoSpec) -> Result<PointAlgo> {
    match spec.name.as_str() {
        "ar" => Ok(PointAlgo::Autoregressive {
            order: spec.get_usize("order", 3)?,
        }),
        "sliding-z" => Ok(PointAlgo::SlidingZ {
            window: spec.get_usize("window", 48)?,
        }),
        "global-z" => Ok(PointAlgo::GlobalZ),
        "robust-z" => Ok(PointAlgo::RobustZ),
        "iqr" => Ok(PointAlgo::Iqr),
        "deviants" => Ok(PointAlgo::Deviants {
            buckets: spec.get_usize("buckets", 4)?,
        }),
        other => Err(DetectError::invalid(
            "spec",
            format!("unknown phase-level algorithm `{other}`"),
        )),
    }
}

/// The result of one backfill run.
#[derive(Debug, Clone)]
pub struct BackfillOutcome {
    /// The report the detector produced over the replayed range.
    pub report: StreamReport,
    /// Control events replayed (all of them — the job/phase skeleton
    /// must exist regardless of the sample range).
    pub controls_replayed: u64,
    /// Samples inside the requested range that were replayed.
    pub samples_replayed: u64,
    /// Samples outside the requested range that were skipped.
    pub samples_skipped: u64,
}

/// Collects one shard's snapshot into the global item list.
fn collect_shard(
    snap: &StoreSnapshot,
    items: &mut Vec<(u64, u8, Payload)>,
    seen_controls: &mut BTreeSet<u64>,
) -> Result<()> {
    let bad = |msg: String| DetectError::Substrate(msg);
    // Lane numbers are shard-local; resolve them to identities as the
    // shard's record declares them.
    let mut lanes: BTreeMap<u32, LaneId> = BTreeMap::new();
    // The WAL tail's samples belong to the last control journalled
    // before them; seed the running sequence with the sealed maximum.
    let mut running_seq = 0u64;

    for file in &snap.files {
        for def in &file.index.lane_defs {
            let id = decode_lane(&def.meta)
                .ok_or_else(|| bad(format!("{}: undecodable lane metadata", file.name)))?;
            lanes.insert(def.lane, id);
        }
        for control in &file.index.controls {
            running_seq = running_seq.max(control.seq);
            if !seen_controls.insert(control.seq) {
                continue; // broadcast duplicate from another shard
            }
            let event = decode_control(&control.payload)
                .ok_or_else(|| bad(format!("{}: undecodable control payload", file.name)))?;
            items.push((control.seq, ORDER_CONTROL, Payload::Control(event)));
        }
        for meta in &file.index.chunks {
            let id = lanes
                .get(&meta.lane)
                .ok_or_else(|| bad(format!("{}: chunk on undeclared lane", file.name)))?
                .clone();
            let chunk = segment::decode_chunk(&file.bytes, meta)
                .map_err(|e| bad(format!("{}: {e}", file.name)))?;
            for (&t, &v) in chunk.timestamps.iter().zip(chunk.values.iter()) {
                items.push((
                    meta.after_control_seq,
                    ORDER_SAMPLE,
                    Payload::Sample(
                        id.clone(),
                        Sample {
                            timestamp: t,
                            value: v,
                        },
                    ),
                ));
            }
        }
    }

    for record in &snap.wal {
        match record {
            WalRecord::LaneDef { lane, meta } => {
                let id = decode_lane(meta)
                    .ok_or_else(|| bad("wal: undecodable lane metadata".into()))?;
                lanes.insert(*lane, id);
            }
            WalRecord::Control { seq, payload } => {
                running_seq = running_seq.max(*seq);
                if !seen_controls.insert(*seq) {
                    continue;
                }
                let event = decode_control(payload)
                    .ok_or_else(|| bad("wal: undecodable control payload".into()))?;
                items.push((*seq, ORDER_CONTROL, Payload::Control(event)));
            }
            WalRecord::Sample {
                lane,
                timestamp,
                value,
            } => {
                let id = lanes
                    .get(lane)
                    .ok_or_else(|| bad("wal: sample on undeclared lane".into()))?
                    .clone();
                items.push((
                    running_seq,
                    ORDER_SAMPLE,
                    Payload::Sample(
                        id,
                        Sample {
                            timestamp: *timestamp,
                            value: *value,
                        },
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Replays the stored record of a plant (all `shards` of one tenant)
/// through a fresh unsharded detector, ingesting only samples with
/// timestamps in `[start, end]`.
///
/// With the plant's original `policy`/`config` and the full range, the
/// replay reproduces the plant's own finished report. Pass a `spec` to
/// re-detect under a different phase-level algorithm instead.
///
/// # Errors
/// Snapshot failures (corrupt files, inconsistent directory), records
/// that do not decode, or a control replay the detector rejects.
/// Sample-level ingest rejections (duplicates journalled in the WAL
/// tail, late arrivals) are skipped, exactly as store recovery skips
/// them.
pub fn backfill<S: Storage>(
    shards: &[&S],
    policy: &AlgorithmPolicy,
    config: StreamConfig,
    start: u64,
    end: u64,
    spec: Option<&AlgoSpec>,
) -> Result<BackfillOutcome> {
    let mut policy = policy.clone();
    if let Some(spec) = spec {
        policy.phase = PhaseChoice::PerSeries(point_algo_from_spec(spec)?);
    }

    let mut items: Vec<(u64, u8, Payload)> = Vec::new();
    let mut seen_controls = BTreeSet::new();
    for storage in shards {
        let snap = snapshot(*storage).map_err(substrate)?;
        collect_shard(&snap, &mut items, &mut seen_controls)?;
    }
    // Stable: within one (seq, order) slot, sealed-before-WAL and file
    // order survive — the same interleaving recovery replays.
    items.sort_by_key(|&(seq, order, _)| (seq, order));

    let mut controls_replayed = 0;
    let mut samples_replayed = 0;
    let mut samples_skipped = 0;
    let mut detector = StreamDetector::new(policy, config)?;
    for (_, _, payload) in items {
        match payload {
            Payload::Control(event) => {
                detector.apply(&event)?;
                controls_replayed += 1;
            }
            Payload::Sample(id, sample) => {
                if sample.timestamp < start || sample.timestamp > end {
                    samples_skipped += 1;
                    continue;
                }
                // Duplicates and stragglers journalled in the WAL tail
                // are the detector's call to reject, same as recovery.
                if detector.ingest(&id, sample).is_ok() {
                    samples_replayed += 1;
                } else {
                    samples_skipped += 1;
                }
            }
        }
    }
    Ok(BackfillOutcome {
        report: detector.finish()?,
        controls_replayed,
        samples_replayed,
        samples_skipped,
    })
}

/// How two reports' outlier multisets differ.
#[derive(Debug, Clone, Default)]
pub struct BackfillDiff {
    /// Outliers in the replayed report but not the original.
    pub added: Vec<HierOutlier>,
    /// Outliers in the original report but not the replayed one.
    pub removed: Vec<HierOutlier>,
}

impl BackfillDiff {
    /// `true` when the two reports found exactly the same outliers.
    pub fn identical(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Diffs two reports as multisets of outliers keyed by their debug
/// form (bitwise on scores: an outlier always equals itself, NaN or
/// not).
pub fn diff_reports(original: &HierReport, replayed: &HierReport) -> BackfillDiff {
    let mut counts: BTreeMap<String, i64> = BTreeMap::new();
    for o in &original.outliers {
        *counts.entry(format!("{o:?}")).or_default() -= 1;
    }
    for o in &replayed.outliers {
        *counts.entry(format!("{o:?}")).or_default() += 1;
    }
    let mut diff = BackfillDiff::default();
    for o in &replayed.outliers {
        let n = counts.entry(format!("{o:?}")).or_default();
        if *n > 0 {
            *n -= 1;
            diff.added.push(o.clone());
        }
    }
    for o in &original.outliers {
        let n = counts.entry(format!("{o:?}")).or_default();
        if *n < 0 {
            *n += 1;
            diff.removed.push(o.clone());
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierod_hierarchy::Level;

    fn outlier(outlierness: f64) -> HierOutlier {
        HierOutlier {
            level: Level::Phase,
            machine: "m0".into(),
            job: Some("j0".into()),
            phase: None,
            sensor: Some("m0.bed".into()),
            index: Some(3),
            timestamp: Some(7),
            outlierness,
            support: 0.5,
            global_score: 2,
        }
    }

    #[test]
    fn spec_round_trips_point_algos() {
        for algo in [
            PointAlgo::Autoregressive { order: 5 },
            PointAlgo::SlidingZ { window: 16 },
            PointAlgo::GlobalZ,
            PointAlgo::RobustZ,
            PointAlgo::Iqr,
            PointAlgo::Deviants { buckets: 8 },
        ] {
            assert_eq!(point_algo_from_spec(&algo.spec()).expect("inverse"), algo);
        }
        assert!(point_algo_from_spec(&AlgoSpec::new("pca")).is_err());
    }

    #[test]
    fn diff_is_a_multiset_diff() {
        let a = HierReport {
            outliers: vec![outlier(1.0), outlier(1.0), outlier(2.0)],
            warnings: vec![],
        };
        let b = HierReport {
            outliers: vec![outlier(1.0), outlier(3.0)],
            warnings: vec![],
        };
        let diff = diff_reports(&a, &b);
        assert_eq!(diff.added.len(), 1); // one outlier(3.0)
        assert_eq!(diff.removed.len(), 2); // one outlier(1.0), one outlier(2.0)
        assert!(!diff.identical());
        assert!(diff_reports(&a, &a).identical());
    }

    #[test]
    fn nan_scores_do_not_break_the_diff() {
        let a = HierReport {
            outliers: vec![outlier(f64::NAN)],
            warnings: vec![],
        };
        assert!(diff_reports(&a, &a.clone()).identical());
    }
}
