//! Read-only snapshots of a store directory and pruned time-range
//! scans over them.
//!
//! [`snapshot`] applies the store's recovery liveness rules — committed
//! history files tiling `0..floor`, live rotation segments
//! `floor..wal_index`, the highest WAL — **without mutating anything**:
//! uncommitted or superseded files are skipped, not removed, so a
//! reader can run against a directory whose owning store is still
//! alive.
//!
//! [`HistoryReader`] serves range scans from such a snapshot. Only the
//! footer index of each file is decoded up front; chunk columns are
//! decoded lazily, and the footer's per-chunk `min_ts`/`max_ts` bounds
//! prune chunks that cannot intersect the query range without reading
//! (or checksumming) a single column byte. When one chunk alone covers
//! the queried range of a lane, its `Arc` columns are adopted into the
//! result [`TimeSeries`] zero-copy.
//!
//! Scans cover **sealed** data only — history files and rotation
//! segments. The active WAL tail is raw journal bytes (it may contain
//! samples the detector later rejected as duplicates), so it is
//! exposed on the snapshot for replay-style consumers
//! ([`crate::backfill`]) but never spliced into scan results.

use std::collections::BTreeMap;
use std::io;

use hierod_store::segment::{self, ChunkMeta, SegmentIndex};
use hierod_store::store::{parse_hist_name, read_floor, seg_name, FLOOR_NAME};
use hierod_store::{wal, Storage, WalRecord};
use hierod_stream::codec::decode_lane;
use hierod_stream::LaneId;
use hierod_timeseries::TimeSeries;

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// One sealed file in a snapshot: raw bytes plus the verified footer.
#[derive(Debug, Clone)]
pub struct SegmentFile {
    /// File name within the store directory.
    pub name: String,
    /// The full file image (columns are decoded lazily out of it).
    pub bytes: Vec<u8>,
    /// The verified footer index.
    pub index: SegmentIndex,
}

/// A consistent read-only view of one store directory.
#[derive(Debug, Clone, Default)]
pub struct StoreSnapshot {
    /// Live sealed files in replay order: history files by range start,
    /// then rotation segments by index.
    pub files: Vec<SegmentFile>,
    /// Valid records of the active WAL tail (raw journal — may include
    /// samples the detector rejected).
    pub wal: Vec<WalRecord>,
    /// The compaction floor at snapshot time.
    pub floor: u64,
    /// The active WAL index at snapshot time.
    pub wal_index: u64,
}

fn read_index<S: Storage>(storage: &S, name: &str) -> io::Result<SegmentFile> {
    let bytes = storage.read(name)?;
    let index = segment::decode_index(&bytes).map_err(|e| invalid(format!("{name}: {e}")))?;
    Ok(SegmentFile {
        name: name.to_string(),
        bytes,
        index,
    })
}

/// Takes a read-only snapshot of a store directory, applying the same
/// liveness rules as [`hierod_store::Store::open`] recovery (highest
/// WAL wins; history files tile `0..floor`; rotation segments cover
/// `floor..wal_index`) without repairing anything.
///
/// # Errors
/// Storage I/O failures; corrupt footers; a directory whose live files
/// do not tile their expected ranges (a state recovery would also
/// reject).
pub fn snapshot<S: Storage>(storage: &S) -> io::Result<StoreSnapshot> {
    let names = storage.list()?;
    let floor = read_floor(storage)?;

    // Committed, non-superseded history files.
    let all_hist: Vec<(u64, u64)> = names.iter().filter_map(|n| parse_hist_name(n)).collect();
    let mut hist: Vec<(u64, u64)> = all_hist
        .iter()
        .copied()
        .filter(|&(lo, hi)| {
            hi < floor
                && !all_hist
                    .iter()
                    .any(|&(l2, h2)| l2 <= lo && hi <= h2 && (h2 - l2) > (hi - lo) && h2 < floor)
        })
        .collect();
    hist.sort_unstable();
    let mut next_expected = 0;
    for &(lo, hi) in &hist {
        if lo != next_expected {
            return Err(invalid(format!(
                "history run mismatch: expected range starting at {next_expected}, found hist-{lo}-{hi}"
            )));
        }
        next_expected = hi + 1;
    }
    if next_expected != floor {
        return Err(invalid(format!(
            "history run mismatch: files cover 0..{next_expected} but {FLOOR_NAME} is {floor}"
        )));
    }

    // Live rotation segments and the active WAL.
    let mut segs: Vec<u64> = names
        .iter()
        .filter_map(|n| {
            n.strip_prefix("seg-")?
                .strip_suffix(".seg")?
                .parse::<u64>()
                .ok()
        })
        .filter(|&i| i >= floor)
        .collect();
    segs.sort_unstable();
    let wal_max: Option<u64> = names
        .iter()
        .filter_map(|n| n.strip_prefix("wal-")?.strip_suffix(".log")?.parse().ok())
        .max();
    let wal_index = match wal_max {
        Some(w) => w,
        None => segs.last().map(|&s| s + 1).unwrap_or(0).max(floor),
    };
    let expected: Vec<u64> = (floor..wal_index).collect();
    if segs != expected {
        return Err(invalid(format!(
            "rotation segments not contiguous: expected seg-{floor}..seg-{wal_index}"
        )));
    }

    let mut files = Vec::with_capacity(hist.len() + segs.len());
    for &(lo, hi) in &hist {
        files.push(read_index(
            storage,
            &hierod_store::store::hist_name(lo, hi),
        )?);
    }
    for &i in &segs {
        files.push(read_index(storage, &seg_name(i))?);
    }

    let wal = match wal_max {
        None => Vec::new(),
        Some(w) => wal::scan(&storage.read(&format!("wal-{w}.log"))?).records,
    };

    Ok(StoreSnapshot {
        files,
        wal,
        floor,
        wal_index,
    })
}

/// A time-range query over the sealed history.
#[derive(Debug, Clone, Default)]
pub struct RangeQuery {
    /// First timestamp of interest (inclusive).
    pub start: u64,
    /// Last timestamp of interest (inclusive).
    pub end: u64,
    /// Restrict to lanes of one machine.
    pub machine: Option<String>,
    /// Restrict to lanes of one sensor.
    pub sensor: Option<String>,
}

impl RangeQuery {
    /// A query over `[start, end]` with no lane restriction.
    pub fn range(start: u64, end: u64) -> Self {
        Self {
            start,
            end,
            machine: None,
            sensor: None,
        }
    }

    fn matches(&self, id: &LaneId) -> bool {
        self.machine.as_deref().map_or(true, |m| m == id.machine)
            && self.sensor.as_deref().map_or(true, |s| s == id.sensor)
    }
}

/// One lane's samples within a scanned range.
#[derive(Debug, Clone)]
pub struct LaneSeries {
    /// The lane the samples came from.
    pub id: LaneId,
    /// The samples within the range, named after the sensor.
    pub series: TimeSeries,
}

/// What a scan touched: the pruning ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Chunks belonging to lanes the query selected.
    pub chunks_total: usize,
    /// Chunks skipped on footer `min_ts`/`max_ts` bounds alone.
    pub chunks_pruned: usize,
    /// Chunks whose columns were decoded and checksummed.
    pub chunks_decoded: usize,
    /// Samples returned across all lanes.
    pub samples: u64,
}

/// Serves pruned time-range scans from a [`StoreSnapshot`].
#[derive(Debug, Clone)]
pub struct HistoryReader {
    snapshot: StoreSnapshot,
    lanes: BTreeMap<u32, LaneId>,
}

impl HistoryReader {
    /// Builds a reader over a snapshot, resolving the union of every
    /// file's lane declarations.
    ///
    /// # Errors
    /// Lane metadata that does not decode as a [`LaneId`], or one lane
    /// number declared with two different identities.
    pub fn new(snapshot: StoreSnapshot) -> io::Result<Self> {
        let mut lanes: BTreeMap<u32, LaneId> = BTreeMap::new();
        for file in &snapshot.files {
            for def in &file.index.lane_defs {
                let id = decode_lane(&def.meta)
                    .ok_or_else(|| invalid(format!("{}: undecodable lane metadata", file.name)))?;
                match lanes.get(&def.lane) {
                    None => {
                        lanes.insert(def.lane, id);
                    }
                    Some(prev) if *prev == id => {}
                    Some(_) => {
                        return Err(invalid(format!(
                            "{}: lane {} redeclared with a different identity",
                            file.name, def.lane
                        )))
                    }
                }
            }
        }
        Ok(Self { snapshot, lanes })
    }

    /// The snapshot this reader serves from.
    pub fn snapshot(&self) -> &StoreSnapshot {
        &self.snapshot
    }

    /// The lanes declared across the snapshot.
    pub fn lanes(&self) -> &BTreeMap<u32, LaneId> {
        &self.lanes
    }

    /// Scans the sealed history for samples in `query`'s time range,
    /// one series per selected lane (lanes with no samples in range are
    /// omitted). Chunks outside the range are pruned on footer metadata
    /// alone; a lane served entirely by one chunk inside the range
    /// adopts that chunk's columns zero-copy.
    ///
    /// # Errors
    /// Column corruption in a chunk the range forced us to decode, or
    /// samples that are not strictly time-ordered across a lane's
    /// chunks (sealed data is always ordered; damage is corruption).
    pub fn scan(&self, query: &RangeQuery) -> io::Result<(Vec<LaneSeries>, ScanStats)> {
        let mut stats = ScanStats::default();
        // (file index, chunk meta) per selected lane, in replay order.
        let mut per_lane: BTreeMap<u32, Vec<(usize, ChunkMeta)>> = BTreeMap::new();
        for (f, file) in self.snapshot.files.iter().enumerate() {
            for meta in &file.index.chunks {
                let Some(id) = self.lanes.get(&meta.lane) else {
                    continue;
                };
                if !query.matches(id) {
                    continue;
                }
                stats.chunks_total += 1;
                let overlaps =
                    meta.count > 0 && meta.min_ts <= query.end && meta.max_ts >= query.start;
                if !overlaps {
                    stats.chunks_pruned += 1;
                    continue;
                }
                per_lane
                    .entry(meta.lane)
                    .or_default()
                    .push((f, meta.clone()));
            }
        }

        let mut out = Vec::new();
        for (lane, chunks) in per_lane {
            let Some(id) = self.lanes.get(&lane) else {
                continue;
            };
            let series = self.assemble(id, &chunks, query, &mut stats)?;
            if let Some(series) = series {
                stats.samples += series.len() as u64;
                out.push(LaneSeries {
                    id: id.clone(),
                    series,
                });
            }
        }
        Ok((out, stats))
    }

    /// Decodes one lane's surviving chunks into a series, taking the
    /// zero-copy path when a single chunk covers the range.
    fn assemble(
        &self,
        id: &LaneId,
        chunks: &[(usize, ChunkMeta)],
        query: &RangeQuery,
        stats: &mut ScanStats,
    ) -> io::Result<Option<TimeSeries>> {
        let mut decoded = Vec::with_capacity(chunks.len());
        for (f, meta) in chunks {
            let file = self
                .snapshot
                .files
                .get(*f)
                .ok_or_else(|| invalid("file index out of bounds".into()))?;
            let chunk = segment::decode_chunk(&file.bytes, meta)
                .map_err(|e| invalid(format!("{}: {e}", file.name)))?;
            stats.chunks_decoded += 1;
            decoded.push(chunk);
        }

        // Zero-copy adoption: one chunk, fully inside the range.
        if let [only] = decoded.as_slice() {
            let inside = only
                .timestamps
                .first()
                .zip(only.timestamps.last())
                .is_some_and(|(&min, &max)| query.start <= min && max <= query.end);
            if inside {
                let series = TimeSeries::from_shared(
                    id.sensor.clone(),
                    only.timestamps.clone(),
                    only.values.clone(),
                )
                .map_err(|e| invalid(format!("lane {}: {e}", only.lane)))?;
                return Ok(Some(series));
            }
        }

        let mut timestamps: Vec<u64> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        for chunk in &decoded {
            for (&t, &v) in chunk.timestamps.iter().zip(chunk.values.iter()) {
                if t < query.start || t > query.end {
                    continue;
                }
                if timestamps.last().is_some_and(|&prev| prev >= t) {
                    return Err(invalid(format!(
                        "lane {}: samples not strictly time-ordered across chunks",
                        chunk.lane
                    )));
                }
                timestamps.push(t);
                values.push(v);
            }
        }
        if timestamps.is_empty() {
            return Ok(None);
        }
        let series = TimeSeries::from_shared(id.sensor.clone(), timestamps.into(), values.into())
            .map_err(|e| invalid(format!("lane scan: {e}")))?;
        Ok(Some(series))
    }
}
