//! Model-checked interleavings of the work-stealing [`TaskPool`].
//!
//! Run with `cargo test -p hierod-detect --features loom --test loom_pool`.
//! Each test body executes under `loom::model`, which replays it across
//! permuted schedules (every deque/slot Mutex acquire, spawn, and join is
//! a decision point, preemption-bounded DFS — see shims/loom). Task and
//! worker counts are deliberately tiny: the schedule space is exponential.

#![cfg(feature = "loom")]

use std::sync::atomic::{AtomicUsize, Ordering};

use hierod_detect::engine::{Task, TaskPool};

/// Result order must equal task order under EVERY schedule — scheduling
/// must be invisible to callers.
#[test]
fn results_in_task_order_under_all_interleavings() {
    loom::model(|| {
        let pool = TaskPool::new(2);
        let tasks: Vec<Task<usize>> = (0..3_usize)
            .map(|i| Box::new(move || i * 10) as Task<usize>)
            .collect();
        let out = pool.run(tasks);
        assert_eq!(out, vec![0, 10, 20]);
    });
}

/// No schedule may run a task twice or drop one: with two workers racing
/// over seeded deques and steals, each task executes exactly once.
#[test]
fn every_task_runs_exactly_once_under_all_interleavings() {
    loom::model(|| {
        let ran = [
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
        ];
        let pool = TaskPool::new(2);
        let tasks: Vec<Task<()>> = (0..3)
            .map(|i| {
                let slot = &ran[i];
                Box::new(move || {
                    slot.fetch_add(1, Ordering::Relaxed);
                }) as Task<()>
            })
            .collect();
        pool.run(tasks);
        for (i, r) in ran.iter().enumerate() {
            assert_eq!(r.load(Ordering::Relaxed), 1, "task {i}");
        }
    });
}

/// More workers than tasks: the surplus worker's empty steal sweep must
/// shut down cleanly in every schedule (no deadlock, no lost result).
#[test]
fn surplus_workers_shut_down_under_all_interleavings() {
    loom::model(|| {
        let pool = TaskPool::new(3);
        let tasks: Vec<Task<u8>> = vec![Box::new(|| 7), Box::new(|| 9)];
        assert_eq!(pool.run(tasks), vec![7, 9]);
    });
}

/// Tasks borrowing the caller's stack stay sound across schedules (the
/// scoped-thread join is itself a modeled decision point).
#[test]
fn borrowed_caller_data_under_all_interleavings() {
    loom::model(|| {
        let data: Vec<u64> = (0..8).collect();
        let pool = TaskPool::new(2);
        let tasks: Vec<Task<u64>> = data
            .chunks(4)
            .map(|chunk| Box::new(move || chunk.iter().sum()) as Task<u64>)
            .collect();
        let partials = pool.run(tasks);
        assert_eq!(partials.iter().sum::<u64>(), data.iter().sum::<u64>());
    });
}
