//! Property tests over the engine's spec-resolution contract: every
//! registry/catalog entry is buildable by name through an [`AlgoSpec`],
//! malformed specs are rejected with `InvalidParameter` (never a panic),
//! and every built scorer yields finite robust-z standardized scores on
//! synthetic data when driven through the [`BoxedScorer`] bridges.

use hierod_detect::engine::{self, AlgoSpec, RobustZ, ScorerKind, Standardizer};
use hierod_detect::registry::registry;
use hierod_detect::DetectError;
use proptest::prelude::*;

/// Every key this suite drives: the 21 Table-1 registry rows followed by
/// the supplemental catalog entries. `cargo xtask lint` (rule `taxonomy`)
/// statically cross-checks this list against the registry, the engine
/// catalog, and DESIGN.md; [`covered_keys_match_the_live_entries`] pins it
/// to the runtime truth so neither side can drift.
const COVERED_KEYS: [&str; 32] = [
    // Table 1 (registry.rs), in row order.
    "match-count",
    "lcs",
    "vibration",
    "gmm",
    "phased-kmeans",
    "dynamic-clustering",
    "single-linkage",
    "pca",
    "ocsvm",
    "som",
    "fsa",
    "hmm",
    "olap-cube",
    "rule-learner",
    "mlp",
    "motif-rules",
    "window-db",
    "anomaly-dict",
    "sax",
    "ar",
    "deviants",
    // Supplemental engine catalog (catalog.rs).
    "sliding-z",
    "global-z",
    "robust-z",
    "iqr",
    "kmeans",
    "lof",
    "knn",
    "rknn",
    "cross-machine-profile",
    "pair-regression",
    "pair-diff",
];

#[test]
fn covered_keys_match_the_live_entries() {
    let live: Vec<&str> = engine::all_entries().iter().map(|e| e.key).collect();
    assert_eq!(
        COVERED_KEYS.to_vec(),
        live,
        "COVERED_KEYS must list every registry/catalog key in order; \
         run `cargo xtask lint` for the static side of this check"
    );
}

#[test]
fn all_21_registry_rows_build_by_key_and_by_table1_name() {
    let rows = registry();
    assert_eq!(rows.len(), 21);
    for e in &rows {
        let by_key = engine::build(&AlgoSpec::new(e.key))
            .unwrap_or_else(|err| panic!("{} by key: {err}", e.key));
        let by_name = engine::build(&AlgoSpec::new(e.info.name))
            .unwrap_or_else(|err| panic!("{} by row name: {err}", e.info.name));
        assert_eq!(by_key.info().name, e.info.name);
        assert_eq!(by_name.info().name, e.info.name);
        assert_eq!(by_key.kind(), by_name.kind());
    }
}

#[test]
fn supplemental_catalog_builds_by_key() {
    for e in engine::supplemental() {
        engine::build(&AlgoSpec::new(e.key)).unwrap_or_else(|err| panic!("{}: {err}", e.key));
    }
}

/// Deterministic pseudo-random series (SplitMix64) so the non-proptest
/// drivers below stay reproducible.
fn synth_series(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let noise = (state >> 11) as f64 / (1_u64 << 53) as f64 - 0.5;
            (i as f64 * 0.21).sin() * 3.0 + noise
        })
        .collect()
}

#[test]
fn every_entry_scores_synthetic_data_to_finite_standardized_scores() {
    let values = synth_series(7, 128);
    let collection: Vec<Vec<f64>> = (0..6).map(|m| synth_series(m + 10, 64)).collect();
    let refs: Vec<&[f64]> = collection.iter().map(Vec::as_slice).collect();
    let mut rows: Vec<Vec<f64>> = (0..24).map(|i| synth_series(i + 40, 5)).collect();
    let mut labels = vec![false; 24];
    for i in 0..6 {
        rows.push(synth_series(i + 90, 5).iter().map(|v| v + 8.0).collect());
        labels.push(true);
    }

    for e in engine::all_entries() {
        let mut scorer = engine::build(&AlgoSpec::new(e.key)).expect(e.key);
        let raw = match scorer.kind() {
            // Point natively; vector/discrete through the window and SAX
            // bridges respectively.
            ScorerKind::Point | ScorerKind::Vector | ScorerKind::Discrete => scorer
                .score_points(&values)
                .unwrap_or_else(|err| panic!("{}: {err}", e.key)),
            ScorerKind::Series => scorer
                .score_collection(&refs, 8)
                .unwrap_or_else(|err| panic!("{}: {err}", e.key)),
            ScorerKind::Supervised => {
                scorer
                    .fit(&rows, &labels)
                    .unwrap_or_else(|err| panic!("{}: {err}", e.key));
                scorer
                    .predict(&rows)
                    .unwrap_or_else(|err| panic!("{}: {err}", e.key))
            }
        };
        assert!(!raw.is_empty(), "{} returned no scores", e.key);
        let z = RobustZ.standardize(&raw);
        assert_eq!(z.len(), raw.len());
        for v in &z {
            assert!(v.is_finite(), "{}: non-finite standardized score", e.key);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn unknown_names_are_rejected_with_invalid_parameter(
        letters in prop::collection::vec(0u8..26, 8..16),
    ) {
        let name: String = letters.iter().map(|&c| (b'a' + c) as char).collect();
        let known = engine::all_entries()
            .iter()
            .any(|e| e.key == name || e.info.name.to_lowercase() == name);
        prop_assume!(!known);
        prop_assert!(matches!(
            engine::build(&AlgoSpec::new(&name)),
            Err(DetectError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn undeclared_parameters_are_rejected(i in 0usize..30, v in -10i64..10) {
        let entries = engine::all_entries();
        let e = &entries[i % entries.len()];
        let spec = AlgoSpec::new(e.key).with("definitely_not_a_param", v);
        prop_assert!(matches!(
            engine::build(&spec),
            Err(DetectError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn malformed_parameter_values_are_rejected(i in 0usize..30) {
        // Negative and NaN values are invalid for every declared parameter
        // in the catalog (counts/orders/windows must be non-negative
        // integers; fractions/factors must be finite and positive).
        let entries = engine::all_entries();
        let e = &entries[i % entries.len()];
        prop_assume!(!e.params.is_empty());
        let param = e.params[0].to_string();
        let negative = AlgoSpec::new(e.key).with(param.clone(), -1);
        prop_assert!(
            matches!(
                engine::build(&negative),
                Err(DetectError::InvalidParameter { .. })
            ),
            "{}({}=-1) must be rejected",
            e.key,
            param
        );
        let nan = AlgoSpec::new(e.key).with(param.clone(), f64::NAN);
        prop_assert!(
            matches!(engine::build(&nan), Err(DetectError::InvalidParameter { .. })),
            "{}({}=NaN) must be rejected",
            e.key,
            param
        );
    }

    #[test]
    fn point_capable_entries_score_random_series_finitely(
        values in prop::collection::vec(-50.0_f64..50.0, 64..128),
    ) {
        for e in engine::all_entries() {
            let scorer = engine::build(&AlgoSpec::new(e.key)).expect(e.key);
            let raw = match scorer.kind() {
                ScorerKind::Point | ScorerKind::Vector | ScorerKind::Discrete => {
                    scorer.score_points(&values).unwrap_or_else(|err| panic!("{}: {err}", e.key))
                }
                _ => continue,
            };
            prop_assert_eq!(raw.len(), values.len(), "{}", e.key);
            for z in RobustZ.standardize(&raw) {
                prop_assert!(z.is_finite(), "{}: {}", e.key, z);
            }
        }
    }
}
