//! NaN-robustness regressions for the detectors whose float orderings
//! moved from `partial_cmp(..).unwrap()` to `f64::total_cmp` (see
//! `cargo xtask lint`, rule `nan-cmp`): a NaN anywhere in the input must
//! never panic a scorer. Returning an error or NaN scores is acceptable;
//! dying mid-scan is not.

use hierod_detect::engine::{self, AlgoSpec, ScorerKind};

/// The detectors whose orderings were NaN-unsafe before the sweep.
const FIXED: &[&str] = &["kmeans", "phased-kmeans", "lof", "knn", "window-db"];

/// A plausible series with one NaN dropped in the middle.
fn poisoned_series(len: usize) -> Vec<f64> {
    let mut values: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin() * 2.0).collect();
    values[len / 2] = f64::NAN;
    values
}

#[test]
fn nan_input_never_panics_fixed_detectors() {
    let values = poisoned_series(96);
    let collection: Vec<Vec<f64>> = (0..6)
        .map(|m| {
            let mut s: Vec<f64> = (0..48).map(|i| ((i + m) as f64 * 0.21).cos()).collect();
            if m == 3 {
                s[10] = f64::NAN;
            }
            s
        })
        .collect();
    let refs: Vec<&[f64]> = collection.iter().map(Vec::as_slice).collect();

    for key in FIXED {
        let mut scorer = engine::build(&AlgoSpec::new(*key)).expect(key);
        // Ok and Err are both fine; a panic fails the test by itself.
        let outcome = match scorer.kind() {
            ScorerKind::Point | ScorerKind::Vector | ScorerKind::Discrete => {
                scorer.score_points(&values).map(|_| ())
            }
            ScorerKind::Series => scorer.score_collection(&refs, 8).map(|_| ()),
            ScorerKind::Supervised => {
                let rows: Vec<Vec<f64>> = (0..16)
                    .map(|i| vec![i as f64, if i == 7 { f64::NAN } else { 1.0 }])
                    .collect();
                let labels: Vec<bool> = (0..16).map(|i| i % 5 == 0).collect();
                scorer
                    .fit(&rows, &labels)
                    .and_then(|()| scorer.predict(&rows))
                    .map(|_| ())
            }
        };
        // Force the result so lazy scorers cannot hide a deferred panic.
        let _ = outcome.is_ok();
    }
}

#[test]
fn sort_helpers_order_nan_last_deterministically() {
    use hierod_detect::stat::{nan_first_cmp, nan_last_cmp, sort_total};

    let mut xs = vec![2.0, f64::NAN, -1.0, f64::NAN, 0.0];
    sort_total(&mut xs);
    assert_eq!(&xs[..3], &[-1.0, 0.0, 2.0]);
    assert!(xs[3].is_nan() && xs[4].is_nan());

    // Selections never let NaN beat data.
    let min = xs.iter().copied().min_by(|a, b| nan_last_cmp(*a, *b));
    assert_eq!(min, Some(-1.0));
    let max = xs.iter().copied().max_by(|a, b| nan_first_cmp(*a, *b));
    assert_eq!(max, Some(2.0));
}

/// All-NaN input is the worst case: every distance, mean, and threshold
/// degenerates. Still no panics allowed.
#[test]
fn all_nan_series_never_panics() {
    let values = vec![f64::NAN; 64];
    for key in FIXED {
        let scorer = engine::build(&AlgoSpec::new(*key)).expect(key);
        if matches!(
            scorer.kind(),
            ScorerKind::Point | ScorerKind::Vector | ScorerKind::Discrete
        ) {
            let _ = scorer.score_points(&values);
        }
    }
}
