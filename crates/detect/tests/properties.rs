//! Property-based tests over the detector zoo's cross-cutting contracts:
//! every scorer returns one finite, non-negative score per item, is
//! deterministic, and the unsupervised vector scorers respect basic
//! structure (translation invariance where the method promises it).

use hierod_detect::da::{
    DynamicClustering, GaussianMixture, KMeans, OneClassSvm, PhasedKMeans, PrincipalComponentSpace,
    SelfOrganizingMap, SingleLinkage,
};
use hierod_detect::itm::HistogramDeviants;
use hierod_detect::pm::AutoregressiveModel;
use hierod_detect::stat::{GlobalZScore, IqrFence, RobustZScore, SlidingZScore};
use hierod_detect::uoa::OlapCubeDetector;
use hierod_detect::upa::FiniteStateAutomaton;
use hierod_detect::{DiscreteScorer, PointScorer, VectorScorer};
use proptest::prelude::*;

fn vec_rows(n: std::ops::Range<usize>, d: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-100.0_f64..100.0, d), n)
}

fn all_vector_scorers() -> Vec<Box<dyn VectorScorer>> {
    vec![
        Box::new(KMeans::new(2).unwrap()),
        Box::new(PhasedKMeans::new(2).unwrap()),
        Box::new(GaussianMixture::new(2).unwrap()),
        Box::new(PrincipalComponentSpace::new(1).unwrap()),
        Box::new(OneClassSvm::default()),
        Box::new(SelfOrganizingMap::new(2, 2).unwrap()),
        Box::new(SingleLinkage::default()),
        Box::new(DynamicClustering::default()),
        Box::new(OlapCubeDetector::default()),
    ]
}

fn all_point_scorers() -> Vec<Box<dyn PointScorer>> {
    vec![
        Box::new(AutoregressiveModel::new(2).unwrap()),
        Box::new(SlidingZScore::new(8).unwrap()),
        Box::new(GlobalZScore),
        Box::new(RobustZScore),
        Box::new(IqrFence),
        Box::new(HistogramDeviants::new(4).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn vector_scorers_return_finite_nonnegative_scores(rows in vec_rows(3..20, 3)) {
        for scorer in all_vector_scorers() {
            let scores = scorer
                .score_rows(&hierod_detect::row_refs(&rows))
                .unwrap_or_else(|e| panic!("{}: {e}", scorer.info().name));
            prop_assert_eq!(scores.len(), rows.len());
            for s in &scores {
                prop_assert!(s.is_finite() && *s >= 0.0, "{}: {}", scorer.info().name, s);
            }
        }
    }

    #[test]
    fn vector_scorers_are_deterministic(rows in vec_rows(3..16, 2)) {
        for scorer in all_vector_scorers() {
            let a = scorer.score_rows(&hierod_detect::row_refs(&rows)).unwrap();
            let b = scorer.score_rows(&hierod_detect::row_refs(&rows)).unwrap();
            prop_assert_eq!(a, b, "{}", scorer.info().name);
        }
    }

    #[test]
    fn point_scorers_return_finite_nonnegative_scores(
        values in prop::collection::vec(-100.0_f64..100.0, 12..64),
    ) {
        for scorer in all_point_scorers() {
            let scores = scorer
                .score_points(&values)
                .unwrap_or_else(|e| panic!("{}: {e}", scorer.info().name));
            prop_assert_eq!(scores.len(), values.len());
            for s in &scores {
                prop_assert!(s.is_finite() && *s >= 0.0, "{}: {}", scorer.info().name, s);
            }
        }
    }

    #[test]
    fn point_scorers_invariant_under_translation(
        values in prop::collection::vec(-10.0_f64..10.0, 12..48),
        offset in -1000.0_f64..1000.0,
    ) {
        // All point scorers standardize internally, so adding a constant
        // must leave scores (nearly) unchanged.
        let shifted: Vec<f64> = values.iter().map(|v| v + offset).collect();
        for scorer in all_point_scorers() {
            let a = scorer.score_points(&values).unwrap();
            let b = scorer.score_points(&shifted).unwrap();
            for (x, y) in a.iter().zip(&b) {
                prop_assert!(
                    (x - y).abs() < 1e-5 * (1.0 + x.abs()),
                    "{}: {} vs {} (offset {})",
                    scorer.info().name,
                    x,
                    y,
                    offset
                );
            }
        }
    }

    #[test]
    fn constant_series_scores_zero_for_all_point_scorers(
        value in -100.0_f64..100.0,
        n in 12_usize..48,
    ) {
        let values = vec![value; n];
        for scorer in all_point_scorers() {
            let scores = scorer.score_points(&values).unwrap();
            for s in &scores {
                prop_assert!(s.abs() < 1e-9, "{}: {}", scorer.info().name, s);
            }
        }
    }

    #[test]
    fn identical_rows_are_never_outliers(
        row in prop::collection::vec(-50.0_f64..50.0, 3),
        n in 4_usize..16,
    ) {
        let rows = vec![row; n];
        for scorer in all_vector_scorers() {
            let scores = scorer.score_rows(&hierod_detect::row_refs(&rows)).unwrap();
            // All rows identical: no row can stand out from any other.
            let max = scores.iter().cloned().fold(f64::MIN, f64::max);
            let min = scores.iter().cloned().fold(f64::MAX, f64::min);
            prop_assert!(
                max - min < 1e-9,
                "{}: spread {}..{}",
                scorer.info().name,
                min,
                max
            );
        }
    }

    #[test]
    fn fsa_scores_bounded_unit_interval(
        seqs in prop::collection::vec(prop::collection::vec(0_u16..6, 4..20), 2..8),
    ) {
        let refs: Vec<&[u16]> = seqs.iter().map(Vec::as_slice).collect();
        let scores = FiniteStateAutomaton::default().score_sequences(&refs).unwrap();
        for s in scores {
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn far_outlier_row_gets_strictly_highest_score(
        mut rows in vec_rows(8..20, 2),
        direction in 0_usize..4,
    ) {
        // Keep the bulk inside a bounded ball, plant one far point.
        for r in rows.iter_mut() {
            for v in r.iter_mut() {
                *v = v.clamp(-10.0, 10.0);
            }
        }
        let far = match direction {
            0 => vec![1e4, 0.0],
            1 => vec![-1e4, 0.0],
            2 => vec![0.0, 1e4],
            _ => vec![0.0, -1e4],
        };
        rows.push(far);
        let last = rows.len() - 1;
        // The geometry-based scorers must all rank the planted point first.
        let geometric: Vec<Box<dyn VectorScorer>> = vec![
            Box::new(KMeans::new(2).unwrap()),
            Box::new(OneClassSvm::default()),
            Box::new(SingleLinkage::default()),
            Box::new(DynamicClustering::default()),
        ];
        for scorer in geometric {
            let scores = scorer.score_rows(&hierod_detect::row_refs(&rows)).unwrap();
            let best = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            prop_assert_eq!(best, last, "{}: {:?}", scorer.info().name, scores);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn non_finite_inputs_error_not_panic(
        values in prop::collection::vec(-10.0_f64..10.0, 12..32),
        nan_at in 0_usize..12,
        rows in vec_rows(3..8, 2),
        nan_row in 0_usize..3,
    ) {
        // Point scorers.
        let mut poisoned = values.clone();
        poisoned[nan_at] = f64::NAN;
        for scorer in all_point_scorers() {
            prop_assert!(
                scorer.score_points(&poisoned).is_err(),
                "{} accepted NaN",
                scorer.info().name
            );
        }
        // Vector scorers.
        let mut poisoned_rows = rows.clone();
        poisoned_rows[nan_row % rows.len()][0] = f64::INFINITY;
        for scorer in all_vector_scorers() {
            prop_assert!(
                scorer.score_rows(&hierod_detect::row_refs(&poisoned_rows)).is_err(),
                "{} accepted infinity",
                scorer.info().name
            );
        }
    }
}
