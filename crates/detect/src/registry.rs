//! The Table-1 registry.
//!
//! One entry per row of the paper's Table 1, in the paper's order. The
//! entries are built from the **live** `info()` of each implementation, so
//! the reproduced table (experiment E3, `repro_table1`) cannot drift from
//! the code.
//!
//! Each row also carries a machine-readable `key`, its tunable parameter
//! names, and a `build` function resolving an [`AlgoSpec`] into a runnable
//! [`BoxedScorer`] — the registry is the single source of truth for *what
//! exists* and *how to construct it*, so adding a detector is one new entry
//! here (plus the implementation), with no caller-side enum to extend.
//!
//! ## Column-assignment note
//!
//! The paper's PDF table marks each row with 1–3 check marks across the
//! PTS/SSQ/TSS columns; the plain-text rendering of the paper preserves the
//! *number* of check marks per row but not reliably their column
//! positions. The assignments encoded here therefore follow the technique
//! semantics of each cited method (documented per detector module) and are
//! pinned by `registry_checkmark_totals_match_paper`, which asserts the
//! per-row check-mark *counts* against the paper text verbatim.

use crate::api::{Detector, DetectorInfo, Result};
use crate::da::{
    DynamicClustering, GaussianMixture, LcsCluster, MatchCount, OneClassSvm, PhasedKMeans,
    PrincipalComponentSpace, SelfOrganizingMap, SingleLinkage, VibrationSignature,
};
use crate::engine::boxed::{DictSequences, MotifOnVectors, SaxPoints};
use crate::engine::{AlgoSpec, BoxedScorer};
use crate::itm::HistogramDeviants;
use crate::nmd::AnomalyDictionary;
use crate::npd::WindowSequenceDb;
use crate::os::SaxDiscord;
use crate::pm::AutoregressiveModel;
use crate::sa::{MotifRuleClassifier, NeuralNetwork, RuleLearner};
use crate::uoa::OlapCubeDetector;
use crate::upa::{FiniteStateAutomaton, HiddenMarkov};

/// One Table-1 row: live metadata, implementation path, and the
/// spec-driven constructor.
#[derive(Debug, Clone)]
pub struct RegistryEntry {
    /// The detector's metadata (from its `info()`).
    pub info: DetectorInfo,
    /// Rust path of the implementation.
    pub module: &'static str,
    /// Short machine-readable key for [`AlgoSpec::name`].
    pub key: &'static str,
    /// Names of the parameters [`Self::build`] accepts.
    pub params: &'static [&'static str],
    /// Resolves a spec (with parameters validated) into a scorer.
    pub build: fn(&AlgoSpec) -> Result<BoxedScorer>,
}

fn build_match_count(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Discrete(Box::new(MatchCount::new(
        s.get_usize("smooth_k", 3)?,
    )?)))
}

fn build_lcs(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Discrete(Box::new(LcsCluster::new(
        s.get_usize("k", 2)?,
    )?)))
}

fn build_vibration(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Series(Box::new(VibrationSignature::new(
        s.get_usize("bands", 8)?,
        s.get_usize("clusters", 3)?,
    )?)))
}

fn build_gmm(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Vector(Box::new(GaussianMixture::new(
        s.get_usize("components", 3)?,
    )?)))
}

fn build_phased_kmeans(s: &AlgoSpec) -> Result<BoxedScorer> {
    // `segments` configures the PAA embedding applied by
    // `BoxedScorer::score_collection`, not the detector itself; it is
    // declared so specs carrying it validate, and read here so malformed
    // values are rejected at build time.
    s.get_usize("segments", 8)?;
    Ok(BoxedScorer::Vector(Box::new(PhasedKMeans::new(
        s.get_usize("k", 4)?,
    )?)))
}

fn build_dynamic_clustering(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Vector(Box::new(DynamicClustering::new(
        s.get_f64("radius_factor", 3.0)?,
    )?)))
}

fn build_single_linkage(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Vector(Box::new(SingleLinkage::new(
        s.get_f64("cut_quantile", 0.2)?,
    )?)))
}

fn build_pca(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Vector(Box::new(PrincipalComponentSpace::new(
        s.get_usize("components", 2)?,
    )?)))
}

fn build_ocsvm(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Vector(Box::new(OneClassSvm::new(
        s.get_f64("nu", 0.1)?,
    )?)))
}

fn build_som(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Vector(Box::new(SelfOrganizingMap::new(
        s.get_usize("width", 4)?,
        s.get_usize("height", 4)?,
    )?)))
}

fn build_fsa(s: &AlgoSpec) -> Result<BoxedScorer> {
    let fsa = if s.params.contains_key("order") {
        FiniteStateAutomaton::new(vec![s.get_usize("order", 2)?])?
    } else {
        FiniteStateAutomaton::default()
    };
    Ok(BoxedScorer::Discrete(Box::new(fsa)))
}

fn build_hmm(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Discrete(Box::new(HiddenMarkov::new(
        s.get_usize("states", 3)?,
    )?)))
}

fn build_olap_cube(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Vector(Box::new(OlapCubeDetector::new(
        s.get_usize("buckets", 4)?,
    )?)))
}

fn build_rule_learner(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Supervised(Box::new(RuleLearner::new(
        s.get_usize("max_rules", 8)?,
        s.get_usize("max_literals", 3)?,
    )?)))
}

fn build_mlp(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Supervised(Box::new(NeuralNetwork::new(
        s.get_usize("hidden", 8)?,
    )?)))
}

fn build_motif_rules(s: &AlgoSpec) -> Result<BoxedScorer> {
    let alphabet = s.get_usize("alphabet", 6)?;
    if alphabet < 2 {
        return Err(crate::api::DetectError::invalid("alphabet", "must be >= 2"));
    }
    Ok(BoxedScorer::Supervised(Box::new(MotifOnVectors::new(
        MotifRuleClassifier::new(s.get_usize("motif_len", 3)?)?,
        alphabet,
    ))))
}

fn build_window_db(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Discrete(Box::new(WindowSequenceDb::new(
        s.get_usize("window_len", 4)?,
    )?)))
}

fn build_anomaly_dict(_s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Discrete(Box::new(DictSequences(
        AnomalyDictionary::new(),
    ))))
}

fn build_sax(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Point(Box::new(SaxPoints(SaxDiscord::new(
        s.get_usize("window_len", 32)?,
        s.get_usize("word_len", 4)?,
        s.get_usize("alphabet", 4)?,
    )?))))
}

fn build_ar(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Point(Box::new(AutoregressiveModel::new(
        s.get_usize("order", 3)?,
    )?)))
}

fn build_deviants(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Point(Box::new(HistogramDeviants::new(
        s.get_usize("buckets", 8)?,
    )?)))
}

/// All 21 rows of Table 1, in the paper's order.
pub fn registry() -> Vec<RegistryEntry> {
    vec![
        RegistryEntry {
            info: MatchCount::default().info(),
            module: "hierod_detect::da::MatchCount",
            key: "match-count",
            params: &["smooth_k"],
            build: build_match_count,
        },
        RegistryEntry {
            info: LcsCluster::default().info(),
            module: "hierod_detect::da::LcsCluster",
            key: "lcs",
            params: &["k"],
            build: build_lcs,
        },
        RegistryEntry {
            info: VibrationSignature::default().info(),
            module: "hierod_detect::da::VibrationSignature",
            key: "vibration",
            params: &["bands", "clusters"],
            build: build_vibration,
        },
        RegistryEntry {
            info: GaussianMixture::default().info(),
            module: "hierod_detect::da::GaussianMixture",
            key: "gmm",
            params: &["components"],
            build: build_gmm,
        },
        RegistryEntry {
            info: PhasedKMeans::default().info(),
            module: "hierod_detect::da::PhasedKMeans",
            key: "phased-kmeans",
            params: &["k", "segments"],
            build: build_phased_kmeans,
        },
        RegistryEntry {
            info: DynamicClustering::default().info(),
            module: "hierod_detect::da::DynamicClustering",
            key: "dynamic-clustering",
            params: &["radius_factor"],
            build: build_dynamic_clustering,
        },
        RegistryEntry {
            info: SingleLinkage::default().info(),
            module: "hierod_detect::da::SingleLinkage",
            key: "single-linkage",
            params: &["cut_quantile"],
            build: build_single_linkage,
        },
        RegistryEntry {
            info: PrincipalComponentSpace::default().info(),
            module: "hierod_detect::da::PrincipalComponentSpace",
            key: "pca",
            params: &["components"],
            build: build_pca,
        },
        RegistryEntry {
            info: OneClassSvm::default().info(),
            module: "hierod_detect::da::OneClassSvm",
            key: "ocsvm",
            params: &["nu"],
            build: build_ocsvm,
        },
        RegistryEntry {
            info: SelfOrganizingMap::default().info(),
            module: "hierod_detect::da::SelfOrganizingMap",
            key: "som",
            params: &["width", "height"],
            build: build_som,
        },
        RegistryEntry {
            info: FiniteStateAutomaton::default().info(),
            module: "hierod_detect::upa::FiniteStateAutomaton",
            key: "fsa",
            params: &["order"],
            build: build_fsa,
        },
        RegistryEntry {
            info: HiddenMarkov::default().info(),
            module: "hierod_detect::upa::HiddenMarkov",
            key: "hmm",
            params: &["states"],
            build: build_hmm,
        },
        RegistryEntry {
            info: OlapCubeDetector::default().info(),
            module: "hierod_detect::uoa::OlapCubeDetector",
            key: "olap-cube",
            params: &["buckets"],
            build: build_olap_cube,
        },
        RegistryEntry {
            info: RuleLearner::default().info(),
            module: "hierod_detect::sa::RuleLearner",
            key: "rule-learner",
            params: &["max_rules", "max_literals"],
            build: build_rule_learner,
        },
        RegistryEntry {
            info: NeuralNetwork::default().info(),
            module: "hierod_detect::sa::NeuralNetwork",
            key: "mlp",
            params: &["hidden"],
            build: build_mlp,
        },
        RegistryEntry {
            info: MotifRuleClassifier::default().info(),
            module: "hierod_detect::sa::MotifRuleClassifier",
            key: "motif-rules",
            params: &["motif_len", "alphabet"],
            build: build_motif_rules,
        },
        RegistryEntry {
            info: WindowSequenceDb::default().info(),
            module: "hierod_detect::npd::WindowSequenceDb",
            key: "window-db",
            params: &["window_len"],
            build: build_window_db,
        },
        RegistryEntry {
            info: AnomalyDictionary::new().info(),
            module: "hierod_detect::nmd::AnomalyDictionary",
            key: "anomaly-dict",
            params: &[],
            build: build_anomaly_dict,
        },
        RegistryEntry {
            info: SaxDiscord::default().info(),
            module: "hierod_detect::os::SaxDiscord",
            key: "sax",
            params: &["window_len", "word_len", "alphabet"],
            build: build_sax,
        },
        RegistryEntry {
            info: AutoregressiveModel::default().info(),
            module: "hierod_detect::pm::AutoregressiveModel",
            key: "ar",
            params: &["order"],
            build: build_ar,
        },
        RegistryEntry {
            info: HistogramDeviants::default().info(),
            module: "hierod_detect::itm::HistogramDeviants",
            key: "deviants",
            params: &["buckets"],
            build: build_deviants,
        },
    ]
}

/// Renders the registry as the paper's Table 1 (fixed-width text).
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<36} {:<5} {:^3} {:^3} {:^3}\n",
        "Technique", "Type", "PTS", "SSQ", "TSS"
    ));
    out.push_str(&"-".repeat(56));
    out.push('\n');
    for e in registry() {
        let marks = e.info.capabilities.checkmarks();
        out.push_str(&format!(
            "{:<36} {:<5} {:^3} {:^3} {:^3}\n",
            format!("{} {}", e.info.name, e.info.citation),
            e.info.class.abbrev(),
            marks[0],
            marks[1],
            marks[2]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::TechniqueClass;

    /// The paper's Table 1 rows verbatim: (name, citation, class,
    /// number-of-check-marks). The check-mark *count* per row is preserved
    /// exactly by the paper's text; the column assignment is documented in
    /// the module docs.
    const PAPER_ROWS: [(&str, &str, TechniqueClass, usize); 21] = [
        (
            "Match Count Sequence Similarity",
            "[16]",
            TechniqueClass::DA,
            1,
        ),
        ("Longest Common Subsequence", "[2]", TechniqueClass::DA, 1),
        ("Vibration Signature", "[28]", TechniqueClass::DA, 2),
        ("Expectation-Maximization", "[30]", TechniqueClass::DA, 3),
        ("Phased k-Means", "[36]", TechniqueClass::DA, 1),
        ("Dynamic Clustering", "[37]", TechniqueClass::DA, 2),
        ("Single-linkage Clustering", "[32]", TechniqueClass::DA, 3),
        ("Principal Component Space", "[13]", TechniqueClass::DA, 1),
        ("Support Vector Machine", "[6]", TechniqueClass::DA, 3),
        ("Self-Organizing Map", "[11]", TechniqueClass::DA, 3),
        ("Finite State Automata", "[25]", TechniqueClass::UPA, 2),
        ("Hidden Markov Models", "[7]", TechniqueClass::UPA, 2),
        (
            "Online Analytical Processing Cube",
            "[20]",
            TechniqueClass::UOA,
            2,
        ),
        ("Rule Learning", "[18]", TechniqueClass::SA, 2),
        ("Neural Networks", "[10]", TechniqueClass::SA, 3),
        ("Rule Based Classifier", "[19]", TechniqueClass::SA, 1),
        ("Window Sequence", "[17]", TechniqueClass::NPD, 1),
        ("Anomaly Dictionary", "[3]", TechniqueClass::NMD, 1),
        ("Symbolic Representation", "[22]", TechniqueClass::OS, 2),
        ("Autoregressive Model", "[15]", TechniqueClass::PM, 2),
        ("Histogram Representation", "[27]", TechniqueClass::ITM, 1),
    ];

    #[test]
    fn registry_has_all_21_rows_in_paper_order() {
        let reg = registry();
        assert_eq!(reg.len(), 21);
        for (entry, (name, citation, class, _)) in reg.iter().zip(PAPER_ROWS) {
            assert_eq!(entry.info.name, name);
            assert_eq!(entry.info.citation, citation);
            assert_eq!(entry.info.class, class, "class of {name}");
        }
    }

    #[test]
    fn registry_checkmark_totals_match_paper() {
        for (entry, (name, _, _, marks)) in registry().iter().zip(PAPER_ROWS) {
            assert_eq!(
                entry.info.capabilities.count(),
                marks,
                "check-mark count of `{name}`"
            );
        }
    }

    #[test]
    fn class_populations_match_paper() {
        let reg = registry();
        let count = |c: TechniqueClass| reg.iter().filter(|e| e.info.class == c).count();
        assert_eq!(count(TechniqueClass::DA), 10);
        assert_eq!(count(TechniqueClass::UPA), 2);
        assert_eq!(count(TechniqueClass::UOA), 1);
        assert_eq!(count(TechniqueClass::SA), 3);
        assert_eq!(count(TechniqueClass::NPD), 1);
        assert_eq!(count(TechniqueClass::NMD), 1);
        assert_eq!(count(TechniqueClass::OS), 1);
        assert_eq!(count(TechniqueClass::PM), 1);
        assert_eq!(count(TechniqueClass::ITM), 1);
    }

    #[test]
    fn only_sa_rows_are_supervised() {
        for e in registry() {
            assert_eq!(
                e.info.supervised,
                e.info.class == TechniqueClass::SA,
                "supervision flag of {}",
                e.info.name
            );
        }
    }

    #[test]
    fn rendered_table_contains_every_row_and_legend_columns() {
        let t = render_table1();
        assert!(t.contains("PTS"));
        assert!(t.contains("SSQ"));
        assert!(t.contains("TSS"));
        for (name, citation, ..) in PAPER_ROWS {
            assert!(t.contains(name), "rendered table misses {name}");
            assert!(t.contains(citation));
        }
        assert_eq!(t.lines().count(), 23); // header + rule + 21 rows
    }

    #[test]
    fn modules_are_unique() {
        let reg = registry();
        let mut paths: Vec<&str> = reg.iter().map(|e| e.module).collect();
        paths.sort_unstable();
        paths.dedup();
        assert_eq!(paths.len(), 21);
    }

    #[test]
    fn keys_are_unique_and_lowercase() {
        let reg = registry();
        let mut keys: Vec<&str> = reg.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 21);
        for k in keys {
            assert_eq!(k, k.to_lowercase(), "registry keys are lowercase");
        }
    }

    #[test]
    fn supervised_flag_matches_built_kind() {
        use crate::engine::ScorerKind;
        for e in registry() {
            let scorer = (e.build)(&AlgoSpec::new(e.key)).expect(e.key);
            assert_eq!(
                scorer.kind() == ScorerKind::Supervised,
                e.info.supervised,
                "built kind of {}",
                e.key
            );
        }
    }
}
