//! The Table-1 registry.
//!
//! One entry per row of the paper's Table 1, in the paper's order. The
//! entries are built from the **live** `info()` of each implementation, so
//! the reproduced table (experiment E3, `repro_table1`) cannot drift from
//! the code.
//!
//! ## Column-assignment note
//!
//! The paper's PDF table marks each row with 1–3 check marks across the
//! PTS/SSQ/TSS columns; the plain-text rendering of the paper preserves the
//! *number* of check marks per row but not reliably their column
//! positions. The assignments encoded here therefore follow the technique
//! semantics of each cited method (documented per detector module) and are
//! pinned by `registry_checkmark_totals_match_paper`, which asserts the
//! per-row check-mark *counts* against the paper text verbatim.

use crate::api::{Detector, DetectorInfo};
use crate::da::{
    DynamicClustering, GaussianMixture, LcsCluster, MatchCount, OneClassSvm, PhasedKMeans,
    PrincipalComponentSpace, SelfOrganizingMap, SingleLinkage, VibrationSignature,
};
use crate::itm::HistogramDeviants;
use crate::nmd::AnomalyDictionary;
use crate::npd::WindowSequenceDb;
use crate::os::SaxDiscord;
use crate::pm::AutoregressiveModel;
use crate::sa::{MotifRuleClassifier, NeuralNetwork, RuleLearner};
use crate::uoa::OlapCubeDetector;
use crate::upa::{FiniteStateAutomaton, HiddenMarkov};

/// One Table-1 row: live metadata plus the implementing module path.
#[derive(Debug, Clone)]
pub struct RegistryEntry {
    /// The detector's metadata (from its `info()`).
    pub info: DetectorInfo,
    /// Rust path of the implementation.
    pub module: &'static str,
}

/// All 21 rows of Table 1, in the paper's order.
pub fn registry() -> Vec<RegistryEntry> {
    vec![
        RegistryEntry {
            info: MatchCount::default().info(),
            module: "hierod_detect::da::MatchCount",
        },
        RegistryEntry {
            info: LcsCluster::default().info(),
            module: "hierod_detect::da::LcsCluster",
        },
        RegistryEntry {
            info: VibrationSignature::default().info(),
            module: "hierod_detect::da::VibrationSignature",
        },
        RegistryEntry {
            info: GaussianMixture::default().info(),
            module: "hierod_detect::da::GaussianMixture",
        },
        RegistryEntry {
            info: PhasedKMeans::default().info(),
            module: "hierod_detect::da::PhasedKMeans",
        },
        RegistryEntry {
            info: DynamicClustering::default().info(),
            module: "hierod_detect::da::DynamicClustering",
        },
        RegistryEntry {
            info: SingleLinkage::default().info(),
            module: "hierod_detect::da::SingleLinkage",
        },
        RegistryEntry {
            info: PrincipalComponentSpace::default().info(),
            module: "hierod_detect::da::PrincipalComponentSpace",
        },
        RegistryEntry {
            info: OneClassSvm::default().info(),
            module: "hierod_detect::da::OneClassSvm",
        },
        RegistryEntry {
            info: SelfOrganizingMap::default().info(),
            module: "hierod_detect::da::SelfOrganizingMap",
        },
        RegistryEntry {
            info: FiniteStateAutomaton::default().info(),
            module: "hierod_detect::upa::FiniteStateAutomaton",
        },
        RegistryEntry {
            info: HiddenMarkov::default().info(),
            module: "hierod_detect::upa::HiddenMarkov",
        },
        RegistryEntry {
            info: OlapCubeDetector::default().info(),
            module: "hierod_detect::uoa::OlapCubeDetector",
        },
        RegistryEntry {
            info: RuleLearner::default().info(),
            module: "hierod_detect::sa::RuleLearner",
        },
        RegistryEntry {
            info: NeuralNetwork::default().info(),
            module: "hierod_detect::sa::NeuralNetwork",
        },
        RegistryEntry {
            info: MotifRuleClassifier::default().info(),
            module: "hierod_detect::sa::MotifRuleClassifier",
        },
        RegistryEntry {
            info: WindowSequenceDb::default().info(),
            module: "hierod_detect::npd::WindowSequenceDb",
        },
        RegistryEntry {
            info: AnomalyDictionary::default().info(),
            module: "hierod_detect::nmd::AnomalyDictionary",
        },
        RegistryEntry {
            info: SaxDiscord::default().info(),
            module: "hierod_detect::os::SaxDiscord",
        },
        RegistryEntry {
            info: AutoregressiveModel::default().info(),
            module: "hierod_detect::pm::AutoregressiveModel",
        },
        RegistryEntry {
            info: HistogramDeviants::default().info(),
            module: "hierod_detect::itm::HistogramDeviants",
        },
    ]
}

/// Renders the registry as the paper's Table 1 (fixed-width text).
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<36} {:<5} {:^3} {:^3} {:^3}\n",
        "Technique", "Type", "PTS", "SSQ", "TSS"
    ));
    out.push_str(&"-".repeat(56));
    out.push('\n');
    for e in registry() {
        let marks = e.info.capabilities.checkmarks();
        out.push_str(&format!(
            "{:<36} {:<5} {:^3} {:^3} {:^3}\n",
            format!("{} {}", e.info.name, e.info.citation),
            e.info.class.abbrev(),
            marks[0],
            marks[1],
            marks[2]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::TechniqueClass;

    /// The paper's Table 1 rows verbatim: (name, citation, class,
    /// number-of-check-marks). The check-mark *count* per row is preserved
    /// exactly by the paper's text; the column assignment is documented in
    /// the module docs.
    const PAPER_ROWS: [(&str, &str, TechniqueClass, usize); 21] = [
        ("Match Count Sequence Similarity", "[16]", TechniqueClass::DA, 1),
        ("Longest Common Subsequence", "[2]", TechniqueClass::DA, 1),
        ("Vibration Signature", "[28]", TechniqueClass::DA, 2),
        ("Expectation-Maximization", "[30]", TechniqueClass::DA, 3),
        ("Phased k-Means", "[36]", TechniqueClass::DA, 1),
        ("Dynamic Clustering", "[37]", TechniqueClass::DA, 2),
        ("Single-linkage Clustering", "[32]", TechniqueClass::DA, 3),
        ("Principal Component Space", "[13]", TechniqueClass::DA, 1),
        ("Support Vector Machine", "[6]", TechniqueClass::DA, 3),
        ("Self-Organizing Map", "[11]", TechniqueClass::DA, 3),
        ("Finite State Automata", "[25]", TechniqueClass::UPA, 2),
        ("Hidden Markov Models", "[7]", TechniqueClass::UPA, 2),
        ("Online Analytical Processing Cube", "[20]", TechniqueClass::UOA, 2),
        ("Rule Learning", "[18]", TechniqueClass::SA, 2),
        ("Neural Networks", "[10]", TechniqueClass::SA, 3),
        ("Rule Based Classifier", "[19]", TechniqueClass::SA, 1),
        ("Window Sequence", "[17]", TechniqueClass::NPD, 1),
        ("Anomaly Dictionary", "[3]", TechniqueClass::NMD, 1),
        ("Symbolic Representation", "[22]", TechniqueClass::OS, 2),
        ("Autoregressive Model", "[15]", TechniqueClass::PM, 2),
        ("Histogram Representation", "[27]", TechniqueClass::ITM, 1),
    ];

    #[test]
    fn registry_has_all_21_rows_in_paper_order() {
        let reg = registry();
        assert_eq!(reg.len(), 21);
        for (entry, (name, citation, class, _)) in reg.iter().zip(PAPER_ROWS) {
            assert_eq!(entry.info.name, name);
            assert_eq!(entry.info.citation, citation);
            assert_eq!(entry.info.class, class, "class of {name}");
        }
    }

    #[test]
    fn registry_checkmark_totals_match_paper() {
        for (entry, (name, _, _, marks)) in registry().iter().zip(PAPER_ROWS) {
            assert_eq!(
                entry.info.capabilities.count(),
                marks,
                "check-mark count of `{name}`"
            );
        }
    }

    #[test]
    fn class_populations_match_paper() {
        let reg = registry();
        let count = |c: TechniqueClass| reg.iter().filter(|e| e.info.class == c).count();
        assert_eq!(count(TechniqueClass::DA), 10);
        assert_eq!(count(TechniqueClass::UPA), 2);
        assert_eq!(count(TechniqueClass::UOA), 1);
        assert_eq!(count(TechniqueClass::SA), 3);
        assert_eq!(count(TechniqueClass::NPD), 1);
        assert_eq!(count(TechniqueClass::NMD), 1);
        assert_eq!(count(TechniqueClass::OS), 1);
        assert_eq!(count(TechniqueClass::PM), 1);
        assert_eq!(count(TechniqueClass::ITM), 1);
    }

    #[test]
    fn only_sa_rows_are_supervised() {
        for e in registry() {
            assert_eq!(
                e.info.supervised,
                e.info.class == TechniqueClass::SA,
                "supervision flag of {}",
                e.info.name
            );
        }
    }

    #[test]
    fn rendered_table_contains_every_row_and_legend_columns() {
        let t = render_table1();
        assert!(t.contains("PTS"));
        assert!(t.contains("SSQ"));
        assert!(t.contains("TSS"));
        for (name, citation, ..) in PAPER_ROWS {
            assert!(t.contains(name), "rendered table misses {name}");
            assert!(t.contains(citation));
        }
        assert_eq!(t.lines().count(), 23); // header + rule + 21 rows
    }

    #[test]
    fn modules_are_unique() {
        let reg = registry();
        let mut paths: Vec<&str> = reg.iter().map(|e| e.module).collect();
        paths.sort_unstable();
        paths.dedup();
        assert_eq!(paths.len(), 21);
    }
}
