//! Unsupervised parametric approaches (UPA).
//!
//! "An anomaly is discovered if a sequence is unlikely to be generated from
//! a specified summary model."

mod fsa;
mod hmm;

pub use fsa::FiniteStateAutomaton;
pub use hmm::HiddenMarkov;
