//! Discrete hidden Markov model.
//!
//! Table-1 row **Hidden Markov Models** (Florez-Larrahondo et al.,
//! *Efficient modeling of discrete events for anomaly detection using hidden
//! markov models*, 2005 — citation [7]): a small discrete-observation HMM is
//! trained on the event sequences (Baum-Welch with scaling); a sequence's
//! anomaly score is its negative per-symbol log-likelihood under the model,
//! so sequences the summary model cannot explain rank highest.

use crate::api::{
    Capabilities, DetectError, Detector, DetectorInfo, DiscreteScorer, Result, TechniqueClass,
};

/// Discrete-observation HMM scorer.
#[derive(Debug, Clone)]
pub struct HiddenMarkov {
    /// Number of hidden states.
    pub states: usize,
    /// Baum-Welch iterations.
    pub iterations: usize,
    /// Laplace smoothing added to every re-estimated probability.
    pub smoothing: f64,
}

impl Default for HiddenMarkov {
    fn default() -> Self {
        Self {
            states: 3,
            iterations: 30,
            smoothing: 1e-3,
        }
    }
}

/// A trained HMM (row-stochastic matrices).
#[derive(Debug, Clone)]
pub struct FittedHmm {
    /// Initial state distribution (length `s`).
    pub pi: Vec<f64>,
    /// Transition matrix (`s × s`).
    pub trans: Vec<Vec<f64>>,
    /// Emission matrix (`s × m`).
    pub emit: Vec<Vec<f64>>,
}

impl FittedHmm {
    /// Scaled-forward log-likelihood of a sequence.
    #[allow(clippy::needless_range_loop)] // forward kernel reads clearer indexed
    pub fn log_likelihood(&self, seq: &[u16]) -> f64 {
        if seq.is_empty() {
            return 0.0;
        }
        let s = self.pi.len();
        let m = self.emit[0].len();
        let emit_of = |state: usize, sym: u16| -> f64 {
            if (sym as usize) < m {
                self.emit[state][sym as usize]
            } else {
                1e-12 // out-of-alphabet symbol
            }
        };
        let mut alpha: Vec<f64> = (0..s).map(|i| self.pi[i] * emit_of(i, seq[0])).collect();
        let mut log_like = 0.0;
        let c0: f64 = alpha.iter().sum::<f64>().max(1e-300);
        alpha.iter_mut().for_each(|a| *a /= c0);
        log_like += c0.ln();
        for &sym in &seq[1..] {
            let mut next = vec![0.0_f64; s];
            for (j, nj) in next.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (i, &ai) in alpha.iter().enumerate() {
                    acc += ai * self.trans[i][j];
                }
                *nj = acc * emit_of(j, sym);
            }
            let c: f64 = next.iter().sum::<f64>().max(1e-300);
            next.iter_mut().for_each(|a| *a /= c);
            log_like += c.ln();
            alpha = next;
        }
        log_like
    }
}

impl HiddenMarkov {
    /// Creates with an explicit state count.
    ///
    /// # Errors
    /// Rejects `states == 0`.
    pub fn new(states: usize) -> Result<Self> {
        if states == 0 {
            return Err(DetectError::invalid("states", "must be > 0"));
        }
        Ok(Self {
            states,
            ..Self::default()
        })
    }

    /// Deterministic non-uniform initialization (uniform start is a fixed
    /// point of Baum-Welch, so we perturb by state/symbol index).
    fn init(&self, m: usize) -> FittedHmm {
        let s = self.states;
        let mut pi = vec![0.0; s];
        for (i, p) in pi.iter_mut().enumerate() {
            *p = 1.0 + 0.1 * (i as f64 + 1.0);
        }
        normalize(&mut pi);
        let mut trans = vec![vec![0.0; s]; s];
        for (i, row) in trans.iter_mut().enumerate() {
            for (j, t) in row.iter_mut().enumerate() {
                *t = 1.0 + 0.05 * (((i + 2 * j + 1) % 7) as f64);
            }
            normalize(row);
        }
        let mut emit = vec![vec![0.0; m]; s];
        for (i, row) in emit.iter_mut().enumerate() {
            for (k, e) in row.iter_mut().enumerate() {
                // Strongly state-specialized start: state i prefers symbols
                // congruent to i, which breaks the symmetric fixed point of
                // Baum-Welch.
                *e = if k % s == i { 4.0 } else { 1.0 };
            }
            normalize(row);
        }
        FittedHmm { pi, trans, emit }
    }

    /// Baum-Welch training over a collection of sequences.
    ///
    /// # Errors
    /// Rejects an empty collection or all-empty sequences.
    #[allow(clippy::needless_range_loop)] // forward/backward kernels read clearer indexed
    pub fn fit(&self, seqs: &[&[u16]]) -> Result<FittedHmm> {
        if seqs.is_empty() {
            return Err(DetectError::NotEnoughData {
                what: "HiddenMarkov",
                needed: 1,
                got: 0,
            });
        }
        let m = seqs
            .iter()
            .flat_map(|s| s.iter())
            .map(|&x| x as usize + 1)
            .max()
            .ok_or(DetectError::NotEnoughData {
                what: "HiddenMarkov (symbols)",
                needed: 1,
                got: 0,
            })?;
        let s = self.states;
        let mut model = self.init(m);
        for _ in 0..self.iterations {
            let mut pi_acc = vec![self.smoothing; s];
            let mut trans_acc = vec![vec![self.smoothing; s]; s];
            let mut emit_acc = vec![vec![self.smoothing; m]; s];
            for seq in seqs {
                if seq.is_empty() {
                    continue;
                }
                let t_len = seq.len();
                // Scaled forward.
                let mut alpha = vec![vec![0.0_f64; s]; t_len];
                let mut scale = vec![0.0_f64; t_len];
                for i in 0..s {
                    alpha[0][i] = model.pi[i] * model.emit[i][seq[0] as usize];
                }
                scale[0] = alpha[0].iter().sum::<f64>().max(1e-300);
                alpha[0].iter_mut().for_each(|a| *a /= scale[0]);
                for t in 1..t_len {
                    for j in 0..s {
                        let mut acc = 0.0;
                        for i in 0..s {
                            acc += alpha[t - 1][i] * model.trans[i][j];
                        }
                        alpha[t][j] = acc * model.emit[j][seq[t] as usize];
                    }
                    scale[t] = alpha[t].iter().sum::<f64>().max(1e-300);
                    let sc = scale[t];
                    alpha[t].iter_mut().for_each(|a| *a /= sc);
                }
                // Scaled backward.
                let mut beta = vec![vec![0.0_f64; s]; t_len];
                beta[t_len - 1].iter_mut().for_each(|b| *b = 1.0);
                for t in (0..t_len - 1).rev() {
                    for i in 0..s {
                        let mut acc = 0.0;
                        for j in 0..s {
                            acc += model.trans[i][j]
                                * model.emit[j][seq[t + 1] as usize]
                                * beta[t + 1][j];
                        }
                        beta[t][i] = acc / scale[t + 1];
                    }
                }
                // Accumulate expected counts.
                for t in 0..t_len {
                    let gamma_denom: f64 = (0..s)
                        .map(|i| alpha[t][i] * beta[t][i])
                        .sum::<f64>()
                        .max(1e-300);
                    for i in 0..s {
                        let gamma = alpha[t][i] * beta[t][i] / gamma_denom;
                        if t == 0 {
                            pi_acc[i] += gamma;
                        }
                        emit_acc[i][seq[t] as usize] += gamma;
                    }
                }
                for t in 0..t_len - 1 {
                    let mut denom = 0.0;
                    for i in 0..s {
                        for j in 0..s {
                            denom += alpha[t][i]
                                * model.trans[i][j]
                                * model.emit[j][seq[t + 1] as usize]
                                * beta[t + 1][j];
                        }
                    }
                    let denom = denom.max(1e-300);
                    for i in 0..s {
                        for j in 0..s {
                            let xi = alpha[t][i]
                                * model.trans[i][j]
                                * model.emit[j][seq[t + 1] as usize]
                                * beta[t + 1][j]
                                / denom;
                            trans_acc[i][j] += xi;
                        }
                    }
                }
            }
            // Re-estimate.
            normalize(&mut pi_acc);
            model.pi = pi_acc;
            for row in trans_acc.iter_mut() {
                normalize(row);
            }
            model.trans = trans_acc;
            for row in emit_acc.iter_mut() {
                normalize(row);
            }
            model.emit = emit_acc;
        }
        Ok(model)
    }
}

fn normalize(v: &mut [f64]) {
    let s: f64 = v.iter().sum();
    if s > 0.0 {
        v.iter_mut().for_each(|x| *x /= s);
    } else if !v.is_empty() {
        let u = 1.0 / v.len() as f64;
        v.iter_mut().for_each(|x| *x = u);
    }
}

impl Detector for HiddenMarkov {
    fn info(&self) -> DetectorInfo {
        DetectorInfo {
            name: "Hidden Markov Models",
            citation: "[7]",
            class: TechniqueClass::UPA,
            capabilities: Capabilities::new(false, true, true),
            supervised: false,
        }
    }
}

impl DiscreteScorer for HiddenMarkov {
    fn score_sequences(&self, seqs: &[&[u16]]) -> Result<Vec<f64>> {
        if seqs.len() < 2 {
            return Err(DetectError::NotEnoughData {
                what: "HiddenMarkov",
                needed: 2,
                got: seqs.len(),
            });
        }
        let model = self.fit(seqs)?;
        Ok(seqs
            .iter()
            .map(|s| {
                if s.is_empty() {
                    0.0
                } else {
                    -model.log_likelihood(s) / s.len() as f64
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitted_matrices_are_stochastic() {
        let a: Vec<u16> = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let b: Vec<u16> = vec![0, 1, 0, 1, 1, 0, 0, 1];
        let model = HiddenMarkov::new(2).unwrap().fit(&[&a, &b]).unwrap();
        assert!((model.pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for row in &model.trans {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        for row in &model.emit {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn training_improves_likelihood() {
        let seqs: Vec<Vec<u16>> = (0..4)
            .map(|k| (0..20).map(|i| ((i + k) % 2) as u16).collect())
            .collect();
        let refs: Vec<&[u16]> = seqs.iter().map(Vec::as_slice).collect();
        let hmm = HiddenMarkov::new(2).unwrap();
        let untrained = hmm.init(2);
        let trained = hmm.fit(&refs).unwrap();
        let ll_before: f64 = refs.iter().map(|s| untrained.log_likelihood(s)).sum();
        let ll_after: f64 = refs.iter().map(|s| trained.log_likelihood(s)).sum();
        assert!(
            ll_after > ll_before,
            "Baum-Welch must not decrease likelihood ({ll_before} -> {ll_after})"
        );
    }

    #[test]
    fn anomalous_sequence_has_lowest_likelihood() {
        // Normals alternate strictly; anomaly is constant.
        let normals: Vec<Vec<u16>> = (0..6)
            .map(|_| (0..24).map(|i| (i % 2) as u16).collect())
            .collect();
        let anomaly: Vec<u16> = vec![1; 24];
        let mut all: Vec<&[u16]> = normals.iter().map(Vec::as_slice).collect();
        all.push(&anomaly);
        let scores = HiddenMarkov::new(2).unwrap().score_sequences(&all).unwrap();
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, all.len() - 1, "{scores:?}");
    }

    #[test]
    fn out_of_alphabet_symbols_are_penalized() {
        let a: Vec<u16> = vec![0, 1, 0, 1];
        let model = HiddenMarkov::new(2).unwrap().fit(&[&a, &a]).unwrap();
        let in_alpha = model.log_likelihood(&[0, 1, 0, 1]);
        let out_alpha = model.log_likelihood(&[7, 7, 7, 7]);
        assert!(in_alpha > out_alpha);
    }

    #[test]
    fn empty_sequence_scores_zero() {
        let a: Vec<u16> = vec![0, 1, 0];
        let empty: Vec<u16> = vec![];
        let all: Vec<&[u16]> = vec![&a, &empty];
        let scores = HiddenMarkov::new(2).unwrap().score_sequences(&all).unwrap();
        assert_eq!(scores[1], 0.0);
    }

    #[test]
    fn deterministic_validation_info() {
        let a: Vec<u16> = vec![0, 1, 2, 0, 1, 2];
        let b: Vec<u16> = vec![0, 1, 2, 2, 1, 0];
        let all: Vec<&[u16]> = vec![&a, &b];
        let hmm = HiddenMarkov::default();
        assert_eq!(
            hmm.score_sequences(&all).unwrap(),
            hmm.score_sequences(&all).unwrap()
        );
        assert!(HiddenMarkov::new(0).is_err());
        assert!(hmm.score_sequences(&[&a]).is_err());
        let i = hmm.info();
        assert_eq!(i.citation, "[7]");
        assert_eq!(i.class, TechniqueClass::UPA);
    }
}
