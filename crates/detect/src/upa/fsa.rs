//! Finite-state automaton over n-grams.
//!
//! Table-1 row **Finite State Automata** (Marceau, *Characterizing the
//! behavior of a program using multiple-length n-grams*, 2005 — citation
//! [25]): normal behaviour is summarized as an automaton whose states are
//! the (multi-length) n-grams seen in training; a sequence is anomalous to
//! the degree that it traverses transitions the automaton has never seen.
//! Unsupervised use: the automaton is trained on all sequences and each
//! sequence is scored leave-one-out, so a unique sequence cannot vouch for
//! itself.

use std::collections::HashMap;

use crate::api::{
    Capabilities, DetectError, Detector, DetectorInfo, DiscreteScorer, Result, TechniqueClass,
};

/// n-gram automaton scorer for symbol sequences.
#[derive(Debug, Clone)]
pub struct FiniteStateAutomaton {
    /// Orders of the n-grams forming states (e.g. `[2, 3]` uses bigram and
    /// trigram contexts).
    pub orders: Vec<usize>,
}

impl Default for FiniteStateAutomaton {
    fn default() -> Self {
        Self { orders: vec![2, 3] }
    }
}

type TransitionCounts = HashMap<(usize, Vec<u16>), usize>;

impl FiniteStateAutomaton {
    /// Creates with explicit n-gram orders.
    ///
    /// # Errors
    /// Rejects an empty order list or an order of 0.
    pub fn new(orders: Vec<usize>) -> Result<Self> {
        if orders.is_empty() || orders.contains(&0) {
            return Err(DetectError::invalid(
                "orders",
                "need at least one order >= 1",
            ));
        }
        Ok(Self { orders })
    }

    /// Counts every `(order, gram)` occurrence in a sequence into `counts`,
    /// with the given sign (+1 to add, −1 to remove — used for
    /// leave-one-out).
    fn accumulate(&self, seq: &[u16], counts: &mut TransitionCounts, sign: isize) {
        for &order in &self.orders {
            if seq.len() < order {
                continue;
            }
            for gram in seq.windows(order) {
                let e = counts.entry((order, gram.to_vec())).or_insert(0);
                if sign > 0 {
                    *e += 1;
                } else {
                    *e = e.saturating_sub(1);
                }
            }
        }
    }

    /// Fraction of a sequence's grams unseen in `counts` (averaged over
    /// orders; orders the sequence is too short for are skipped).
    fn unseen_fraction(&self, seq: &[u16], counts: &TransitionCounts) -> f64 {
        let mut total_frac = 0.0;
        let mut used_orders = 0;
        for &order in &self.orders {
            if seq.len() < order {
                continue;
            }
            let grams = seq.len() - order + 1;
            let unseen = seq
                .windows(order)
                .filter(|g| {
                    counts
                        .get(&(order, g.to_vec()))
                        .map(|&c| c == 0)
                        .unwrap_or(true)
                })
                .count();
            total_frac += unseen as f64 / grams as f64;
            used_orders += 1;
        }
        if used_orders == 0 {
            0.0
        } else {
            total_frac / used_orders as f64
        }
    }
}

impl Detector for FiniteStateAutomaton {
    fn info(&self) -> DetectorInfo {
        DetectorInfo {
            name: "Finite State Automata",
            citation: "[25]",
            class: TechniqueClass::UPA,
            capabilities: Capabilities::new(false, true, true),
            supervised: false,
        }
    }
}

impl DiscreteScorer for FiniteStateAutomaton {
    fn score_sequences(&self, seqs: &[&[u16]]) -> Result<Vec<f64>> {
        if seqs.len() < 2 {
            return Err(DetectError::NotEnoughData {
                what: "FiniteStateAutomaton",
                needed: 2,
                got: seqs.len(),
            });
        }
        let mut counts: TransitionCounts = HashMap::new();
        for s in seqs {
            self.accumulate(s, &mut counts, 1);
        }
        Ok(seqs
            .iter()
            .map(|s| {
                // Leave-one-out: remove own grams, score, re-add.
                let mut loo = counts.clone();
                self.accumulate(s, &mut loo, -1);
                self.unseen_fraction(s, &loo)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alien_grammar_scores_one() {
        // Normal sequences cycle 0,1,2; the alien uses symbols never seen.
        let normals: Vec<Vec<u16>> = (0..5)
            .map(|k| (0..12).map(|i| ((i + k) % 3) as u16).collect())
            .collect();
        let alien: Vec<u16> = vec![7, 8, 9, 7, 8, 9, 7, 8];
        let mut all: Vec<&[u16]> = normals.iter().map(Vec::as_slice).collect();
        all.push(&alien);
        let scores = FiniteStateAutomaton::default()
            .score_sequences(&all)
            .unwrap();
        assert!((scores[all.len() - 1] - 1.0).abs() < 1e-9);
        // Normal cyclic sequences share all their grams.
        assert!(scores[0] < 0.05, "{scores:?}");
    }

    #[test]
    fn leave_one_out_prevents_self_vouching() {
        // A unique sequence appearing once must not validate itself.
        let a: Vec<u16> = vec![0, 1, 0, 1, 0, 1];
        let b: Vec<u16> = vec![0, 1, 0, 1, 0, 1];
        let unique: Vec<u16> = vec![5, 6, 5, 6, 5, 6];
        let all: Vec<&[u16]> = vec![&a, &b, &unique];
        let scores = FiniteStateAutomaton::default()
            .score_sequences(&all)
            .unwrap();
        assert_eq!(scores[2], 1.0);
        assert_eq!(scores[0], 0.0);
    }

    #[test]
    fn partially_novel_transitions_score_fractionally() {
        let normal1: Vec<u16> = vec![0, 1, 2, 3, 0, 1, 2, 3];
        let normal2: Vec<u16> = vec![0, 1, 2, 3, 0, 1, 2, 3];
        // Half familiar prefix, half novel suffix.
        let hybrid: Vec<u16> = vec![0, 1, 2, 3, 9, 8, 9, 8];
        let all: Vec<&[u16]> = vec![&normal1, &normal2, &hybrid];
        let scores = FiniteStateAutomaton::new(vec![2])
            .unwrap()
            .score_sequences(&all)
            .unwrap();
        assert!(scores[2] > 0.3 && scores[2] < 0.9, "hybrid {}", scores[2]);
    }

    #[test]
    fn sequences_shorter_than_order_score_zero() {
        let a: Vec<u16> = vec![1];
        let b: Vec<u16> = vec![2];
        let all: Vec<&[u16]> = vec![&a, &b];
        let scores = FiniteStateAutomaton::new(vec![3])
            .unwrap()
            .score_sequences(&all)
            .unwrap();
        assert_eq!(scores, vec![0.0, 0.0]);
    }

    #[test]
    fn validation_and_info() {
        assert!(FiniteStateAutomaton::new(vec![]).is_err());
        assert!(FiniteStateAutomaton::new(vec![0]).is_err());
        let a: Vec<u16> = vec![1, 2];
        assert!(FiniteStateAutomaton::default()
            .score_sequences(&[&a])
            .is_err());
        let i = FiniteStateAutomaton::default().info();
        assert_eq!(i.class, TechniqueClass::UPA);
        assert_eq!(i.citation, "[25]");
    }
}
