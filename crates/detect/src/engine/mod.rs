//! The detection engine: specs, resolution, standardization, scheduling.
//!
//! This module turns "run detector X with parameters P over data D" from a
//! per-call-site `match` into data flowing through one pipeline:
//!
//! 1. [`AlgoSpec`] — the selection as data: a registry key plus named
//!    parameters (`"ar"`, `"pca(components=2)"`).
//! 2. [`build`] — resolves a spec against the Table-1 registry and the
//!    supplemental catalog ([`all_entries`]) into a [`BoxedScorer`],
//!    validating parameter names and values with
//!    [`DetectError::InvalidParameter`](crate::api::DetectError).
//! 3. [`BoxedScorer`] — one runnable handle over every scorer trait, with
//!    drivers that bridge granularities (windows, PAA, SAX) where the
//!    underlying trait differs from the data at hand.
//! 4. [`Standardizer`] — turns raw, detector-specific score scales into
//!    comparable robust z-scores ([`RobustZ`]) so one threshold works
//!    across all 21+ detectors.
//! 5. [`TaskPool`] — a work-stealing scheduler running the per-(level ×
//!    machine × sensor/job-group) scoring tasks that the hierarchy layer
//!    (`hierod-core`) decomposes a plant into.
//!
//! The `hierod-core` policy types are thin facades that construct specs;
//! nothing above this module matches on algorithm enums to build scorers.

pub(crate) mod boxed;
mod catalog;
mod scheduler;
mod spec;
mod standardize;

pub use boxed::{BoxedScorer, ScorerKind};
pub use catalog::{all_entries, build, find, supplemental};
pub use scheduler::{Task, TaskPool};
pub use spec::{AlgoSpec, ParamValue};
pub use standardize::{Identity, RobustZ, Standardizer};
