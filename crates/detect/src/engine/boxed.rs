//! [`BoxedScorer`]: one runnable handle over every scorer trait.
//!
//! The registry resolves an [`crate::engine::AlgoSpec`] into a boxed trait
//! object; this enum records which trait that object implements and offers
//! uniform drivers that bridge granularities through the [`crate::adapt`]
//! embeddings (sliding windows, PAA, SAX). Callers that need a specific
//! granularity use [`BoxedScorer::into_point`] & friends; callers that just
//! want "score this data with whatever was configured" use the drivers.

use crate::adapt;
use crate::api::{
    DetectError, Detector, DetectorInfo, DiscreteScorer, PointScorer, Result, SeriesScorer,
    SupervisedScorer, VectorScorer,
};
use hierod_timeseries::window::WindowSpec;

/// The granularity/trait a built scorer operates at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScorerKind {
    /// [`PointScorer`]: per-sample scores of one numeric series.
    Point,
    /// [`VectorScorer`]: per-row scores of a vector collection.
    Vector,
    /// [`DiscreteScorer`]: per-sequence scores of a symbol-sequence set.
    Discrete,
    /// [`SeriesScorer`]: per-series scores of a whole-series collection.
    Series,
    /// [`SupervisedScorer`]: fit on labels, then score.
    Supervised,
}

impl ScorerKind {
    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            ScorerKind::Point => "point",
            ScorerKind::Vector => "vector",
            ScorerKind::Discrete => "discrete",
            ScorerKind::Series => "series",
            ScorerKind::Supervised => "supervised",
        }
    }
}

/// A registry-built scorer: a boxed trait object tagged with its trait.
pub enum BoxedScorer {
    /// Per-point scorer.
    Point(Box<dyn PointScorer + Send + Sync>),
    /// Vector-collection scorer.
    Vector(Box<dyn VectorScorer + Send + Sync>),
    /// Symbol-sequence scorer.
    Discrete(Box<dyn DiscreteScorer + Send + Sync>),
    /// Whole-series-collection scorer.
    Series(Box<dyn SeriesScorer + Send + Sync>),
    /// Supervised scorer (fit + predict).
    Supervised(Box<dyn SupervisedScorer + Send + Sync>),
}

impl std::fmt::Debug for BoxedScorer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BoxedScorer::{}({})",
            self.kind().label(),
            self.info().name
        )
    }
}

/// Symbolization defaults used by the granularity-bridging drivers.
const BRIDGE_BLOCK: usize = 2;
const BRIDGE_ALPHABET: usize = 6;
const BRIDGE_WORD: usize = 4;

fn wrong_granularity(have: ScorerKind, want: &str) -> DetectError {
    DetectError::invalid(
        "granularity",
        format!("{} scorer cannot serve {want} scoring", have.label()),
    )
}

impl BoxedScorer {
    /// The underlying detector's metadata.
    pub fn info(&self) -> DetectorInfo {
        match self {
            BoxedScorer::Point(s) => s.info(),
            BoxedScorer::Vector(s) => s.info(),
            BoxedScorer::Discrete(s) => s.info(),
            BoxedScorer::Series(s) => s.info(),
            BoxedScorer::Supervised(s) => s.info(),
        }
    }

    /// Which trait the built scorer implements.
    pub fn kind(&self) -> ScorerKind {
        match self {
            BoxedScorer::Point(_) => ScorerKind::Point,
            BoxedScorer::Vector(_) => ScorerKind::Vector,
            BoxedScorer::Discrete(_) => ScorerKind::Discrete,
            BoxedScorer::Series(_) => ScorerKind::Series,
            BoxedScorer::Supervised(_) => ScorerKind::Supervised,
        }
    }

    /// Unwraps the point scorer.
    ///
    /// # Errors
    /// Rejects non-point scorers.
    pub fn into_point(self) -> Result<Box<dyn PointScorer + Send + Sync>> {
        match self {
            BoxedScorer::Point(s) => Ok(s),
            other => Err(wrong_granularity(other.kind(), "point")),
        }
    }

    /// Unwraps the vector scorer.
    ///
    /// # Errors
    /// Rejects non-vector scorers.
    pub fn into_vector(self) -> Result<Box<dyn VectorScorer + Send + Sync>> {
        match self {
            BoxedScorer::Vector(s) => Ok(s),
            other => Err(wrong_granularity(other.kind(), "vector")),
        }
    }

    /// Scores one numeric series per point.
    ///
    /// Point scorers run natively; vector scorers run over z-normalized
    /// sliding windows (window length scales with the series, scores spread
    /// back to points by covering-window max); discrete scorers run over
    /// SAX symbol windows. Series and supervised scorers reject.
    ///
    /// # Errors
    /// Propagates scorer errors; rejects unsupported granularities.
    pub fn score_points(&self, values: &[f64]) -> Result<Vec<f64>> {
        match self {
            BoxedScorer::Point(s) => s.score_points(values),
            BoxedScorer::Vector(s) => {
                let win = (values.len() / 8).clamp(4, 32);
                let spec = WindowSpec::new(win, 1).map_err(DetectError::from)?;
                adapt::score_windows_with(s.as_ref(), values, spec, true).map(|(_, p)| p)
            }
            BoxedScorer::Discrete(s) => adapt::score_points_via_symbols(
                s.as_ref(),
                values,
                BRIDGE_BLOCK,
                BRIDGE_ALPHABET,
                BRIDGE_WORD,
            ),
            other => Err(wrong_granularity(other.kind(), "point")),
        }
    }

    /// Scores each row of a vector collection against the rest. Rows are
    /// borrowed (see [`VectorScorer::score_rows`]); adapt owned collections
    /// with [`crate::api::row_refs`].
    ///
    /// # Errors
    /// Propagates scorer errors; rejects unsupported granularities
    /// (supervised scorers must go through [`Self::fit`]/[`Self::predict`]).
    pub fn score_rows(&self, rows: &[&[f64]]) -> Result<Vec<f64>> {
        match self {
            BoxedScorer::Vector(s) => s.score_rows(rows),
            other => Err(wrong_granularity(other.kind(), "vector")),
        }
    }

    /// Scores each whole series of a collection against the rest.
    ///
    /// Series scorers run natively; vector scorers run over the PAA
    /// embedding with `segments` values per series; point scorers score
    /// each member independently and report its mean point score; discrete
    /// scorers run over each member's SAX symbolization.
    ///
    /// # Errors
    /// Propagates scorer errors; rejects supervised scorers.
    pub fn score_collection(&self, collection: &[&[f64]], segments: usize) -> Result<Vec<f64>> {
        match self {
            BoxedScorer::Series(s) => s.score_series(collection),
            BoxedScorer::Vector(s) => adapt::score_series_with(s.as_ref(), collection, segments),
            BoxedScorer::Point(s) => collection
                .iter()
                .map(|series| {
                    let scores = s.score_points(series)?;
                    let n = scores.len().max(1) as f64;
                    Ok(scores.iter().sum::<f64>() / n)
                })
                .collect(),
            BoxedScorer::Discrete(s) => {
                let symbolized: Vec<Vec<u16>> = collection
                    .iter()
                    .map(|series| adapt::symbolize(series, BRIDGE_BLOCK, BRIDGE_ALPHABET))
                    .collect::<Result<_>>()?;
                let refs: Vec<&[u16]> = symbolized.iter().map(Vec::as_slice).collect();
                s.score_sequences(&refs)
            }
            other => Err(wrong_granularity(other.kind(), "series")),
        }
    }

    /// Fits a supervised scorer on labeled rows.
    ///
    /// # Errors
    /// Propagates fit errors; rejects unsupervised scorers.
    pub fn fit(&mut self, rows: &[Vec<f64>], labels: &[bool]) -> Result<()> {
        match self {
            BoxedScorer::Supervised(s) => s.fit(rows, labels),
            other => Err(wrong_granularity(other.kind(), "supervised fit")),
        }
    }

    /// Scores rows with a fitted supervised scorer.
    ///
    /// # Errors
    /// [`DetectError::NotFitted`] before [`Self::fit`]; rejects
    /// unsupervised scorers.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>> {
        match self {
            BoxedScorer::Supervised(s) => s.predict(rows),
            other => Err(wrong_granularity(other.kind(), "supervised predict")),
        }
    }
}

/// Adapter: [`crate::os::SaxDiscord`] as a [`PointScorer`] (its per-point
/// discord scores; the per-window scores are dropped).
pub(crate) struct SaxPoints(pub crate::os::SaxDiscord);

impl Detector for SaxPoints {
    fn info(&self) -> DetectorInfo {
        self.0.info()
    }
}

impl PointScorer for SaxPoints {
    fn score_points(&self, values: &[f64]) -> Result<Vec<f64>> {
        self.0.score(values).map(|(_, points)| points)
    }
}

/// Adapter: [`crate::nmd::AnomalyDictionary`] as a [`DiscreteScorer`]
/// (scores each sequence against the dictionary's negative patterns). A
/// dictionary holding no patterns yet matches nothing, so every sequence
/// scores 0 instead of erroring — the NMD semantics of "no known anomalies".
pub(crate) struct DictSequences(pub crate::nmd::AnomalyDictionary);

impl Detector for DictSequences {
    fn info(&self) -> DetectorInfo {
        self.0.info()
    }
}

impl DiscreteScorer for DictSequences {
    fn score_sequences(&self, seqs: &[&[u16]]) -> Result<Vec<f64>> {
        if self.0.is_empty() {
            return Ok(vec![0.0; seqs.len()]);
        }
        self.0.score(seqs)
    }
}

/// Adapter: [`crate::sa::MotifRuleClassifier`] as a [`SupervisedScorer`]
/// over numeric rows. Fit learns global quantile bin edges from the
/// training values and symbolizes each row through them; predict reuses the
/// learned edges, so train and test rows share one discretization.
pub(crate) struct MotifOnVectors {
    pub inner: crate::sa::MotifRuleClassifier,
    pub alphabet: usize,
    edges: Option<Vec<f64>>,
}

impl MotifOnVectors {
    pub(crate) fn new(inner: crate::sa::MotifRuleClassifier, alphabet: usize) -> Self {
        Self {
            inner,
            alphabet,
            edges: None,
        }
    }

    fn symbolize_rows(&self, rows: &[Vec<f64>], edges: &[f64]) -> Vec<Vec<u16>> {
        rows.iter()
            .map(|r| {
                r.iter()
                    .map(|&v| edges.iter().filter(|&&e| v > e).count() as u16)
                    .collect()
            })
            .collect()
    }
}

impl Detector for MotifOnVectors {
    fn info(&self) -> DetectorInfo {
        self.inner.info()
    }
}

impl SupervisedScorer for MotifOnVectors {
    fn fit(&mut self, rows: &[Vec<f64>], labels: &[bool]) -> Result<()> {
        crate::api::check_rows("motif-rules", rows)?;
        let mut all: Vec<f64> = rows.iter().flatten().copied().collect();
        all.sort_by(|a, b| a.total_cmp(b));
        // alphabet bins need alphabet - 1 interior edges.
        let edges: Vec<f64> = (1..self.alphabet)
            .map(|i| {
                let pos = i * (all.len() - 1) / self.alphabet;
                all[pos]
            })
            .collect();
        let seqs = self.symbolize_rows(rows, &edges);
        let refs: Vec<&[u16]> = seqs.iter().map(Vec::as_slice).collect();
        self.inner.fit_sequences(&refs, labels)?;
        self.edges = Some(edges);
        Ok(())
    }

    fn predict(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>> {
        let edges = self.edges.as_ref().ok_or(DetectError::NotFitted)?;
        let seqs = self.symbolize_rows(rows, edges);
        let refs: Vec<&[u16]> = seqs.iter().map(Vec::as_slice).collect();
        self.inner.predict_sequences(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pm::AutoregressiveModel;
    use crate::stat::SlidingZScore;

    fn spike_series() -> Vec<f64> {
        let mut v: Vec<f64> = (0..96).map(|i| (i as f64 * 0.37).sin()).collect();
        v[48] += 12.0;
        v
    }

    #[test]
    fn point_scorer_drives_natively() {
        let s = BoxedScorer::Point(Box::new(SlidingZScore::new(16).unwrap()));
        assert_eq!(s.kind(), ScorerKind::Point);
        let scores = s.score_points(&spike_series()).unwrap();
        assert_eq!(scores.len(), 96);
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, 48);
    }

    #[test]
    fn vector_scorer_bridges_to_points_and_series() {
        let s = BoxedScorer::Vector(Box::new(
            crate::da::PrincipalComponentSpace::new(1).unwrap(),
        ));
        let p = s.score_points(&spike_series()).unwrap();
        assert_eq!(p.len(), 96);
        assert!(p.iter().all(|x| x.is_finite()));

        let a: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3 + 0.05).sin()).collect();
        let weird: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let scores = s.score_collection(&[&a, &b, &weird], 8).unwrap();
        assert_eq!(scores.len(), 3);
        assert!(scores[2] > scores[0]);
    }

    #[test]
    fn granularity_mismatches_are_rejected() {
        let s = BoxedScorer::Point(Box::new(AutoregressiveModel::new(2).unwrap()));
        assert!(s.score_rows(&[[1.0, 2.0].as_slice()]).is_err());
        assert!(s.predict(&[vec![1.0, 2.0]]).is_err());
        let mut s = s;
        assert!(s.fit(&[vec![1.0, 2.0]], &[false]).is_err());
        assert!(s.into_vector().is_err());
    }

    #[test]
    fn point_scorer_serves_collections_by_mean_score() {
        let s = BoxedScorer::Point(Box::new(SlidingZScore::new(8).unwrap()));
        // Identical series except for the spike, so the mean point score
        // difference is attributable to the spike alone.
        let quiet: Vec<f64> = (0..96).map(|i| (i as f64 * 0.37).sin()).collect();
        let loud = spike_series();
        let scores = s.score_collection(&[&quiet, &loud], 8).unwrap();
        assert!(scores[1] > scores[0]);
    }

    #[test]
    fn motif_adapter_fits_and_predicts() {
        let mut rows: Vec<Vec<f64>> = (0..24).map(|i| vec![0.0, (i % 3) as f64, 1.0]).collect();
        let mut labels = vec![false; 24];
        for i in 0..6 {
            rows.push(vec![9.0, 9.0, 9.0 + i as f64]);
            labels.push(true);
        }
        let mut s = BoxedScorer::Supervised(Box::new(MotifOnVectors::new(
            crate::sa::MotifRuleClassifier::new(2).unwrap(),
            4,
        )));
        assert!(s.predict(&rows).is_err(), "predict before fit");
        s.fit(&rows, &labels).unwrap();
        let scores = s.predict(&rows).unwrap();
        assert_eq!(scores.len(), rows.len());
        assert!(scores.iter().all(|x| x.is_finite()));
        // Anomalous rows should outscore normal ones on average.
        let mean = |idx: &[usize]| idx.iter().map(|&i| scores[i]).sum::<f64>() / idx.len() as f64;
        let normal: Vec<usize> = (0..24).collect();
        let anomalous: Vec<usize> = (24..30).collect();
        assert!(mean(&anomalous) > mean(&normal));
    }
}
