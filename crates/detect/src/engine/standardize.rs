//! Pluggable score standardization.
//!
//! Raw detector scores live on wildly different scales (AR residuals,
//! reconstruction errors, negative log-likelihoods, …). The hierarchy's
//! per-level thresholds are expressed in **robust z-units of the score
//! distribution** so that one threshold scale works across algorithms;
//! [`Standardizer`] makes that final normalization stage explicit and
//! swappable instead of hard-wiring it into the level-detection loop.

use hierod_timeseries::stats;

/// Maps a raw score vector onto a common comparable scale.
pub trait Standardizer: Send + Sync {
    /// Standardizes the raw scores (same length as the input).
    fn standardize(&self, raw: &[f64]) -> Vec<f64>;

    /// Short label for reports.
    fn label(&self) -> &'static str;
}

/// Robust z-units: `(s - median) / MAD`, with a standard-deviation fallback
/// when the MAD collapses (e.g. a score vector that is mostly zeros), and
/// all-zeros when the distribution is fully degenerate.
#[derive(Debug, Clone, Copy, Default)]
pub struct RobustZ;

impl Standardizer for RobustZ {
    fn standardize(&self, raw: &[f64]) -> Vec<f64> {
        if raw.is_empty() {
            return Vec::new();
        }
        let med = stats::median(raw).expect("non-empty");
        let mad = stats::mad(raw).expect("non-empty");
        let spread = if mad > 1e-12 {
            mad
        } else {
            // MAD collapses when most scores are identical (e.g. IQR-fence
            // zeros); fall back to the standard deviation.
            let sd = stats::std_dev(raw).expect("non-empty");
            if sd > 1e-12 {
                sd
            } else {
                return vec![0.0; raw.len()];
            }
        };
        raw.iter().map(|s| (s - med) / spread).collect()
    }

    fn label(&self) -> &'static str {
        "robust z"
    }
}

/// No-op standardizer for scores that are already on the threshold scale
/// (e.g. profile-similarity scores, which are MAD-units against the learned
/// template — re-standardizing them per series would amplify the near-zero
/// spread of clean executions into false positives).
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl Standardizer for Identity {
    fn standardize(&self, raw: &[f64]) -> Vec<f64> {
        raw.to_vec()
    }

    fn label(&self) -> &'static str {
        "identity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robust_z_flags_spike() {
        let z = RobustZ.standardize(&[1.0, 1.1, 0.9, 1.0, 9.0]);
        assert!(z[4] > 5.0);
        assert!(z[0].abs() < 2.0);
    }

    #[test]
    fn robust_z_degenerate_inputs() {
        assert_eq!(RobustZ.standardize(&[]), Vec::<f64>::new());
        assert_eq!(RobustZ.standardize(&[2.0, 2.0]), vec![0.0, 0.0]);
        // MAD zero but variance nonzero: one extreme among many identical.
        let mut v = vec![0.0; 9];
        v.push(100.0);
        let z = RobustZ.standardize(&v);
        assert!(z[9] > 1.0);
        assert!(z.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn identity_is_noop() {
        let raw = [0.5, 3.0, -1.0];
        assert_eq!(Identity.standardize(&raw), raw.to_vec());
        assert_eq!(Identity.label(), "identity");
        assert_eq!(RobustZ.label(), "robust z");
    }
}
