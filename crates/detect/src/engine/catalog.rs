//! Spec resolution: Table-1 registry + supplemental catalog.
//!
//! The Table-1 registry ([`crate::registry::registry`]) covers the paper's
//! 21 rows. The supplemental catalog adds the statistical baselines
//! (§4-style z-scores and fences), the related-work detectors (LOF, kNN,
//! reverse-kNN — paper Section 5), and the cross-machine profile used at
//! the production level — everything the hierarchy's default policies can
//! select that is not itself a Table-1 row. [`find`] and [`build`] resolve
//! an [`AlgoSpec`] against the union of both.

use crate::api::{DetectError, Detector, Result};
use crate::da::KMeans;
use crate::engine::{AlgoSpec, BoxedScorer};
use crate::registry::{registry, RegistryEntry};
use crate::related::{
    CrossMachineProfile, KnnDistance, LocalOutlierFactor, PairDifference, PairRegression,
    ReverseKnn,
};
use crate::stat::{GlobalZScore, IqrFence, RobustZScore, SlidingZScore};

fn build_sliding_z(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Point(Box::new(SlidingZScore::new(
        s.get_usize("window", 48)?,
    )?)))
}

fn build_global_z(_s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Point(Box::new(GlobalZScore)))
}

fn build_robust_z(_s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Point(Box::new(RobustZScore)))
}

fn build_iqr(_s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Point(Box::new(IqrFence)))
}

fn build_kmeans(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Vector(Box::new(KMeans::new(
        s.get_usize("k", 4)?,
    )?)))
}

fn build_lof(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Vector(Box::new(LocalOutlierFactor::new(
        s.get_usize("k", 5)?,
    )?)))
}

fn build_knn(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Vector(Box::new(KnnDistance::new(
        s.get_usize("k", 5)?,
    )?)))
}

fn build_rknn(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Vector(Box::new(ReverseKnn::new(
        s.get_usize("k", 5)?,
    )?)))
}

fn build_cross_machine_profile(_s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Series(Box::new(CrossMachineProfile)))
}

fn build_pair_regression(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Vector(Box::new(PairRegression::new(
        s.get_usize("signed", 0)? != 0,
    ))))
}

fn build_pair_diff(s: &AlgoSpec) -> Result<BoxedScorer> {
    Ok(BoxedScorer::Vector(Box::new(PairDifference::new(
        s.get_usize("signed", 0)? != 0,
    ))))
}

/// The supplemental (non-Table-1) catalog entries.
pub fn supplemental() -> Vec<RegistryEntry> {
    vec![
        RegistryEntry {
            info: SlidingZScore::new(48).expect("static default").info(),
            module: "hierod_detect::stat::SlidingZScore",
            key: "sliding-z",
            params: &["window"],
            build: build_sliding_z,
        },
        RegistryEntry {
            info: GlobalZScore.info(),
            module: "hierod_detect::stat::GlobalZScore",
            key: "global-z",
            params: &[],
            build: build_global_z,
        },
        RegistryEntry {
            info: RobustZScore.info(),
            module: "hierod_detect::stat::RobustZScore",
            key: "robust-z",
            params: &[],
            build: build_robust_z,
        },
        RegistryEntry {
            info: IqrFence.info(),
            module: "hierod_detect::stat::IqrFence",
            key: "iqr",
            params: &[],
            build: build_iqr,
        },
        RegistryEntry {
            info: KMeans::new(4).expect("static default").info(),
            module: "hierod_detect::da::KMeans",
            key: "kmeans",
            params: &["k"],
            build: build_kmeans,
        },
        RegistryEntry {
            info: LocalOutlierFactor::new(5).expect("static default").info(),
            module: "hierod_detect::related::LocalOutlierFactor",
            key: "lof",
            params: &["k"],
            build: build_lof,
        },
        RegistryEntry {
            info: KnnDistance::new(5).expect("static default").info(),
            module: "hierod_detect::related::KnnDistance",
            key: "knn",
            params: &["k"],
            build: build_knn,
        },
        RegistryEntry {
            info: ReverseKnn::new(5).expect("static default").info(),
            module: "hierod_detect::related::ReverseKnn",
            key: "rknn",
            params: &["k"],
            build: build_rknn,
        },
        RegistryEntry {
            info: CrossMachineProfile.info(),
            module: "hierod_detect::related::CrossMachineProfile",
            key: "cross-machine-profile",
            params: &[],
            build: build_cross_machine_profile,
        },
        RegistryEntry {
            info: PairRegression::default().info(),
            module: "hierod_detect::related::PairRegression",
            key: "pair-regression",
            params: &["signed"],
            build: build_pair_regression,
        },
        RegistryEntry {
            info: PairDifference::default().info(),
            module: "hierod_detect::related::PairDifference",
            key: "pair-diff",
            params: &["signed"],
            build: build_pair_diff,
        },
    ]
}

/// Every buildable entry: the 21 Table-1 rows followed by the supplemental
/// catalog.
pub fn all_entries() -> Vec<RegistryEntry> {
    let mut entries = registry();
    entries.extend(supplemental());
    entries
}

/// The entry union, built once (entries hold only static metadata and fn
/// pointers, so one construction serves every lookup — `find` sits on the
/// per-task hot path of the scheduler).
fn entries_cached() -> &'static [RegistryEntry] {
    static CACHE: std::sync::OnceLock<Vec<RegistryEntry>> = std::sync::OnceLock::new();
    CACHE.get_or_init(all_entries)
}

/// Finds the entry whose key or Table-1 row name matches `name`
/// (case-insensitive).
///
/// # Errors
/// [`DetectError::InvalidParameter`] on an unknown name.
pub fn find(name: &str) -> Result<RegistryEntry> {
    let wanted = name.trim().to_lowercase();
    entries_cached()
        .iter()
        .find(|e| e.key == wanted || e.info.name.to_lowercase() == wanted)
        .cloned()
        .ok_or_else(|| DetectError::invalid("name", format!("unknown algorithm `{name}`")))
}

/// Resolves a spec into a runnable scorer: finds the entry, rejects
/// undeclared parameter names, and runs the entry's constructor (which
/// validates the parameter values).
///
/// # Errors
/// [`DetectError::InvalidParameter`] on an unknown name, an undeclared
/// parameter, or a parameter value the constructor rejects.
pub fn build(spec: &AlgoSpec) -> Result<BoxedScorer> {
    let entry = find(&spec.name)?;
    for key in spec.params.keys() {
        if !entry.params.contains(&key.as_str()) {
            return Err(DetectError::invalid(
                "params",
                format!(
                    "`{}` does not accept parameter `{key}` (accepts: {})",
                    entry.key,
                    if entry.params.is_empty() {
                        "none".to_string()
                    } else {
                        entry.params.join(", ")
                    }
                ),
            ));
        }
    }
    (entry.build)(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ScorerKind;

    #[test]
    fn every_entry_builds_from_its_bare_key() {
        for e in all_entries() {
            let scorer = build(&AlgoSpec::new(e.key)).expect(e.key);
            assert_eq!(scorer.info().name, e.info.name, "built {}", e.key);
        }
    }

    #[test]
    fn lookup_by_table1_row_name_and_case_insensitively() {
        let s = build(&AlgoSpec::new("Autoregressive Model")).unwrap();
        assert_eq!(s.kind(), ScorerKind::Point);
        let s = build(&AlgoSpec::new("PCA")).unwrap();
        assert_eq!(s.kind(), ScorerKind::Vector);
        let s = build(&AlgoSpec::new("Cross-Machine Profile")).unwrap();
        assert_eq!(s.kind(), ScorerKind::Series);
    }

    #[test]
    fn unknown_name_and_undeclared_param_are_rejected() {
        assert!(matches!(
            build(&AlgoSpec::new("frobnicator")),
            Err(DetectError::InvalidParameter { .. })
        ));
        assert!(matches!(
            build(&AlgoSpec::new("ar").with("window", 5)),
            Err(DetectError::InvalidParameter { .. })
        ));
        // Declared param, malformed value: rejected by the constructor path.
        assert!(matches!(
            build(&AlgoSpec::new("ar").with("order", -1)),
            Err(DetectError::InvalidParameter { .. })
        ));
        assert!(matches!(
            build(&AlgoSpec::new("ocsvm").with("nu", f64::NAN)),
            Err(DetectError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn keys_are_unique_across_the_union() {
        let entries = all_entries();
        let mut keys: Vec<&str> = entries.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), entries.len());
    }

    #[test]
    fn parameters_reach_the_constructor() {
        // A cut quantile outside (0, 1) must be rejected by SingleLinkage's
        // own validation, proving the value is threaded through.
        assert!(build(&AlgoSpec::new("single-linkage").with("cut_quantile", 1.5)).is_err());
        assert!(build(&AlgoSpec::new("single-linkage").with("cut_quantile", 0.3)).is_ok());
    }
}
