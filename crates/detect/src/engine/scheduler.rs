//! Work-stealing task pool.
//!
//! The hierarchy used to parallelize detection with one thread per level
//! (≤ 5 threads, serial per-sensor scoring inside each). That caps speed-up
//! at the slowest level and leaves wide plants (many machines × sensors)
//! under-parallelized. [`TaskPool`] instead takes the full task list —
//! typically one [`ScoringTask`](crate::engine) per (level × machine ×
//! sensor/job group) — and runs it on a fixed worker set with work
//! stealing: each worker owns a deque seeded round-robin, pops from its own
//! back (LIFO: cache-warm, recently pushed), and steals from other deques'
//! fronts (FIFO: the oldest, usually largest remaining work) when its own
//! runs dry. Tasks never spawn tasks, so a worker that completes a full
//! sweep of all deques without finding work can exit.
//!
//! Results return **in task order**, so scheduling is invisible to callers:
//! the same task list always produces the same output vector.

use std::collections::VecDeque;
use std::sync::PoisonError;

// Under `--features loom` the pool runs on model-checked primitives (see
// shims/loom and tests/loom_pool.rs); the shim degrades to plain `std`
// outside a `loom::model` run, so the ordinary tests still pass either way.
#[cfg(feature = "loom")]
use loom::{sync::Mutex, thread};
#[cfg(not(feature = "loom"))]
use std::{sync::Mutex, thread};

/// A unit of work: boxed so heterogeneous closures share one queue. The
/// lifetime ties tasks to data borrowed from the caller's stack (plant
/// views, policies), which the scoped workers may freely reference.
pub type Task<'env, T> = Box<dyn FnOnce() -> T + Send + 'env>;

/// Fixed-size work-stealing thread pool (scoped; no detached threads).
#[derive(Debug, Clone)]
pub struct TaskPool {
    workers: usize,
}

impl Default for TaskPool {
    fn default() -> Self {
        Self::with_default_parallelism()
    }
}

impl TaskPool {
    /// A pool with an explicit worker count (min 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn with_default_parallelism() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(workers)
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every task and returns their results in task order.
    ///
    /// Workers are scoped threads, so tasks may borrow from the caller's
    /// stack. A panicking task propagates its panic to the caller after the
    /// scope joins (no result is lost silently).
    pub fn run<'env, T: Send>(&self, tasks: Vec<Task<'env, T>>) -> Vec<T> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        if workers == 1 {
            return tasks.into_iter().map(|t| t()).collect();
        }
        // Seed the per-worker deques round-robin with (index, task).
        type Deque<'env, T> = Mutex<VecDeque<(usize, Task<'env, T>)>>;
        let mut deques: Vec<Deque<'env, T>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            deques[i % workers]
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back((i, task));
        }
        let deques = &deques;
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let slots = &slots;
        thread::scope(|scope| {
            for w in 0..workers {
                scope.spawn(move || {
                    loop {
                        // Own deque first: pop the back (most recently
                        // seeded work; LIFO keeps the footprint warm).
                        // Poisoned locks are recovered, not propagated: a
                        // panicking task resurfaces at scope join anyway,
                        // and a deque/slot is consistent at every await
                        // point (push/pop are atomic under the lock).
                        let own = deques[w]
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .pop_back();
                        if let Some((idx, task)) = own {
                            *slots[idx].lock().unwrap_or_else(PoisonError::into_inner) =
                                Some(task());
                            continue;
                        }
                        // Steal sweep: oldest work from the other deques.
                        let mut stolen = None;
                        for off in 1..workers {
                            let victim = (w + off) % workers;
                            if let Some(t) = deques[victim]
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .pop_front()
                            {
                                stolen = Some(t);
                                break;
                            }
                        }
                        match stolen {
                            Some((idx, task)) => {
                                *slots[idx].lock().unwrap_or_else(PoisonError::into_inner) =
                                    Some(task());
                            }
                            // Tasks never spawn tasks: an empty sweep means
                            // all queues are drained for good.
                            None => break,
                        }
                    }
                });
            }
        });
        slots
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .expect("every task ran")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        let pool = TaskPool::new(4);
        let tasks: Vec<Task<usize>> = (0..64)
            .map(|i| {
                let t: Task<usize> = Box::new(move || {
                    // Uneven task cost to force stealing.
                    let spin = (i % 7) * 1000;
                    let mut acc = 0usize;
                    for j in 0..spin {
                        acc = acc.wrapping_add(j);
                    }
                    std::hint::black_box(acc);
                    i * 2
                });
                t
            })
            .collect();
        let out = pool.run(tasks);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let pool = TaskPool::new(3);
        let tasks: Vec<Task<()>> = (0..100)
            .map(|_| {
                let c = &counter;
                let t: Task<()> = Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
                t
            })
            .collect();
        pool.run(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn tasks_may_borrow_caller_data() {
        let data: Vec<u64> = (0..1000).collect();
        let pool = TaskPool::with_default_parallelism();
        let tasks: Vec<Task<u64>> = data
            .chunks(100)
            .map(|chunk| {
                let t: Task<u64> = Box::new(move || chunk.iter().sum());
                t
            })
            .collect();
        let partials = pool.run(tasks);
        assert_eq!(partials.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn empty_and_single_worker_paths() {
        let pool = TaskPool::new(0); // clamps to 1
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.run(Vec::<Task<u8>>::new()), Vec::<u8>::new());
        let one: Vec<Task<u8>> = vec![Box::new(|| 7)];
        assert_eq!(pool.run(one), vec![7]);
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let pool = TaskPool::new(16);
        let tasks: Vec<Task<usize>> = (0..3_usize)
            .map(|i| Box::new(move || i) as Task<usize>)
            .collect();
        assert_eq!(pool.run(tasks), vec![0, 1, 2]);
    }
}
