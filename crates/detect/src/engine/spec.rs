//! [`AlgoSpec`]: a detector selection as *data*.
//!
//! A spec is a registry key plus a map of named parameters. It is the
//! wire/config representation of "which algorithm, configured how" — the
//! policy layer of `hierod-core` constructs specs, and
//! [`crate::engine::build`] resolves them against the Table-1 registry (plus
//! the baseline/related catalog) into runnable scorers. Because a spec is
//! plain data it can come from a config file, a CLI flag, or a network
//! request without any caller-side `match` over algorithm enums.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use crate::api::{DetectError, Result};

/// One parameter value: integers and floats cover every constructor in the
/// registry (counts, orders, windows, fractions, factors).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamValue {
    /// An integral value (counts, orders, window lengths).
    Int(i64),
    /// A floating-point value (fractions, factors, quantiles).
    Float(f64),
}

impl ParamValue {
    /// Reads the value as a non-negative integer.
    ///
    /// # Errors
    /// Rejects negative integers and non-integral floats.
    pub fn as_usize(&self, param: &'static str) -> Result<usize> {
        match *self {
            ParamValue::Int(i) => usize::try_from(i)
                .map_err(|_| DetectError::invalid(param, format!("must be >= 0, got {i}"))),
            ParamValue::Float(f) => {
                if f.is_finite() && f >= 0.0 && f.fract() == 0.0 {
                    Ok(f as usize)
                } else {
                    Err(DetectError::invalid(
                        param,
                        format!("must be a non-negative integer, got {f}"),
                    ))
                }
            }
        }
    }

    /// Reads the value as a finite float.
    ///
    /// # Errors
    /// Rejects NaN and infinities.
    pub fn as_f64(&self, param: &'static str) -> Result<f64> {
        let f = match *self {
            ParamValue::Int(i) => i as f64,
            ParamValue::Float(f) => f,
        };
        if f.is_finite() {
            Ok(f)
        } else {
            Err(DetectError::invalid(param, "must be finite"))
        }
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}

impl From<i32> for ParamValue {
    fn from(v: i32) -> Self {
        ParamValue::Int(v as i64)
    }
}

impl From<usize> for ParamValue {
    fn from(v: usize) -> Self {
        ParamValue::Int(v as i64)
    }
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(i) => write!(f, "{i}"),
            ParamValue::Float(x) => write!(f, "{x}"),
        }
    }
}

/// A detector selection: registry key + named parameters.
///
/// Parameters not present fall back to the detector's documented defaults;
/// parameter names not declared by the registry entry are rejected at
/// [`crate::engine::build`] time with [`DetectError::InvalidParameter`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AlgoSpec {
    /// Registry key (e.g. `"ar"`, `"pca"`) or full Table-1 row name.
    pub name: String,
    /// Named parameter overrides.
    pub params: BTreeMap<String, ParamValue>,
}

impl AlgoSpec {
    /// A spec with no parameter overrides.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            params: BTreeMap::new(),
        }
    }

    /// Adds/overrides one parameter (builder style).
    #[must_use]
    pub fn with(mut self, key: impl Into<String>, value: impl Into<ParamValue>) -> Self {
        self.params.insert(key.into(), value.into());
        self
    }

    /// Reads a `usize` parameter, defaulting when absent.
    ///
    /// # Errors
    /// Rejects negative or non-integral values.
    pub fn get_usize(&self, key: &'static str, default: usize) -> Result<usize> {
        match self.params.get(key) {
            Some(v) => v.as_usize(key),
            None => Ok(default),
        }
    }

    /// Reads an `f64` parameter, defaulting when absent.
    ///
    /// # Errors
    /// Rejects non-finite values.
    pub fn get_f64(&self, key: &'static str, default: f64) -> Result<f64> {
        match self.params.get(key) {
            Some(v) => v.as_f64(key),
            None => Ok(default),
        }
    }
}

impl fmt::Display for AlgoSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.params.is_empty() {
            return f.write_str(&self.name);
        }
        write!(f, "{}(", self.name)?;
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        f.write_str(")")
    }
}

impl FromStr for AlgoSpec {
    type Err = DetectError;

    /// Parses `"name"` or `"name(key=value, key=value)"`. Values with a `.`
    /// or exponent parse as floats, otherwise as integers.
    fn from_str(s: &str) -> Result<Self> {
        let s = s.trim();
        let (name, rest) = match s.split_once('(') {
            None => (s, None),
            Some((n, r)) => {
                let r = r.trim_end();
                let Some(inner) = r.strip_suffix(')') else {
                    return Err(DetectError::invalid("spec", "missing closing `)`"));
                };
                (n.trim(), Some(inner))
            }
        };
        if name.is_empty() {
            return Err(DetectError::invalid("spec", "empty algorithm name"));
        }
        let mut spec = AlgoSpec::new(name);
        if let Some(inner) = rest {
            for pair in inner.split(',') {
                let pair = pair.trim();
                if pair.is_empty() {
                    continue;
                }
                let Some((k, v)) = pair.split_once('=') else {
                    return Err(DetectError::invalid(
                        "spec",
                        format!("expected `key=value`, got `{pair}`"),
                    ));
                };
                let (k, v) = (k.trim(), v.trim());
                let value = if let Ok(i) = v.parse::<i64>() {
                    ParamValue::Int(i)
                } else if let Ok(f) = v.parse::<f64>() {
                    ParamValue::Float(f)
                } else {
                    return Err(DetectError::invalid(
                        "spec",
                        format!("unparseable value `{v}` for `{k}`"),
                    ));
                };
                spec.params.insert(k.to_string(), value);
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let spec = AlgoSpec::new("ar").with("order", 4).with("nu", 0.25);
        assert_eq!(spec.get_usize("order", 3).unwrap(), 4);
        assert_eq!(spec.get_usize("absent", 7).unwrap(), 7);
        assert!((spec.get_f64("nu", 0.1).unwrap() - 0.25).abs() < 1e-12);
        // Float read of an int parameter works.
        assert!((spec.get_f64("order", 0.0).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn usize_access_rejects_negative_and_fractional() {
        let spec = AlgoSpec::new("x").with("a", -3).with("b", 2.5);
        assert!(matches!(
            spec.get_usize("a", 0),
            Err(DetectError::InvalidParameter { .. })
        ));
        assert!(matches!(
            spec.get_usize("b", 0),
            Err(DetectError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn f64_access_rejects_non_finite() {
        let spec = AlgoSpec::new("x").with("a", f64::NAN);
        assert!(matches!(
            spec.get_f64("a", 0.0),
            Err(DetectError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn parse_roundtrip() {
        let spec: AlgoSpec = "pca(components=3)".parse().unwrap();
        assert_eq!(spec.name, "pca");
        assert_eq!(spec.get_usize("components", 0).unwrap(), 3);
        assert_eq!(spec.to_string(), "pca(components=3)");

        let spec: AlgoSpec = "ocsvm(nu=0.15)".parse().unwrap();
        assert!((spec.get_f64("nu", 0.0).unwrap() - 0.15).abs() < 1e-12);

        let bare: AlgoSpec = "robust-z".parse().unwrap();
        assert_eq!(bare.name, "robust-z");
        assert!(bare.params.is_empty());
        assert_eq!(bare.to_string(), "robust-z");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("".parse::<AlgoSpec>().is_err());
        assert!("ar(order=3".parse::<AlgoSpec>().is_err());
        assert!("ar(order)".parse::<AlgoSpec>().is_err());
        assert!("ar(order=three)".parse::<AlgoSpec>().is_err());
    }
}
