//! SAX-based discord discovery.
//!
//! Table-1 row **Symbolic Representation** (Lin et al., *A symbolic
//! representation of time series, with implications for streaming
//! algorithms*, DMKD 2003 — citation [22]): windows are SAX-encoded; a
//! window whose word is *rare* relative to its expected frequency is a
//! candidate outlier subsequence, and the candidate's final score is its
//! true distance to its nearest non-overlapping neighbor (the HOT-SAX
//! discord idea: rare words first, exact distances second — preserving the
//! "computational efficiency" the paper's Section 3 worries about).

use std::collections::HashMap;

use hierod_timeseries::distance::euclidean;
use hierod_timeseries::normalize::z_normalize;
use hierod_timeseries::sax::SaxEncoder;
use hierod_timeseries::window::{window_scores_to_point_scores, windows, WindowSpec};

use crate::api::{Capabilities, DetectError, Detector, DetectorInfo, Result, TechniqueClass};

/// SAX discord scorer for numeric series.
#[derive(Debug, Clone)]
pub struct SaxDiscord {
    /// Window length in samples.
    pub window_len: usize,
    /// SAX word length (PAA segments per window).
    pub word_len: usize,
    /// SAX alphabet size.
    pub alphabet: usize,
}

impl Default for SaxDiscord {
    fn default() -> Self {
        Self {
            window_len: 32,
            word_len: 4,
            alphabet: 4,
        }
    }
}

impl SaxDiscord {
    /// Creates with explicit SAX parameters.
    ///
    /// # Errors
    /// Rejects degenerate parameters.
    pub fn new(window_len: usize, word_len: usize, alphabet: usize) -> Result<Self> {
        if window_len == 0 || word_len == 0 || word_len > window_len {
            return Err(DetectError::invalid(
                "window_len/word_len",
                "need 0 < word_len <= window_len",
            ));
        }
        Ok(Self {
            window_len,
            word_len,
            alphabet,
        })
    }

    /// Scores the sliding windows (stride 1) of a series; returns
    /// `(window_scores, point_scores)`.
    ///
    /// The score of window `i` is its z-normalized Euclidean distance to
    /// the nearest **non-overlapping** window, weighted by the rarity of
    /// its SAX word (`1 / count(word)`): a window that is both symbolically
    /// rare and far from every other window is a discord.
    ///
    /// # Errors
    /// Rejects series shorter than two non-overlapping windows.
    pub fn score(&self, values: &[f64]) -> Result<(Vec<f64>, Vec<f64>)> {
        if values.len() < 2 * self.window_len {
            return Err(DetectError::NotEnoughData {
                what: "SaxDiscord",
                needed: 2 * self.window_len,
                got: values.len(),
            });
        }
        let spec = WindowSpec::new(self.window_len, 1).map_err(DetectError::from)?;
        let encoder = SaxEncoder::new(self.word_len, self.alphabet)?;
        // Encode every window; count word frequencies.
        let mut z_windows: Vec<Vec<f64>> = Vec::with_capacity(spec.count(values.len()));
        let mut words: Vec<Vec<u16>> = Vec::with_capacity(z_windows.capacity());
        let mut word_counts: HashMap<Vec<u16>, usize> = HashMap::new();
        for w in windows(values, spec) {
            let z = z_normalize(w.values)?;
            let word = encoder.encode(w.values)?;
            *word_counts.entry(word.symbols.clone()).or_insert(0) += 1;
            words.push(word.symbols);
            z_windows.push(z);
        }
        let n_w = z_windows.len();
        let mut w_scores = Vec::with_capacity(n_w);
        for i in 0..n_w {
            // Nearest non-overlapping neighbor distance (exact; windows
            // overlap iff |i - j| < window_len).
            let mut nn = f64::INFINITY;
            for (j, other) in z_windows.iter().enumerate() {
                if i.abs_diff(j) < self.window_len {
                    continue;
                }
                let d = euclidean(&z_windows[i], other).expect("equal window lengths");
                if d < nn {
                    nn = d;
                }
            }
            if !nn.is_finite() {
                nn = 0.0;
            }
            let rarity = 1.0 / word_counts[&words[i]] as f64;
            w_scores.push(nn * rarity.sqrt());
        }
        let p_scores = window_scores_to_point_scores(values.len(), spec, &w_scores);
        Ok((w_scores, p_scores))
    }
}

impl Detector for SaxDiscord {
    fn info(&self) -> DetectorInfo {
        DetectorInfo {
            name: "Symbolic Representation",
            citation: "[22]",
            class: TechniqueClass::OS,
            capabilities: Capabilities::new(false, true, true),
            supervised: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_with_discord(n: usize) -> Vec<f64> {
        let mut v: Vec<f64> = (0..n)
            .map(|i| (i as f64 * std::f64::consts::TAU / 16.0).sin())
            .collect();
        // Replace one period with a flat segment: the discord.
        for x in v.iter_mut().skip(n / 2).take(16) {
            *x = 0.0;
        }
        v
    }

    #[test]
    fn discord_region_carries_top_point_score() {
        let v = sine_with_discord(256);
        let det = SaxDiscord::new(16, 4, 4).unwrap();
        let (w, p) = det.score(&v).unwrap();
        assert_eq!(p.len(), v.len());
        assert!(!w.is_empty());
        let best = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let discord_range = (256 / 2 - 16)..(256 / 2 + 32);
        assert!(
            discord_range.contains(&best),
            "top point {best} should fall near the discord at {}",
            256 / 2
        );
    }

    #[test]
    fn periodic_series_scores_uniformly_low() {
        let v: Vec<f64> = (0..256)
            .map(|i| (i as f64 * std::f64::consts::TAU / 16.0).sin())
            .collect();
        let det = SaxDiscord::new(16, 4, 4).unwrap();
        let (w, _) = det.score(&v).unwrap();
        let max = w.iter().cloned().fold(f64::MIN, f64::max);
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        // No window should dominate a perfectly periodic series.
        assert!(max < mean * 4.0 + 1e-9, "max {max}, mean {mean}");
    }

    #[test]
    fn rarity_weighting_boosts_unique_words() {
        let v = sine_with_discord(200);
        let det = SaxDiscord::new(16, 4, 6).unwrap();
        let (w, _) = det.score(&v).unwrap();
        assert!(w.iter().all(|&s| s >= 0.0 && s.is_finite()));
    }

    #[test]
    fn validation() {
        assert!(SaxDiscord::new(0, 1, 4).is_err());
        assert!(SaxDiscord::new(8, 0, 4).is_err());
        assert!(SaxDiscord::new(8, 16, 4).is_err());
        let det = SaxDiscord::default();
        assert!(det.score(&[0.0; 10]).is_err());
    }

    #[test]
    fn info_matches_table1() {
        let i = SaxDiscord::default().info();
        assert_eq!(i.citation, "[22]");
        assert_eq!(i.class, TechniqueClass::OS);
        assert!(i.capabilities.subsequences && i.capabilities.series);
    }
}
