//! Outlier subsequence detection (OS).
//!
//! "To find outlier subsequences, patterns are compared to their expected
//! frequency in the database. The main problem is to preserve computational
//! efficiency …"

mod sax_discord;

pub use sax_discord::SaxDiscord;
