//! Total-order float comparison — the repo-wide NaN policy.
//!
//! `cargo xtask lint` (rule `nan-cmp`) bans `partial_cmp(..).unwrap()` on
//! floats: one NaN in a distance matrix and a detector panics mid-scan.
//! These helpers make the replacement ordering explicit:
//!
//! * comparisons use [`f64::total_cmp`], which is total (never panics) and
//!   deterministic;
//! * where a NaN *could* win a selection, [`nan_last_cmp`] orders it after
//!   every real number regardless of sign, so `min_by`/ascending sorts
//!   never pick NaN over data.

use std::cmp::Ordering;

/// Total order with NaN (either sign) strictly greatest.
///
/// Unlike raw [`f64::total_cmp`] — which puts negative NaN *below*
/// `-inf` — this is safe for "smallest wins" selections: NaN loses to
/// every real number. Equal-rank NaNs compare equal.
pub fn nan_last_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.total_cmp(&b),
    }
}

/// Total order with NaN (either sign) strictly smallest: safe for
/// "largest wins" selections, where NaN must lose to every real number.
pub fn nan_first_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

/// Sorts ascending with NaNs (of either sign) at the end.
pub fn sort_total(xs: &mut [f64]) {
    xs.sort_unstable_by(|a, b| nan_last_cmp(*a, *b));
}

/// Sorts by an `f64` key, ascending, NaN keys last.
pub fn sort_by_key_total<T>(xs: &mut [T], key: impl Fn(&T) -> f64) {
    xs.sort_by(|a, b| nan_last_cmp(key(a), key(b)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_orders_last_regardless_of_sign() {
        let mut xs = vec![f64::NAN, 1.0, -f64::NAN, f64::NEG_INFINITY, 0.5];
        sort_total(&mut xs);
        assert_eq!(xs[0], f64::NEG_INFINITY);
        assert_eq!(xs[1], 0.5);
        assert_eq!(xs[2], 1.0);
        assert!(xs[3].is_nan() && xs[4].is_nan());
    }

    #[test]
    fn nan_never_wins_a_min_or_max() {
        let xs = [3.0, f64::NAN, 1.0, 2.0];
        let min = xs.iter().copied().min_by(|a, b| nan_last_cmp(*a, *b));
        assert_eq!(min, Some(1.0));
        let max = xs.iter().copied().max_by(|a, b| nan_first_cmp(*a, *b));
        assert_eq!(max, Some(3.0));
    }

    #[test]
    fn sort_by_key_orders_payloads() {
        let mut xs = vec![("a", 2.0), ("b", f64::NAN), ("c", 1.0)];
        sort_by_key_total(&mut xs, |p| p.1);
        assert_eq!(xs[0].0, "c");
        assert_eq!(xs[1].0, "a");
        assert_eq!(xs[2].0, "b");
    }

    #[test]
    fn comparators_are_deterministic_on_signed_zero() {
        assert_eq!(nan_last_cmp(-0.0, 0.0), Ordering::Less);
        assert_eq!(nan_first_cmp(0.0, -0.0), Ordering::Greater);
    }
}
