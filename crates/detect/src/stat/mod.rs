//! Statistical baselines (not Table-1 rows).
//!
//! The paper proposes comparing its hierarchical triple against the flat
//! single-level practice; these four classical detectors are that practice.

mod zscore;

pub use zscore::{GlobalZScore, IqrFence, RobustZScore, SlidingZScore};
