//! Statistical baselines (not Table-1 rows).
//!
//! The paper proposes comparing its hierarchical triple against the flat
//! single-level practice; these four classical detectors are that practice.

pub mod float;
mod zscore;

pub use float::{nan_first_cmp, nan_last_cmp, sort_by_key_total, sort_total};
pub use zscore::{GlobalZScore, IqrFence, RobustZScore, SlidingZScore};
