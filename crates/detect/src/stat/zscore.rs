//! Z-score family of baselines.

use hierod_timeseries::stats;

use crate::api::{
    check_finite, Capabilities, DetectError, Detector, DetectorInfo, PointScorer, Result,
    TechniqueClass,
};

fn baseline_info(name: &'static str) -> DetectorInfo {
    DetectorInfo {
        name,
        citation: "—",
        class: TechniqueClass::Baseline,
        capabilities: Capabilities::new(true, false, false),
        supervised: false,
    }
}

/// Global z-score: `|x - mean| / std` over the whole series.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalZScore;

impl Detector for GlobalZScore {
    fn info(&self) -> DetectorInfo {
        baseline_info("Global Z-Score")
    }
}

impl PointScorer for GlobalZScore {
    fn score_points(&self, values: &[f64]) -> Result<Vec<f64>> {
        check_finite("GlobalZScore", values)?;
        Ok(stats::z_scores(values)?.into_iter().map(f64::abs).collect())
    }
}

/// Robust z-score: `|x - median| / MAD`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RobustZScore;

impl Detector for RobustZScore {
    fn info(&self) -> DetectorInfo {
        baseline_info("Robust Z-Score (MAD)")
    }
}

impl PointScorer for RobustZScore {
    fn score_points(&self, values: &[f64]) -> Result<Vec<f64>> {
        check_finite("RobustZScore", values)?;
        Ok(stats::robust_z_scores(values)?
            .into_iter()
            .map(f64::abs)
            .collect())
    }
}

/// IQR fence score: distance beyond the Tukey fences `[Q1 - 1.5·IQR,
/// Q3 + 1.5·IQR]`, normalized by the IQR (0 inside the fences).
#[derive(Debug, Clone, Copy, Default)]
pub struct IqrFence;

impl Detector for IqrFence {
    fn info(&self) -> DetectorInfo {
        baseline_info("IQR Fence")
    }
}

impl PointScorer for IqrFence {
    fn score_points(&self, values: &[f64]) -> Result<Vec<f64>> {
        check_finite("IqrFence", values)?;
        let q1 = stats::quantile(values, 0.25)?;
        let q3 = stats::quantile(values, 0.75)?;
        let iqr = (q3 - q1).max(1e-12);
        let lo = q1 - 1.5 * iqr;
        let hi = q3 + 1.5 * iqr;
        Ok(values
            .iter()
            .map(|&x| {
                if x < lo {
                    (lo - x) / iqr
                } else if x > hi {
                    (x - hi) / iqr
                } else {
                    0.0
                }
            })
            .collect())
    }
}

/// Sliding-window z-score: each point scored against the trailing window of
/// `window` samples (the first `window` points use the available prefix).
/// This is the streaming form used for phase-level condition monitoring.
#[derive(Debug, Clone, Copy)]
pub struct SlidingZScore {
    /// Trailing context length.
    pub window: usize,
}

impl Default for SlidingZScore {
    fn default() -> Self {
        Self { window: 32 }
    }
}

impl SlidingZScore {
    /// Creates with an explicit trailing-window length (≥ 2).
    ///
    /// # Errors
    /// Rejects `window < 2`.
    pub fn new(window: usize) -> Result<Self> {
        if window < 2 {
            return Err(DetectError::invalid("window", "must be >= 2"));
        }
        Ok(Self { window })
    }
}

impl Detector for SlidingZScore {
    fn info(&self) -> DetectorInfo {
        baseline_info("Sliding-Window Z-Score")
    }
}

impl PointScorer for SlidingZScore {
    fn score_points(&self, values: &[f64]) -> Result<Vec<f64>> {
        check_finite("SlidingZScore", values)?;
        if values.is_empty() {
            return Err(DetectError::NotEnoughData {
                what: "SlidingZScore",
                needed: 1,
                got: 0,
            });
        }
        let mut out = Vec::with_capacity(values.len());
        for (i, &x) in values.iter().enumerate() {
            let start = i.saturating_sub(self.window);
            let ctx = &values[start..i];
            if ctx.len() < 2 {
                out.push(0.0);
                continue;
            }
            let m = stats::mean(ctx)?;
            let s = stats::std_dev(ctx)?;
            out.push(if s <= 1e-12 * (1.0 + m.abs()) {
                0.0
            } else {
                ((x - m) / s).abs()
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spiked(n: usize, at: usize, mag: f64) -> Vec<f64> {
        let mut v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        v[at] += mag;
        v
    }

    #[test]
    fn global_z_ranks_spike_first() {
        let v = spiked(100, 50, 20.0);
        let s = GlobalZScore.score_points(&v).unwrap();
        let best = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, 50);
        assert!(GlobalZScore.score_points(&[]).is_err());
    }

    #[test]
    fn robust_z_survives_contamination() {
        // Multiple large outliers inflate the std but not the MAD.
        let mut v = spiked(100, 50, 30.0);
        v[10] += 30.0;
        v[90] += 30.0;
        let rz = RobustZScore.score_points(&v).unwrap();
        assert!(rz[50] > 10.0);
        assert!(rz[30] < 3.0);
    }

    #[test]
    fn iqr_fence_zero_inside() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 100.0];
        let s = IqrFence.score_points(&v).unwrap();
        assert_eq!(s[0], 0.0);
        assert_eq!(s[2], 0.0);
        assert!(s[4] > 10.0);
    }

    #[test]
    fn sliding_z_detects_change_after_context() {
        let mut v = vec![0.0; 64];
        for (i, x) in v.iter_mut().enumerate() {
            *x = (i as f64 * 0.3).sin();
        }
        v[40] += 15.0;
        let s = SlidingZScore::new(16).unwrap().score_points(&v).unwrap();
        let best = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, 40);
        // Warm-up points score zero.
        assert_eq!(s[0], 0.0);
        assert_eq!(s[1], 0.0);
        assert!(SlidingZScore::new(1).is_err());
        assert!(SlidingZScore::default().score_points(&[]).is_err());
    }

    #[test]
    fn constant_series_scores_zero_everywhere() {
        let v = vec![5.0; 20];
        assert!(GlobalZScore
            .score_points(&v)
            .unwrap()
            .iter()
            .all(|&s| s == 0.0));
        assert!(RobustZScore
            .score_points(&v)
            .unwrap()
            .iter()
            .all(|&s| s == 0.0));
        assert!(SlidingZScore::default()
            .score_points(&v)
            .unwrap()
            .iter()
            .all(|&s| s == 0.0));
    }

    #[test]
    fn info_flags_baseline_class() {
        assert_eq!(GlobalZScore.info().class, TechniqueClass::Baseline);
        assert!(!IqrFence.info().supervised);
    }
}
