//! Separate-and-conquer rule induction.
//!
//! Table-1 row **Rule Learning** (Lee & Stolfo, *Data mining approaches for
//! intrusion detection*, USENIX Security 1998 — citation [18]): anomalous
//! behaviour is characterized by induced rules over feature vectors. We
//! implement a deterministic separate-and-conquer (covering) learner:
//! repeatedly grow the single best rule — a conjunction of
//! `feature {≤,>} threshold` literals — that covers many anomalies and few
//! normals (Laplace-corrected precision), remove the covered anomalies, and
//! repeat. Prediction scores a vector by the confidence of the best
//! matching rule (0 when no rule fires).

use crate::api::{
    check_rows, Capabilities, DetectError, Detector, DetectorInfo, Result, SupervisedScorer,
    TechniqueClass,
};

/// One literal: a threshold test on one feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Literal {
    /// Feature index.
    pub feature: usize,
    /// Threshold.
    pub threshold: f64,
    /// `true` = test `x > threshold`, `false` = test `x <= threshold`.
    pub greater: bool,
}

impl Literal {
    fn matches(&self, row: &[f64]) -> bool {
        let x = row[self.feature];
        if self.greater {
            x > self.threshold
        } else {
            x <= self.threshold
        }
    }
}

/// A conjunction of literals with its training confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Conjoined literals (all must hold).
    pub literals: Vec<Literal>,
    /// Laplace-corrected precision on the training data.
    pub confidence: f64,
}

impl Rule {
    fn matches(&self, row: &[f64]) -> bool {
        self.literals.iter().all(|l| l.matches(row))
    }
}

/// Covering rule learner.
#[derive(Debug, Clone)]
pub struct RuleLearner {
    /// Maximum number of rules.
    pub max_rules: usize,
    /// Maximum literals per rule.
    pub max_literals: usize,
    rules: Option<Vec<Rule>>,
}

impl Default for RuleLearner {
    fn default() -> Self {
        Self {
            max_rules: 8,
            max_literals: 3,
            rules: None,
        }
    }
}

impl RuleLearner {
    /// Creates with explicit limits.
    ///
    /// # Errors
    /// Rejects zero limits.
    pub fn new(max_rules: usize, max_literals: usize) -> Result<Self> {
        if max_rules == 0 || max_literals == 0 {
            return Err(DetectError::invalid(
                "max_rules/max_literals",
                "must be > 0",
            ));
        }
        Ok(Self {
            max_rules,
            max_literals,
            rules: None,
        })
    }

    /// The induced rules (after fitting).
    pub fn rules(&self) -> Option<&[Rule]> {
        self.rules.as_deref()
    }

    /// Laplace-corrected precision of a candidate covering `pos` anomalies
    /// and `neg` normals.
    fn laplace(pos: usize, neg: usize) -> f64 {
        (pos as f64 + 1.0) / ((pos + neg) as f64 + 2.0)
    }

    /// Grows one rule greedily on the active set.
    fn grow_rule(&self, rows: &[Vec<f64>], labels: &[bool], active: &[bool]) -> Option<Rule> {
        let d = rows[0].len();
        let mut literals: Vec<Literal> = Vec::new();
        let mut covered: Vec<bool> = active.to_vec();
        let mut best_quality = 0.0_f64;
        for _ in 0..self.max_literals {
            let mut best: Option<(Literal, f64)> = None;
            for f in 0..d {
                // Candidate thresholds: midpoints of sorted distinct values
                // among currently covered rows.
                let mut vals: Vec<f64> = rows
                    .iter()
                    .zip(covered.iter())
                    .filter(|(_, &c)| c)
                    .map(|(r, _)| r[f])
                    .collect();
                vals.sort_by(|a, b| a.total_cmp(b));
                vals.dedup();
                for w in vals.windows(2) {
                    let threshold = (w[0] + w[1]) / 2.0;
                    for greater in [false, true] {
                        let lit = Literal {
                            feature: f,
                            threshold,
                            greater,
                        };
                        let mut pos = 0;
                        let mut neg = 0;
                        for ((r, &l), &c) in rows.iter().zip(labels).zip(&covered) {
                            if c && lit.matches(r) {
                                if l {
                                    pos += 1;
                                } else {
                                    neg += 1;
                                }
                            }
                        }
                        if pos == 0 {
                            continue;
                        }
                        let q = Self::laplace(pos, neg);
                        if best.as_ref().map(|(_, bq)| q > *bq).unwrap_or(true) {
                            best = Some((lit, q));
                        }
                    }
                }
            }
            let Some((lit, q)) = best else { break };
            if q <= best_quality + 1e-12 {
                break; // no improvement
            }
            best_quality = q;
            for (c, r) in covered.iter_mut().zip(rows) {
                if *c && !lit.matches(r) {
                    *c = false;
                }
            }
            literals.push(lit);
            if q > 0.999 {
                break; // pure rule
            }
        }
        if literals.is_empty() {
            return None;
        }
        Some(Rule {
            literals,
            confidence: best_quality,
        })
    }
}

impl Detector for RuleLearner {
    fn info(&self) -> DetectorInfo {
        DetectorInfo {
            name: "Rule Learning",
            citation: "[18]",
            class: TechniqueClass::SA,
            capabilities: Capabilities::new(false, true, true),
            supervised: true,
        }
    }
}

impl SupervisedScorer for RuleLearner {
    fn fit(&mut self, rows: &[Vec<f64>], labels: &[bool]) -> Result<()> {
        check_rows("RuleLearner", rows)?;
        if rows.len() != labels.len() {
            return Err(DetectError::ShapeMismatch {
                message: "rows/labels length mismatch".into(),
            });
        }
        if !labels.iter().any(|&l| l) {
            return Err(DetectError::invalid(
                "labels",
                "need at least one positive (anomalous) example",
            ));
        }
        let mut active: Vec<bool> = vec![true; rows.len()];
        let mut rules = Vec::new();
        for _ in 0..self.max_rules {
            // Only rows still active participate in growing; negatives stay
            // active forever so later rules still avoid them.
            let Some(rule) = self.grow_rule(rows, labels, &active) else {
                break;
            };
            // Deactivate covered positives.
            let mut newly_covered = 0;
            for ((r, &l), a) in rows.iter().zip(labels).zip(active.iter_mut()) {
                if *a && l && rule.matches(r) {
                    *a = false;
                    newly_covered += 1;
                }
            }
            if newly_covered == 0 {
                break;
            }
            rules.push(rule);
            if labels.iter().zip(&active).all(|(&l, &a)| !l || !a) {
                break; // all positives covered
            }
        }
        self.rules = Some(rules);
        Ok(())
    }

    fn predict(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>> {
        let rules = self.rules.as_ref().ok_or(DetectError::NotFitted)?;
        Ok(rows
            .iter()
            .map(|r| {
                rules
                    .iter()
                    .filter(|rule| rule.matches(r))
                    .map(|rule| rule.confidence)
                    .fold(0.0_f64, f64::max)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Anomalies live in the region x0 > 5 && x1 <= 1.
    fn labeled_data() -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let x0 = (i % 10) as f64;
            let x1 = (i % 4) as f64;
            rows.push(vec![x0, x1]);
            labels.push(x0 > 5.0 && x1 <= 1.0);
        }
        (rows, labels)
    }

    #[test]
    fn learns_the_anomaly_region() {
        let (rows, labels) = labeled_data();
        let mut rl = RuleLearner::default();
        rl.fit(&rows, &labels).unwrap();
        let scores = rl.predict(&rows).unwrap();
        // Every positive scores above every negative.
        let min_pos = scores
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| l)
            .map(|(&s, _)| s)
            .fold(f64::MAX, f64::min);
        let max_neg = scores
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| !l)
            .map(|(&s, _)| s)
            .fold(0.0_f64, f64::max);
        assert!(
            min_pos > max_neg,
            "min positive {min_pos} must exceed max negative {max_neg}"
        );
        assert!(!rl.rules().unwrap().is_empty());
    }

    #[test]
    fn rules_have_bounded_literals() {
        let (rows, labels) = labeled_data();
        let mut rl = RuleLearner::new(4, 2).unwrap();
        rl.fit(&rows, &labels).unwrap();
        for rule in rl.rules().unwrap() {
            assert!(rule.literals.len() <= 2);
            assert!(rule.confidence > 0.5);
        }
    }

    #[test]
    fn predict_before_fit_errors() {
        let rl = RuleLearner::default();
        assert!(matches!(
            rl.predict(&[vec![1.0]]),
            Err(DetectError::NotFitted)
        ));
    }

    #[test]
    fn fit_validation() {
        let mut rl = RuleLearner::default();
        assert!(rl.fit(&[], &[]).is_err());
        assert!(rl.fit(&[vec![1.0]], &[true, false]).is_err());
        // No positives.
        assert!(rl.fit(&[vec![1.0], vec![2.0]], &[false, false]).is_err());
        assert!(RuleLearner::new(0, 1).is_err());
    }

    #[test]
    fn generalizes_to_unseen_rows() {
        let (rows, labels) = labeled_data();
        let mut rl = RuleLearner::default();
        rl.fit(&rows, &labels).unwrap();
        let scores = rl.predict(&[vec![9.0, 0.5], vec![1.0, 3.0]]).unwrap();
        assert!(scores[0] > scores[1]);
        assert_eq!(scores[1], 0.0);
    }

    #[test]
    fn info_matches_table1() {
        let i = RuleLearner::default().info();
        assert_eq!(i.citation, "[18]");
        assert!(i.supervised);
        assert_eq!(i.class, TechniqueClass::SA);
    }
}
