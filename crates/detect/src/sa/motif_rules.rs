//! Motif-based rule classifier.
//!
//! Table-1 row **Rule Based Classifier** (Li et al., *ROAM: Rule- and
//! Motif-Based Anomaly Detection in Massive Moving Object Data Sets*, SDM
//! 2007 — citation [19]): sequences are expressed in a *motif* feature
//! space (frequent n-grams), and a rule-based classifier learns which motif
//! patterns distinguish anomalous from normal objects. We extract n-gram
//! motif frequencies from labeled symbol sequences and score by a
//! log-likelihood ratio of motif occurrence between the anomalous and
//! normal classes — the rule set is the per-motif weight table, which can
//! be inspected.

use std::collections::HashMap;

use crate::api::{Capabilities, DetectError, Detector, DetectorInfo, Result, TechniqueClass};

/// Motif log-likelihood-ratio classifier over symbol sequences.
#[derive(Debug, Clone)]
pub struct MotifRuleClassifier {
    /// Motif (n-gram) length.
    pub motif_len: usize,
    /// Laplace smoothing for the class-conditional motif probabilities.
    pub smoothing: f64,
    weights: Option<HashMap<Vec<u16>, f64>>,
}

impl Default for MotifRuleClassifier {
    fn default() -> Self {
        Self {
            motif_len: 3,
            smoothing: 1.0,
            weights: None,
        }
    }
}

impl MotifRuleClassifier {
    /// Creates with an explicit motif length.
    ///
    /// # Errors
    /// Rejects `motif_len == 0`.
    pub fn new(motif_len: usize) -> Result<Self> {
        if motif_len == 0 {
            return Err(DetectError::invalid("motif_len", "must be > 0"));
        }
        Ok(Self {
            motif_len,
            ..Self::default()
        })
    }

    /// Fits per-motif weights from labeled sequences.
    ///
    /// # Errors
    /// Rejects mismatched lengths or single-class labelings.
    pub fn fit_sequences(&mut self, seqs: &[&[u16]], labels: &[bool]) -> Result<()> {
        if seqs.len() != labels.len() {
            return Err(DetectError::ShapeMismatch {
                message: "seqs/labels length mismatch".into(),
            });
        }
        if seqs.is_empty() {
            return Err(DetectError::NotEnoughData {
                what: "MotifRuleClassifier",
                needed: 2,
                got: 0,
            });
        }
        if !labels.iter().any(|&l| l) || labels.iter().all(|&l| l) {
            return Err(DetectError::invalid(
                "labels",
                "need both anomalous and normal training sequences",
            ));
        }
        let mut pos_counts: HashMap<Vec<u16>, f64> = HashMap::new();
        let mut neg_counts: HashMap<Vec<u16>, f64> = HashMap::new();
        let mut pos_total = 0.0;
        let mut neg_total = 0.0;
        for (seq, &label) in seqs.iter().zip(labels) {
            if seq.len() < self.motif_len {
                continue;
            }
            for gram in seq.windows(self.motif_len) {
                if label {
                    *pos_counts.entry(gram.to_vec()).or_insert(0.0) += 1.0;
                    pos_total += 1.0;
                } else {
                    *neg_counts.entry(gram.to_vec()).or_insert(0.0) += 1.0;
                    neg_total += 1.0;
                }
            }
        }
        let vocab: std::collections::HashSet<Vec<u16>> = pos_counts
            .keys()
            .chain(neg_counts.keys())
            .cloned()
            .collect();
        let v = vocab.len().max(1) as f64;
        let s = self.smoothing;
        let weights = vocab
            .into_iter()
            .map(|motif| {
                let p_pos =
                    (pos_counts.get(&motif).copied().unwrap_or(0.0) + s) / (pos_total + s * v);
                let p_neg =
                    (neg_counts.get(&motif).copied().unwrap_or(0.0) + s) / (neg_total + s * v);
                (motif, (p_pos / p_neg).ln())
            })
            .collect();
        self.weights = Some(weights);
        Ok(())
    }

    /// Scores sequences: mean motif weight (positive ⇒ anomaly-typical
    /// motifs dominate). Unknown motifs contribute 0. The result is shifted
    /// to be non-negative via soft-plus.
    ///
    /// # Errors
    /// Returns [`DetectError::NotFitted`] before fitting.
    pub fn predict_sequences(&self, seqs: &[&[u16]]) -> Result<Vec<f64>> {
        let weights = self.weights.as_ref().ok_or(DetectError::NotFitted)?;
        Ok(seqs
            .iter()
            .map(|seq| {
                if seq.len() < self.motif_len {
                    return 0.0;
                }
                let grams = seq.len() - self.motif_len + 1;
                let total: f64 = seq
                    .windows(self.motif_len)
                    .map(|g| weights.get(g).copied().unwrap_or(0.0))
                    .sum();
                let mean = total / grams as f64;
                // Soft-plus keeps scores non-negative while monotone.
                (1.0 + mean.exp()).ln()
            })
            .collect())
    }

    /// Number of learned motif rules.
    pub fn rule_count(&self) -> usize {
        self.weights.as_ref().map(HashMap::len).unwrap_or(0)
    }
}

impl Detector for MotifRuleClassifier {
    fn info(&self) -> DetectorInfo {
        DetectorInfo {
            name: "Rule Based Classifier",
            citation: "[19]",
            class: TechniqueClass::SA,
            capabilities: Capabilities::new(false, false, true),
            supervised: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeled_sequences() -> (Vec<Vec<u16>>, Vec<bool>) {
        let mut seqs = Vec::new();
        let mut labels = Vec::new();
        // Normal motif: ascending triples; anomalous motif: 7,7,7 bursts.
        for k in 0..8 {
            seqs.push((0..15).map(|i| ((i + k) % 5) as u16).collect());
            labels.push(false);
        }
        for _ in 0..4 {
            let mut s: Vec<u16> = (0..15).map(|i| (i % 5) as u16).collect();
            for x in s.iter_mut().skip(5).take(6) {
                *x = 7;
            }
            seqs.push(s);
            labels.push(true);
        }
        (seqs, labels)
    }

    #[test]
    fn anomalous_motifs_score_higher() {
        let (seqs, labels) = labeled_sequences();
        let refs: Vec<&[u16]> = seqs.iter().map(Vec::as_slice).collect();
        let mut clf = MotifRuleClassifier::default();
        clf.fit_sequences(&refs, &labels).unwrap();
        let scores = clf.predict_sequences(&refs).unwrap();
        let pos_min = scores
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| l)
            .map(|(&s, _)| s)
            .fold(f64::MAX, f64::min);
        let neg_max = scores
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| !l)
            .map(|(&s, _)| s)
            .fold(0.0_f64, f64::max);
        assert!(pos_min > neg_max, "pos min {pos_min} vs neg max {neg_max}");
        assert!(clf.rule_count() > 0);
    }

    #[test]
    fn unseen_sequence_with_anomalous_motif_flagged() {
        let (seqs, labels) = labeled_sequences();
        let refs: Vec<&[u16]> = seqs.iter().map(Vec::as_slice).collect();
        let mut clf = MotifRuleClassifier::default();
        clf.fit_sequences(&refs, &labels).unwrap();
        let novel_anom: Vec<u16> = vec![0, 1, 7, 7, 7, 7, 2, 3];
        let novel_norm: Vec<u16> = vec![0, 1, 2, 3, 4, 0, 1, 2];
        let scores = clf.predict_sequences(&[&novel_anom, &novel_norm]).unwrap();
        assert!(scores[0] > scores[1]);
    }

    #[test]
    fn short_sequences_score_zero() {
        let (seqs, labels) = labeled_sequences();
        let refs: Vec<&[u16]> = seqs.iter().map(Vec::as_slice).collect();
        let mut clf = MotifRuleClassifier::new(3).unwrap();
        clf.fit_sequences(&refs, &labels).unwrap();
        let tiny: Vec<u16> = vec![1, 2];
        assert_eq!(clf.predict_sequences(&[&tiny]).unwrap(), vec![0.0]);
    }

    #[test]
    fn validation() {
        assert!(MotifRuleClassifier::new(0).is_err());
        let mut clf = MotifRuleClassifier::default();
        assert!(matches!(
            clf.predict_sequences(&[]),
            Err(DetectError::NotFitted)
        ));
        assert!(clf.fit_sequences(&[], &[]).is_err());
        let a: Vec<u16> = vec![1, 2, 3];
        assert!(clf.fit_sequences(&[&a], &[true, false]).is_err());
        // Single-class rejection.
        assert!(clf.fit_sequences(&[&a, &a], &[false, false]).is_err());
        assert!(clf.fit_sequences(&[&a, &a], &[true, true]).is_err());
    }

    #[test]
    fn info_matches_table1() {
        let i = MotifRuleClassifier::default().info();
        assert_eq!(i.citation, "[19]");
        assert!(i.supervised);
        assert_eq!(i.capabilities.count(), 1);
        assert!(i.capabilities.series);
    }
}
