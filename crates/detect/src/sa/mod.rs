//! Supervised approaches (SA).
//!
//! "When labeled training data is available, supervised approaches can be
//! applied."

mod mlp;
mod motif_rules;
mod rule_learning;

pub use mlp::NeuralNetwork;
pub use motif_rules::MotifRuleClassifier;
pub use rule_learning::RuleLearner;
