//! Multi-layer perceptron classifier.
//!
//! Table-1 row **Neural Networks** (Ghosh, Schwartzbard & Schatz, *Learning
//! Program Behavior Profiles for Intrusion Detection*, 1999 — citation
//! [10]): a feed-forward network learns normal-vs-anomalous behaviour
//! profiles. We implement a one-hidden-layer MLP from scratch — tanh hidden
//! units, sigmoid output, full-batch gradient descent on cross-entropy,
//! per-column standardization, deterministic weight initialization — and
//! use the predicted anomaly probability as the score.

use hierod_timeseries::normalize::ColumnScaler;

use crate::api::{
    check_rows, Capabilities, DetectError, Detector, DetectorInfo, Result, SupervisedScorer,
    TechniqueClass,
};

/// One-hidden-layer MLP scorer.
#[derive(Debug, Clone)]
pub struct NeuralNetwork {
    /// Hidden units.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    fitted: Option<Fitted>,
}

#[derive(Debug, Clone)]
struct Fitted {
    scaler: ColumnScaler,
    w1: Vec<Vec<f64>>, // hidden × d
    b1: Vec<f64>,
    w2: Vec<f64>, // hidden
    b2: f64,
}

impl Default for NeuralNetwork {
    fn default() -> Self {
        Self {
            hidden: 8,
            epochs: 300,
            learning_rate: 0.5,
            fitted: None,
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl NeuralNetwork {
    /// Creates with an explicit hidden width.
    ///
    /// # Errors
    /// Rejects `hidden == 0`.
    pub fn new(hidden: usize) -> Result<Self> {
        if hidden == 0 {
            return Err(DetectError::invalid("hidden", "must be > 0"));
        }
        Ok(Self {
            hidden,
            ..Self::default()
        })
    }

    fn forward(f: &Fitted, x: &[f64]) -> (Vec<f64>, f64) {
        let h: Vec<f64> =
            f.w1.iter()
                .zip(&f.b1)
                .map(|(w, b)| {
                    let z: f64 = w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + b;
                    z.tanh()
                })
                .collect();
        let out = sigmoid(f.w2.iter().zip(&h).map(|(w, hv)| w * hv).sum::<f64>() + f.b2);
        (h, out)
    }
}

impl Detector for NeuralNetwork {
    fn info(&self) -> DetectorInfo {
        DetectorInfo {
            name: "Neural Networks",
            citation: "[10]",
            class: TechniqueClass::SA,
            capabilities: Capabilities::ALL,
            supervised: true,
        }
    }
}

impl SupervisedScorer for NeuralNetwork {
    fn fit(&mut self, rows: &[Vec<f64>], labels: &[bool]) -> Result<()> {
        let d = check_rows("NeuralNetwork", rows)?;
        if rows.len() != labels.len() {
            return Err(DetectError::ShapeMismatch {
                message: "rows/labels length mismatch".into(),
            });
        }
        let scaler = ColumnScaler::fit(rows)?;
        let xs: Vec<Vec<f64>> = scaler.transform_all(rows)?;
        let ys: Vec<f64> = labels.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
        // Deterministic small pseudo-random init.
        let mut state = 0x9E3779B97F4A7C15_u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1_u64 << 53) as f64 - 0.5
        };
        let mut f = Fitted {
            scaler,
            w1: (0..self.hidden)
                .map(|_| (0..d).map(|_| next() * 0.5).collect())
                .collect(),
            b1: (0..self.hidden).map(|_| next() * 0.1).collect(),
            w2: (0..self.hidden).map(|_| next() * 0.5).collect(),
            b2: 0.0,
        };
        let n = xs.len() as f64;
        for _ in 0..self.epochs {
            let mut g_w1 = vec![vec![0.0; d]; self.hidden];
            let mut g_b1 = vec![0.0; self.hidden];
            let mut g_w2 = vec![0.0; self.hidden];
            let mut g_b2 = 0.0;
            for (x, &y) in xs.iter().zip(&ys) {
                let (h, out) = Self::forward(&f, x);
                let delta_out = out - y; // dCE/dz for sigmoid + CE
                g_b2 += delta_out / n;
                for j in 0..self.hidden {
                    g_w2[j] += delta_out * h[j] / n;
                    let delta_h = delta_out * f.w2[j] * (1.0 - h[j] * h[j]);
                    g_b1[j] += delta_h / n;
                    for (g, xi) in g_w1[j].iter_mut().zip(x) {
                        *g += delta_h * xi / n;
                    }
                }
            }
            let lr = self.learning_rate;
            for j in 0..self.hidden {
                for (w, g) in f.w1[j].iter_mut().zip(&g_w1[j]) {
                    *w -= lr * g;
                }
                f.b1[j] -= lr * g_b1[j];
                f.w2[j] -= lr * g_w2[j];
            }
            f.b2 -= lr * g_b2;
        }
        self.fitted = Some(f);
        Ok(())
    }

    fn predict(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>> {
        let f = self.fitted.as_ref().ok_or(DetectError::NotFitted)?;
        rows.iter()
            .map(|r| {
                let x = f.scaler.transform(r)?;
                Ok(Self::forward(f, &x).1)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable data: anomalies at x0 > 0.
    fn linear_data() -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let x = (i as f64 / 39.0) * 10.0 - 5.0;
            rows.push(vec![x, -x * 0.5]);
            labels.push(x > 0.0);
        }
        (rows, labels)
    }

    /// XOR-ish data that a linear model cannot separate.
    fn xor_data() -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            let eps = i as f64 * 0.01;
            rows.push(vec![1.0 + eps, 1.0]);
            labels.push(false);
            rows.push(vec![-1.0 - eps, -1.0]);
            labels.push(false);
            rows.push(vec![1.0 + eps, -1.0]);
            labels.push(true);
            rows.push(vec![-1.0 - eps, 1.0]);
            labels.push(true);
        }
        (rows, labels)
    }

    #[test]
    fn separates_linear_classes() {
        let (rows, labels) = linear_data();
        let mut nn = NeuralNetwork::default();
        nn.fit(&rows, &labels).unwrap();
        let scores = nn.predict(&rows).unwrap();
        let pos_mean: f64 = scores
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| l)
            .map(|(&s, _)| s)
            .sum::<f64>()
            / 20.0;
        let neg_mean: f64 = scores
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| !l)
            .map(|(&s, _)| s)
            .sum::<f64>()
            / 20.0;
        assert!(pos_mean > 0.8, "positive mean {pos_mean}");
        assert!(neg_mean < 0.2, "negative mean {neg_mean}");
    }

    #[test]
    fn learns_nonlinear_xor() {
        let (rows, labels) = xor_data();
        let mut nn = NeuralNetwork {
            hidden: 12,
            epochs: 3000,
            learning_rate: 1.0,
            fitted: None,
        };
        nn.fit(&rows, &labels).unwrap();
        let scores = nn.predict(&rows).unwrap();
        let correct = scores
            .iter()
            .zip(&labels)
            .filter(|(&s, &l)| (s > 0.5) == l)
            .count();
        assert!(
            correct as f64 / rows.len() as f64 > 0.9,
            "XOR accuracy {correct}/{}",
            rows.len()
        );
    }

    #[test]
    fn outputs_are_probabilities() {
        let (rows, labels) = linear_data();
        let mut nn = NeuralNetwork::default();
        nn.fit(&rows, &labels).unwrap();
        for s in nn.predict(&rows).unwrap() {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn deterministic_training() {
        let (rows, labels) = linear_data();
        let mut a = NeuralNetwork::default();
        let mut b = NeuralNetwork::default();
        a.fit(&rows, &labels).unwrap();
        b.fit(&rows, &labels).unwrap();
        assert_eq!(a.predict(&rows).unwrap(), b.predict(&rows).unwrap());
    }

    #[test]
    fn validation_and_info() {
        assert!(NeuralNetwork::new(0).is_err());
        let mut nn = NeuralNetwork::default();
        assert!(nn.fit(&[], &[]).is_err());
        assert!(nn.fit(&[vec![1.0]], &[true, false]).is_err());
        assert!(matches!(
            NeuralNetwork::default().predict(&[vec![1.0]]),
            Err(DetectError::NotFitted)
        ));
        let i = nn.info();
        assert_eq!(i.citation, "[10]");
        assert!(i.supervised);
        assert_eq!(i.capabilities.count(), 3);
    }
}
