//! Autoregressive prediction-error scoring.
//!
//! Table-1 row **Autoregressive Model** (Hill & Minsker, *Anomaly detection
//! in streaming environmental sensor data: A data-driven modeling
//! approach*, 2010 — citation [15]): an AR(p) model fitted to the sensor
//! stream predicts each next value; the anomaly score of a point is its
//! standardized one-step prediction error. AR coefficients come from the
//! Yule-Walker equations solved by Levinson-Durbin recursion (implemented
//! here, tested against a direct solve).

use hierod_timeseries::stats::{autocovariances, std_dev};

use crate::api::{
    check_finite, Capabilities, DetectError, Detector, DetectorInfo, PointScorer, Result,
    TechniqueClass,
};

/// AR(p) prediction-error scorer.
#[derive(Debug, Clone)]
pub struct AutoregressiveModel {
    /// Model order `p`.
    pub order: usize,
}

impl Default for AutoregressiveModel {
    fn default() -> Self {
        Self { order: 3 }
    }
}

/// Solves the Yule-Walker equations for AR coefficients via
/// Levinson-Durbin. Returns `(coefficients, innovation_variance)`.
///
/// # Errors
/// Rejects `order == 0` or an autocovariance sequence shorter than
/// `order + 1`.
pub fn levinson_durbin(autocov: &[f64], order: usize) -> Result<(Vec<f64>, f64)> {
    if order == 0 {
        return Err(DetectError::invalid("order", "must be > 0"));
    }
    if autocov.len() < order + 1 {
        return Err(DetectError::NotEnoughData {
            what: "levinson_durbin",
            needed: order + 1,
            got: autocov.len(),
        });
    }
    let Some((&c0, lags)) = autocov.split_first() else {
        return Err(DetectError::NotEnoughData {
            what: "levinson_durbin",
            needed: order + 1,
            got: 0,
        });
    };
    if c0 <= 0.0 {
        // Constant series: zero coefficients, zero variance.
        return Ok((vec![0.0; order], 0.0));
    }
    let mut a = vec![0.0_f64; order];
    let mut e = c0;
    for k in 0..order {
        // acc = autocov[k+1] − Σ_{j<k} a[j]·autocov[k−j]; with
        // `lags = autocov[1..]`, the subtrahend pairs a[0..k] against
        // lags[0..k] reversed. Subtracted serially to keep the rounding
        // (and hence the pinned E4 report) bit-identical.
        let mut acc = lags.get(k).copied().unwrap_or(0.0);
        for (aj, c) in a.iter().zip(lags.iter().take(k).rev()) {
            acc -= aj * c;
        }
        let reflection = acc / e;
        // Update coefficients: a'[j] = a[j] − r·a[k−1−j] for j < k (the
        // reversed prefix), a'[k] = r, tail unchanged (still zero).
        a = a
            .iter()
            .take(k)
            .zip(a.iter().take(k).rev())
            .map(|(aj, arev)| aj - reflection * arev)
            .chain(std::iter::once(reflection))
            .chain(a.iter().skip(k + 1).copied())
            .collect();
        e *= 1.0 - reflection * reflection;
        if e <= 0.0 {
            e = 1e-12;
        }
    }
    Ok((a, e))
}

impl AutoregressiveModel {
    /// Creates an AR(p) scorer.
    ///
    /// # Errors
    /// Rejects `order == 0`.
    pub fn new(order: usize) -> Result<Self> {
        if order == 0 {
            return Err(DetectError::invalid("order", "must be > 0"));
        }
        Ok(Self { order })
    }

    /// Fits AR coefficients on a series (demeaned).
    ///
    /// # Errors
    /// Rejects series shorter than `3 × order`.
    pub fn fit(&self, values: &[f64]) -> Result<Vec<f64>> {
        if values.len() < self.order * 3 {
            return Err(DetectError::NotEnoughData {
                what: "AutoregressiveModel",
                needed: self.order * 3,
                got: values.len(),
            });
        }
        let autocov = autocovariances(values, self.order)?;
        Ok(levinson_durbin(&autocov, self.order)?.0)
    }
}

impl Detector for AutoregressiveModel {
    fn info(&self) -> DetectorInfo {
        DetectorInfo {
            name: "Autoregressive Model",
            citation: "[15]",
            class: TechniqueClass::PM,
            capabilities: Capabilities::new(true, false, true),
            supervised: false,
        }
    }
}

impl PointScorer for AutoregressiveModel {
    fn score_points(&self, values: &[f64]) -> Result<Vec<f64>> {
        check_finite("AutoregressiveModel", values)?;
        if values.is_empty() {
            return Err(DetectError::NotEnoughData {
                what: "AutoregressiveModel",
                needed: self.order * 3,
                got: 0,
            });
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        // Constant series (up to rounding dust) carry no prediction errors.
        if var <= 1e-20 * (1.0 + mean * mean) {
            if values.len() < self.order * 3 {
                return Err(DetectError::NotEnoughData {
                    what: "AutoregressiveModel",
                    needed: self.order * 3,
                    got: values.len(),
                });
            }
            return Ok(vec![0.0; values.len()]);
        }
        let coeffs = self.fit(values)?;
        let centered: Vec<f64> = values.iter().map(|v| v - mean).collect();
        let p = self.order;
        // One-step prediction errors (first p points: no prediction, 0).
        // centered[t−1−j] for j < p is the reversed tail of centered[..t].
        let errors: Vec<f64> = centered
            .iter()
            .enumerate()
            .map(|(t, &ct)| {
                if t < p {
                    return 0.0;
                }
                let history = centered.get(..t).unwrap_or(&[]);
                let pred: f64 = coeffs
                    .iter()
                    .zip(history.iter().rev())
                    .map(|(a, c)| a * c)
                    .sum();
                ct - pred
            })
            .collect();
        // Standardize by the innovation std over the predicted region.
        let sd = std_dev(errors.get(p..).unwrap_or(&[]))?.max(1e-12);
        Ok(errors.into_iter().map(|e| (e / sd).abs()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic AR(1) with phi = 0.8 plus a spike.
    fn ar1_with_spike(n: usize, at: usize) -> Vec<f64> {
        let mut state = 0x1234_5678_u64;
        let mut noise = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1_u64 << 53) as f64 - 0.5
        };
        let mut x = 0.0_f64;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            x = 0.8 * x + noise();
            out.push(x);
        }
        out[at] += 10.0;
        out
    }

    #[test]
    fn levinson_durbin_recovers_ar1_coefficient() {
        // AR(1) with phi: autocov(k) = phi^k * c0.
        let phi = 0.7;
        let autocov: Vec<f64> = (0..4).map(|k| phi_f(phi, k)).collect();
        let (a, e) = levinson_durbin(&autocov, 1).unwrap();
        assert!((a[0] - phi).abs() < 1e-9);
        assert!((e - (1.0 - phi * phi)).abs() < 1e-9);
    }

    fn phi_f(phi: f64, k: usize) -> f64 {
        phi.powi(k as i32)
    }

    #[test]
    fn levinson_durbin_matches_direct_solve_order2() {
        // AR(2) Yule-Walker: solve 2x2 directly and compare.
        let autocov = [2.0, 1.2, 0.9];
        let (a, _) = levinson_durbin(&autocov, 2).unwrap();
        // Direct: [c0 c1; c1 c0] [a1 a2]' = [c1 c2]'.
        let det = autocov[0] * autocov[0] - autocov[1] * autocov[1];
        let a1 = (autocov[1] * autocov[0] - autocov[2] * autocov[1]) / det;
        let a2 = (autocov[0] * autocov[2] - autocov[1] * autocov[1]) / det;
        assert!((a[0] - a1).abs() < 1e-9, "{a:?} vs ({a1}, {a2})");
        assert!((a[1] - a2).abs() < 1e-9);
    }

    #[test]
    fn spike_scores_highest() {
        let v = ar1_with_spike(300, 150);
        let scores = AutoregressiveModel::new(2)
            .unwrap()
            .score_points(&v)
            .unwrap();
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, 150);
        // Typical points have |standardized error| around 1.
        let typical = scores[50];
        assert!(typical < 4.0);
    }

    #[test]
    fn warmup_points_score_zero() {
        let v = ar1_with_spike(100, 50);
        let scores = AutoregressiveModel::new(3)
            .unwrap()
            .score_points(&v)
            .unwrap();
        assert_eq!(scores[0], 0.0);
        assert_eq!(scores[2], 0.0);
        assert!(scores[3] >= 0.0);
    }

    #[test]
    fn constant_series_scores_zero() {
        let v = vec![5.0; 50];
        let scores = AutoregressiveModel::default().score_points(&v).unwrap();
        assert!(scores.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn validation() {
        assert!(AutoregressiveModel::new(0).is_err());
        assert!(AutoregressiveModel::new(5)
            .unwrap()
            .score_points(&[1.0, 2.0])
            .is_err());
        assert!(levinson_durbin(&[1.0], 1).is_err());
        assert!(levinson_durbin(&[1.0, 0.5], 0).is_err());
        // Degenerate zero-variance autocovariance.
        let (a, e) = levinson_durbin(&[0.0, 0.0], 1).unwrap();
        assert_eq!(a, vec![0.0]);
        assert_eq!(e, 0.0);
    }

    #[test]
    fn info_matches_table1() {
        let i = AutoregressiveModel::default().info();
        assert_eq!(i.citation, "[15]");
        assert_eq!(i.class, TechniqueClass::PM);
        assert!(i.capabilities.points && i.capabilities.series);
        assert!(!i.capabilities.subsequences);
    }
}
