//! Vector autoregression for multivariate series.
//!
//! The paper's Section 3, on predictive models: "In addition, prediction
//! models are suitable for multi-variate time series." This is the
//! multivariate member of the PM family: a VAR(1) model
//! `x_t ≈ A·x_{t−1} + c` fitted by per-equation least squares (normal
//! equations, Gaussian elimination — implemented here), scoring each time
//! point by the norm of its standardized one-step prediction error. A
//! cross-sensor anomaly that no single-channel AR model can see (one sensor
//! breaking its usual relationship to the others) surfaces as a VAR
//! residual.

use crate::api::{Capabilities, DetectError, Detector, DetectorInfo, Result, TechniqueClass};

/// VAR(1) prediction-error scorer over a multivariate series
/// (rows = time points, columns = channels).
#[derive(Debug, Clone, Copy, Default)]
pub struct VectorAutoregressive;

/// A fitted VAR(1): `x_t ≈ coeffs · x_{t−1} + intercept`.
#[derive(Debug, Clone)]
pub struct FittedVar {
    /// Coefficient matrix (d × d): row i predicts channel i.
    pub coeffs: Vec<Vec<f64>>,
    /// Per-channel intercept.
    pub intercept: Vec<f64>,
    /// Per-channel residual standard deviation on the training data.
    pub residual_std: Vec<f64>,
}

/// Solves `M·x = b` by Gaussian elimination with partial pivoting.
/// Returns `None` when `M` is (numerically) singular.
#[allow(clippy::needless_range_loop)] // elimination kernel reads clearer indexed
fn solve(mut m: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&a, &c| m[a][col].abs().total_cmp(&m[c][col].abs()))?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in (col + 1)..n {
            let f = m[row][col] / m[col][col];
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                m[row][k] -= f * m[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0_f64; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= m[row][k] * x[k];
        }
        x[row] = acc / m[row][row];
    }
    Some(x)
}

impl VectorAutoregressive {
    /// Fits a VAR(1) on `rows` (time-ordered, rectangular, ≥ `3·(d+1)`
    /// points for a usable fit).
    ///
    /// # Errors
    /// Rejects empty/ragged/too-short inputs or singular designs.
    pub fn fit(rows: &[Vec<f64>]) -> Result<FittedVar> {
        let d = crate::api::check_rows("VectorAutoregressive", rows)?;
        let n = rows.len();
        if n < 3 * (d + 1) {
            return Err(DetectError::NotEnoughData {
                what: "VectorAutoregressive",
                needed: 3 * (d + 1),
                got: n,
            });
        }
        // Design: z_t = [x_{t-1}, 1]; per-channel least squares share the
        // Gram matrix G = Σ z zᵀ.
        let dim = d + 1;
        let mut gram = vec![vec![0.0_f64; dim]; dim];
        let mut rhs = vec![vec![0.0_f64; dim]; d]; // one b per output channel
        for t in 1..n {
            let mut z = rows[t - 1].clone();
            z.push(1.0);
            for i in 0..dim {
                for j in 0..dim {
                    gram[i][j] += z[i] * z[j];
                }
            }
            for (c, r) in rhs.iter_mut().enumerate() {
                for (ri, zi) in r.iter_mut().zip(&z) {
                    *ri += zi * rows[t][c];
                }
            }
        }
        // Ridge: keeps near-constant channels solvable.
        for (i, row) in gram.iter_mut().enumerate() {
            row[i] += 1e-8;
        }
        let mut coeffs = Vec::with_capacity(d);
        let mut intercept = Vec::with_capacity(d);
        for r in &rhs {
            let sol = solve(gram.clone(), r.clone()).ok_or_else(|| DetectError::Numeric {
                message: "VAR normal equations are singular".into(),
            })?;
            intercept.push(sol[d]);
            coeffs.push(sol[..d].to_vec());
        }
        // Residual std per channel.
        let mut residual_sq = vec![0.0_f64; d];
        for t in 1..n {
            for c in 0..d {
                let pred: f64 = coeffs[c]
                    .iter()
                    .zip(&rows[t - 1])
                    .map(|(a, x)| a * x)
                    .sum::<f64>()
                    + intercept[c];
                let e = rows[t][c] - pred;
                residual_sq[c] += e * e;
            }
        }
        let residual_std = residual_sq
            .into_iter()
            .map(|s| (s / (n - 1) as f64).sqrt().max(1e-9))
            .collect();
        Ok(FittedVar {
            coeffs,
            intercept,
            residual_std,
        })
    }

    /// Scores every time point: the root-mean-square of the per-channel
    /// standardized one-step prediction errors (first point scores 0).
    ///
    /// # Errors
    /// See [`Self::fit`].
    pub fn score_rows_over_time(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>> {
        let model = Self::fit(rows)?;
        let d = model.coeffs.len();
        let mut out = Vec::with_capacity(rows.len());
        out.push(0.0);
        for t in 1..rows.len() {
            let mut acc = 0.0;
            for c in 0..d {
                let pred: f64 = model.coeffs[c]
                    .iter()
                    .zip(&rows[t - 1])
                    .map(|(a, x)| a * x)
                    .sum::<f64>()
                    + model.intercept[c];
                let e = (rows[t][c] - pred) / model.residual_std[c];
                acc += e * e;
            }
            out.push((acc / d as f64).sqrt());
        }
        Ok(out)
    }
}

impl Detector for VectorAutoregressive {
    fn info(&self) -> DetectorInfo {
        DetectorInfo {
            name: "Vector Autoregressive Model",
            citation: "§3 (PM, multivariate)",
            class: TechniqueClass::PM,
            capabilities: Capabilities::new(true, false, true),
            supervised: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two coupled channels: y follows x with a lag; plus a cross-channel
    /// break at t = 60 where y stops following.
    fn coupled(n: usize, break_at: Option<usize>) -> Vec<Vec<f64>> {
        let mut state = 0xABCDE_u64;
        let mut noise = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1_u64 << 53) as f64 - 0.5
        };
        let mut x = 0.0_f64;
        let mut rows = Vec::with_capacity(n);
        let mut prev_x = 0.0;
        for t in 0..n {
            x = 0.8 * x + noise();
            let mut y = 0.9 * prev_x + 0.1 * noise();
            if let Some(b) = break_at {
                // Bounded break: the relationship flips for 20 samples.
                if t >= b && t < b + 20 {
                    y = -0.9 * prev_x;
                }
            }
            rows.push(vec![x, y]);
            prev_x = x;
        }
        rows
    }

    #[test]
    fn fit_recovers_the_coupling() {
        let rows = coupled(400, None);
        let model = VectorAutoregressive::fit(&rows).unwrap();
        // Channel 1 (y) is driven by channel 0 (x) with weight ~0.9.
        assert!(
            (model.coeffs[1][0] - 0.9).abs() < 0.1,
            "cross coefficient {:?}",
            model.coeffs[1]
        );
        // Channel 0 is AR(1) with phi ~0.8.
        assert!((model.coeffs[0][0] - 0.8).abs() < 0.15);
    }

    #[test]
    fn cross_channel_break_scores_high() {
        let rows = coupled(200, Some(120));
        let scores = VectorAutoregressive.score_rows_over_time(&rows).unwrap();
        // Mean score inside the 20-sample break window far exceeds the
        // clean region.
        let clean: f64 = scores[10..110].iter().sum::<f64>() / 100.0;
        let during: f64 = scores[121..140].iter().sum::<f64>() / 19.0;
        assert!(
            during > clean * 2.0,
            "break must show: clean {clean:.2}, during {during:.2}"
        );
    }

    #[test]
    fn solver_matches_hand_solution() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
        let m = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = solve(m, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        // Singular system.
        let m = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert!(solve(m, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn constant_channels_survive_via_ridge() {
        let mut rows = coupled(100, None);
        for r in rows.iter_mut() {
            r.push(5.0); // constant third channel
        }
        let scores = VectorAutoregressive.score_rows_over_time(&rows).unwrap();
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn validation() {
        assert!(VectorAutoregressive::fit(&[]).is_err());
        let short = coupled(5, None);
        assert!(VectorAutoregressive::fit(&short).is_err());
        let i = VectorAutoregressive.info();
        assert_eq!(i.class, TechniqueClass::PM);
        assert!(i.capabilities.points);
    }
}
