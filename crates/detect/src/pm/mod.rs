//! Predictive models (PM).
//!
//! "Prediction models define the outlier score based on the delta value to
//! the predicted value."

pub mod ar;
mod var;

pub use ar::{levinson_durbin, AutoregressiveModel};
pub use var::{FittedVar, VectorAutoregressive};
