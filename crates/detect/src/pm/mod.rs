//! Predictive models (PM).
//!
//! "Prediction models define the outlier score based on the delta value to
//! the predicted value."

mod ar;
mod var;

pub use ar::AutoregressiveModel;
pub use var::{FittedVar, VectorAutoregressive};
