//! Information-theoretic models (ITM).
//!
//! "An information-theoretic model detects outlier points by removing
//! points from a sequel and measuring the improvement in a histogram-based
//! representation. In this context, outlier points are denoted as
//! deviants."

mod deviants;

pub use deviants::HistogramDeviants;
