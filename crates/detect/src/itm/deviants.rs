//! Histogram deviant mining.
//!
//! Table-1 row **Histogram Representation** (Muthukrishnan et al., *Mining
//! deviants in time series data streams*, SSDBM 2004 — citation [27]): fit
//! the optimal (V-optimal) B-bucket histogram to the sequence; a point is a
//! *deviant* to the degree that removing it improves the representation
//! error. We compute the exact V-optimal partition (dynamic program in
//! `hierod-timeseries::histogram`) and score each point by the leave-one-out
//! reduction of its own bucket's SSE:
//!
//! ```text
//!   Δᵢ = (xᵢ − μ_b)² · n_b / (n_b − 1)
//! ```
//!
//! which is the exact change of bucket `b`'s SSE when `xᵢ` is removed
//! (buckets of size 1 score 0 — removing their only point leaves nothing to
//! improve).

use hierod_timeseries::histogram::VOptimalHistogram;

use crate::api::{
    check_finite, Capabilities, DetectError, Detector, DetectorInfo, PointScorer, Result,
    TechniqueClass,
};

/// Deviant scorer based on the V-optimal histogram.
#[derive(Debug, Clone)]
pub struct HistogramDeviants {
    /// Number of histogram buckets.
    pub buckets: usize,
}

impl Default for HistogramDeviants {
    fn default() -> Self {
        Self { buckets: 8 }
    }
}

impl HistogramDeviants {
    /// Creates with an explicit bucket budget.
    ///
    /// # Errors
    /// Rejects `buckets == 0`.
    pub fn new(buckets: usize) -> Result<Self> {
        if buckets == 0 {
            return Err(DetectError::invalid("buckets", "must be > 0"));
        }
        Ok(Self { buckets })
    }
}

impl Detector for HistogramDeviants {
    fn info(&self) -> DetectorInfo {
        DetectorInfo {
            name: "Histogram Representation",
            citation: "[27]",
            class: TechniqueClass::ITM,
            capabilities: Capabilities::new(true, false, false),
            supervised: false,
        }
    }
}

impl PointScorer for HistogramDeviants {
    fn score_points(&self, values: &[f64]) -> Result<Vec<f64>> {
        check_finite("HistogramDeviants", values)?;
        if values.is_empty() {
            return Err(DetectError::NotEnoughData {
                what: "HistogramDeviants",
                needed: 1,
                got: 0,
            });
        }
        let hist = VOptimalHistogram::fit(values, self.buckets)?;
        let buckets = hist.buckets();
        let mut scores = vec![0.0_f64; values.len()];
        for (b_idx, bucket) in buckets.iter().enumerate() {
            let n_b = (bucket.end - bucket.start) as f64;
            if n_b < 2.0 {
                // A singleton bucket is the histogram's own deviant signal:
                // the optimizer paid a whole bucket to isolate this point.
                // Its score is the SSE the representation would incur if the
                // point were merged into the cheaper adjacent bucket — the
                // isolation cost.
                let i = bucket.start;
                let mut cost = f64::INFINITY;
                if b_idx > 0 {
                    let prev = &buckets[b_idx - 1];
                    let n = (prev.end - prev.start) as f64;
                    let d = values[i] - prev.mean;
                    cost = cost.min(d * d * n / (n + 1.0));
                }
                if b_idx + 1 < buckets.len() {
                    let next = &buckets[b_idx + 1];
                    let n = (next.end - next.start) as f64;
                    let d = values[i] - next.mean;
                    cost = cost.min(d * d * n / (n + 1.0));
                }
                if cost.is_finite() {
                    scores[i] = cost;
                }
                continue;
            }
            for i in bucket.start..bucket.end {
                let d = values[i] - bucket.mean;
                scores[i] = d * d * n_b / (n_b - 1.0);
            }
        }
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spike_is_the_top_deviant() {
        let mut v: Vec<f64> = (0..64).map(|i| ((i / 16) * 10) as f64).collect();
        v[40] += 25.0;
        let scores = HistogramDeviants::new(4).unwrap().score_points(&v).unwrap();
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, 40);
    }

    #[test]
    fn leave_one_out_formula_is_exact() {
        // One bucket over [1, 1, 10]: removing the 10 leaves SSE 0.
        use hierod_timeseries::histogram::v_optimal_sse;
        let v = [1.0, 1.0, 10.0];
        let scores = HistogramDeviants::new(1).unwrap().score_points(&v).unwrap();
        let full = v_optimal_sse(&v, 1).unwrap();
        let without_last = v_optimal_sse(&v[..2], 1).unwrap();
        let expected_delta = full - without_last;
        assert!(
            (scores[2] - expected_delta).abs() < 1e-9,
            "score {} vs exact Δ {}",
            scores[2],
            expected_delta
        );
    }

    #[test]
    fn perfectly_representable_sequence_scores_zero() {
        // Two-level step with 2 buckets: zero SSE, zero deviant scores.
        let v = [3.0, 3.0, 3.0, 9.0, 9.0, 9.0];
        let scores = HistogramDeviants::new(2).unwrap().score_points(&v).unwrap();
        assert!(scores.iter().all(|&s| s < 1e-12));
    }

    #[test]
    fn singleton_bucket_scores_isolation_cost() {
        // Flat data with a spike: a generous bucket budget isolates the
        // spike in its own bucket, and the isolation cost must still rank
        // it first (the Muthukrishnan deviant).
        let mut v = vec![1.0; 40];
        v[20] = 50.0;
        let scores = HistogramDeviants::new(8).unwrap().score_points(&v).unwrap();
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, 20);
        assert!(scores[20] > 100.0);
    }

    #[test]
    fn more_buckets_reduce_scores() {
        let v: Vec<f64> = (0..32).map(|i| (i as f64 * 0.9).sin() * 5.0).collect();
        let coarse: f64 = HistogramDeviants::new(2)
            .unwrap()
            .score_points(&v)
            .unwrap()
            .iter()
            .sum();
        let fine: f64 = HistogramDeviants::new(16)
            .unwrap()
            .score_points(&v)
            .unwrap()
            .iter()
            .sum();
        assert!(fine < coarse);
    }

    #[test]
    fn validation_and_info() {
        assert!(HistogramDeviants::new(0).is_err());
        assert!(HistogramDeviants::default().score_points(&[]).is_err());
        let i = HistogramDeviants::default().info();
        assert_eq!(i.citation, "[27]");
        assert_eq!(i.class, TechniqueClass::ITM);
        assert!(i.capabilities.points);
        assert_eq!(i.capabilities.count(), 1);
    }
}
