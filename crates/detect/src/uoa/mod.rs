//! Unsupervised online (OLAP) approaches (UOA).
//!
//! "In case of multidimensional data, an Online Analytical Processing
//! (OLAP) cube can be analyzed, using an unsupervised approach with each
//! cell as a measure."

mod olap_cube;

pub use olap_cube::OlapCubeDetector;
